//! Property-based tests over the core DP kernels and their supporting
//! machinery (proptest). These hammer the invariants that the paper's
//! argument rests on: exactness identities, bound soundness, window
//! algebra, and the equivalence of every kernel specialization.

use proptest::prelude::*;
use tsdtw_core::cost::{AbsoluteCost, SquaredCost};
use tsdtw_core::dtw::banded::{cdtw_distance, cdtw_with_path, percent_to_band, BandedDtw};
use tsdtw_core::dtw::early_abandon::{cdtw_distance_ea, EaOutcome};
use tsdtw_core::dtw::full::{dtw_distance, dtw_with_path};
use tsdtw_core::dtw::windowed::windowed_distance;
use tsdtw_core::envelope::Envelope;
use tsdtw_core::lower_bounds::improved::lb_improved;
use tsdtw_core::lower_bounds::keogh::{lb_keogh, lb_keogh_with_contrib, suffix_sums};
use tsdtw_core::lower_bounds::kim::lb_kim_hierarchy;
use tsdtw_core::lower_bounds::yi::lb_yi_symmetric;
use tsdtw_core::multivariate::{mdtw_d_distance, MultiSeries};
use tsdtw_core::open_end::open_end_dtw;
use tsdtw_core::window::SearchWindow;

fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 1..max_len)
}

fn equal_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1..max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-50.0f64..50.0, n..=n),
            prop::collection::vec(-50.0f64..50.0, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The textbook O(n·m) reference DP agrees with the rolling-row kernel.
    #[test]
    fn full_dtw_matches_naive_reference(x in series(24), y in series(24)) {
        let n = x.len();
        let m = y.len();
        let mut d = vec![vec![f64::INFINITY; m + 1]; n + 1];
        d[0][0] = 0.0;
        for i in 1..=n {
            for j in 1..=m {
                let c = (x[i - 1] - y[j - 1]).powi(2);
                d[i][j] = c + d[i - 1][j - 1].min(d[i - 1][j]).min(d[i][j - 1]);
            }
        }
        let fast = dtw_distance(&x, &y, SquaredCost).unwrap();
        prop_assert!((fast - d[n][m]).abs() < 1e-6 * (1.0 + d[n][m].abs()));
    }

    /// The windowed kernel with a full window equals the specialized
    /// full-DTW kernel.
    #[test]
    fn windowed_full_equals_specialized((x, y) in equal_pair(40)) {
        let w = SearchWindow::full(x.len(), y.len());
        let a = windowed_distance(&x, &y, &w, SquaredCost).unwrap();
        let b = dtw_distance(&x, &y, SquaredCost).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// The reusable evaluator equals the one-shot function, repeatedly.
    #[test]
    fn banded_evaluator_is_stateless_across_calls(
        (x, y) in equal_pair(32),
        band in 0usize..8,
    ) {
        let mut eval = BandedDtw::new(x.len(), y.len(), band).unwrap();
        let one = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
        for _ in 0..3 {
            prop_assert_eq!(eval.distance(&x, &y, SquaredCost).unwrap(), one);
        }
    }

    /// percent_to_band is monotone and hits both endpoints.
    #[test]
    fn percent_to_band_monotone(n in 1usize..3000) {
        let mut last = 0;
        for w in [0.0, 1.0, 5.0, 20.0, 50.0, 100.0] {
            let b = percent_to_band(n, w).unwrap();
            prop_assert!(b >= last);
            last = b;
        }
        prop_assert_eq!(percent_to_band(n, 0.0).unwrap(), 0);
        prop_assert_eq!(percent_to_band(n, 100.0).unwrap(), n);
    }

    /// Early abandoning with the genuine LB_Keogh cumulative bound never
    /// abandons a within-threshold computation (the cb regression).
    #[test]
    fn early_abandon_with_real_cb_is_sound((x, y) in equal_pair(48), band in 0usize..6) {
        let env = Envelope::new(&x, band).unwrap();
        let mut contrib = Vec::new();
        lb_keogh_with_contrib(&y, &env, &mut contrib).unwrap();
        let cb = suffix_sums(&contrib);
        let exact = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
        let out =
            cdtw_distance_ea(&x, &y, band, exact + 1e-9, Some(&cb), SquaredCost).unwrap();
        prop_assert_eq!(out.distance(), Some(exact));
    }

    /// Abandonment, when it happens, is always justified.
    #[test]
    fn early_abandon_never_lies((x, y) in equal_pair(40), band in 0usize..6, frac in 0.1f64..1.5) {
        let exact = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
        let threshold = exact * frac;
        match cdtw_distance_ea(&x, &y, band, threshold, None, SquaredCost).unwrap() {
            EaOutcome::Exact(d) => prop_assert!((d - exact).abs() < 1e-9),
            EaOutcome::Abandoned { .. } => prop_assert!(exact > threshold),
        }
    }

    /// Every lower bound is below the constrained distance it bounds.
    #[test]
    fn all_bounds_below_cdtw((x, y) in equal_pair(40), band in 0usize..8) {
        let exact = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
        let env = Envelope::new(&x, band).unwrap();
        prop_assert!(lb_keogh(&y, &env).unwrap() <= exact + 1e-9);
        prop_assert!(lb_improved(&x, &y, &env, band).unwrap() <= exact + 1e-9);
        prop_assert!(lb_kim_hierarchy(&x, &y, f64::INFINITY).unwrap() <= exact + 1e-9);
        // LB_Yi bounds full DTW, which is below cDTW.
        prop_assert!(lb_yi_symmetric(&x, &y).unwrap() <= exact + 1e-9);
    }

    /// Paths from every with-path kernel replay to their distance.
    #[test]
    fn paths_replay((x, y) in equal_pair(32), band in 0usize..8) {
        let (d1, p1) = dtw_with_path(&x, &y, SquaredCost).unwrap();
        prop_assert!((p1.replay_cost(&x, &y, SquaredCost).unwrap() - d1).abs() < 1e-9);
        let (d2, p2) = cdtw_with_path(&x, &y, band, SquaredCost).unwrap();
        prop_assert!((p2.replay_cost(&x, &y, SquaredCost).unwrap() - d2).abs() < 1e-9);
        prop_assert!(p2.max_diagonal_deviation() <= band);
    }

    /// Absolute-cost DTW obeys the same band monotonicity as squared.
    #[test]
    fn absolute_cost_band_monotone((x, y) in equal_pair(32)) {
        let mut last = f64::INFINITY;
        for band in [0usize, 2, 4, 32] {
            let d = cdtw_distance(&x, &y, band, AbsoluteCost).unwrap();
            prop_assert!(d <= last + 1e-9);
            last = d;
        }
    }

    /// Open-end DTW is bounded above by closed-end DTW and its match end
    /// is in range.
    #[test]
    fn open_end_below_closed(x in series(24), y in series(24)) {
        let band = x.len().max(y.len());
        let oe = open_end_dtw(&x, &y, band, SquaredCost).unwrap();
        let closed = dtw_distance(&x, &y, SquaredCost).unwrap();
        prop_assert!(oe.distance <= closed + 1e-9);
        prop_assert!(oe.end < y.len());
    }

    /// Dependent multivariate DTW on duplicated channels scales the
    /// univariate distance by the dimension count.
    #[test]
    fn multivariate_duplicated_channels((x, y) in equal_pair(24), dim in 1usize..4) {
        let mx = MultiSeries::from_channels(&vec![x.clone(); dim]).unwrap();
        let my = MultiSeries::from_channels(&vec![y.clone(); dim]).unwrap();
        let multi = mdtw_d_distance(&mx, &my, x.len()).unwrap();
        let uni = dtw_distance(&x, &y, SquaredCost).unwrap();
        prop_assert!((multi - dim as f64 * uni).abs() < 1e-6 * (1.0 + multi.abs()));
    }

    /// Sakoe–Chiba windows are always valid and grow with the band.
    #[test]
    fn band_windows_valid_and_monotone(n in 1usize..80, m in 1usize..80) {
        let mut last = 0;
        for band in [0usize, 1, 3, 10, 100] {
            let w = SearchWindow::sakoe_chiba(n, m, band);
            prop_assert!(w.validate().is_ok());
            prop_assert!(w.cell_count() >= last);
            last = w.cell_count();
        }
    }

    /// Dilation only grows windows and preserves validity.
    #[test]
    fn dilation_grows(n in 2usize..40, band in 0usize..5, r in 0usize..5) {
        let w = SearchWindow::sakoe_chiba(n, n, band);
        let d = w.dilate(r);
        prop_assert!(d.validate().is_ok());
        prop_assert!(d.cell_count() >= w.cell_count());
        for i in 0..n {
            let (lo, hi) = w.row_bounds(i);
            for j in lo..=hi {
                prop_assert!(d.contains(i, j));
            }
        }
    }
}
