//! Property-based tests for the observability layer: the work meter's
//! tallies are accounting identities, not estimates. Whatever the inputs,
//! (1) a metered kernel returns exactly what the unmetered one returns,
//! (2) cDTW's cell count lives inside the Sakoe–Chiba band area O(N·w),
//! and (3) the cascade's per-stage prune tallies partition the candidates
//! it processed.

use proptest::prelude::*;
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::banded::{cdtw_distance, cdtw_distance_metered};
use tsdtw_core::fastdtw::{fastdtw_distance, fastdtw_metered};
use tsdtw_core::lower_bounds::Cascade;
use tsdtw_core::obs::WorkMeter;

fn equal_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (4..max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-20.0f64..20.0, n..=n),
            prop::collection::vec(-20.0f64..20.0, n..=n),
        )
    })
}

fn pool(max_len: usize, max_count: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2..max_count, 8..max_len).prop_flat_map(|(k, n)| {
        prop::collection::vec(prop::collection::vec(-20.0f64..20.0, n..=n), k..=k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Metered cDTW returns the same distance as the plain kernel, and its
    /// cell count is sandwiched by the band geometry: at least the main
    /// diagonal, at most the full Sakoe–Chiba area N·(2w+1).
    #[test]
    fn metered_cdtw_cells_stay_within_band_area(
        (x, y) in equal_pair(64),
        band in 0usize..12,
    ) {
        let mut meter = WorkMeter::new();
        let metered = cdtw_distance_metered(&x, &y, band, SquaredCost, &mut meter).unwrap();
        let plain = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
        prop_assert_eq!(metered, plain);
        let n = x.len() as u64;
        prop_assert!(meter.cells >= n, "at least the diagonal: {} < {n}", meter.cells);
        prop_assert!(
            meter.cells <= n * (2 * band as u64 + 1),
            "cells {} exceed band area {}",
            meter.cells,
            n * (2 * band as u64 + 1)
        );
        // The non-abandoning kernel evaluates its whole window.
        prop_assert_eq!(meter.cells, meter.window_cells);
    }

    /// Tuned FastDTW: metering changes nothing about the answer, and the
    /// per-level decomposition re-sums to the meter's totals.
    #[test]
    fn metered_fastdtw_levels_decompose_totals(
        (x, y) in equal_pair(48),
        radius in 0usize..6,
    ) {
        let plain = fastdtw_distance(&x, &y, radius, SquaredCost).unwrap();
        let mut meter = WorkMeter::new();
        let (metered, _, _) = fastdtw_metered(&x, &y, radius, SquaredCost, &mut meter).unwrap();
        prop_assert_eq!(metered, plain);
        let level_sum: u64 = meter.levels.iter().map(|l| l.window_cells).sum();
        prop_assert_eq!(level_sum, meter.window_cells);
        prop_assert_eq!(meter.cells, meter.window_cells);
    }

    /// The cascade's prune tallies are a partition: every candidate it
    /// processes is disposed of at exactly one stage, so the five stage
    /// counters sum to the number of candidates — and they agree with the
    /// cascade's own `CascadeStats`.
    #[test]
    fn prune_tallies_partition_candidates(
        series in pool(48, 8),
        band in 0usize..6,
    ) {
        let mut cascade = Cascade::new(&series[0], band).unwrap();
        let mut meter = WorkMeter::new();
        let mut bsf = f64::INFINITY;
        let mut processed = 0u64;
        for c in &series[1..] {
            let out = cascade.evaluate_metered(c, bsf, &mut meter).unwrap();
            if let Some(d) = out.exact_distance() {
                bsf = bsf.min(d);
            }
            processed += 1;
        }
        let stage_sum = meter.pruned_kim
            + meter.pruned_keogh_qc
            + meter.pruned_keogh_cq
            + meter.dtw_abandoned
            + meter.dtw_exact;
        prop_assert_eq!(stage_sum, processed);
        prop_assert_eq!(meter.candidates(), processed);
        prop_assert_eq!(cascade.stats().total(), processed);
        prop_assert_eq!(meter.pruned_kim, cascade.stats().pruned_kim);
        prop_assert_eq!(meter.dtw_exact, cascade.stats().dtw_exact);
        // Early-abandoning DP only ever evaluates a subset of its window.
        prop_assert!(meter.cells <= meter.window_cells);
    }
}
