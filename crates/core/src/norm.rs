//! Z-normalization, batch and just-in-time.
//!
//! Comparing time series under DTW without z-normalizing each (sub)sequence
//! is "a sin" in the UCR-suite school: offset and amplitude differences
//! dominate shape otherwise. The batch form is used on whole series; the
//! [`RollingStats`] form supports *just-in-time normalization* in
//! subsequence search, where each sliding window is normalized on the fly
//! from running sums — one of the cDTW-only optimizations the paper credits
//! for the trillion-point search result it cites.

use crate::error::{check_finite, check_nonempty, Error, Result};

/// Mean and population standard deviation of a slice.
pub fn mean_std(s: &[f64]) -> Result<(f64, f64)> {
    check_nonempty("s", s)?;
    check_finite("s", s)?;
    let n = s.len() as f64;
    let mean = s.iter().sum::<f64>() / n;
    let var = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Ok((mean, var.max(0.0).sqrt()))
}

/// Z-normalizes into a fresh vector: zero mean, unit (population) variance.
///
/// A constant series has zero variance; it is mapped to all-zeros (the
/// UCR-suite convention) rather than dividing by zero.
pub fn znorm(s: &[f64]) -> Result<Vec<f64>> {
    let mut out = s.to_vec();
    znorm_in_place(&mut out)?;
    Ok(out)
}

/// Z-normalizes a slice in place. See [`znorm`].
pub fn znorm_in_place(s: &mut [f64]) -> Result<()> {
    let (mean, std) = mean_std(s)?;
    if std <= f64::EPSILON {
        s.iter_mut().for_each(|v| *v = 0.0);
        return Ok(());
    }
    let inv = 1.0 / std;
    s.iter_mut().for_each(|v| *v = (*v - mean) * inv);
    Ok(())
}

/// Running sums over a sliding window, supporting O(1) mean/std per step —
/// the "just-in-time normalization" of the UCR suite.
///
/// Feed samples with [`RollingStats::push`]; once `len() == capacity`, each
/// further push evicts the oldest sample. [`RollingStats::mean_std`] then
/// describes the current window without rescanning it.
#[derive(Debug, Clone)]
pub struct RollingStats {
    capacity: usize,
    buf: Vec<f64>,
    head: usize,
    filled: bool,
    sum: f64,
    sum_sq: f64,
}

impl RollingStats {
    /// Creates a window of the given capacity (must be ≥ 1).
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(Error::InvalidParameter {
                name: "capacity",
                reason: "rolling window must hold at least one sample".into(),
            });
        }
        Ok(RollingStats {
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            filled: false,
            sum: 0.0,
            sum_sq: 0.0,
        })
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        if self.filled {
            self.capacity
        } else {
            self.buf.len()
        }
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.filled
    }

    /// Pushes a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, v: f64) {
        if self.filled {
            let old = self.buf[self.head];
            self.sum -= old;
            self.sum_sq -= old * old;
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.capacity;
        } else {
            self.buf.push(v);
            if self.buf.len() == self.capacity {
                self.filled = true;
            }
        }
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Mean and population standard deviation of the current window.
    ///
    /// Floating cancellation in `sum_sq - sum²/n` is clamped at zero, the
    /// standard defense when using running sums.
    pub fn mean_std(&self) -> (f64, f64) {
        let n = self.len() as f64;
        if n == 0.0 {
            return (0.0, 0.0);
        }
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_of_known_series() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn znorm_produces_zero_mean_unit_std() {
        let z = znorm(&[1.0, 2.0, 3.0, 4.0, 5.0, 100.0]).unwrap();
        let (m, s) = mean_std(&z).unwrap();
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znorm_constant_series_maps_to_zeros() {
        let z = znorm(&[5.0; 7]).unwrap();
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znorm_is_shift_and_scale_invariant() {
        let base = [0.3, -1.0, 2.0, 0.7, -0.2];
        let transformed: Vec<f64> = base.iter().map(|v| v * 7.0 + 3.0).collect();
        let a = znorm(&base).unwrap();
        let b = znorm(&transformed).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn znorm_rejects_empty_and_nan() {
        assert!(znorm(&[]).is_err());
        assert!(znorm(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn rolling_matches_batch_on_every_window() {
        let data = [0.5, 1.5, -2.0, 3.0, 0.0, 1.0, -1.0, 2.5, 4.0, -0.5];
        let w = 4;
        let mut rs = RollingStats::new(w).unwrap();
        for (i, &v) in data.iter().enumerate() {
            rs.push(v);
            if i + 1 >= w {
                let window = &data[i + 1 - w..=i];
                let (bm, bs) = mean_std(window).unwrap();
                let (rm, rstd) = rs.mean_std();
                assert!((bm - rm).abs() < 1e-9, "window ending at {i}");
                assert!((bs - rstd).abs() < 1e-9, "window ending at {i}");
            }
        }
    }

    #[test]
    fn rolling_partial_window() {
        let mut rs = RollingStats::new(5).unwrap();
        rs.push(2.0);
        rs.push(4.0);
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_full());
        let (m, s) = rs.mean_std();
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn rolling_rejects_zero_capacity() {
        assert!(RollingStats::new(0).is_err());
    }

    #[test]
    fn rolling_eviction_order_is_fifo() {
        let mut rs = RollingStats::new(2).unwrap();
        rs.push(10.0);
        rs.push(0.0);
        rs.push(0.0); // evicts the 10
        let (m, s) = rs.mean_std();
        assert_eq!(m, 0.0);
        assert_eq!(s, 0.0);
    }
}
