//! Error types shared across the `tsdtw` workspace.

use std::fmt;

/// Convenience alias used by every fallible API in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the DTW kernels and their supporting machinery.
///
/// The crate deliberately avoids panicking on user input: every public entry
/// point validates its arguments and reports problems through this enum. The
/// only panics left in the crate are internal invariant violations (bugs).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// One of the input series was empty. DTW over an empty sequence is
    /// undefined (there is no warping path).
    EmptyInput {
        /// Name of the offending argument, e.g. `"x"`.
        which: &'static str,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Name of the offending parameter, e.g. `"w"`.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A pair of inputs that must have equal lengths did not.
    ///
    /// Only the lock-step measures (Euclidean distance, LB_Keogh against a
    /// fixed-length envelope) require equal lengths; the DTW family does not.
    LengthMismatch {
        /// Length of the first series.
        x_len: usize,
        /// Length of the second series.
        y_len: usize,
    },
    /// A [`SearchWindow`](crate::window::SearchWindow) was structurally
    /// invalid for dynamic programming (empty row, non-monotone bounds, or a
    /// gap that makes the end cell unreachable).
    InvalidWindow {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A warping path failed validation (boundary, monotonicity or
    /// continuity constraint).
    InvalidPath {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A non-finite value (NaN or infinity) was found in an input series.
    NonFiniteInput {
        /// Name of the offending argument.
        which: &'static str,
        /// Index of the first non-finite element.
        index: usize,
    },
    /// A worker thread of a parallel executor panicked. The executor
    /// joins every worker and converts the panic into this error
    /// instead of hanging or poisoning shared state.
    WorkerPanicked {
        /// The panic payload rendered as text, when it was a string.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyInput { which } => {
                write!(f, "input series `{which}` is empty")
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::LengthMismatch { x_len, y_len } => {
                write!(
                    f,
                    "length mismatch: x has {x_len} points, y has {y_len} \
                     (this measure requires equal lengths)"
                )
            }
            Error::InvalidWindow { reason } => {
                write!(f, "invalid search window: {reason}")
            }
            Error::InvalidPath { reason } => {
                write!(f, "invalid warping path: {reason}")
            }
            Error::NonFiniteInput { which, index } => {
                write!(
                    f,
                    "input series `{which}` contains a non-finite value at index {index}"
                )
            }
            Error::WorkerPanicked { reason } => {
                write!(f, "a parallel worker thread panicked: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Validates that a series is non-empty, returning [`Error::EmptyInput`]
/// otherwise.
pub(crate) fn check_nonempty(name: &'static str, s: &[f64]) -> Result<()> {
    if s.is_empty() {
        Err(Error::EmptyInput { which: name })
    } else {
        Ok(())
    }
}

/// Validates that every element of a series is finite.
///
/// The DP kernels use `f64::INFINITY` as an internal sentinel for
/// unreachable cells, so admitting infinities (or NaNs, which poison `min`)
/// in user data would corrupt results silently.
pub(crate) fn check_finite(name: &'static str, s: &[f64]) -> Result<()> {
    if let Some(index) = s.iter().position(|v| !v.is_finite()) {
        Err(Error::NonFiniteInput { which: name, index })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_display_names_argument() {
        let e = Error::EmptyInput { which: "x" };
        assert_eq!(e.to_string(), "input series `x` is empty");
    }

    #[test]
    fn check_nonempty_accepts_singleton() {
        assert!(check_nonempty("x", &[1.0]).is_ok());
    }

    #[test]
    fn check_nonempty_rejects_empty() {
        assert_eq!(
            check_nonempty("y", &[]),
            Err(Error::EmptyInput { which: "y" })
        );
    }

    #[test]
    fn check_finite_rejects_nan_and_reports_index() {
        let s = [0.0, 1.0, f64::NAN, 3.0];
        assert_eq!(
            check_finite("x", &s),
            Err(Error::NonFiniteInput {
                which: "x",
                index: 2
            })
        );
    }

    #[test]
    fn check_finite_rejects_infinity() {
        let s = [0.0, f64::INFINITY];
        assert_eq!(
            check_finite("q", &s),
            Err(Error::NonFiniteInput {
                which: "q",
                index: 1
            })
        );
    }

    #[test]
    fn check_finite_accepts_ordinary_data() {
        let s = [0.0, -1.5, 1e300, f64::MIN_POSITIVE];
        assert!(check_finite("x", &s).is_ok());
    }

    #[test]
    fn worker_panicked_display_carries_reason() {
        let e = Error::WorkerPanicked {
            reason: "index out of bounds".into(),
        };
        assert_eq!(
            e.to_string(),
            "a parallel worker thread panicked: index out of bounds"
        );
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = Error::LengthMismatch { x_len: 3, y_len: 4 };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
