//! Piecewise Aggregate Approximation (PAA) and the 2:1 coarsening FastDTW
//! is built on.
//!
//! PAA replaces a series by the means of consecutive segments. FastDTW's
//! multilevel scheme repeatedly halves resolution with segment size 2
//! ([`halve`]); the adversarial construction of the paper's Appendix A uses
//! the general 8:1 form ([`paa`]) to exhibit a pair of series whose
//! coarsened shape warps in the *opposite direction* to the raw data.

use crate::error::{check_nonempty, Error, Result};

/// General PAA: averages `src` over `n_segments` equal-width segments.
///
/// When `src.len()` is not divisible by `n_segments`, fractional boundaries
/// are handled by weighting each sample by its overlap with the segment
/// (the standard "continuous" PAA), so every sample contributes exactly
/// once and segment means are exact for constant series.
pub fn paa(src: &[f64], n_segments: usize) -> Result<Vec<f64>> {
    check_nonempty("src", src)?;
    if n_segments == 0 {
        return Err(Error::InvalidParameter {
            name: "n_segments",
            reason: "must be at least 1".into(),
        });
    }
    if n_segments > src.len() {
        return Err(Error::InvalidParameter {
            name: "n_segments",
            reason: format!(
                "{} segments requested for {} samples",
                n_segments,
                src.len()
            ),
        });
    }
    let n = src.len() as f64;
    let seg_w = n / n_segments as f64;
    let mut out = Vec::with_capacity(n_segments);
    for s in 0..n_segments {
        let start = s as f64 * seg_w;
        let end = start + seg_w;
        let mut acc = 0.0;
        let first = start.floor() as usize;
        let last = (end.ceil() as usize).min(src.len());
        for (k, &v) in src.iter().enumerate().take(last).skip(first) {
            // Overlap of sample interval [k, k+1) with segment [start, end).
            let overlap = (end.min(k as f64 + 1.0) - start.max(k as f64)).max(0.0);
            acc += v * overlap;
        }
        out.push(acc / seg_w);
    }
    Ok(out)
}

/// FastDTW's coarsening step: pairwise means, halving the length.
///
/// Odd-length series follow Salvador & Chan's reference implementation: the
/// final unpaired sample becomes its own coarse point, so a series of
/// length `2k + 1` coarsens to length `k + 1` and no data is dropped.
pub fn halve(src: &[f64]) -> Vec<f64> {
    let _span = tsdtw_obs::span("paa_halve");
    let mut out = Vec::with_capacity(src.len().div_ceil(2));
    let mut chunks = src.chunks_exact(2);
    for pair in &mut chunks {
        out.push((pair[0] + pair[1]) * 0.5);
    }
    if let [tail] = chunks.remainder() {
        out.push(*tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halve_even_length() {
        assert_eq!(halve(&[0.0, 2.0, 4.0, 6.0]), vec![1.0, 5.0]);
    }

    #[test]
    fn halve_odd_length_keeps_tail() {
        assert_eq!(halve(&[0.0, 2.0, 5.0]), vec![1.0, 5.0]);
    }

    #[test]
    fn halve_singleton() {
        assert_eq!(halve(&[7.0]), vec![7.0]);
    }

    #[test]
    fn halve_preserves_constant_series() {
        let c = vec![3.5; 9];
        assert!(halve(&c).iter().all(|&v| v == 3.5));
    }

    #[test]
    fn paa_exact_division() {
        let s = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        assert_eq!(paa(&s, 4).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn paa_whole_series_mean() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(paa(&s, 1).unwrap(), vec![2.5]);
    }

    #[test]
    fn paa_identity_when_segments_equal_length() {
        let s = [1.0, -2.0, 3.0];
        assert_eq!(paa(&s, 3).unwrap(), s.to_vec());
    }

    #[test]
    fn paa_fractional_boundaries_conserve_mass() {
        // Total (weighted) mass must be conserved: sum(out) * seg_w == sum(src).
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let k = 3;
        let out = paa(&s, k).unwrap();
        let seg_w = s.len() as f64 / k as f64;
        let mass_out: f64 = out.iter().map(|v| v * seg_w).sum();
        let mass_in: f64 = s.iter().sum();
        assert!((mass_out - mass_in).abs() < 1e-9);
    }

    #[test]
    fn paa_constant_series_is_constant() {
        let s = vec![2.0; 10];
        for k in 1..=10 {
            assert!(paa(&s, k).unwrap().iter().all(|&v| (v - 2.0).abs() < 1e-12));
        }
    }

    #[test]
    fn paa_rejects_bad_segment_counts() {
        assert!(paa(&[1.0, 2.0], 0).is_err());
        assert!(paa(&[1.0, 2.0], 3).is_err());
        assert!(paa(&[], 1).is_err());
    }

    #[test]
    fn paa_eight_to_one_as_in_appendix_a() {
        let s: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let out = paa(&s, 8).unwrap();
        assert_eq!(out.len(), 8);
        assert!((out[0] - 3.5).abs() < 1e-12);
        assert!((out[7] - 59.5).abs() < 1e-12);
    }
}
