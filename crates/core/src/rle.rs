//! Run-length-encoded series and the exact RLE-DTW block kernel.
//!
//! The paper's core claim is that *exact* DTW, engineered to exploit
//! structure, beats its approximation. One such structure is run
//! compressibility: smart-meter state traces, dishwasher power demand
//! and similar workloads are piecewise constant, so a series of `N`
//! points collapses to `k ≪ N` runs. Froese, Jain, Rymar and Weller
//! (arXiv:1903.03003) show exact DTW can then be computed over the
//! `k × l` grid of *run pairs* instead of the `N × M` grid of points;
//! Golan, Mozes and Weimann (arXiv:2302.06252) sharpen the bound
//! further. This module implements the block decomposition:
//!
//! * [`RleSeries`] — lossless run-length encoding ([`RleSeries::encode`]
//!   merges on **bitwise** equality, so decode restores every input bit,
//!   `±0.0` and all) plus an epsilon-quantized lossy variant
//!   ([`RleSeries::encode_quantized`]).
//! * [`rle_dtw_distance`] / [`rle_dtw_distance_metered`] — exact DTW
//!   over two encoded series. Every cell inside the run-pair block
//!   `(i, j)` has the same local cost `c = cost(xᵢ, yⱼ)`, so the dense
//!   recurrence restricted to the block is a shortest-path problem whose
//!   optimum from any boundary entry is `entry + c · steps`, with
//!   `steps = max(Δrow, Δcol)` (the cheapest monotone staircase takes
//!   the diagonal as long as it can). The kernel therefore only
//!   computes each block's *bottom row and right column* — `O(p + q)`
//!   work per block via sliding-window and prefix/suffix minima instead
//!   of `O(p · q)` — for a total of `O(l·N + k·M)` against the dense
//!   kernels' `Θ(N·M)`.
//!
//! ## Exactness contract
//!
//! The block recurrence is algebraically identical to the dense DP: a
//! monotone function (`x ↦ fl(x + c)`) commutes with `min`, so the
//! dense value at a block boundary is the minimum over entries of a
//! chain of rounded additions. The kernel computes each candidate as
//! `entry + c · steps` in two rounded operations. Whenever the run
//! values (and therefore the per-block costs and their partial sums)
//! are exactly representable — integers, dyadic rationals such as
//! multiples of `0.25`, any values a quantizer emits from a small grid,
//! with magnitudes small enough that sums stay below `2^53` — both
//! computations are exact and the RLE distance is **bitwise identical**
//! to [`full`](crate::dtw::full) / [`banded`](crate::dtw::banded) DTW
//! (`tests/rle_equivalence.rs` is the differential proof, run across
//! the PR 4 kernel-equivalence case grid). On arbitrary float run
//! values the two rounding schedules may differ in the last few ulps;
//! the suite bounds that at ≤ 1e-12 relative.
//!
//! ## Auto dispatch
//!
//! [`Kernel::Auto`](crate::dtw::kernel::Kernel) consults
//! [`auto_picks_rle`]: when both series are available at a full
//! (unconstrained) window and the combined compression ratio
//! `(k + l) / (N + M)` is at most [`AUTO_THRESHOLD`], the RLE kernel
//! runs; otherwise the tiered row sweep does. The threshold is measured,
//! not guessed: the `rle` repro experiment sweeps the compression ratio
//! and the crossover against the banded sweep sits near `runs/points ≈
//! 0.1` (see DESIGN.md §15). `Kernel::Rle` forces the block kernel at
//! the same entry points regardless of ratio.

use std::collections::VecDeque;

use tsdtw_obs::Meter;

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Error, Result};

/// One run: `len` consecutive samples of the identical `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Run {
    /// The sample value every point of the run carries.
    pub value: f64,
    /// How many consecutive points the run covers (always ≥ 1).
    pub len: usize,
}

/// A run-length-encoded series: the sequence of [`Run`]s plus the
/// decoded length. Constructed only through [`encode`](Self::encode) /
/// [`encode_quantized`](Self::encode_quantized), which validate
/// finiteness, so every stored value is finite by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RleSeries {
    runs: Vec<Run>,
    len: usize,
}

/// Compression ratio (`runs / points`) at or below which
/// [`Kernel::Auto`](crate::dtw::kernel::Kernel) routes a full-window
/// distance through the RLE block kernel. Inclusive: a ratio exactly at
/// the threshold picks RLE deterministically.
///
/// The value is the measured crossover of the `rle` repro experiment
/// (compression-ratio sweep, DESIGN.md §15): at 10 % runs/points the
/// block kernel's boundary-cell work roughly matches a 10 %-band sweep,
/// and below it the block kernel wins linearly in `1/ratio`.
pub const AUTO_THRESHOLD: f64 = 0.1;

impl RleSeries {
    /// Losslessly encodes a dense series.
    ///
    /// Adjacent samples join the same run only when they are equal
    /// **bitwise** (`to_bits()`), so `decode` restores the input
    /// exactly — in particular `+0.0` and `-0.0` start separate runs
    /// even though they compare `==` numerically. Rejects empty input
    /// and non-finite values with the same errors the dense kernels
    /// use.
    pub fn encode(xs: &[f64]) -> Result<RleSeries> {
        check_nonempty("series", xs)?;
        check_finite("series", xs)?;
        let mut runs: Vec<Run> = Vec::new();
        for &x in xs {
            match runs.last_mut() {
                Some(run) if run.value.to_bits() == x.to_bits() => run.len += 1,
                _ => runs.push(Run { value: x, len: 1 }),
            }
        }
        Ok(RleSeries {
            runs,
            len: xs.len(),
        })
    }

    /// Lossy variant: a sample joins the current run while it stays
    /// within `epsilon` of the run's **first** value (the anchor, which
    /// becomes the run's stored value).
    ///
    /// Anchoring on the first value rather than a running mean keeps
    /// the encoding single-pass and deterministic; the reconstruction
    /// error is bounded by `epsilon` per point. With `epsilon = 0.0`
    /// the comparison is numeric rather than bitwise, so — unlike
    /// [`encode`](Self::encode) — `+0.0` and `-0.0` merge into one run.
    pub fn encode_quantized(xs: &[f64], epsilon: f64) -> Result<RleSeries> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(Error::InvalidParameter {
                name: "epsilon",
                reason: format!("quantization tolerance must be finite and >= 0, got {epsilon}"),
            });
        }
        check_nonempty("series", xs)?;
        check_finite("series", xs)?;
        let mut runs: Vec<Run> = Vec::new();
        for &x in xs {
            match runs.last_mut() {
                Some(run) if (x - run.value).abs() <= epsilon => run.len += 1,
                _ => runs.push(Run { value: x, len: 1 }),
            }
        }
        Ok(RleSeries {
            runs,
            len: xs.len(),
        })
    }

    /// Expands the encoding back to a dense series. For
    /// [`encode`](Self::encode) this is a bitwise round-trip; for
    /// [`encode_quantized`](Self::encode_quantized) each point lands on
    /// its run's anchor value.
    pub fn decode(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for run in &self.runs {
            out.resize(out.len() + run.len, run.value);
        }
        out
    }

    /// Decoded length in points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the series decodes to zero points (never true for a
    /// constructed series — `encode` rejects empty input — but the
    /// conventional pair to [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (`k` in the complexity bounds).
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// The runs themselves.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// `runs / points` — 1.0 means incompressible, small means long
    /// constant stretches.
    pub fn compression_ratio(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.runs.len() as f64 / self.len as f64
        }
    }
}

/// Number of runs a lossless encoding of `xs` would have, in one O(N)
/// pass without allocating (what the `Auto` dispatch probe calls).
/// Bitwise adjacency, matching [`RleSeries::encode`]; 0 for empty.
pub fn count_runs(xs: &[f64]) -> usize {
    if xs.is_empty() {
        return 0;
    }
    1 + xs
        .windows(2)
        .filter(|w| w[0].to_bits() != w[1].to_bits())
        .count()
}

/// Combined compression ratio `(runs_x + runs_y) / (len_x + len_y)` of
/// a pair, the quantity [`Kernel::Auto`](crate::dtw::kernel::Kernel)
/// thresholds. 1.0 for an empty pair (so dispatch never picks RLE and
/// the dense kernels report their usual empty-input error).
pub fn auto_ratio(x: &[f64], y: &[f64]) -> f64 {
    let points = x.len() + y.len();
    if points == 0 {
        1.0
    } else {
        (count_runs(x) + count_runs(y)) as f64 / points as f64
    }
}

/// Whether `Kernel::Auto` routes this full-window pair through the RLE
/// block kernel: [`auto_ratio`] at most [`AUTO_THRESHOLD`] (inclusive,
/// so exactly-at-threshold inputs pick RLE deterministically).
pub fn auto_picks_rle(x: &[f64], y: &[f64]) -> bool {
    auto_picks_rle_metered(x, y, &mut tsdtw_obs::NoMeter)
}

/// [`auto_picks_rle`] with the probe itself recorded
/// ([`Meter::rle_probe`]): the dispatch points call this so the O(N)
/// compressibility pass is visible in the work counters — a banded call
/// whose band never covers the full window must record zero probes.
pub fn auto_picks_rle_metered<M: Meter>(x: &[f64], y: &[f64], meter: &mut M) -> bool {
    meter.rle_probe();
    auto_ratio(x, y) <= AUTO_THRESHOLD
}

/// Exact DTW distance between two encoded series (un-metered).
pub fn rle_dtw_distance<C: CostFn>(x: &RleSeries, y: &RleSeries, cost: C) -> Result<f64> {
    rle_dtw_distance_metered(x, y, cost, &mut tsdtw_obs::NoMeter)
}

/// Exact DTW distance between two encoded series, recording
/// [`Meter::rle_encoded`] / [`Meter::rle_block`] work counters.
pub fn rle_dtw_distance_metered<C: CostFn, M: Meter>(
    x: &RleSeries,
    y: &RleSeries,
    cost: C,
    mut meter: M,
) -> Result<f64> {
    if x.is_empty() {
        return Err(Error::EmptyInput { which: "x" });
    }
    if y.is_empty() {
        return Err(Error::EmptyInput { which: "y" });
    }
    let _span = tsdtw_obs::span("dtw_rle");
    meter.rle_encoded(x.n_runs() as u64);
    meter.rle_encoded(y.n_runs() as u64);
    let acc = rle_accumulated(x.runs(), y.runs(), cost, &mut meter);
    Ok(cost.finish(acc))
}

/// Convenience entry for dense callers (the `Kernel::Rle` / `Auto`
/// dispatch points): validates, encodes both sides and runs the block
/// kernel.
pub fn dtw_distance_rle<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    cost: C,
    meter: M,
) -> Result<f64> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    let (xr, yr) = (encode_checked("x", x)?, encode_checked("y", y)?);
    rle_dtw_distance_metered(&xr, &yr, cost, meter)
}

/// Encode with the argument name preserved in any error (encode's own
/// errors say `"series"`; the distance entry points name `x`/`y` like
/// the dense kernels do).
fn encode_checked(which: &'static str, xs: &[f64]) -> Result<RleSeries> {
    RleSeries::encode(xs).map_err(|e| match e {
        Error::EmptyInput { .. } => Error::EmptyInput { which },
        Error::NonFiniteInput { index, .. } => Error::NonFiniteInput { which, index },
        other => other,
    })
}

/// The block-decomposition DP over run pairs. Returns the accumulated
/// (un-`finish`ed) cost at the bottom-right dense cell.
///
/// State between block rows is the dense bottom boundary `top[c]`
/// (`c` in dense columns); within a block row, `left`/`right` carry the
/// right column of the previous block. The virtual dense row/column
/// `-1` is `+∞` everywhere except the origin corner `v(-1,-1) = 0`.
fn rle_accumulated<C: CostFn, M: Meter>(xr: &[Run], yr: &[Run], cost: C, meter: &mut M) -> f64 {
    let m: usize = yr.iter().map(|r| r.len).sum();
    let max_p = xr.iter().map(|r| r.len).max().expect("non-empty");
    let max_q = yr.iter().map(|r| r.len).max().expect("non-empty");

    // Dense bottom boundary of the previous block row.
    let mut top = vec![f64::INFINITY; m];
    let mut scratch = BlockScratch::new(max_p, max_q);
    let mut left = vec![f64::INFINITY; max_p];
    let mut right = vec![f64::INFINITY; max_p];
    let mut bottom = vec![f64::INFINITY; max_q];
    meter.dp_buffer_bytes(
        ((m + 2 * max_p + max_q + scratch.capacity()) * std::mem::size_of::<f64>()) as u64,
    );

    let mut first_row = true;
    for rx in xr {
        let p = rx.len;
        left[..p].fill(f64::INFINITY);
        // T[0] of the leftmost block is v(r0-1, -1): the origin corner 0
        // on the first block row, the +∞ border below it.
        let mut corner = if first_row { 0.0 } else { f64::INFINITY };
        first_row = false;
        let mut c0 = 0usize;
        for ry in yr {
            let q = ry.len;
            let c = cost.cost(rx.value, ry.value);
            scratch.t[0] = corner;
            scratch.t[1..=q].copy_from_slice(&top[c0..c0 + q]);
            // The next block's corner is v(r0-1, c0+q-1) — the value
            // `top` holds *before* this block's bottom row overwrites it.
            corner = top[c0 + q - 1];
            solve_block(
                c,
                p,
                q,
                &left[..p],
                &mut bottom[..q],
                &mut right[..p],
                &mut scratch,
            );
            meter.rle_block((p + q) as u64);
            top[c0..c0 + q].copy_from_slice(&bottom[..q]);
            std::mem::swap(&mut left, &mut right);
            c0 += q;
        }
    }
    top[m - 1]
}

/// Reusable per-block scratch: the top boundary (with corner) and the
/// prefix/suffix minima plus the two sliding-window deques.
struct BlockScratch {
    /// `t[d] = v(r0-1, c0-1+d)`, `d ∈ 0..=q` (`t[0]` is the corner).
    t: Vec<f64>,
    /// Suffix minima of `l`: `sufl[e] = min(l[e..])`, `sufl[p] = +∞`.
    sufl: Vec<f64>,
    /// Prefix minima of `l[e] + c·(p-1-e)` (left entries whose cheapest
    /// staircase is row-dominated: `steps = p-1-e`, independent of the
    /// target column).
    prefl: Vec<f64>,
    /// Suffix minima of `t`: `suft[d] = min(t[d..])`, `suft[q+1] = +∞`.
    suft: Vec<f64>,
    /// Prefix minima of `t[d] + c·(q-d)` (top entries whose cheapest
    /// staircase is column-dominated).
    preft: Vec<f64>,
    /// Monotone deque for the diagonal-dominated sliding-window minima.
    deque: VecDeque<usize>,
}

impl BlockScratch {
    fn new(max_p: usize, max_q: usize) -> BlockScratch {
        BlockScratch {
            t: vec![f64::INFINITY; max_q + 1],
            sufl: vec![f64::INFINITY; max_p + 1],
            prefl: vec![f64::INFINITY; max_p],
            suft: vec![f64::INFINITY; max_q + 2],
            preft: vec![f64::INFINITY; max_q + 1],
            deque: VecDeque::with_capacity(max_p.max(max_q) + 2),
        }
    }

    /// Total scratch capacity in f64 slots (for the peak-bytes meter).
    fn capacity(&self) -> usize {
        self.t.len() + self.sufl.len() + self.prefl.len() + self.suft.len() + self.preft.len()
    }
}

/// Solves one `p × q` block of constant cost `c`.
///
/// Inputs: `scratch.t[0..=q]` (dense row above, corner first) and
/// `l[0..p]` (dense column to the left). Outputs: `b[0..q]` (the
/// block's bottom row) and `r[0..p]` (its right column; `r[p-1]` is
/// assigned from `b[q-1]`, the shared corner).
///
/// Every candidate is `entry + c · steps` with
/// `steps = max(Δrow, Δcol)`; the minimum over entries splits into
/// four classes per output cell, each O(1) via a precomputed or
/// incrementally-maintained minimum:
///
/// * diagonal-dominated top entries (`steps = p` for `b`): sliding
///   window minimum over `t` (monotone deque);
/// * column-dominated top entries (`steps = d+1-d' > p`): a running
///   minimum that absorbs `+c` per column — exactly the dense DP's
///   fold, so it commutes with the window class bit-for-bit on
///   exactly-representable inputs;
/// * row-dominated left entries (`steps = d+1`): suffix minima of `l`;
/// * column-dominated left entries (`steps = p-1-e`): prefix minima of
///   `l[e] + c·(p-1-e)`.
///
/// (and symmetrically for `r`).
fn solve_block(
    c: f64,
    p: usize,
    q: usize,
    l: &[f64],
    b: &mut [f64],
    r: &mut [f64],
    scratch: &mut BlockScratch,
) {
    let BlockScratch {
        t,
        sufl,
        prefl,
        suft,
        preft,
        deque,
    } = scratch;
    let t = &t[..=q];
    let pf = p as f64;
    let qf = q as f64;

    // Left-entry minima for the bottom row.
    sufl[p] = f64::INFINITY;
    for e in (0..p).rev() {
        sufl[e] = l[e].min(sufl[e + 1]);
    }
    let mut acc = f64::INFINITY;
    for e in 0..p {
        acc = acc.min(l[e] + c * (p - 1 - e) as f64);
        prefl[e] = acc;
    }

    // ---- bottom row ----
    deque.clear();
    let push = |deque: &mut VecDeque<usize>, idx: usize| {
        while let Some(&back) = deque.back() {
            if t[back] >= t[idx] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(idx);
    };
    push(deque, 0);
    let mut ttail = f64::INFINITY;
    for d in 0..q {
        // Window [max(0, d+1-p), d+1] over t: admit the new right end,
        // retire entries that fell off the left end.
        push(deque, d + 1);
        let lo = (d + 1).saturating_sub(p);
        while *deque.front().expect("window never empty") < lo {
            deque.pop_front();
        }
        let wmin = t[*deque.front().expect("window never empty")];
        let mut best = wmin + c * pf;
        // Top entries too far left for the diagonal: they pay one more
        // +c per column, entering at steps = p+1.
        if d >= p {
            ttail = (ttail + c).min(t[d - p] + c * (pf + 1.0));
            best = best.min(ttail);
        }
        // Left entries: row-dominated (steps = d+1) ...
        let e0 = p.saturating_sub(d + 2);
        best = best.min(sufl[e0] + c * (d + 1) as f64);
        // ... and column-dominated (steps = p-1-e, needs e <= p-d-3).
        if p >= d + 3 {
            best = best.min(prefl[p - d - 3]);
        }
        b[d] = best;
    }

    // ---- right column (r[p-1] is the shared corner) ----
    suft[q + 1] = f64::INFINITY;
    for d in (0..=q).rev() {
        suft[d] = t[d].min(suft[d + 1]);
    }
    let mut acc = f64::INFINITY;
    for d in 0..=q {
        acc = acc.min(t[d] + c * (q - d) as f64);
        preft[d] = acc;
    }
    deque.clear();
    let lpush = |deque: &mut VecDeque<usize>, idx: usize| {
        while let Some(&back) = deque.back() {
            if l[back] >= l[idx] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(idx);
    };
    let mut ltail = f64::INFINITY;
    for e in 0..p.saturating_sub(1) {
        lpush(deque, e);
        let lo = e.saturating_sub(q);
        while *deque.front().expect("window never empty") < lo {
            deque.pop_front();
        }
        let lwmin = l[*deque.front().expect("window never empty")];
        // Top entries, row-dominated (steps = e+1).
        let mut best = suft[q.saturating_sub(e + 1)] + c * (e + 1) as f64;
        // Top entries, column-dominated (steps = q-d', needs d' <= q-e-2).
        if q >= e + 2 {
            best = best.min(preft[q - e - 2]);
        }
        // Left entries, diagonal-dominated (steps = q).
        best = best.min(lwmin + c * qf);
        // Left entries too far up for the diagonal.
        if e > q {
            ltail = (ltail + c).min(l[e - q - 1] + c * (qf + 1.0));
            best = best.min(ltail);
        }
        r[e] = best;
    }
    r[p - 1] = b[q - 1];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AbsoluteCost, SquaredCost};
    use crate::dtw::full::dtw_distance;
    use tsdtw_obs::WorkMeter;

    fn bits(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn encode_round_trips_bitwise() {
        let xs = vec![1.0, 1.0, 2.5, 2.5, 2.5, -0.0, 0.0, 0.0, 7.0];
        let e = RleSeries::encode(&xs).unwrap();
        // -0.0 and +0.0 are bitwise-distinct: separate runs.
        assert_eq!(e.n_runs(), 5);
        assert_eq!(e.len(), xs.len());
        let back = e.decode();
        assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(bits(*a), bits(*b));
        }
    }

    #[test]
    fn encode_rejects_empty_and_non_finite() {
        assert!(matches!(
            RleSeries::encode(&[]),
            Err(Error::EmptyInput { .. })
        ));
        assert!(matches!(
            RleSeries::encode(&[1.0, f64::NAN]),
            Err(Error::NonFiniteInput { index: 1, .. })
        ));
        assert!(matches!(
            RleSeries::encode(&[f64::INFINITY]),
            Err(Error::NonFiniteInput { index: 0, .. })
        ));
    }

    #[test]
    fn quantized_encode_anchors_on_first_value() {
        let xs = vec![1.0, 1.2, 1.4, 2.0, 2.3];
        let e = RleSeries::encode_quantized(&xs, 0.5).unwrap();
        // 1.0 anchors [1.0, 1.2, 1.4]; 2.0 anchors [2.0, 2.3].
        assert_eq!(e.n_runs(), 2);
        assert_eq!(e.decode(), vec![1.0, 1.0, 1.0, 2.0, 2.0]);
        // epsilon = 0 merges numerically equal values: ±0.0 join.
        let zeros = RleSeries::encode_quantized(&[0.0, -0.0], 0.0).unwrap();
        assert_eq!(zeros.n_runs(), 1);
        // Bad epsilon is rejected.
        assert!(RleSeries::encode_quantized(&xs, -1.0).is_err());
        assert!(RleSeries::encode_quantized(&xs, f64::NAN).is_err());
    }

    #[test]
    fn run_counting_and_ratios() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[3.0]), 1);
        assert_eq!(count_runs(&[3.0, 3.0, 1.0]), 2);
        let xs = vec![5.0; 40];
        let e = RleSeries::encode(&xs).unwrap();
        assert_eq!(e.compression_ratio(), 1.0 / 40.0);
        assert_eq!(auto_ratio(&xs, &xs), 2.0 / 80.0);
        assert!(auto_picks_rle(&xs, &xs));
        let distinct: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert_eq!(auto_ratio(&distinct, &distinct), 1.0);
        assert!(!auto_picks_rle(&distinct, &distinct));
    }

    #[test]
    fn threshold_is_inclusive() {
        // 4 + 4 runs over 40 + 40 points: ratio exactly 0.1.
        let mut xs = Vec::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            xs.extend(std::iter::repeat_n(v, 10));
        }
        assert_eq!(auto_ratio(&xs, &xs), AUTO_THRESHOLD);
        assert!(auto_picks_rle(&xs, &xs));
    }

    /// Dense reference DP (guarded textbook recurrence) over decoded
    /// series, for differential checks independent of the sweep kernels.
    fn naive_dtw<C: CostFn>(x: &[f64], y: &[f64], cost: C) -> f64 {
        let (n, m) = (x.len(), y.len());
        let mut prev = vec![f64::INFINITY; m + 1];
        let mut cur = vec![f64::INFINITY; m + 1];
        prev[0] = 0.0;
        for &xi in x.iter().take(n) {
            cur[0] = f64::INFINITY;
            for j in 0..m {
                let c = cost.cost(xi, y[j]);
                cur[j + 1] = c + prev[j].min(prev[j + 1]).min(cur[j]);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        cost.finish(prev[m])
    }

    /// Deterministic piecewise-constant series over dyadic levels.
    fn state_trace(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::with_capacity(n);
        let mut level = (next() % 8) as f64 * 0.25;
        while out.len() < n {
            let run = 1 + (next() % 9) as usize;
            for _ in 0..run.min(n - out.len()) {
                out.push(level);
            }
            level = (next() % 8) as f64 * 0.25;
        }
        out
    }

    #[test]
    fn block_kernel_matches_dense_bitwise_on_dyadic_runs() {
        for seed in 1..24u64 {
            let n = 16 + (seed as usize * 7) % 70;
            let m = 16 + (seed as usize * 11) % 70;
            let x = state_trace(seed, n);
            let y = state_trace(seed.wrapping_add(1000), m);
            let xr = RleSeries::encode(&x).unwrap();
            let yr = RleSeries::encode(&y).unwrap();
            for (label, rle, dense) in [
                (
                    "squared",
                    rle_dtw_distance(&xr, &yr, SquaredCost).unwrap(),
                    naive_dtw(&x, &y, SquaredCost),
                ),
                (
                    "absolute",
                    rle_dtw_distance(&xr, &yr, AbsoluteCost).unwrap(),
                    naive_dtw(&x, &y, AbsoluteCost),
                ),
            ] {
                assert_eq!(
                    bits(rle),
                    bits(dense),
                    "seed {seed} ({label}): rle {rle} vs dense {dense}"
                );
            }
        }
    }

    #[test]
    fn all_distinct_series_still_match_dense_bitwise() {
        // k == N: every block is 1×1 and the decomposition degenerates
        // to the dense DP (with integer values, so steps arithmetic is
        // exact).
        let x: Vec<f64> = (0..30).map(|i| ((i * 7) % 13) as f64).collect();
        let y: Vec<f64> = (0..25).map(|i| ((i * 5) % 11) as f64).collect();
        let xr = RleSeries::encode(&x).unwrap();
        let yr = RleSeries::encode(&y).unwrap();
        assert_eq!(xr.n_runs(), 30);
        let d = rle_dtw_distance(&xr, &yr, SquaredCost).unwrap();
        assert_eq!(bits(d), bits(naive_dtw(&x, &y, SquaredCost)));
        assert_eq!(bits(d), bits(dtw_distance(&x, &y, SquaredCost).unwrap()));
    }

    #[test]
    fn single_run_pair_is_max_length_times_cost() {
        let x = vec![2.0; 13];
        let y = vec![5.0; 7];
        let xr = RleSeries::encode(&x).unwrap();
        let yr = RleSeries::encode(&y).unwrap();
        let d = rle_dtw_distance(&xr, &yr, SquaredCost).unwrap();
        assert_eq!(d, 9.0 * 13.0);
        assert_eq!(bits(d), bits(naive_dtw(&x, &y, SquaredCost)));
    }

    #[test]
    fn meter_records_runs_blocks_and_boundary_cells() {
        let x = state_trace(5, 64);
        let y = state_trace(6, 64);
        let xr = RleSeries::encode(&x).unwrap();
        let yr = RleSeries::encode(&y).unwrap();
        let mut m = WorkMeter::new();
        rle_dtw_distance_metered(&xr, &yr, SquaredCost, &mut m).unwrap();
        let (k, l) = (xr.n_runs() as u64, yr.n_runs() as u64);
        assert_eq!(m.rle_runs, k + l);
        assert_eq!(m.rle_blocks, k * l);
        // Each block contributes p + q boundary cells: summing over the
        // grid gives l·N + k·M.
        assert_eq!(m.rle_boundary_cells, l * 64 + k * 64);
        assert!(m.dp_peak_bytes > 0);
        // The dense cell counters stay untouched.
        assert_eq!(m.cells, 0);
        assert_eq!(m.window_cells, 0);
    }

    #[test]
    fn empty_sides_error_like_the_dense_kernels() {
        let ok = RleSeries::encode(&[1.0]).unwrap();
        let d = dtw_distance_rle(&[], &[1.0], SquaredCost, tsdtw_obs::NoMeter);
        assert!(matches!(d, Err(Error::EmptyInput { which: "x" })));
        let d = dtw_distance_rle(&[1.0], &[f64::NAN], SquaredCost, tsdtw_obs::NoMeter);
        assert!(matches!(
            d,
            Err(Error::NonFiniteInput {
                which: "y",
                index: 0
            })
        ));
        assert!(rle_dtw_distance(&ok, &ok, SquaredCost).is_ok());
    }
}
