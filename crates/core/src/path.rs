//! Warping paths: the alignment a DTW computation discovers.
//!
//! A warping path for series of lengths `n` and `m` is a sequence of matrix
//! cells `(i, j)` satisfying the three classic constraints:
//!
//! 1. **boundary** — it starts at `(0, 0)` and ends at `(n-1, m-1)`;
//! 2. **monotonicity** — `i` and `j` never decrease;
//! 3. **continuity** — each step moves by at most one in each coordinate,
//!    and by at least one overall (no repeated cells).
//!
//! [`WarpingPath`] enforces these invariants at construction, so every path
//! handed out by the DP kernels is valid by type.

use crate::cost::CostFn;
use crate::error::{Error, Result};

/// A validated DTW warping path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpingPath {
    cells: Vec<(usize, usize)>,
}

impl WarpingPath {
    /// Validates and wraps a sequence of cells as a warping path.
    ///
    /// The boundary check is relative to the path itself (first cell must be
    /// `(0,0)`; the last cell defines `(n-1, m-1)`); use
    /// [`WarpingPath::validate_for`] to additionally pin the path to specific
    /// series lengths.
    pub fn new(cells: Vec<(usize, usize)>) -> Result<Self> {
        if cells.is_empty() {
            return Err(Error::InvalidPath {
                reason: "path is empty".into(),
            });
        }
        if cells[0] != (0, 0) {
            return Err(Error::InvalidPath {
                reason: format!("path starts at {:?}, not (0, 0)", cells[0]),
            });
        }
        for k in 1..cells.len() {
            let (pi, pj) = cells[k - 1];
            let (ci, cj) = cells[k];
            if ci < pi || cj < pj {
                return Err(Error::InvalidPath {
                    reason: format!("non-monotone step {:?} -> {:?}", cells[k - 1], cells[k]),
                });
            }
            let di = ci - pi;
            let dj = cj - pj;
            if di > 1 || dj > 1 {
                return Err(Error::InvalidPath {
                    reason: format!("discontinuous step {:?} -> {:?}", cells[k - 1], cells[k]),
                });
            }
            if di == 0 && dj == 0 {
                return Err(Error::InvalidPath {
                    reason: format!("repeated cell {:?} at position {k}", cells[k]),
                });
            }
        }
        Ok(WarpingPath { cells })
    }

    /// Checks that this path aligns series of exactly the given lengths.
    pub fn validate_for(&self, x_len: usize, y_len: usize) -> Result<()> {
        let &(li, lj) = self.cells.last().expect("paths are never empty");
        if x_len == 0 || y_len == 0 {
            return Err(Error::InvalidPath {
                reason: "series of length zero".into(),
            });
        }
        if (li, lj) != (x_len - 1, y_len - 1) {
            return Err(Error::InvalidPath {
                reason: format!(
                    "path ends at ({li}, {lj}) but series lengths are ({x_len}, {y_len})"
                ),
            });
        }
        Ok(())
    }

    /// The path cells in order from `(0,0)`.
    #[inline]
    pub fn cells(&self) -> &[(usize, usize)] {
        &self.cells
    }

    /// Number of cells on the path. Always in `[max(n,m), n+m-1]`.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Paths are never empty; provided for clippy-friendliness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Recomputes the accumulated cost of this path over concrete series.
    ///
    /// Used in tests to verify that the DP's reported distance equals the
    /// replayed cost of the path it returns, and by FastDTW's evaluation of
    /// projected paths.
    pub fn replay_cost<C: CostFn>(&self, x: &[f64], y: &[f64], cost: C) -> Result<f64> {
        self.validate_for(x.len(), y.len())?;
        let acc: f64 = self.cells.iter().map(|&(i, j)| cost.cost(x[i], y[j])).sum();
        Ok(cost.finish(acc))
    }

    /// Maximum absolute deviation `|i - j|` of the path from the main
    /// diagonal, in cells. For equal-length series this is the smallest
    /// Sakoe–Chiba radius under which this exact path remains admissible —
    /// the paper's notion of the *natural* warping amount `W` (as cells;
    /// divide by `N` for the percentage form the paper uses).
    pub fn max_diagonal_deviation(&self) -> usize {
        self.cells
            .iter()
            .map(|&(i, j)| i.abs_diff(j))
            .max()
            .unwrap_or(0)
    }

    /// For each row `i`, the inclusive range of columns the path visits.
    /// Helper for window construction and plotting.
    pub fn row_ranges(&self, n_rows: usize) -> Vec<(usize, usize)> {
        let mut ranges = vec![(usize::MAX, 0usize); n_rows];
        for &(i, j) in &self.cells {
            if i < n_rows {
                ranges[i].0 = ranges[i].0.min(j);
                ranges[i].1 = ranges[i].1.max(j);
            }
        }
        ranges
    }
}

/// Step directions recorded by DP kernels for traceback, packed as one byte
/// per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Direction {
    /// Came from `(i-1, j-1)`.
    Diagonal = 0,
    /// Came from `(i-1, j)`.
    Up = 1,
    /// Came from `(i, j-1)`.
    Left = 2,
    /// Cell was never reached (outside the window).
    Unreached = 3,
}

impl Direction {
    /// Decodes the byte representation written by the DP kernels.
    #[inline]
    pub fn from_u8(b: u8) -> Direction {
        match b {
            0 => Direction::Diagonal,
            1 => Direction::Up,
            2 => Direction::Left,
            _ => Direction::Unreached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;

    #[test]
    fn diagonal_path_is_valid() {
        let p = WarpingPath::new(vec![(0, 0), (1, 1), (2, 2)]).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.validate_for(3, 3).is_ok());
        assert_eq!(p.max_diagonal_deviation(), 0);
    }

    #[test]
    fn rejects_wrong_start() {
        assert!(WarpingPath::new(vec![(1, 0), (2, 1)]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(WarpingPath::new(vec![]).is_err());
    }

    #[test]
    fn rejects_non_monotone() {
        assert!(WarpingPath::new(vec![(0, 0), (1, 1), (1, 0)]).is_err());
    }

    #[test]
    fn rejects_jump() {
        assert!(WarpingPath::new(vec![(0, 0), (2, 1)]).is_err());
    }

    #[test]
    fn rejects_repeated_cell() {
        assert!(WarpingPath::new(vec![(0, 0), (0, 0), (1, 1)]).is_err());
    }

    #[test]
    fn validate_for_checks_end_cell() {
        let p = WarpingPath::new(vec![(0, 0), (1, 1)]).unwrap();
        assert!(p.validate_for(2, 2).is_ok());
        assert!(p.validate_for(3, 2).is_err());
        assert!(p.validate_for(2, 3).is_err());
    }

    #[test]
    fn replay_cost_sums_local_costs() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 4.0];
        let p = WarpingPath::new(vec![(0, 0), (1, 1), (2, 2)]).unwrap();
        let c = p.replay_cost(&x, &y, SquaredCost).unwrap();
        assert_eq!(c, 0.0 + 0.0 + 4.0);
    }

    #[test]
    fn replay_cost_rejects_length_mismatch() {
        let p = WarpingPath::new(vec![(0, 0), (1, 1)]).unwrap();
        assert!(p
            .replay_cost(&[0.0, 1.0, 2.0], &[0.0, 1.0], SquaredCost)
            .is_err());
    }

    #[test]
    fn max_deviation_measures_band_requirement() {
        // Path that wanders 2 cells off the diagonal.
        let p = WarpingPath::new(vec![(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]).unwrap();
        assert_eq!(p.max_diagonal_deviation(), 2);
    }

    #[test]
    fn row_ranges_cover_visited_columns() {
        let p = WarpingPath::new(vec![(0, 0), (0, 1), (1, 2), (2, 2)]).unwrap();
        let r = p.row_ranges(3);
        assert_eq!(r, vec![(0, 1), (2, 2), (2, 2)]);
    }

    #[test]
    fn direction_roundtrip() {
        for d in [
            Direction::Diagonal,
            Direction::Up,
            Direction::Left,
            Direction::Unreached,
        ] {
            assert_eq!(Direction::from_u8(d as u8), d);
        }
    }
}
