//! LB_Kim: constant-time-ish lower bounds from boundary points.
//!
//! Any warping path must align the first points of both series and the last
//! points of both series, so their pointwise costs always contribute. The
//! hierarchy variant adds the second and third points from each end with
//! the cheapest admissible alignment, as in the UCR suite — still O(1), but
//! noticeably tighter on z-normalized data.

use crate::error::{check_nonempty, Result};

#[inline(always)]
fn d(a: f64, b: f64) -> f64 {
    let v = a - b;
    v * v
}

/// The simplest LB_Kim: cost of aligning first-with-first plus
/// last-with-last.
pub fn lb_kim_fl(x: &[f64], y: &[f64]) -> Result<f64> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    let mut lb = d(x[0], y[0]);
    if x.len() > 1 || y.len() > 1 {
        lb += d(x[x.len() - 1], y[y.len() - 1]);
    }
    Ok(lb)
}

/// The UCR-suite hierarchical LB_Kim: boundary points plus the cheapest
/// admissible alignment of the second and third points from each end, with
/// early exit against `bsf`.
///
/// Returns a valid lower bound in all cases; once the running bound exceeds
/// `bsf` it returns immediately (the partial sum is itself a lower bound).
/// Requires series of length ≥ 6 to apply the deeper tiers; shorter series
/// fall back to [`lb_kim_fl`].
pub fn lb_kim_hierarchy(x: &[f64], y: &[f64], bsf: f64) -> Result<f64> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    let n = x.len();
    let m = y.len();
    if n < 6 || m < 6 {
        return lb_kim_fl(x, y);
    }

    // Tier 1: the corners are forced alignments.
    let mut lb = d(x[0], y[0]) + d(x[n - 1], y[m - 1]);
    if lb >= bsf {
        return Ok(lb);
    }

    // Tier 2 (front): the second point of either series must align to one
    // of {(x1,y0), (x0,y1), (x1,y1)}; charging the min is admissible.
    lb += d(x[1], y[0]).min(d(x[0], y[1])).min(d(x[1], y[1]));
    if lb >= bsf {
        return Ok(lb);
    }

    // Tier 2 (back).
    lb += d(x[n - 2], y[m - 1])
        .min(d(x[n - 1], y[m - 2]))
        .min(d(x[n - 2], y[m - 2]));
    if lb >= bsf {
        return Ok(lb);
    }

    // Tier 3 (front): third points; the admissible alignments for position
    // 2 involve indices ≤ 2 on both sides beyond those already charged.
    lb += d(x[2], y[0])
        .min(d(x[2], y[1]))
        .min(d(x[2], y[2]))
        .min(d(x[1], y[2]))
        .min(d(x[0], y[2]));
    if lb >= bsf {
        return Ok(lb);
    }

    // Tier 3 (back).
    lb += d(x[n - 3], y[m - 1])
        .min(d(x[n - 3], y[m - 2]))
        .min(d(x[n - 3], y[m - 3]))
        .min(d(x[n - 2], y[m - 3]))
        .min(d(x[n - 1], y[m - 3]));
    Ok(lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn fl_bound_is_corner_costs() {
        let x = [1.0, 5.0, 2.0];
        let y = [0.0, 9.0, 4.0];
        // (1-0)^2 + (2-4)^2 = 1 + 4.
        assert_eq!(lb_kim_fl(&x, &y).unwrap(), 5.0);
    }

    #[test]
    fn fl_singletons() {
        assert_eq!(lb_kim_fl(&[2.0], &[5.0]).unwrap(), 9.0);
    }

    #[test]
    fn both_bounds_never_exceed_full_dtw() {
        for seed in 0..30 {
            let x = rand_series(seed, 40);
            let y = rand_series(seed + 1000, 40);
            let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
            let fl = lb_kim_fl(&x, &y).unwrap();
            let h = lb_kim_hierarchy(&x, &y, f64::INFINITY).unwrap();
            assert!(
                fl <= exact + 1e-12,
                "seed {seed}: LB_Kim_FL {fl} > DTW {exact}"
            );
            assert!(
                h <= exact + 1e-12,
                "seed {seed}: LB_Kim_hier {h} > DTW {exact}"
            );
        }
    }

    #[test]
    fn hierarchy_at_least_as_tight_as_fl() {
        for seed in 0..20 {
            let x = rand_series(seed, 25);
            let y = rand_series(seed + 77, 25);
            let fl = lb_kim_fl(&x, &y).unwrap();
            let h = lb_kim_hierarchy(&x, &y, f64::INFINITY).unwrap();
            assert!(h >= fl - 1e-12);
        }
    }

    #[test]
    fn hierarchy_early_exit_returns_partial_bound() {
        let x = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let y = [10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0];
        // Corners alone contribute 200; with bsf = 1 the early exit fires.
        let lb = lb_kim_hierarchy(&x, &y, 1.0).unwrap();
        assert!(lb >= 200.0 - 1e-12);
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        assert!(lb <= exact + 1e-12);
    }

    #[test]
    fn short_series_fall_back_to_fl() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.5, 1.5, 2.5];
        assert_eq!(
            lb_kim_hierarchy(&x, &y, f64::INFINITY).unwrap(),
            lb_kim_fl(&x, &y).unwrap()
        );
    }

    #[test]
    fn zero_for_identical_series() {
        let x = rand_series(3, 30);
        assert_eq!(lb_kim_hierarchy(&x, &x, f64::INFINITY).unwrap(), 0.0);
    }
}
