//! Lower bounds for constrained DTW, and the pruning cascade built on them.
//!
//! These are the "ideas that can only be applied to cDTW" of the paper's
//! Section 3.4: cheap functions `lb(q, c) ≤ cDTW_w(q, c)` that let repeated-
//! measurement workloads (nearest neighbor search, 1-NN classification)
//! discard most candidates without running the dynamic program at all.
//! FastDTW admits no such bounds — its output is not a metric-bounded
//! quantity — which is one structural reason the exact pipeline wins by
//! orders of magnitude in realistic, repeated-use settings.
//!
//! All bounds here are stated in the **squared-difference accumulated cost**
//! domain (the crate default [`SquaredCost`](crate::cost::SquaredCost) with
//! identity finish), the same convention as the UCR suite. Inputs are
//! assumed z-normalized when that matters for tightness, but every bound is
//! mathematically valid for raw series too.
//!
//! * [`kim`] — LB_Kim: O(1)-ish bound from boundary points.
//! * [`keogh`] — LB_Keogh: O(n) bound from the band envelope, with early
//!   abandoning and reordered-early-abandoning variants.
//! * [`improved`] — LB_Improved (Lemire 2009): a tighter two-pass bound.
//! * [`cascade`] — the UCR-suite ordering of the above plus early-abandoning
//!   DTW, packaged for reuse by search and classification.

pub mod cascade;
pub mod improved;
pub mod keogh;
pub mod kim;
pub mod yi;

pub use cascade::{Cascade, CascadeOutcome, PruneStage};
pub use improved::lb_improved;
pub use keogh::{lb_keogh, lb_keogh_ea, lb_keogh_reordered, lb_keogh_with_contrib, suffix_sums};
pub use kim::{lb_kim_fl, lb_kim_hierarchy};
pub use yi::{lb_yi, lb_yi_symmetric};
