//! The UCR-suite pruning cascade: cheap bounds first, DTW last.
//!
//! For a fixed query and a stream of same-length candidates (1-NN search),
//! the cascade evaluates, in order:
//!
//! 1. **LB_Kim** (hierarchical, O(1)) — prunes gross mismatches;
//! 2. **LB_Keogh(q → c)** (reordered, early-abandoning, O(n)) — candidate
//!    against the query's envelope;
//! 3. **LB_Keogh(c → q)** — query against the candidate's envelope, built
//!    on demand (still O(n) via Lemire);
//! 4. **early-abandoning banded DTW**, seeded with the cumulative bound
//!    from stage 2.
//!
//! Each stage only runs if the previous one failed to prune. The exact same
//! distance is returned as a brute-force `cDTW_w` would return — the
//! cascade is *exact*, just faster, which is the whole point of the paper's
//! Section 3.4: the approximate algorithm cannot be accelerated this way,
//! the exact one can.

use std::sync::Arc;

use crate::cost::SquaredCost;
use crate::dtw::early_abandon::{cdtw_distance_ea_metered_buf_kernel, EaOutcome};
use crate::dtw::kernel::default_kernel;
use crate::dtw::windowed::DtwBuffer;
use crate::envelope::Envelope;
use crate::error::{Error, Result};
use tsdtw_obs::{tightness_ppb, FunnelStage, LbKind, Meter, NoMeter, StageTag};

use super::keogh::{
    lb_keogh_ea, lb_keogh_reordered, lb_keogh_with_contrib, sort_indices_by_magnitude,
    suffix_sums_into,
};
use super::kim::lb_kim_hierarchy;

/// Which stage of the cascade disposed of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneStage {
    /// Pruned by hierarchical LB_Kim.
    Kim,
    /// Pruned by LB_Keogh of the candidate against the query envelope.
    KeoghQC,
    /// Pruned by LB_Keogh of the query against the candidate envelope.
    KeoghCQ,
    /// DTW ran and abandoned early (distance provably above threshold).
    DtwAbandoned,
    /// DTW ran to completion; the exact distance was produced.
    DtwExact,
}

/// Result of pushing one candidate through the cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeOutcome {
    /// The stage that decided the candidate's fate.
    pub stage: PruneStage,
    /// For `DtwExact`, the exact `cDTW_w` distance. For pruning stages, the
    /// lower bound that exceeded the threshold.
    pub value: f64,
}

impl PruneStage {
    /// The crate-neutral tag `tsdtw-obs` uses for the same stage.
    pub fn tag(self) -> StageTag {
        match self {
            PruneStage::Kim => StageTag::Kim,
            PruneStage::KeoghQC => StageTag::KeoghQC,
            PruneStage::KeoghCQ => StageTag::KeoghCQ,
            PruneStage::DtwAbandoned => StageTag::DtwAbandoned,
            PruneStage::DtwExact => StageTag::DtwExact,
        }
    }
}

impl CascadeOutcome {
    /// The exact distance, if the cascade computed one below the threshold
    /// path (i.e. the candidate survived to a full DTW evaluation).
    pub fn exact_distance(&self) -> Option<f64> {
        match self.stage {
            PruneStage::DtwExact => Some(self.value),
            _ => None,
        }
    }
}

/// Per-stage counters, for reporting pruning power (the UCR papers report
/// exactly these percentages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Candidates pruned by LB_Kim.
    pub pruned_kim: u64,
    /// Candidates pruned by LB_Keogh (query envelope).
    pub pruned_keogh_qc: u64,
    /// Candidates pruned by LB_Keogh (candidate envelope).
    pub pruned_keogh_cq: u64,
    /// Candidates on which DTW started but abandoned.
    pub dtw_abandoned: u64,
    /// Candidates on which DTW ran to completion.
    pub dtw_exact: u64,
}

impl CascadeStats {
    /// Total candidates processed.
    pub fn total(&self) -> u64 {
        self.pruned_kim
            + self.pruned_keogh_qc
            + self.pruned_keogh_cq
            + self.dtw_abandoned
            + self.dtw_exact
    }

    /// Fraction of candidates for which the full DP ran to completion.
    pub fn dtw_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.dtw_exact as f64 / t as f64
        }
    }
}

/// A fixed query prepared for cascaded exact 1-NN under `cDTW_band`.
///
/// ```
/// use tsdtw_core::lower_bounds::Cascade;
///
/// let query: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
/// let near: Vec<f64> = query.iter().map(|v| v + 0.01).collect();
/// let far: Vec<f64> = query.iter().map(|v| v + 5.0).collect();
///
/// let mut cascade = Cascade::new(&query, 3).unwrap();
/// let mut best = f64::INFINITY;
/// for c in [&near, &far] {
///     if let Some(d) = cascade.evaluate(c, best).unwrap().exact_distance() {
///         best = best.min(d);
///     }
/// }
/// // The near twin sets a tight threshold; the far candidate is pruned
/// // without a full DP (or abandoned mid-DP) — and the result is exact.
/// assert!(best < 0.1);
/// assert_eq!(cascade.stats().total(), 2);
/// ```
#[derive(Debug)]
pub struct Cascade {
    /// The query-side preparation (query copy, envelope, magnitude sort
    /// order), shared read-only across clones so that cloning a
    /// prepared cascade for a worker thread costs one `Arc` bump and
    /// zero heap allocations (`alloc_discipline` asserts this).
    prep: Arc<CascadePrep>,
    stats: CascadeStats,
    contrib: Vec<f64>,
    cb: Vec<f64>,
    buf: DtwBuffer,
}

/// The immutable query-side state every [`Cascade`] clone shares.
#[derive(Debug)]
struct CascadePrep {
    query: Vec<f64>,
    band: usize,
    env: Envelope,
    order: Vec<usize>,
}

impl Clone for Cascade {
    /// Clones share the prepared query state and start with fresh,
    /// empty scratch (and zeroed statistics inherit-by-copy): the
    /// clone itself never touches the heap, which is what lets
    /// `nn_cascade_par` hand one prepared cascade to every worker
    /// without re-running the O(n log n) preparation per worker.
    fn clone(&self) -> Self {
        Cascade {
            prep: Arc::clone(&self.prep),
            stats: self.stats,
            contrib: Vec::new(),
            cb: Vec::new(),
            buf: DtwBuffer::new(),
        }
    }
}

impl Cascade {
    /// Prepares the cascade for `query` under a Sakoe–Chiba band of `band`
    /// cells. The query should normally be z-normalized (as should the
    /// candidates) — the bounds stay valid either way, just looser.
    pub fn new(query: &[f64], band: usize) -> Result<Self> {
        if query.is_empty() {
            return Err(Error::EmptyInput { which: "query" });
        }
        let env = Envelope::new(query, band)?;
        let order = sort_indices_by_magnitude(query);
        Ok(Cascade {
            prep: Arc::new(CascadePrep {
                query: query.to_vec(),
                band,
                env,
                order,
            }),
            stats: CascadeStats::default(),
            contrib: Vec::new(),
            cb: Vec::new(),
            buf: DtwBuffer::new(),
        })
    }

    /// The band radius in cells.
    pub fn band(&self) -> usize {
        self.prep.band
    }

    /// Accumulated pruning statistics.
    pub fn stats(&self) -> CascadeStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = CascadeStats::default();
    }

    /// Pushes one candidate through the cascade against the current
    /// best-so-far (squared-cost domain). Returns how it was disposed of.
    pub fn evaluate(&mut self, candidate: &[f64], bsf: f64) -> Result<CascadeOutcome> {
        self.evaluate_metered(candidate, bsf, &mut NoMeter)
    }

    /// [`Cascade::evaluate`] with work accounting: every lower-bound
    /// invocation (including the stage-4 contribution recompute), the
    /// on-demand candidate envelope, the disposal stage, and — through the
    /// metered DTW kernel — the cells the surviving DP actually filled.
    ///
    /// Each stage additionally reports to the meter's prune funnel: a
    /// `stage_entered` on entry, a deterministic `stage_cost` (the
    /// proxy table in `tsdtw-obs::funnel`), and — when the candidate
    /// survives to an exact DTW — one `LB / true-DTW` tightness sample
    /// per bound that ran.
    pub fn evaluate_metered<M: Meter>(
        &mut self,
        candidate: &[f64],
        bsf: f64,
        meter: &mut M,
    ) -> Result<CascadeOutcome> {
        let n = self.prep.query.len();
        if candidate.len() != n {
            return Err(Error::LengthMismatch {
                x_len: n,
                y_len: candidate.len(),
            });
        }
        let _span = tsdtw_obs::span("cascade");
        // The stage-4 cost proxy charges rows filled × band width.
        let band_width = (2 * self.prep.band + 1).min(n) as u64;

        let dispose = |stats: &mut CascadeStats, meter: &mut M, stage, value| {
            match stage {
                PruneStage::Kim => stats.pruned_kim += 1,
                PruneStage::KeoghQC => stats.pruned_keogh_qc += 1,
                PruneStage::KeoghCQ => stats.pruned_keogh_cq += 1,
                PruneStage::DtwAbandoned => stats.dtw_abandoned += 1,
                PruneStage::DtwExact => stats.dtw_exact += 1,
            }
            meter.prune(stage.tag());
            Ok(CascadeOutcome { stage, value })
        };

        // Stage 1: LB_Kim.
        let kim = {
            let _stage = tsdtw_obs::span("lb_kim");
            meter.lb(LbKind::Kim);
            meter.stage_entered(FunnelStage::Kim);
            meter.stage_cost(FunnelStage::Kim, 1);
            lb_kim_hierarchy(&self.prep.query, candidate, bsf)?
        };
        if kim >= bsf {
            return dispose(&mut self.stats, meter, PruneStage::Kim, kim);
        }

        // Stage 2: reordered early-abandoning LB_Keogh(q -> c).
        let keogh_qc = {
            let _stage = tsdtw_obs::span("lb_keogh_qc");
            meter.lb(LbKind::Keogh);
            meter.stage_entered(FunnelStage::KeoghQC);
            meter.stage_cost(FunnelStage::KeoghQC, n as u64);
            lb_keogh_reordered(candidate, &self.prep.env, &self.prep.order, bsf)?
        };
        if keogh_qc >= bsf {
            return dispose(&mut self.stats, meter, PruneStage::KeoghQC, keogh_qc);
        }

        // Stage 3: LB_Keogh(c -> q) with the candidate's own envelope.
        let keogh_cq = {
            let _stage = tsdtw_obs::span("lb_keogh_cq");
            meter.stage_entered(FunnelStage::KeoghCQ);
            meter.stage_cost(FunnelStage::KeoghCQ, 3 * n as u64);
            let cand_env = Envelope::new(candidate, self.prep.band)?;
            meter.envelope_built(candidate.len() as u64);
            meter.lb(LbKind::Keogh);
            lb_keogh_ea(&self.prep.query, &cand_env, bsf)?
        };
        if keogh_cq >= bsf {
            return dispose(&mut self.stats, meter, PruneStage::KeoghCQ, keogh_cq);
        }

        // Stage 4: early-abandoning DTW seeded with the cumulative bound
        // from the query-envelope pass (recomputed with per-index detail).
        let _stage = tsdtw_obs::span("cascade_dtw");
        meter.lb(LbKind::Keogh);
        meter.stage_entered(FunnelStage::Dtw);
        let _ = lb_keogh_with_contrib(candidate, &self.prep.env, &mut self.contrib)?;
        suffix_sums_into(&self.contrib, &mut self.cb);
        match cdtw_distance_ea_metered_buf_kernel(
            &self.prep.query,
            candidate,
            self.prep.band,
            bsf,
            Some(&self.cb),
            SquaredCost,
            &mut self.buf,
            meter,
            default_kernel(),
        )? {
            EaOutcome::Exact(d) => {
                meter.stage_cost(FunnelStage::Dtw, n as u64 * band_width);
                if meter.enabled() {
                    for (stage, lb) in [
                        (FunnelStage::Kim, kim),
                        (FunnelStage::KeoghQC, keogh_qc),
                        (FunnelStage::KeoghCQ, keogh_cq),
                    ] {
                        if let Some(ppb) = tightness_ppb(lb, d) {
                            meter.stage_tightness(stage, ppb);
                        }
                    }
                }
                dispose(&mut self.stats, meter, PruneStage::DtwExact, d)
            }
            EaOutcome::Abandoned { rows_filled } => {
                meter.stage_cost(FunnelStage::Dtw, rows_filled as u64 * band_width);
                dispose(&mut self.stats, meter, PruneStage::DtwAbandoned, bsf)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::banded::cdtw_distance;
    use crate::norm::znorm;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut v = 0.0;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v += ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                v
            })
            .collect()
    }

    /// Brute-force 1-NN against a pool, then verify the cascade finds the
    /// same nearest neighbor and distance — the exactness guarantee.
    #[test]
    fn cascade_1nn_matches_brute_force() {
        let n = 64;
        let band = 5;
        let query = znorm(&rand_series(999, n)).unwrap();
        let pool: Vec<Vec<f64>> = (0..40)
            .map(|s| znorm(&rand_series(s, n)).unwrap())
            .collect();

        // Brute force.
        let mut bf_best = f64::INFINITY;
        let mut bf_idx = usize::MAX;
        for (i, c) in pool.iter().enumerate() {
            let d = cdtw_distance(&query, c, band, SquaredCost).unwrap();
            if d < bf_best {
                bf_best = d;
                bf_idx = i;
            }
        }

        // Cascade.
        let mut cascade = Cascade::new(&query, band).unwrap();
        let mut best = f64::INFINITY;
        let mut best_idx = usize::MAX;
        for (i, c) in pool.iter().enumerate() {
            let out = cascade.evaluate(c, best).unwrap();
            if let Some(d) = out.exact_distance() {
                if d < best {
                    best = d;
                    best_idx = i;
                }
            }
        }

        assert_eq!(best_idx, bf_idx);
        assert!((best - bf_best).abs() < 1e-9);
        // The cascade must have processed everything exactly once.
        assert_eq!(cascade.stats().total(), pool.len() as u64);
    }

    #[test]
    fn cascade_prunes_most_candidates_on_separated_data() {
        let n = 128;
        let band = 6;
        let query = znorm(&rand_series(1, n)).unwrap();
        let mut cascade = Cascade::new(&query, band).unwrap();
        // Seed the threshold with the query's own distance to a near-twin.
        let twin: Vec<f64> = query.iter().map(|v| v + 0.01).collect();
        let near = cdtw_distance(&query, &twin, band, SquaredCost).unwrap();
        let mut bsf = near + 1e-9;
        let mut pruned = 0;
        for s in 0..50 {
            let c = znorm(&rand_series(s + 10_000, n)).unwrap();
            let out = cascade.evaluate(&c, bsf).unwrap();
            match out.stage {
                PruneStage::DtwExact => {
                    if out.value < bsf {
                        bsf = out.value;
                    }
                }
                _ => pruned += 1,
            }
        }
        assert!(
            pruned > 25,
            "expected most random candidates pruned against a tight threshold, got {pruned}/50"
        );
    }

    #[test]
    fn evaluate_rejects_wrong_length() {
        let query = rand_series(1, 32);
        let mut cascade = Cascade::new(&query, 3).unwrap();
        assert!(cascade
            .evaluate(&rand_series(2, 31), f64::INFINITY)
            .is_err());
    }

    #[test]
    fn empty_query_rejected() {
        assert!(Cascade::new(&[], 3).is_err());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let query = znorm(&rand_series(5, 40)).unwrap();
        let mut cascade = Cascade::new(&query, 4).unwrap();
        for s in 0..10 {
            let c = znorm(&rand_series(s + 100, 40)).unwrap();
            cascade.evaluate(&c, 0.5).unwrap();
        }
        assert_eq!(cascade.stats().total(), 10);
        cascade.reset_stats();
        assert_eq!(cascade.stats().total(), 0);
    }

    #[test]
    fn metered_tallies_mirror_cascade_stats() {
        use tsdtw_obs::WorkMeter;
        let n = 96;
        let band = 5;
        let query = znorm(&rand_series(77, n)).unwrap();
        let mut cascade = Cascade::new(&query, band).unwrap();
        let mut meter = WorkMeter::new();
        let mut bsf = f64::INFINITY;
        for s in 0..30 {
            let c = znorm(&rand_series(s + 500, n)).unwrap();
            let out = cascade.evaluate_metered(&c, bsf, &mut meter).unwrap();
            if let Some(d) = out.exact_distance() {
                bsf = bsf.min(d);
            }
        }
        let stats = cascade.stats();
        assert_eq!(meter.candidates(), stats.total());
        assert_eq!(meter.pruned_kim, stats.pruned_kim);
        assert_eq!(meter.pruned_keogh_qc, stats.pruned_keogh_qc);
        assert_eq!(meter.pruned_keogh_cq, stats.pruned_keogh_cq);
        assert_eq!(meter.dtw_abandoned, stats.dtw_abandoned);
        assert_eq!(meter.dtw_exact, stats.dtw_exact);
        // Every candidate that reached stage 3 built one envelope of n points.
        assert_eq!(meter.envelope_points, meter.envelopes_built * n as u64);
        // DTW ran only for stage-4 survivors, and never outside the band.
        assert_eq!(meter.ea_invocations, stats.dtw_abandoned + stats.dtw_exact);
        assert!(meter.cells <= meter.window_cells);
        // Metering must not change the outcome of the search.
        let mut plain = Cascade::new(&query, band).unwrap();
        let mut plain_bsf = f64::INFINITY;
        for s in 0..30 {
            let c = znorm(&rand_series(s + 500, n)).unwrap();
            if let Some(d) = plain.evaluate(&c, plain_bsf).unwrap().exact_distance() {
                plain_bsf = plain_bsf.min(d);
            }
        }
        assert_eq!(bsf, plain_bsf);
        assert_eq!(plain.stats(), stats);
    }

    #[test]
    fn funnel_ledger_obeys_stage_conservation() {
        use tsdtw_obs::{FunnelStage, WorkMeter};
        let n = 96;
        let band = 5;
        let query = znorm(&rand_series(321, n)).unwrap();
        let mut cascade = Cascade::new(&query, band).unwrap();
        let mut meter = WorkMeter::new();
        let mut bsf = f64::INFINITY;
        for s in 0..40 {
            let c = znorm(&rand_series(s + 9000, n)).unwrap();
            let out = cascade.evaluate_metered(&c, bsf, &mut meter).unwrap();
            if let Some(d) = out.exact_distance() {
                bsf = bsf.min(d);
            }
        }
        let f = &meter.funnel;
        let stats = cascade.stats();
        // Every candidate enters stage 1; each stage's survivors are
        // exactly the next stage's entrants; the funnel's pruned
        // columns are the cascade's own disposition counters.
        assert_eq!(f.stage(FunnelStage::Kim).entered, stats.total());
        assert_eq!(f.stage(FunnelStage::Kim).pruned, stats.pruned_kim);
        assert_eq!(
            f.stage(FunnelStage::Kim).survived(),
            f.stage(FunnelStage::KeoghQC).entered
        );
        assert_eq!(f.stage(FunnelStage::KeoghQC).pruned, stats.pruned_keogh_qc);
        assert_eq!(
            f.stage(FunnelStage::KeoghQC).survived(),
            f.stage(FunnelStage::KeoghCQ).entered
        );
        assert_eq!(f.stage(FunnelStage::KeoghCQ).pruned, stats.pruned_keogh_cq);
        assert_eq!(
            f.stage(FunnelStage::KeoghCQ).survived(),
            f.stage(FunnelStage::Dtw).entered
        );
        assert_eq!(f.stage(FunnelStage::Dtw).pruned, stats.dtw_abandoned);
        assert_eq!(f.stage(FunnelStage::Dtw).survived(), stats.dtw_exact);
        // Cost proxies: Kim charges 1 per entrant, KeoghQC n per
        // entrant, KeoghCQ 3n per entrant; the DTW stage is bounded by
        // full-DP rows × band width.
        assert_eq!(
            f.stage(FunnelStage::Kim).cost_units,
            f.stage(FunnelStage::Kim).entered
        );
        assert_eq!(
            f.stage(FunnelStage::KeoghQC).cost_units,
            f.stage(FunnelStage::KeoghQC).entered * n as u64
        );
        assert_eq!(
            f.stage(FunnelStage::KeoghCQ).cost_units,
            f.stage(FunnelStage::KeoghCQ).entered * 3 * n as u64
        );
        let width = (2 * band + 1).min(n) as u64;
        assert!(
            f.stage(FunnelStage::Dtw).cost_units
                <= f.stage(FunnelStage::Dtw).entered * n as u64 * width
        );
        // Tightness samples exist only where exact DTWs completed, one
        // per bound that ran, and read back as ratios in [0, 1].
        assert_eq!(f.stage(FunnelStage::Kim).tightness.count(), stats.dtw_exact);
        if stats.dtw_exact > 0 {
            let p50 = f.stage(FunnelStage::Kim).tightness.percentile_s(50.0);
            assert!((0.0..=1.01).contains(&p50), "tightness p50 {p50}");
        }
    }

    #[test]
    fn clone_shares_prep_and_evaluates_identically() {
        use tsdtw_obs::WorkMeter;
        let n = 64;
        let band = 4;
        let query = znorm(&rand_series(55, n)).unwrap();
        let prepared = Cascade::new(&query, band).unwrap();
        let mut a = prepared.clone();
        let mut b = prepared.clone();
        // Warm `a` before cloning `c` from it: scratch state must not
        // leak through a clone (clones start with fresh scratch).
        let warm: Vec<f64> = znorm(&rand_series(77, n)).unwrap();
        a.evaluate(&warm, f64::INFINITY).unwrap();
        let mut c = a.clone();
        assert_eq!(c.stats(), a.stats(), "stats copy across clone");
        c.reset_stats();

        let mut ma = WorkMeter::new();
        let mut mb = WorkMeter::new();
        let mut mc = WorkMeter::new();
        let mut bsf_a = f64::INFINITY;
        let mut bsf_b = f64::INFINITY;
        let mut bsf_c = f64::INFINITY;
        for s in 0..20 {
            let cand = znorm(&rand_series(s + 4000, n)).unwrap();
            let oa = a.evaluate_metered(&cand, bsf_a, &mut ma).unwrap();
            let ob = b.evaluate_metered(&cand, bsf_b, &mut mb).unwrap();
            let oc = c.evaluate_metered(&cand, bsf_c, &mut mc).unwrap();
            assert_eq!(oa, ob);
            assert_eq!(oa, oc);
            if let Some(d) = oa.exact_distance() {
                bsf_a = bsf_a.min(d);
                bsf_b = bsf_b.min(d);
                bsf_c = bsf_c.min(d);
            }
        }
        assert_eq!(mb, mc, "fresh clone and warmed clone meter identically");
        assert_eq!(b.stats(), c.stats());
        assert_eq!(b.band(), band);
    }

    #[test]
    fn infinite_threshold_always_reaches_exact_dtw() {
        let query = rand_series(3, 50);
        let mut cascade = Cascade::new(&query, 5).unwrap();
        let c = rand_series(4, 50);
        let out = cascade.evaluate(&c, f64::INFINITY).unwrap();
        assert_eq!(out.stage, PruneStage::DtwExact);
        let exact = cdtw_distance(&query, &c, 5, SquaredCost).unwrap();
        assert!((out.value - exact).abs() < 1e-9);
    }
}
