//! LB_Keogh: the envelope lower bound, with early-abandoning and reordered
//! variants.
//!
//! For a query `q` with band-`w` envelope `U, L` and a candidate `c` of the
//! same length, every cell `(i, j)` a banded warping path may visit has
//! `|i - j| ≤ w`, so `c[i]` can only ever be aligned against values of `q`
//! inside `[L[i], U[i]]`; its excursion beyond the envelope is an
//! unavoidable cost. Summing squared excursions gives
//! `LB_Keogh(q, c) ≤ cDTW_w(q, c)`.
//!
//! The per-index contributions are also the raw material for the
//! *cumulative bound* `cb` that early-abandoning DTW consumes
//! ([`suffix_sums`]).

use crate::envelope::Envelope;
use crate::error::{check_finite, check_nonempty, Error, Result};

#[inline(always)]
fn excursion(c: f64, upper: f64, lower: f64) -> f64 {
    if c > upper {
        let d = c - upper;
        d * d
    } else if c < lower {
        let d = lower - c;
        d * d
    } else {
        0.0
    }
}

fn check_len(c: &[f64], env: &Envelope) -> Result<()> {
    check_nonempty("c", c)?;
    check_finite("c", c)?;
    if c.len() != env.len() {
        return Err(Error::LengthMismatch {
            x_len: env.len(),
            y_len: c.len(),
        });
    }
    Ok(())
}

/// Plain LB_Keogh of candidate `c` against the envelope of the query.
pub fn lb_keogh(c: &[f64], env: &Envelope) -> Result<f64> {
    check_len(c, env)?;
    let _span = tsdtw_obs::span("lb_keogh");
    Ok(c.iter()
        .zip(env.upper.iter().zip(&env.lower))
        .map(|(&ci, (&u, &l))| excursion(ci, u, l))
        .sum())
}

/// LB_Keogh with early abandoning: stops accumulating once the partial sum
/// exceeds `bsf`. The returned value is always a valid lower bound (a
/// partial sum of non-negative terms).
pub fn lb_keogh_ea(c: &[f64], env: &Envelope, bsf: f64) -> Result<f64> {
    check_len(c, env)?;
    let mut acc = 0.0;
    for (i, &ci) in c.iter().enumerate() {
        acc += excursion(ci, env.upper[i], env.lower[i]);
        if acc >= bsf {
            return Ok(acc);
        }
    }
    Ok(acc)
}

/// Reordered early-abandoning LB_Keogh: visits indices in the caller-
/// provided order (UCR practice: by descending `|q|` of the z-normalized
/// query, where large excursions are likeliest), abandoning early.
///
/// `order` must be a permutation of `0..c.len()`; only its length is
/// checked here (a wrong permutation yields a still-valid but weaker
/// bound if indices repeat — callers use [`sort_indices_by_magnitude`]).
pub fn lb_keogh_reordered(c: &[f64], env: &Envelope, order: &[usize], bsf: f64) -> Result<f64> {
    check_len(c, env)?;
    if order.len() != c.len() {
        return Err(Error::InvalidParameter {
            name: "order",
            reason: format!("order has {} entries for length {}", order.len(), c.len()),
        });
    }
    let mut acc = 0.0;
    for &i in order {
        acc += excursion(c[i], env.upper[i], env.lower[i]);
        if acc >= bsf {
            return Ok(acc);
        }
    }
    Ok(acc)
}

/// LB_Keogh that additionally writes each index's contribution into
/// `contrib` (used to build the cumulative bound for early-abandoning DTW).
pub fn lb_keogh_with_contrib(c: &[f64], env: &Envelope, contrib: &mut Vec<f64>) -> Result<f64> {
    check_len(c, env)?;
    contrib.clear();
    contrib.reserve(c.len());
    let mut acc = 0.0;
    for (i, &ci) in c.iter().enumerate() {
        let e = excursion(ci, env.upper[i], env.lower[i]);
        contrib.push(e);
        acc += e;
    }
    Ok(acc)
}

/// Turns per-index contributions into the suffix-sum cumulative bound:
/// `cb[i] = contrib[i] + contrib[i+1] + … + contrib[n-1]`.
///
/// `cb[i]` lower-bounds the cost any banded alignment must still pay for
/// the suffix starting at `i`, which is exactly what
/// [`cdtw_distance_ea`](crate::dtw::early_abandon::cdtw_distance_ea)
/// consumes.
pub fn suffix_sums(contrib: &[f64]) -> Vec<f64> {
    let mut cb = Vec::new();
    suffix_sums_into(contrib, &mut cb);
    cb
}

/// [`suffix_sums`] into a caller-owned buffer — the allocation-free form
/// scan loops use, reusing `cb`'s capacity across candidates.
pub fn suffix_sums_into(contrib: &[f64], cb: &mut Vec<f64>) {
    cb.clear();
    cb.resize(contrib.len(), 0.0);
    let mut acc = 0.0;
    for i in (0..contrib.len()).rev() {
        acc += contrib[i];
        cb[i] = acc;
    }
}

/// Index order for reordered early abandoning: indices sorted by descending
/// magnitude of the (ideally z-normalized) query.
pub fn sort_indices_by_magnitude(q: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..q.len()).collect();
    order.sort_by(|&a, &b| {
        q[b].abs()
            .partial_cmp(&q[a].abs())
            .expect("query checked finite")
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::banded::cdtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn lower_bounds_cdtw_for_matching_band() {
        for seed in 0..20 {
            let q = rand_series(seed, 50);
            let c = rand_series(seed + 500, 50);
            for band in [0usize, 2, 5, 15] {
                let env = Envelope::new(&q, band).unwrap();
                let lb = lb_keogh(&c, &env).unwrap();
                // The band window is exact for equal lengths, so the bound
                // must hold against the same band radius.
                let d = cdtw_distance(&q, &c, band, SquaredCost).unwrap();
                assert!(
                    lb <= d + 1e-9,
                    "seed {seed} band {band}: LB {lb} > cDTW {d}"
                );
            }
        }
    }

    #[test]
    fn zero_when_candidate_inside_envelope() {
        let q = [0.0, 1.0, 2.0, 1.0, 0.0];
        let env = Envelope::new(&q, 2).unwrap();
        // The query itself is always inside its own envelope.
        assert_eq!(lb_keogh(&q, &env).unwrap(), 0.0);
    }

    #[test]
    fn known_excursion_value() {
        let q = [0.0, 0.0, 0.0];
        let env = Envelope::new(&q, 0).unwrap();
        let c = [2.0, -1.0, 0.0];
        assert_eq!(lb_keogh(&c, &env).unwrap(), 4.0 + 1.0);
    }

    #[test]
    fn early_abandon_partial_is_lower_bound_of_full() {
        let q = rand_series(9, 100);
        let c: Vec<f64> = rand_series(10, 100).iter().map(|v| v + 3.0).collect();
        let env = Envelope::new(&q, 5).unwrap();
        let full = lb_keogh(&c, &env).unwrap();
        let ea = lb_keogh_ea(&c, &env, full * 0.1).unwrap();
        assert!(ea <= full + 1e-12);
        assert!(ea >= full * 0.1); // it abandoned past the threshold
    }

    #[test]
    fn reordered_equals_plain_when_not_abandoned() {
        let q = rand_series(1, 64);
        let c = rand_series(2, 64);
        let env = Envelope::new(&q, 4).unwrap();
        let order = sort_indices_by_magnitude(&q);
        let plain = lb_keogh(&c, &env).unwrap();
        let reord = lb_keogh_reordered(&c, &env, &order, f64::INFINITY).unwrap();
        assert!((plain - reord).abs() < 1e-9);
    }

    #[test]
    fn reordered_abandons_faster_on_average() {
        // With a shifted candidate, big-magnitude indices of the query are
        // where excursions concentrate after z-normalization; here we just
        // verify the mechanism triggers.
        let q: Vec<f64> = (0..50).map(|i| if i == 25 { 10.0 } else { 0.0 }).collect();
        let c: Vec<f64> = (0..50).map(|i| if i == 25 { -10.0 } else { 0.0 }).collect();
        let env = Envelope::new(&q, 1).unwrap();
        let order = sort_indices_by_magnitude(&q);
        // First visited index (25) alone exceeds the threshold.
        let lb = lb_keogh_reordered(&c, &env, &order, 1.0).unwrap();
        assert!(lb >= 1.0);
    }

    #[test]
    fn contrib_sums_to_bound_and_suffix_sums_decrease() {
        let q = rand_series(3, 40);
        let c = rand_series(4, 40);
        let env = Envelope::new(&q, 3).unwrap();
        let mut contrib = Vec::new();
        let lb = lb_keogh_with_contrib(&c, &env, &mut contrib).unwrap();
        let total: f64 = contrib.iter().sum();
        assert!((lb - total).abs() < 1e-9);
        let cb = suffix_sums(&contrib);
        assert!((cb[0] - total).abs() < 1e-9);
        for i in 1..cb.len() {
            assert!(cb[i] <= cb[i - 1] + 1e-12);
        }
    }

    #[test]
    fn rejects_length_mismatch() {
        let q = [0.0, 1.0, 2.0];
        let env = Envelope::new(&q, 1).unwrap();
        assert!(lb_keogh(&[0.0, 1.0], &env).is_err());
    }

    #[test]
    fn sort_indices_is_permutation() {
        let q = [0.5, -3.0, 1.0, 0.0];
        let mut order = sort_indices_by_magnitude(&q);
        assert_eq!(order[0], 1);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
