//! LB_Improved (Lemire 2009): a two-pass envelope bound tighter than
//! LB_Keogh.
//!
//! Pass one is plain `LB_Keogh(q, c)`: charge `c`'s excursions outside `q`'s
//! envelope. Pass two projects `c` onto that envelope — `h[i] = clamp(c[i],
//! L[i], U[i])` — and charges `q`'s excursions outside *`h`'s* envelope.
//! The two charge disjoint cost components of any banded alignment, so
//! their sum is still a lower bound, and it is never smaller than LB_Keogh
//! alone.

use crate::envelope::Envelope;
use crate::error::{Error, Result};

use super::keogh::lb_keogh;

/// LB_Improved of candidate `c` against query `q` whose band-`band`
/// envelope is `env` (i.e. `env == Envelope::new(q, band)`).
///
/// Costs `O(n)` like LB_Keogh but with a second envelope construction; use
/// it as the stage between LB_Keogh and full DTW in a cascade.
pub fn lb_improved(q: &[f64], c: &[f64], env: &Envelope, band: usize) -> Result<f64> {
    if q.len() != env.len() {
        return Err(Error::LengthMismatch {
            x_len: q.len(),
            y_len: env.len(),
        });
    }
    let _span = tsdtw_obs::span("lb_improved");
    let first = lb_keogh(c, env)?;
    // Project the candidate onto the query's envelope.
    let h: Vec<f64> = c
        .iter()
        .zip(env.upper.iter().zip(&env.lower))
        .map(|(&ci, (&u, &l))| ci.clamp(l, u))
        .collect();
    let h_env = Envelope::new(&h, band)?;
    let second = lb_keogh(q, &h_env)?;
    Ok(first + second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::banded::cdtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn never_exceeds_cdtw() {
        for seed in 0..25 {
            let q = rand_series(seed, 60);
            let c = rand_series(seed + 300, 60);
            for band in [1usize, 3, 8] {
                let env = Envelope::new(&q, band).unwrap();
                let lb = lb_improved(&q, &c, &env, band).unwrap();
                let d = cdtw_distance(&q, &c, band, SquaredCost).unwrap();
                assert!(lb <= d + 1e-9, "seed {seed} band {band}: {lb} > {d}");
            }
        }
    }

    #[test]
    fn at_least_as_tight_as_lb_keogh() {
        for seed in 0..25 {
            let q = rand_series(seed, 48);
            let c = rand_series(seed + 900, 48);
            let band = 4;
            let env = Envelope::new(&q, band).unwrap();
            let keogh = lb_keogh(&c, &env).unwrap();
            let improved = lb_improved(&q, &c, &env, band).unwrap();
            assert!(improved >= keogh - 1e-12);
        }
    }

    #[test]
    fn strictly_tighter_on_some_input() {
        // A case where the candidate sits inside the query's envelope (so
        // LB_Keogh = 0) but the query escapes the projected candidate's
        // envelope (so LB_Improved > 0).
        let q = [0.0, 5.0, 0.0, -5.0, 0.0, 5.0, 0.0, -5.0, 0.0];
        let c = [0.0; 9];
        let band = 1;
        let env = Envelope::new(&q, band).unwrap();
        let keogh = lb_keogh(&c, &env).unwrap();
        let improved = lb_improved(&q, &c, &env, band).unwrap();
        assert_eq!(keogh, 0.0);
        assert!(improved > 0.0);
        let d = cdtw_distance(&q, &c, band, SquaredCost).unwrap();
        assert!(improved <= d + 1e-9);
    }

    #[test]
    fn zero_for_identical_series() {
        let q = rand_series(7, 30);
        let env = Envelope::new(&q, 3).unwrap();
        assert_eq!(lb_improved(&q, &q, &env, 3).unwrap(), 0.0);
    }

    #[test]
    fn rejects_mismatched_query() {
        let q = [0.0, 1.0, 2.0];
        let env = Envelope::new(&[0.0, 1.0], 1).unwrap();
        assert!(lb_improved(&q, &[0.0, 1.0], &env, 1).is_err());
    }
}
