//! LB_Yi (Yi, Jagadish & Faloutsos 1998): the oldest of the classic DTW
//! lower bounds.
//!
//! Any warping path aligns every sample of the candidate against *some*
//! sample of the query, so a candidate value above the query's global
//! maximum must pay at least its excursion above that maximum (and
//! symmetrically below the minimum). LB_Yi is looser than LB_Keogh but
//! needs no envelope and is valid for **unconstrained** DTW, making it the
//! only bound in this crate applicable to `cDTW_100` workloads (Case D).

use crate::error::{check_finite, check_nonempty, Result};

/// LB_Yi of candidate `c` against query `q` (squared-cost domain).
///
/// Symmetric usage tip: `max(lb_yi(q, c), lb_yi(c, q))` is also a valid —
/// and tighter — bound, since DTW is symmetric.
pub fn lb_yi(q: &[f64], c: &[f64]) -> Result<f64> {
    check_nonempty("q", q)?;
    check_nonempty("c", c)?;
    check_finite("q", q)?;
    check_finite("c", c)?;
    let _span = tsdtw_obs::span("lb_yi");
    let qmax = q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let qmin = q.iter().cloned().fold(f64::INFINITY, f64::min);
    Ok(c.iter()
        .map(|&v| {
            if v > qmax {
                (v - qmax) * (v - qmax)
            } else if v < qmin {
                (qmin - v) * (qmin - v)
            } else {
                0.0
            }
        })
        .sum())
}

/// The symmetric form: `max(lb_yi(q, c), lb_yi(c, q))`.
pub fn lb_yi_symmetric(q: &[f64], c: &[f64]) -> Result<f64> {
    Ok(lb_yi(q, c)?.max(lb_yi(c, q)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn never_exceeds_unconstrained_dtw() {
        for seed in 0..30 {
            let q = rand_series(seed, 40);
            let c: Vec<f64> = rand_series(seed + 500, 40)
                .iter()
                .map(|v| v * 2.0)
                .collect();
            let exact = dtw_distance(&q, &c, SquaredCost).unwrap();
            let lb = lb_yi_symmetric(&q, &c).unwrap();
            assert!(lb <= exact + 1e-9, "seed {seed}: {lb} > {exact}");
        }
    }

    #[test]
    fn zero_when_candidate_inside_query_range() {
        let q = [-2.0, 0.0, 2.0];
        let c = [0.1, -1.9, 1.5, 0.0];
        assert_eq!(lb_yi(&q, &c).unwrap(), 0.0);
    }

    #[test]
    fn counts_out_of_range_excursions() {
        let q = [0.0, 1.0];
        let c = [3.0, -1.0, 0.5];
        // (3-1)^2 + (0-(-1))^2 = 4 + 1.
        assert_eq!(lb_yi(&q, &c).unwrap(), 5.0);
    }

    #[test]
    fn symmetric_form_dominates_both_directions() {
        let q = rand_series(1, 30);
        let c: Vec<f64> = rand_series(2, 30).iter().map(|v| v + 0.5).collect();
        let s = lb_yi_symmetric(&q, &c).unwrap();
        assert!(s >= lb_yi(&q, &c).unwrap());
        assert!(s >= lb_yi(&c, &q).unwrap());
    }

    #[test]
    fn supports_unequal_lengths() {
        let q = rand_series(3, 20);
        let c = rand_series(4, 35);
        let exact = dtw_distance(&q, &c, SquaredCost).unwrap();
        assert!(lb_yi_symmetric(&q, &c).unwrap() <= exact + 1e-9);
    }

    #[test]
    fn rejects_empty() {
        assert!(lb_yi(&[], &[0.0]).is_err());
        assert!(lb_yi(&[0.0], &[]).is_err());
    }
}
