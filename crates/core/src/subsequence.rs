//! Subsequence DTW (open-begin, open-end): align a whole query against the
//! best-matching *contiguous region* of a long reference in one DP pass.
//!
//! Where [`open_end`](crate::open_end) frees only the end point, this
//! frees both: the classic SPRING-style formulation initializes every
//! column of row 0 as a fresh start (`D(0, j) = cost(x₀, y_j)`) and reads
//! the answer off the minimum of the last row, tracking each cell's start
//! column so the matched region falls out without a second pass.
//!
//! This is the unnormalized, single-DP counterpart of the UCR-style
//! sliding-window search in `tsdtw-mining` (which z-normalizes every
//! window and prunes with lower bounds): one pass of `O(n·m)` cells versus
//! `n` windows of `O(m·w)` cells — the right tool when amplitude is
//! already comparable and `m` is large.
//!
//! ```
//! use tsdtw_core::subsequence::subsequence_dtw;
//! use tsdtw_core::SquaredCost;
//!
//! let reference: Vec<f64> = (0..100).map(|i| if (40..60).contains(&i) {
//!     ((i - 40) as f64 * 0.5).sin()
//! } else {
//!     5.0
//! }).collect();
//! let query: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
//! let m = subsequence_dtw(&query, &reference, SquaredCost).unwrap();
//! assert_eq!((m.start, m.end), (40, 59));
//! assert!(m.distance < 1e-9);
//! ```

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Result};

/// The best open-begin-open-end alignment of a query inside a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsequenceMatch {
    /// Accumulated cost of aligning the whole query to
    /// `reference[start..=end]`.
    pub distance: f64,
    /// First reference index of the matched region.
    pub start: usize,
    /// Last reference index of the matched region (inclusive).
    pub end: usize,
}

/// Aligns all of `query` to the best contiguous region of `reference`.
///
/// Time `O(n·m)`, memory `O(m)` (two rolling rows of cost plus start
/// columns).
pub fn subsequence_dtw<C: CostFn>(
    query: &[f64],
    reference: &[f64],
    cost: C,
) -> Result<SubsequenceMatch> {
    check_nonempty("query", query)?;
    check_nonempty("reference", reference)?;
    check_finite("query", query)?;
    check_finite("reference", reference)?;
    let m = reference.len();

    // cost rows and, per cell, the start column of the path that got there.
    let mut prev = vec![0.0f64; m];
    let mut cur = vec![0.0f64; m];
    let mut prev_start = vec![0usize; m];
    let mut cur_start = vec![0usize; m];

    let q0 = query[0];
    for (j, &rj) in reference.iter().enumerate() {
        prev[j] = cost.cost(q0, rj);
        prev_start[j] = j; // every column is a fresh start in row 0
    }

    for &qi in query.iter().skip(1) {
        cur[0] = prev[0] + cost.cost(qi, reference[0]);
        cur_start[0] = prev_start[0];
        for j in 1..m {
            let c = cost.cost(qi, reference[j]);
            // min over (diag, up, left), inheriting the winner's start.
            let (best, start) = {
                let diag = prev[j - 1];
                let up = prev[j];
                let left = cur[j - 1];
                if diag <= up && diag <= left {
                    (diag, prev_start[j - 1])
                } else if up <= left {
                    (up, prev_start[j])
                } else {
                    (left, cur_start[j - 1])
                }
            };
            cur[j] = c + best;
            cur_start[j] = start;
        }
        std::mem::swap(&mut prev, &mut cur);
        std::mem::swap(&mut prev_start, &mut cur_start);
    }

    let (mut best_j, mut best) = (0usize, f64::INFINITY);
    for (j, &v) in prev.iter().enumerate() {
        if v < best {
            best = v;
            best_j = j;
        }
    }
    Ok(SubsequenceMatch {
        distance: cost.finish(best),
        start: prev_start[best_j],
        end: best_j,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    #[test]
    fn exact_embedded_copy_matches_perfectly() {
        let query: Vec<f64> = (0..25).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        let mut reference = vec![9.0; 120];
        reference[50..75].copy_from_slice(&query);
        let m = subsequence_dtw(&query, &reference, SquaredCost).unwrap();
        assert_eq!(m.start, 50);
        assert_eq!(m.end, 74);
        assert!(m.distance < 1e-12);
    }

    #[test]
    fn warped_embedded_copy_still_found() {
        // Stretch the query 1.5x inside the reference.
        let query: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
        let stretched: Vec<f64> = (0..30).map(|i| (i as f64 * 0.5 / 1.5).sin()).collect();
        let mut reference = vec![4.0; 100];
        reference[30..60].copy_from_slice(&stretched);
        let m = subsequence_dtw(&query, &reference, SquaredCost).unwrap();
        // The match must land inside the embedded region (start near its
        // beginning; end well before the flat suffix). Discrete phase
        // mismatch along the 1.5x stretch leaves a modest residual cost —
        // far below the cost of touching the flat background (16/cell).
        assert!(m.start.abs_diff(30) <= 2, "{m:?}");
        assert!((m.start + 15..60).contains(&m.end), "{m:?}");
        assert!(m.distance < 2.0, "{m:?}");
    }

    #[test]
    fn whole_reference_match_never_beats_plain_dtw() {
        // Matching a region is at most as costly as matching everything.
        let q: Vec<f64> = (0..15).map(|i| (i as f64).cos()).collect();
        let r: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let sub = subsequence_dtw(&q, &r, SquaredCost).unwrap();
        let full = dtw_distance(&q, &r, SquaredCost).unwrap();
        assert!(sub.distance <= full + 1e-9);
        assert!(sub.start <= sub.end);
        assert!(sub.end < r.len());
    }

    #[test]
    fn start_is_consistent_with_distance() {
        // Recompute plain DTW on the reported region: must equal the
        // reported distance (the region is exactly the matched span).
        let query: Vec<f64> = (0..12).map(|i| (i as f64 * 0.8).sin()).collect();
        let mut reference = vec![3.0; 60];
        for (k, &q) in query.iter().enumerate() {
            reference[20 + k] = q + 0.01 * (k as f64);
        }
        let m = subsequence_dtw(&query, &reference, SquaredCost).unwrap();
        let region = &reference[m.start..=m.end];
        let check = dtw_distance(&query, region, SquaredCost).unwrap();
        assert!(
            (check - m.distance).abs() < 1e-9,
            "{check} vs {}",
            m.distance
        );
    }

    #[test]
    fn singleton_query_picks_nearest_sample() {
        let reference = [5.0, 1.0, -3.0, 0.5];
        let m = subsequence_dtw(&[0.4], &reference, SquaredCost).unwrap();
        assert_eq!(m.start, 3);
        assert_eq!(m.end, 3);
        assert!((m.distance - 0.01f64).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(subsequence_dtw(&[], &[1.0], SquaredCost).is_err());
        assert!(subsequence_dtw(&[1.0], &[], SquaredCost).is_err());
    }
}
