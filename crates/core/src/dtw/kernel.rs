//! Kernel-tier selection for the shared DP row sweep.
//!
//! Every DP kernel in this crate (full DTW, banded `cDTW_w`, the arbitrary
//! [`SearchWindow`](crate::window::SearchWindow) kernel FastDTW refines
//! over, the path-recovery variant, and the early-abandoning kernel) fills
//! its rows through the tiered sweep in the private `sweep` module. Two
//! tiers exist:
//!
//! * **Generic** — the original guarded loop: every cell checks whether its
//!   `up`/`diag`/`left` neighbors fall inside the previous/current row's
//!   admissible interval. Correct for any window shape, any cost.
//! * **Segmented** — splits each row into prefix / interior / suffix at
//!   `max(lo, plo + 1)` and `min(hi, phi)`. In the interior *both* `up` and
//!   `diag` are admissible by construction, so the hot loop runs branch-free
//!   with a fused three-way min and a 4-wide unrolled column walk; the
//!   (short) prefix and suffix keep the guarded logic.
//!
//! The segmented tier performs the *same per-cell operations in the same
//! order* as the generic tier, so results are **bitwise equal** on every
//! window shape and all `WorkMeter` counters are unchanged — the
//! zero-tolerance perf-trajectory gate doubles as a kernel-equivalence gate
//! (`tests/kernel_equivalence.rs` is the differential proof).
//!
//! [`Kernel::Auto`] resolves per cost function: costs that opt in via
//! [`CostFn::SEGMENTED_FAST`]
//! (`SquaredCost`, `AbsoluteCost` — the two every experiment uses) get the
//! segmented tier, monomorphized per cost by the generic sweep functions;
//! everything else stays on the proven generic loop.
//!
//! The process-wide default (consulted by the plain, non-`_kernel` entry
//! points) is [`Kernel::Auto`] and can be overridden with
//! [`set_default_kernel`] — the CLI `--kernel` flag and the repro harness
//! use this so a whole run can be pinned to one tier without threading a
//! parameter through every call site. Tests and benches that need
//! determinism under parallel execution use the explicit `*_kernel`
//! variants instead of the global.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::cost::CostFn;

/// Which row-sweep tier the DP kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Resolve per cost function: segmented when
    /// [`CostFn::SEGMENTED_FAST`] is `true`, generic otherwise. At the
    /// full-window distance entry points, highly run-compressible
    /// inputs (runs/points ≤ [`crate::rle::AUTO_THRESHOLD`]) route to
    /// the RLE block kernel instead.
    #[default]
    Auto,
    /// Force the guarded per-cell loop for every row.
    Generic,
    /// Force the three-segment branch-free-interior sweep for every row.
    Segmented,
    /// Force the run-length-encoded block kernel
    /// ([`crate::rle`]) at the full-window distance entry points.
    /// Contexts the block decomposition does not cover (banded windows,
    /// path recovery, early abandoning) degrade to the `Auto` sweep
    /// resolution.
    Rle,
    /// Force anti-diagonal (wavefront) evaluation of the banded DP at
    /// the windowed distance entry points
    /// (the `dtw::wavefront` module): cells on one anti-diagonal have no
    /// mutual data dependency, so the inner loop runs in fixed-width
    /// lanes the compiler autovectorizes. Bitwise-equal to the row
    /// sweep cell for cell. Contexts the wavefront does not cover
    /// (path recovery, early abandoning, min-row) degrade to the
    /// `Auto` sweep resolution.
    Wavefront,
    /// Prefer the query-batched struct-of-lanes kernel
    /// ([`crate::dtw::batch`]) at the mining scan entry points (k-NN /
    /// LOOCV / pairwise), where up to [`crate::dtw::batch::LANES`]
    /// same-length candidates run per call. `Auto` takes the same
    /// route; single-pair contexts degrade to the `Auto` sweep
    /// resolution.
    Batched,
}

impl Kernel {
    /// Every tier, paired with its canonical name and one-line summary.
    ///
    /// This table is the single source for [`parse`](Self::parse),
    /// [`name`](Self::name) (locked by `parse_and_name_round_trip`) and
    /// the CLI `--kernel` help/error text (via
    /// [`name_list`](Self::name_list)), so docs cannot drift from the
    /// parser.
    pub const ALL: &'static [(Kernel, &'static str, &'static str)] = &[
        (
            Kernel::Auto,
            "auto",
            "resolve per cost (segmented fast path), per input (RLE on compressible data) and per call shape (batched mining scans)",
        ),
        (Kernel::Generic, "generic", "guarded per-cell row sweep"),
        (
            Kernel::Segmented,
            "segmented",
            "branch-free-interior row sweep",
        ),
        (
            Kernel::Rle,
            "rle",
            "run-length-encoded block kernel for piecewise-constant series",
        ),
        (
            Kernel::Wavefront,
            "wavefront",
            "anti-diagonal lane-vectorized banded sweep",
        ),
        (
            Kernel::Batched,
            "batched",
            "query-batched struct-of-lanes kernel at the mining scan entry points",
        ),
    ];

    /// Parses a CLI-style kernel name (generated from [`ALL`](Self::ALL)).
    pub fn parse(s: &str) -> Option<Kernel> {
        Kernel::ALL
            .iter()
            .find(|(_, name, _)| *name == s)
            .map(|(k, _, _)| *k)
    }

    /// The canonical lower-case name (`auto` / `generic` / `segmented` /
    /// `rle` / `wavefront` / `batched`).
    pub fn name(self) -> &'static str {
        Kernel::ALL
            .iter()
            .find(|(k, _, _)| *k == self)
            .map(|(_, name, _)| *name)
            .expect("every Kernel variant appears in Kernel::ALL")
    }

    /// The comma-separated canonical names (`"auto, generic, segmented,
    /// rle, wavefront, batched"`) for CLI help and error messages.
    pub fn name_list() -> String {
        let names: Vec<&str> = Kernel::ALL.iter().map(|(_, name, _)| *name).collect();
        names.join(", ")
    }

    /// Whether this tier resolves to the segmented sweep for cost `C`.
    ///
    /// `Rle`, `Wavefront` and `Batched` answer like `Auto`: row-sweep
    /// contexts their specialized kernels do not cover fall back to the
    /// per-cost resolution, so forcing any of them never changes sweep
    /// results bitwise.
    #[inline(always)]
    pub fn segmented<C: CostFn>(self) -> bool {
        match self {
            Kernel::Auto | Kernel::Rle | Kernel::Wavefront | Kernel::Batched => C::SEGMENTED_FAST,
            Kernel::Generic => false,
            Kernel::Segmented => true,
        }
    }
}

// Encoded Kernel for the process-wide default: 0 = Auto, 1 = Generic,
// 2 = Segmented, 3 = Rle, 4 = Wavefront, 5 = Batched.
static DEFAULT_KERNEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default tier used by the plain (non-`_kernel`)
/// DP entry points. Affects every thread; intended for program start-up
/// (CLI flag parsing), not for per-call selection — use the `*_kernel`
/// variants for that.
pub fn set_default_kernel(kernel: Kernel) {
    let code = match kernel {
        Kernel::Auto => 0,
        Kernel::Generic => 1,
        Kernel::Segmented => 2,
        Kernel::Rle => 3,
        Kernel::Wavefront => 4,
        Kernel::Batched => 5,
    };
    DEFAULT_KERNEL.store(code, Ordering::Relaxed);
}

/// The current process-wide default tier ([`Kernel::Auto`] unless
/// [`set_default_kernel`] was called).
#[inline]
pub fn default_kernel() -> Kernel {
    match DEFAULT_KERNEL.load(Ordering::Relaxed) {
        1 => Kernel::Generic,
        2 => Kernel::Segmented,
        3 => Kernel::Rle,
        4 => Kernel::Wavefront,
        5 => Kernel::Batched,
        _ => Kernel::Auto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AbsoluteCost, Rooted, SquaredCost};

    #[derive(Clone, Copy)]
    struct OptOutCost;
    impl CostFn for OptOutCost {
        fn cost(&self, a: f64, b: f64) -> f64 {
            (a - b).abs().sqrt()
        }
    }

    #[test]
    fn auto_resolves_via_cost_opt_in() {
        assert!(Kernel::Auto.segmented::<SquaredCost>());
        assert!(Kernel::Auto.segmented::<AbsoluteCost>());
        assert!(Kernel::Auto.segmented::<Rooted<SquaredCost>>());
        assert!(!Kernel::Auto.segmented::<OptOutCost>());
        assert!(!Kernel::Auto.segmented::<Rooted<OptOutCost>>());
    }

    #[test]
    fn explicit_tiers_override_the_cost() {
        assert!(!Kernel::Generic.segmented::<SquaredCost>());
        assert!(Kernel::Segmented.segmented::<OptOutCost>());
        // Rle / Wavefront / Batched degrade to the Auto resolution in
        // row-sweep contexts.
        assert!(Kernel::Rle.segmented::<SquaredCost>());
        assert!(!Kernel::Rle.segmented::<OptOutCost>());
        assert!(Kernel::Wavefront.segmented::<SquaredCost>());
        assert!(!Kernel::Wavefront.segmented::<OptOutCost>());
        assert!(Kernel::Batched.segmented::<SquaredCost>());
        assert!(!Kernel::Batched.segmented::<OptOutCost>());
    }

    #[test]
    fn parse_and_name_round_trip() {
        // Over the single-source table, so a tier added to the enum but
        // not to ALL (or vice versa) fails here.
        for &(k, name, summary) in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
            assert_eq!(k.name(), name);
            assert!(!summary.is_empty());
        }
        assert_eq!(Kernel::ALL.len(), 6);
        assert_eq!(Kernel::parse("simd"), None);
        assert_eq!(Kernel::parse(""), None);
        assert_eq!(
            Kernel::name_list(),
            "auto, generic, segmented, rle, wavefront, batched"
        );
    }

    #[test]
    fn default_is_auto() {
        // Other tests in the workspace never mutate the global (they use
        // the explicit `_kernel` variants), so this is race-free. The
        // set/get atomic round-trip over every tier is covered by the
        // CLI `--kernel` test, which owns the global for its process.
        assert_eq!(default_kernel(), Kernel::Auto);
    }
}
