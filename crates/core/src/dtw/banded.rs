//! Sakoe–Chiba constrained DTW: `cDTW_w`, the paper's protagonist.
//!
//! `w` follows the paper's convention of a *percentage of the series
//! length*; [`percent_to_band`] converts it to a cell radius. `cDTW_0` is
//! the (squared) Euclidean distance and `cDTW_100` is full DTW — identities
//! the test suite pins down.
//!
//! The kernel itself is the shared windowed DP over a band window, so exact
//! and approximate algorithms run literally the same inner loop; only the
//! set of admissible cells differs. For repeated comparisons at a fixed
//! shape, [`BandedDtw`] caches the window and scratch buffers.

use crate::cost::CostFn;
use crate::error::{Error, Result};
use crate::path::WarpingPath;
use crate::window::SearchWindow;
use tsdtw_obs::{Meter, NoMeter};

use super::kernel::{default_kernel, Kernel};
use super::windowed::{windowed_distance_metered_kernel, windowed_with_path_kernel, DtwBuffer};

/// Converts the paper's percentage form of the warping constraint into a
/// band radius in cells: `⌈w/100 · n⌉`.
///
/// `n` should be the (common) series length; for unequal lengths use the
/// **longer** one, which keeps the constraint conservative — this is the
/// convention [`BandedDtw::with_percent`] applies (`n.max(m)`), so a given
/// `w` admits at least the cells it would admit for two series of the
/// longer length. Callers converting `w` themselves must use the same
/// length or their band radius will disagree with the evaluator's.
pub fn percent_to_band(n: usize, w_percent: f64) -> Result<usize> {
    if !(0.0..=100.0).contains(&w_percent) || !w_percent.is_finite() {
        return Err(Error::InvalidParameter {
            name: "w",
            reason: format!("warping window must be in [0, 100] percent, got {w_percent}"),
        });
    }
    Ok((w_percent / 100.0 * n as f64).ceil() as usize)
}

/// Rejects band radii so large that the band window arithmetic
/// (`column + band`) would overflow `usize` — otherwise
/// [`SearchWindow::sakoe_chiba`] wraps in release builds and produces a
/// silently wrong (far too narrow) window. Radii beyond the matrix are
/// still fine — they just mean "unconstrained" — so the check only trips
/// on nonsensical `i64`-scale values.
pub(crate) fn check_band(n: usize, m: usize, band: usize) -> Result<()> {
    if band.checked_add(n.max(m)).is_none() {
        return Err(Error::InvalidParameter {
            name: "band",
            reason: format!("band radius {band} overflows for series of length {n} and {m}"),
        });
    }
    Ok(())
}

/// `cDTW_w` distance with the band given as a cell radius.
pub fn cdtw_distance<C: CostFn>(x: &[f64], y: &[f64], band: usize, cost: C) -> Result<f64> {
    cdtw_distance_metered(x, y, band, cost, &mut NoMeter)
}

/// [`cdtw_distance`] with an explicit kernel tier.
pub fn cdtw_distance_kernel<C: CostFn>(
    x: &[f64],
    y: &[f64],
    band: usize,
    cost: C,
    kernel: Kernel,
) -> Result<f64> {
    let mut buf = DtwBuffer::new();
    cdtw_distance_metered_with_buf_kernel(x, y, band, cost, &mut buf, &mut NoMeter, kernel)
}

/// [`cdtw_distance`] with work accounting: the meter receives the band
/// area as window cells, every filled cell, and the scratch footprint.
pub fn cdtw_distance_metered<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    cost: C,
    meter: &mut M,
) -> Result<f64> {
    let mut buf = DtwBuffer::new();
    cdtw_distance_metered_with_buf_kernel(x, y, band, cost, &mut buf, meter, default_kernel())
}

/// [`cdtw_distance_metered`] reusing caller-provided scratch space — the
/// allocation-free form repeated-evaluation loops (1-NN, all-pairs) use
/// when they cannot keep a [`BandedDtw`] because shapes vary.
pub fn cdtw_distance_metered_with_buf<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    cost: C,
    buf: &mut DtwBuffer,
    meter: &mut M,
) -> Result<f64> {
    cdtw_distance_metered_with_buf_kernel(x, y, band, cost, buf, meter, default_kernel())
}

/// [`cdtw_distance_metered_with_buf`] with an explicit kernel tier.
///
/// When the band covers the whole matrix (`band >= max(n, m)` — the
/// full-window form 1-NN mining's `FullDtw` spec uses), `Kernel::Rle`
/// forces the run-length block kernel ([`crate::rle`]) and
/// `Kernel::Auto` picks it on run-compressible pairs
/// ([`crate::rle::auto_picks_rle`]); work then lands in the `rle.*`
/// counters instead of `cells`/`window_cells`. Narrower bands always
/// use the row sweep — the block decomposition has no banded form.
pub fn cdtw_distance_metered_with_buf_kernel<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    cost: C,
    buf: &mut DtwBuffer,
    meter: &mut M,
    kernel: Kernel,
) -> Result<f64> {
    if x.is_empty() {
        return Err(Error::EmptyInput { which: "x" });
    }
    if y.is_empty() {
        return Err(Error::EmptyInput { which: "y" });
    }
    check_band(x.len(), y.len(), band)?;
    // The structural band check comes FIRST: the O(n) compressibility
    // probe is pure waste on banded calls the block kernel can never
    // serve, so it must not run (let alone be metered) unless the band
    // covers the whole matrix. `rle.probes` makes the ordering
    // observable — `auto_probe_is_gated_on_the_band_check` pins it.
    let full_window = band >= x.len().max(y.len());
    if full_window
        && (kernel == Kernel::Rle
            || (kernel == Kernel::Auto && crate::rle::auto_picks_rle_metered(x, y, meter)))
    {
        return crate::rle::dtw_distance_rle(x, y, cost, meter);
    }
    let _span = tsdtw_obs::span("cdtw");
    // The buffer memoizes the window, so a warmed same-shape loop (1-NN,
    // all-pairs) runs this entry point without touching the heap.
    let window = buf.take_sakoe_chiba(x.len(), y.len(), band);
    let r = windowed_distance_metered_kernel(x, y, &window, cost, buf, meter, kernel);
    buf.cache_window(band, window);
    r
}

/// `cDTW_w` distance and optimal constrained warping path.
pub fn cdtw_with_path<C: CostFn>(
    x: &[f64],
    y: &[f64],
    band: usize,
    cost: C,
) -> Result<(f64, WarpingPath)> {
    cdtw_with_path_kernel(x, y, band, cost, default_kernel())
}

/// [`cdtw_with_path`] with an explicit kernel tier.
pub fn cdtw_with_path_kernel<C: CostFn>(
    x: &[f64],
    y: &[f64],
    band: usize,
    cost: C,
    kernel: Kernel,
) -> Result<(f64, WarpingPath)> {
    if x.is_empty() {
        return Err(Error::EmptyInput { which: "x" });
    }
    if y.is_empty() {
        return Err(Error::EmptyInput { which: "y" });
    }
    check_band(x.len(), y.len(), band)?;
    let window = SearchWindow::sakoe_chiba(x.len(), y.len(), band);
    windowed_with_path_kernel(x, y, &window, cost, kernel)
}

/// A reusable `cDTW_w` evaluator for repeated comparisons of series of a
/// fixed shape: the band window is built once and the DP scratch space is
/// recycled across calls.
///
/// This is what the all-pairs (Fig. 1, Fig. 4) and 1-NN workloads use; it
/// removes every per-call allocation from the exact algorithm, the same
/// courtesy the FastDTW implementation gets from its own recursion-level
/// buffer reuse.
#[derive(Debug, Clone)]
pub struct BandedDtw {
    window: SearchWindow,
    buf: DtwBuffer,
    n: usize,
    m: usize,
}

impl BandedDtw {
    /// Prepares an evaluator for series of lengths `n` (first argument) and
    /// `m` (second argument) with a band radius of `band` cells.
    pub fn new(n: usize, m: usize, band: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyInput { which: "x" });
        }
        if m == 0 {
            return Err(Error::EmptyInput { which: "y" });
        }
        check_band(n, m, band)?;
        Ok(BandedDtw {
            window: SearchWindow::sakoe_chiba(n, m, band),
            buf: DtwBuffer::new(),
            n,
            m,
        })
    }

    /// Prepares an evaluator from the paper's percentage form of `w`.
    ///
    /// For unequal lengths the radius is `⌈w/100 · max(n, m)⌉` — the
    /// percentage is taken of the **longer** series, the conservative
    /// convention documented on [`percent_to_band`]. A caller converting
    /// with the shorter length would build a narrower band than this
    /// evaluator and disagree with it on unequal-length pairs.
    pub fn with_percent(n: usize, m: usize, w_percent: f64) -> Result<Self> {
        let band = percent_to_band(n.max(m), w_percent)?;
        Self::new(n, m, band)
    }

    /// The number of DP cells each call will fill — the direct driver of
    /// `cDTW`'s running time.
    pub fn cell_count(&self) -> usize {
        self.window.cell_count()
    }

    /// Computes the constrained distance. Series lengths must match the
    /// shape given at construction.
    pub fn distance<C: CostFn>(&mut self, x: &[f64], y: &[f64], cost: C) -> Result<f64> {
        self.distance_metered(x, y, cost, &mut NoMeter)
    }

    /// [`BandedDtw::distance`] with work accounting.
    pub fn distance_metered<C: CostFn, M: Meter>(
        &mut self,
        x: &[f64],
        y: &[f64],
        cost: C,
        meter: &mut M,
    ) -> Result<f64> {
        self.distance_metered_kernel(x, y, cost, meter, default_kernel())
    }

    /// [`BandedDtw::distance_metered`] with an explicit kernel tier.
    pub fn distance_metered_kernel<C: CostFn, M: Meter>(
        &mut self,
        x: &[f64],
        y: &[f64],
        cost: C,
        meter: &mut M,
        kernel: Kernel,
    ) -> Result<f64> {
        if x.len() != self.n || y.len() != self.m {
            return Err(Error::InvalidWindow {
                reason: format!(
                    "evaluator built for {}x{} but series are {}x{}",
                    self.n,
                    self.m,
                    x.len(),
                    y.len()
                ),
            });
        }
        windowed_distance_metered_kernel(x, y, &self.window, cost, &mut self.buf, meter, kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    #[test]
    fn percent_zero_is_band_zero() {
        assert_eq!(percent_to_band(100, 0.0).unwrap(), 0);
    }

    #[test]
    fn percent_hundred_is_full_length() {
        assert_eq!(percent_to_band(450, 100.0).unwrap(), 450);
    }

    #[test]
    fn percent_rounds_up() {
        assert_eq!(percent_to_band(945, 4.0).unwrap(), 38); // 37.8 -> 38
    }

    #[test]
    fn percent_rejects_out_of_range() {
        assert!(percent_to_band(10, -1.0).is_err());
        assert!(percent_to_band(10, 101.0).is_err());
        assert!(percent_to_band(10, f64::NAN).is_err());
    }

    #[test]
    fn full_band_equals_full_dtw() {
        let x = [0.0, 3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        let full = dtw_distance(&x, &y, SquaredCost).unwrap();
        let banded = cdtw_distance(&x, &y, x.len(), SquaredCost).unwrap();
        assert!((full - banded).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonincreasing_in_band() {
        let x = [0.0, 2.0, 5.0, 3.0, 1.0, 4.0, 2.0, 0.0, 1.0, 3.0];
        let y = [1.0, 0.0, 2.0, 5.0, 3.0, 1.0, 4.0, 2.0, 0.0, 1.0];
        let mut last = f64::INFINITY;
        for band in 0..=10 {
            let d = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
            assert!(d <= last + 1e-12, "band {band}: {d} > previous {last}");
            last = d;
        }
    }

    #[test]
    fn band_zero_is_squared_euclidean() {
        // For equal lengths the band-0 window is exactly the diagonal, so
        // cDTW_0 must equal the squared Euclidean distance — the identity
        // the paper states in Section 2.
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.5, 1.5, 2.5, 3.8, 4.5];
        let d = cdtw_distance(&x, &y, 0, SquaredCost).unwrap();
        let e: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!((d - e).abs() < 1e-12);
    }

    #[test]
    fn path_respects_band() {
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3 + 1.0).sin()).collect();
        let band = 4;
        let (_, path) = cdtw_with_path(&x, &y, band, SquaredCost).unwrap();
        assert!(path.max_diagonal_deviation() <= band);
    }

    #[test]
    fn evaluator_matches_one_shot_function() {
        let x = [0.0, 1.0, 4.0, 2.0, 1.0, 0.0];
        let y = [1.0, 0.0, 1.0, 4.0, 2.0, 1.0];
        let mut eval = BandedDtw::new(6, 6, 2).unwrap();
        let a = eval.distance(&x, &y, SquaredCost).unwrap();
        let b = cdtw_distance(&x, &y, 2, SquaredCost).unwrap();
        assert_eq!(a, b);
        // Second call reuses buffers and still agrees.
        let c = eval.distance(&x, &y, SquaredCost).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn metered_cdtw_counts_band_area() {
        use tsdtw_obs::WorkMeter;
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).sin()).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).cos()).collect();
        for band in [0, 2, 7, 40] {
            let mut meter = WorkMeter::new();
            let d = cdtw_distance_metered(&x, &y, band, SquaredCost, &mut meter).unwrap();
            assert_eq!(d, cdtw_distance(&x, &y, band, SquaredCost).unwrap());
            let area = SearchWindow::sakoe_chiba(40, 40, band).cell_count() as u64;
            assert_eq!(meter.window_cells, area, "band {band}");
            assert_eq!(meter.cells, area, "band {band}");
        }
    }

    #[test]
    fn evaluator_metered_matches_unmetered() {
        use tsdtw_obs::WorkMeter;
        let x = [0.0, 1.0, 4.0, 2.0, 1.0, 0.0];
        let y = [1.0, 0.0, 1.0, 4.0, 2.0, 1.0];
        let mut eval = BandedDtw::new(6, 6, 2).unwrap();
        let plain = eval.distance(&x, &y, SquaredCost).unwrap();
        let mut meter = WorkMeter::new();
        let metered = eval
            .distance_metered(&x, &y, SquaredCost, &mut meter)
            .unwrap();
        assert_eq!(plain, metered);
        assert_eq!(meter.cells, eval.cell_count() as u64);
    }

    #[test]
    fn auto_probe_is_gated_on_the_band_check() {
        use tsdtw_obs::WorkMeter;
        // Highly run-compressible pair: at full window the Auto probe
        // fires (and picks the block kernel), so an unconditionally
        // running probe would be visible in `rle.probes` on the banded
        // call too.
        let x = vec![1.0; 64];
        let y: Vec<f64> = (0..64).map(|i| if i < 32 { 1.0 } else { 2.0 }).collect();

        let mut banded_meter = WorkMeter::new();
        cdtw_distance_metered(&x, &y, 8, SquaredCost, &mut banded_meter).unwrap();
        assert_eq!(
            banded_meter.rle_probes, 0,
            "a banded call the block kernel can never serve must not probe"
        );
        assert!(banded_meter.cells > 0, "row sweep ran");

        let mut full_meter = WorkMeter::new();
        cdtw_distance_metered(&x, &y, 64, SquaredCost, &mut full_meter).unwrap();
        assert_eq!(full_meter.rle_probes, 1, "full window probes exactly once");
        assert!(full_meter.rle_runs > 0, "compressible pair routes to RLE");
        assert_eq!(full_meter.cells, 0, "block kernel fills no sweep cells");
    }

    #[test]
    fn evaluator_rejects_wrong_shape() {
        let mut eval = BandedDtw::new(4, 4, 1).unwrap();
        assert!(eval.distance(&[0.0; 5], &[0.0; 4], SquaredCost).is_err());
    }

    #[test]
    fn with_percent_uses_the_longer_length() {
        // The documented convention: for unequal lengths the percentage is
        // taken of max(n, m). Pin it by comparing the evaluator against the
        // radius-based API with an explicitly converted band.
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.4).cos()).collect();
        let w = 10.0;
        let band_long = percent_to_band(30, w).unwrap();
        let band_short = percent_to_band(12, w).unwrap();
        assert_ne!(band_long, band_short, "test needs the lengths to differ");
        let mut eval = BandedDtw::with_percent(30, 12, w).unwrap();
        let via_eval = eval.distance(&x, &y, SquaredCost).unwrap();
        let via_long = cdtw_distance(&x, &y, band_long, SquaredCost).unwrap();
        assert_eq!(via_eval.to_bits(), via_long.to_bits());
        // The wrong (shorter-length) conversion yields a narrower band and
        // here a different distance — the disagreement the doc warns about.
        let via_short = cdtw_distance(&x, &y, band_short, SquaredCost).unwrap();
        assert!(via_short >= via_long);
    }

    #[test]
    fn oversized_band_is_rejected_not_saturated() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0];
        for band in [usize::MAX, usize::MAX - 1, usize::MAX - 2] {
            assert!(
                cdtw_distance(&x, &y, band, SquaredCost).is_err(),
                "band {band}"
            );
            assert!(cdtw_with_path(&x, &y, band, SquaredCost).is_err());
            assert!(BandedDtw::new(3, 2, band).is_err());
        }
        // A merely over-wide band (larger than the matrix but no overflow)
        // still works and equals full DTW.
        let d = cdtw_distance(&x, &y, 1000, SquaredCost).unwrap();
        let full = dtw_distance(&x, &y, SquaredCost).unwrap();
        assert!((d - full).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_supported() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let y = [0.0, 2.0, 4.0, 6.0];
        for band in 0..=8 {
            let d = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
            assert!(d.is_finite());
        }
    }
}
