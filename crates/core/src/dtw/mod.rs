//! The exact DTW kernels: full, banded (Sakoe–Chiba) and arbitrarily
//! windowed dynamic programming, plus the early-abandoning variant used by
//! repeated-measurement workloads.
//!
//! Module map:
//!
//! * [`full`] — unconstrained DTW (`cDTW_100` in the paper's notation).
//! * [`banded`] — `cDTW_w`: DTW constrained to a Sakoe–Chiba band. This is
//!   "the algorithm FastDTW approximates is slower than" — the paper's
//!   protagonist.
//! * [`windowed`] — DTW over an arbitrary [`SearchWindow`]; both of the
//!   above reduce to it, and FastDTW's refinement step *is* it.
//! * [`early_abandon`] — banded DTW that gives up as soon as the best
//!   possible alignment already exceeds a best-so-far, one of the
//!   "cDTW-only" optimizations of Rakthanmanon et al. the paper credits
//!   with two to five further orders of magnitude.
//!
//! All of these fill their rows through the tiered sweep in the private
//! `sweep` module; [`kernel`] selects the tier (`Auto | Generic |
//! Segmented | Rle | Wavefront | Batched`) with a bitwise-equality
//! guarantee between tiers. The private `wavefront` module evaluates the
//! windowed DP in anti-diagonal lane order, and [`batch`] runs up to
//! [`batch::LANES`] same-length candidates against one query in
//! struct-of-lanes layout — the shape of the mining scans.
//!
//! [`SearchWindow`]: crate::window::SearchWindow

pub mod banded;
pub mod batch;
pub mod early_abandon;
pub mod full;
pub mod kernel;
pub mod pruned;
pub(crate) mod sweep;
pub(crate) mod wavefront;
pub mod windowed;

pub use banded::{cdtw_distance, cdtw_with_path, percent_to_band};
pub use early_abandon::cdtw_distance_ea;
pub use full::{dtw_distance, dtw_with_path};
pub use kernel::{default_kernel, set_default_kernel, Kernel};
pub use pruned::{pruned_dtw_auto, pruned_dtw_distance};
pub use windowed::{windowed_distance, windowed_with_path};
