//! PrunedDTW (Silva & Batista, SDM 2016): exact full DTW with cell
//! pruning against an upper bound.
//!
//! The paper's opening line notes "many ideas have been introduced to
//! reduce [DTW's] amortized time" — this is the canonical one for the
//! *unconstrained* case. Seed the DP with any upper bound `UB` on the
//! true distance (the squared Euclidean distance of the pair is always
//! admissible for equal lengths); cells whose accumulated cost already
//! exceeds `UB` can never be on the optimal path, and because accumulated
//! costs grow monotonically along rows, the un-pruned region of each row
//! stays a contiguous interval that can be tracked with two indices.
//! Unlike FastDTW this is **exact**: pruning only discards provably
//! suboptimal cells.

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Error, Result};

/// Exact unconstrained DTW with pruning against `upper_bound`.
///
/// `upper_bound` must be a true upper bound of `DTW(x, y)` in the
/// accumulated-cost domain (pre-[`CostFn::finish`]); pass
/// `f64::INFINITY` to disable pruning (plain full DTW). With a tight
/// bound, the explored region hugs the optimal path and the runtime drops
/// toward linear for well-aligned pairs.
// The DP below indexes both series by row/column and deliberately mutates
// `start` (row-region bookkeeping, not the loop bound) — iterator rewrites
// obscure the recurrence.
#[allow(clippy::needless_range_loop, clippy::mut_range_bound)]
pub fn pruned_dtw_distance<C: CostFn>(
    x: &[f64],
    y: &[f64],
    upper_bound: f64,
    cost: C,
) -> Result<f64> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    if upper_bound < 0.0 || upper_bound.is_nan() {
        return Err(Error::InvalidParameter {
            name: "upper_bound",
            reason: format!("must be a non-negative bound, got {upper_bound}"),
        });
    }
    let _span = tsdtw_obs::span("dtw_pruned");
    let n = x.len();
    let m = y.len();
    let ub = upper_bound;

    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    // Row 0.
    let mut acc = 0.0;
    let mut p_start = 0usize; // first un-pruned column of the previous row
    let mut p_end = 0usize; // one past the last un-pruned column
    for (j, &yj) in y.iter().enumerate() {
        acc += cost.cost(x[0], yj);
        if acc <= ub {
            prev[j] = acc;
            p_end = j + 1;
        } else {
            break; // row-0 costs only grow left to right
        }
    }
    if p_end == 0 {
        // Even the first cell exceeds the bound: the bound was not a true
        // upper bound unless the distance equals it; fall back to
        // reporting the bound-violating reality conservatively.
        return Err(Error::InvalidParameter {
            name: "upper_bound",
            reason: "bound below the cost of cell (0,0); not a valid upper bound".into(),
        });
    }

    for i in 1..n {
        let xi = x[i];
        let mut start = p_start;
        let mut end_this = start; // one past last un-pruned col this row
        let mut found_any = false;
        // Columns before p_start can never be reached cheaper than ub:
        // their only predecessors are pruned. Iterate from start.
        for j in start..m {
            let up = if j >= p_start && j < p_end {
                prev[j]
            } else {
                f64::INFINITY
            };
            let diag = if j > p_start && j - 1 < p_end {
                prev[j - 1]
            } else {
                f64::INFINITY
            };
            // cur was reset to infinity after the swap, so a pruned or
            // untouched left neighbor contributes nothing to the min.
            let left = if j > 0 { cur[j - 1] } else { f64::INFINITY };
            let best = diag.min(up).min(left);
            if !best.is_finite() {
                if found_any && j >= p_end {
                    // Past the previous row's region and no left
                    // predecessor survived: nothing further can unprune.
                    break;
                }
                cur[j] = f64::INFINITY;
                if !found_any {
                    start = j + 1;
                }
                continue;
            }
            let v = cost.cost(xi, y[j]) + best;
            if v <= ub {
                cur[j] = v;
                if !found_any {
                    found_any = true;
                    start = j;
                }
                end_this = j + 1;
            } else {
                cur[j] = f64::INFINITY;
                if !found_any {
                    start = j + 1;
                }
                if j >= p_end {
                    break;
                }
            }
        }
        if !found_any {
            // Every cell of this row exceeds the bound — with a valid
            // upper bound this cannot happen for the optimal path's row,
            // so the bound must have been invalid.
            return Err(Error::InvalidParameter {
                name: "upper_bound",
                reason: "pruning emptied a row; the bound was below the true distance".into(),
            });
        }
        std::mem::swap(&mut prev, &mut cur);
        for v in cur.iter_mut() {
            *v = f64::INFINITY;
        }
        p_start = start;
        p_end = end_this;
    }

    let d = prev[m - 1];
    if !d.is_finite() {
        return Err(Error::InvalidParameter {
            name: "upper_bound",
            reason: "end cell pruned; the bound was below the true distance".into(),
        });
    }
    Ok(cost.finish(d))
}

/// Convenience: PrunedDTW seeded with the squared Euclidean upper bound
/// (valid for equal-length series — the lock-step path is admissible).
pub fn pruned_dtw_auto<C: CostFn>(x: &[f64], y: &[f64], cost: C) -> Result<f64> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    check_nonempty("x", x)?;
    let ub: f64 = x.iter().zip(y).map(|(a, b)| cost.cost(*a, *b)).sum();
    pruned_dtw_distance(x, y, ub, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut v = 0.0;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v += ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                v
            })
            .collect()
    }

    #[test]
    fn matches_full_dtw_with_infinite_bound() {
        for seed in 0..10 {
            let x = rand_series(seed, 60);
            let y = rand_series(seed + 99, 60);
            let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
            let pruned = pruned_dtw_distance(&x, &y, f64::INFINITY, SquaredCost).unwrap();
            assert!((exact - pruned).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn matches_full_dtw_with_euclidean_bound() {
        for seed in 0..20 {
            let x = rand_series(seed, 50);
            let y = rand_series(seed + 500, 50);
            let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
            let pruned = pruned_dtw_auto(&x, &y, SquaredCost).unwrap();
            assert!(
                (exact - pruned).abs() < 1e-9,
                "seed {seed}: pruned {pruned} vs exact {exact}"
            );
        }
    }

    #[test]
    fn matches_full_dtw_with_exact_bound() {
        // The tightest valid bound: the true distance itself.
        for seed in 0..10 {
            let x = rand_series(seed + 31, 40);
            let y = rand_series(seed + 77, 40);
            let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
            let pruned = pruned_dtw_distance(&x, &y, exact + 1e-9, SquaredCost).unwrap();
            assert!((exact - pruned).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn rejects_invalid_bounds() {
        let x = rand_series(1, 30);
        let y: Vec<f64> = rand_series(2, 30).iter().map(|v| v + 10.0).collect();
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        // A bound below the true distance must be detected, not silently
        // return a wrong answer.
        assert!(pruned_dtw_distance(&x, &y, exact * 0.5, SquaredCost).is_err());
        assert!(pruned_dtw_distance(&x, &y, -1.0, SquaredCost).is_err());
        assert!(pruned_dtw_auto(&x, &y[..29], SquaredCost).is_err());
    }

    #[test]
    fn identical_series_prune_to_the_diagonal() {
        let x = rand_series(5, 200);
        let d = pruned_dtw_auto(&x, &x, SquaredCost).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn unequal_lengths_supported_with_explicit_bound() {
        let x = rand_series(7, 30);
        let y = rand_series(8, 45);
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        let pruned = pruned_dtw_distance(&x, &y, exact * 2.0, SquaredCost).unwrap();
        assert!((exact - pruned).abs() < 1e-9);
    }
}
