//! DTW restricted to an arbitrary [`SearchWindow`].
//!
//! This is the workhorse kernel of the crate: full DTW is the full window,
//! `cDTW_w` is the Sakoe–Chiba band window, and FastDTW's per-level
//! refinement is the projected-path window. Keeping one kernel guarantees
//! the paper's "same task, same code" comparison discipline — the exact and
//! approximate algorithms literally share their inner loop.
//!
//! The distance-only variant uses rolling two-row storage (`O(max row
//! width)` memory); the path variant additionally records one traceback byte
//! per admissible cell.
//!
//! Both kernels exist in `*_metered` form, generic over
//! [`Meter`]: the meter records evaluated cells,
//! admissible window cells, and peak scratch bytes. The plain entry
//! points delegate with [`NoMeter`], whose inlined
//! empty methods leave the un-instrumented code unchanged (the
//! `meter_ablation` bench group in `tsdtw-bench` guards this).
//!
//! Rows are filled by the tiered sweep in the private `sweep` module;
//! `*_kernel`
//! variants take an explicit [`Kernel`] tier, the plain forms consult the
//! process-wide default ([`super::kernel::default_kernel`]). Tiers are
//! bitwise-equal, so which one runs is observable only in wall-clock time.

// The DP kernels below index both series and both rolling rows by the
// column variable `j`; iterator-chain rewrites obscure the recurrence.
#![allow(clippy::needless_range_loop)]

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Error, Result};
use crate::matrix::WindowedDirections;
use crate::path::{Direction, WarpingPath};
use crate::window::SearchWindow;
use tsdtw_obs::{Meter, NoMeter};

use super::kernel::{default_kernel, Kernel};
use super::sweep;

/// Validates the series pair against the window dimensions.
fn check_inputs(x: &[f64], y: &[f64], window: &SearchWindow) -> Result<()> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    if window.n_rows() != x.len() || window.n_cols() != y.len() {
        return Err(Error::InvalidWindow {
            reason: format!(
                "window is {}x{} but series are {}x{}",
                window.n_rows(),
                window.n_cols(),
                x.len(),
                y.len()
            ),
        });
    }
    window.validate()
}

/// Reusable scratch buffers for the rolling-row DP.
///
/// Allocation-free repeated calls matter in the all-pairs and 1-NN
/// workloads (hundreds of thousands of DTW invocations); create one buffer
/// per worker thread and pass it to [`windowed_distance_with_buf`].
///
/// Besides the two DP rows the buffer memoizes the last Sakoe–Chiba
/// [`SearchWindow`] built through it, so the band entry points
/// ([`cdtw_distance_metered_with_buf`](super::banded::cdtw_distance_metered_with_buf)
/// and the early-abandoning variants) stop allocating entirely once
/// warmed on a fixed `(n, m, band)` shape — the contract
/// `tests/alloc_discipline.rs` enforces with the counting allocator.
#[derive(Debug, Default, Clone)]
pub struct DtwBuffer {
    pub(crate) prev: Vec<f64>,
    pub(crate) cur: Vec<f64>,
    /// Wavefront-tier rolling diagonals (`d-2`, `d-1`, `d`), length
    /// `n + 2`; empty unless [`Kernel::Wavefront`] has run through this
    /// buffer. See [`super::wavefront`].
    pub(crate) wf_prev2: Vec<f64>,
    pub(crate) wf_prev: Vec<f64>,
    pub(crate) wf_cur: Vec<f64>,
    /// Reversed copy of `y` so the wavefront lane loop reads all its
    /// streams with a forward stride.
    pub(crate) yrev: Vec<f64>,
    /// `(band, window)` of the last band built through this buffer.
    cached_window: Option<(usize, SearchWindow)>,
}

impl DtwBuffer {
    /// Creates an empty buffer; rows are grown on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of scratch currently reserved by the DP rows (plus the
    /// wavefront tier's diagonal buffers, if that tier has run). After a
    /// warm-up call this bounds the steady-state working set of every
    /// subsequent same-shape call (the `alloc_discipline` suite checks
    /// it against allocator-observed traffic).
    pub fn capacity_bytes(&self) -> usize {
        (self.prev.capacity()
            + self.cur.capacity()
            + self.wf_prev2.capacity()
            + self.wf_prev.capacity()
            + self.wf_cur.capacity()
            + self.yrev.capacity())
            * std::mem::size_of::<f64>()
    }

    /// Takes a Sakoe–Chiba window for an `n × m` matrix with the given
    /// band radius out of the buffer, reusing the memoized one when the
    /// shape matches (no allocation) and building it fresh otherwise.
    /// Return it with [`cache_window`](Self::cache_window) after use.
    pub fn take_sakoe_chiba(&mut self, n: usize, m: usize, band: usize) -> SearchWindow {
        match self.cached_window.take() {
            Some((b, w)) if b == band && w.n_rows() == n && w.n_cols() == m => w,
            _ => SearchWindow::sakoe_chiba(n, m, band),
        }
    }

    /// Memoizes `window` (built with band radius `band`) for the next
    /// [`take_sakoe_chiba`](Self::take_sakoe_chiba) of the same shape.
    pub fn cache_window(&mut self, band: usize, window: SearchWindow) {
        self.cached_window = Some((band, window));
    }

    /// Clears both DP rows and sizes them to exactly `width` slots of
    /// `+∞` — allocation-free once capacity has grown past `width`.
    pub(crate) fn reset_rows(&mut self, width: usize) {
        self.prev.clear();
        self.prev.resize(width, f64::INFINITY);
        self.cur.clear();
        self.cur.resize(width, f64::INFINITY);
    }
}

/// DTW distance over `window`, allocating its own scratch space.
pub fn windowed_distance<C: CostFn>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
) -> Result<f64> {
    let mut buf = DtwBuffer::new();
    windowed_distance_with_buf(x, y, window, cost, &mut buf)
}

/// [`windowed_distance`] with an explicit kernel tier.
pub fn windowed_distance_kernel<C: CostFn>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    kernel: Kernel,
) -> Result<f64> {
    let mut buf = DtwBuffer::new();
    windowed_distance_metered_kernel(x, y, window, cost, &mut buf, &mut NoMeter, kernel)
}

/// DTW distance over `window`, reusing caller-provided scratch space.
pub fn windowed_distance_with_buf<C: CostFn>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    buf: &mut DtwBuffer,
) -> Result<f64> {
    windowed_distance_metered(x, y, window, cost, buf, &mut NoMeter)
}

/// [`windowed_distance_with_buf`] with work accounting: evaluated cells,
/// admissible window cells, and peak scratch bytes are recorded on
/// `meter`. (For this kernel evaluated equals admissible — every
/// in-window cell is filled; the early-abandoning kernel is where the
/// two diverge.)
pub fn windowed_distance_metered<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    buf: &mut DtwBuffer,
    meter: &mut M,
) -> Result<f64> {
    windowed_distance_metered_kernel(x, y, window, cost, buf, meter, default_kernel())
}

/// [`windowed_distance_metered`] with an explicit kernel tier. All meter
/// counters are recorded from the window bounds alone, so they are
/// identical at every tier.
pub fn windowed_distance_metered_kernel<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    buf: &mut DtwBuffer,
    meter: &mut M,
    kernel: Kernel,
) -> Result<f64> {
    check_inputs(x, y, window)?;
    let _span = tsdtw_obs::span("dtw_windowed");
    if kernel == Kernel::Wavefront {
        // Anti-diagonal evaluation; bitwise-equal and meter-identical to
        // the row sweep below (module docs carry the proof). Only the
        // explicit tier routes here — `Auto` stays on the row sweep.
        return super::wavefront::wavefront_distance(x, y, window, cost, buf, meter);
    }
    let n = x.len();

    let width = window.max_row_width();
    buf.reset_rows(width);
    meter.dp_buffer_bytes(2 * width as u64 * std::mem::size_of::<f64>() as u64);

    // Row 0: plain prefix sums along the admissible interval (lo must be 0).
    let (lo0, hi0) = window.row_bounds(0);
    debug_assert_eq!(lo0, 0);
    let x0 = x[0];
    let mut acc = 0.0;
    for (k, j) in (lo0..=hi0).enumerate() {
        acc += cost.cost(x0, y[j]);
        buf.prev[k] = acc;
    }
    meter.window_cells((hi0 - lo0 + 1) as u64);
    meter.cells((hi0 - lo0 + 1) as u64);
    let mut plo = lo0;
    let mut phi = hi0;

    let segmented = kernel.segmented::<C>();
    for (i, &xi) in x.iter().enumerate().skip(1) {
        let (lo, hi) = window.row_bounds(i);
        meter.window_cells((hi - lo + 1) as u64);
        meter.cells((hi - lo + 1) as u64);
        sweep::distance_row(
            segmented,
            xi,
            y,
            lo,
            hi,
            plo,
            phi,
            &buf.prev,
            &mut buf.cur,
            cost,
        );
        std::mem::swap(&mut buf.prev, &mut buf.cur);
        plo = lo;
        phi = hi;
    }

    let (lo_last, hi_last) = window.row_bounds(n - 1);
    debug_assert_eq!(hi_last, y.len() - 1);
    Ok(cost.finish(buf.prev[hi_last - lo_last]))
}

/// DTW distance *and* optimal warping path over `window`.
///
/// Records one direction byte per admissible cell (ties broken in favour of
/// the diagonal, then the vertical step, matching the classic presentation)
/// and walks it back from `(n-1, m-1)`.
pub fn windowed_with_path<C: CostFn>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
) -> Result<(f64, WarpingPath)> {
    windowed_with_path_metered(x, y, window, cost, &mut NoMeter)
}

/// [`windowed_with_path`] with an explicit kernel tier.
pub fn windowed_with_path_kernel<C: CostFn>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    kernel: Kernel,
) -> Result<(f64, WarpingPath)> {
    windowed_with_path_metered_kernel(x, y, window, cost, &mut NoMeter, kernel)
}

/// [`windowed_with_path`] with work accounting. The peak-buffer figure
/// includes the traceback byte per admissible cell on top of the two
/// rolling rows.
pub fn windowed_with_path_metered<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    meter: &mut M,
) -> Result<(f64, WarpingPath)> {
    windowed_with_path_metered_kernel(x, y, window, cost, meter, default_kernel())
}

/// [`windowed_with_path_metered`] with an explicit kernel tier. Both the
/// distance and the traced path are tier-invariant (the tie-break runs on
/// bitwise-identical neighbor values).
pub fn windowed_with_path_metered_kernel<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    meter: &mut M,
    kernel: Kernel,
) -> Result<(f64, WarpingPath)> {
    check_inputs(x, y, window)?;
    let _span = tsdtw_obs::span("dtw_windowed");
    let n = x.len();
    let m = y.len();

    let mut dirs = WindowedDirections::for_window(window);
    let mut buf = DtwBuffer::new();
    let total_cells = window.cell_count() as u64;
    let width = window.max_row_width();
    buf.prev.resize(width, f64::INFINITY);
    buf.cur.resize(width, f64::INFINITY);
    meter.window_cells(total_cells);
    meter.cells(total_cells);
    meter.dp_buffer_bytes(2 * width as u64 * std::mem::size_of::<f64>() as u64 + total_cells);

    let (lo0, hi0) = window.row_bounds(0);
    let x0 = x[0];
    let mut acc = 0.0;
    for (k, j) in (lo0..=hi0).enumerate() {
        acc += cost.cost(x0, y[j]);
        buf.prev[k] = acc;
        dirs.set(
            0,
            j,
            if j == 0 {
                Direction::Diagonal
            } else {
                Direction::Left
            },
        );
    }
    let mut plo = lo0;
    let mut phi = hi0;

    let segmented = kernel.segmented::<C>();
    for (i, &xi) in x.iter().enumerate().skip(1) {
        let (lo, hi) = window.row_bounds(i);
        sweep::path_row(
            segmented,
            i,
            xi,
            y,
            lo,
            hi,
            plo,
            phi,
            &buf.prev,
            &mut buf.cur,
            &mut dirs,
            cost,
        );
        std::mem::swap(&mut buf.prev, &mut buf.cur);
        plo = lo;
        phi = hi;
    }

    let (lo_last, _) = window.row_bounds(n - 1);
    let dist = cost.finish(buf.prev[m - 1 - lo_last]);
    let cells = dirs.traceback((n - 1, m - 1));
    let path = WarpingPath::new(cells).expect("DP traceback produces valid paths");
    Ok((dist, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AbsoluteCost, SquaredCost};

    /// Textbook O(n·m) reference DP, kept deliberately naive.
    fn reference_dtw(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let m = y.len();
        let mut d = vec![vec![f64::INFINITY; m + 1]; n + 1];
        d[0][0] = 0.0;
        for i in 1..=n {
            for j in 1..=m {
                let c = (x[i - 1] - y[j - 1]).powi(2);
                d[i][j] = c + d[i - 1][j - 1].min(d[i - 1][j]).min(d[i][j - 1]);
            }
        }
        d[n][m]
    }

    #[test]
    fn matches_reference_on_small_examples() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[0.0], &[0.0]),
            (&[0.0], &[5.0]),
            (&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]),
            (&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]),
            (
                &[0.0, 1.0, 2.0, 3.0, 2.0, 1.0],
                &[0.0, 0.0, 1.0, 2.0, 3.0, 2.0],
            ),
            (&[1.0, 1.0, 1.0, 10.0], &[1.0, 10.0]),
        ];
        for (x, y) in cases {
            let w = SearchWindow::full(x.len(), y.len());
            let got = windowed_distance(x, y, &w, SquaredCost).unwrap();
            let want = reference_dtw(x, y);
            assert!(
                (got - want).abs() < 1e-12,
                "x={x:?} y={y:?}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let x = [0.5, 1.5, -2.0, 3.25, 0.0];
        let w = SearchWindow::full(5, 5);
        assert_eq!(windowed_distance(&x, &x, &w, SquaredCost).unwrap(), 0.0);
    }

    #[test]
    fn rejects_empty_series() {
        let w = SearchWindow::full(1, 1);
        assert!(windowed_distance(&[], &[0.0], &w, SquaredCost).is_err());
        assert!(windowed_distance(&[0.0], &[], &w, SquaredCost).is_err());
    }

    #[test]
    fn rejects_nan_input() {
        let w = SearchWindow::full(2, 2);
        assert!(windowed_distance(&[0.0, f64::NAN], &[0.0, 1.0], &w, SquaredCost).is_err());
    }

    #[test]
    fn rejects_mismatched_window() {
        let w = SearchWindow::full(3, 3);
        let r = windowed_distance(&[0.0, 1.0], &[0.0, 1.0, 2.0], &w, SquaredCost);
        assert!(matches!(r, Err(Error::InvalidWindow { .. })));
    }

    #[test]
    fn path_variant_agrees_with_distance_variant() {
        let x = [0.0, 1.0, 3.0, 2.0, 0.0, -1.0];
        let y = [0.0, 0.5, 1.0, 3.5, 2.0, 0.0];
        let w = SearchWindow::full(x.len(), y.len());
        let d = windowed_distance(&x, &y, &w, SquaredCost).unwrap();
        let (dp, path) = windowed_with_path(&x, &y, &w, SquaredCost).unwrap();
        assert!((d - dp).abs() < 1e-12);
        assert!(path.validate_for(x.len(), y.len()).is_ok());
        // The path's replayed cost must equal the reported distance.
        let replay = path.replay_cost(&x, &y, SquaredCost).unwrap();
        assert!((replay - d).abs() < 1e-12);
    }

    #[test]
    fn narrow_window_never_beats_full_window() {
        let x = [0.0, 2.0, 4.0, 1.0, 0.0, 3.0, 5.0, 2.0];
        let y = [1.0, 0.0, 2.0, 4.0, 1.0, 0.0, 3.0, 5.0];
        let full = SearchWindow::full(8, 8);
        let d_full = windowed_distance(&x, &y, &full, SquaredCost).unwrap();
        for band in 0..8 {
            let w = SearchWindow::sakoe_chiba(8, 8, band);
            let d = windowed_distance(&x, &y, &w, SquaredCost).unwrap();
            assert!(d >= d_full - 1e-12, "band {band}: {d} < full {d_full}");
        }
    }

    #[test]
    fn absolute_cost_supported() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 2.0, 2.0];
        let w = SearchWindow::full(3, 3);
        // Optimal: (0,0)=0, then warp 1 against 2 region: |1-2| = 1 best case.
        let d = windowed_distance(&x, &y, &w, AbsoluteCost).unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn buffer_reuse_gives_identical_results() {
        let x = [0.0, 1.0, 2.0, 1.5];
        let y = [0.5, 1.0, 2.5, 1.0];
        let w = SearchWindow::full(4, 4);
        let mut buf = DtwBuffer::new();
        let a = windowed_distance_with_buf(&x, &y, &w, SquaredCost, &mut buf).unwrap();
        let b = windowed_distance_with_buf(&x, &y, &w, SquaredCost, &mut buf).unwrap();
        let c = windowed_distance(&x, &y, &w, SquaredCost).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn meter_counts_exact_window_area() {
        use tsdtw_obs::WorkMeter;
        let x = [0.0, 1.0, 2.0, 1.5, 0.5];
        let y = [0.5, 1.0, 2.5, 1.0, 0.0];
        let w = SearchWindow::sakoe_chiba(5, 5, 1);
        let mut buf = DtwBuffer::new();
        let mut meter = WorkMeter::new();
        let d = windowed_distance_metered(&x, &y, &w, SquaredCost, &mut buf, &mut meter).unwrap();
        assert_eq!(d, windowed_distance(&x, &y, &w, SquaredCost).unwrap());
        assert_eq!(meter.window_cells, w.cell_count() as u64);
        assert_eq!(meter.cells, meter.window_cells);
        assert!(meter.dp_peak_bytes > 0);

        let mut pmeter = WorkMeter::new();
        let (dp, _) = windowed_with_path_metered(&x, &y, &w, SquaredCost, &mut pmeter).unwrap();
        assert_eq!(dp, d);
        assert_eq!(pmeter.cells, w.cell_count() as u64);
    }

    #[test]
    fn rectangular_series_supported() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.0, 2.5, 5.0];
        let w = SearchWindow::full(6, 3);
        let (d, path) = windowed_with_path(&x, &y, &w, SquaredCost).unwrap();
        assert!(d.is_finite());
        assert!(path.validate_for(6, 3).is_ok());
    }
}
