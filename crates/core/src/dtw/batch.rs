//! Query-batched banded DTW: one query against up to [`LANES`]
//! same-length candidates in struct-of-lanes layout.
//!
//! The mining scans (1-NN / k-NN brute force, LOOCV, the all-pairs
//! matrix) all have the same shape: one series compared against many
//! independent candidates. The scalar kernel is latency-bound — every
//! interior cell waits on the three-way min of the cell to its left —
//! so its throughput is capped by the dependence chain, not by ALU
//! width. Running [`LANES`] *independent* DPs in lockstep breaks that
//! cap: each lane carries its own chain, the per-cell loop over lanes
//! has no cross-lane dependency, and the compiler autovectorizes the
//! `[f64; LANES]` arithmetic (no unstable features).
//!
//! **Bitwise equality.** Lane `l` executes exactly the scalar banded
//! recurrence of `(x, ys[l])`: the same Sakoe–Chiba window (shared —
//! all candidates have equal length), the same guarded `+∞`
//! substitutions, the same `cost + diag.min(up).min(left)` expression,
//! and the same row-0 prefix sum. Interleaving independent scalar
//! computations does not change any of their intermediate values, so
//! every lane's distance is bitwise equal to
//! [`cdtw_distance`](super::banded::cdtw_distance) on that pair —
//! `tests/kernel_equivalence.rs` locks this per lane.
//!
//! **Metering.** Counters are recorded *per active lane* with the same
//! values the scalar entry points fold (window area, filled cells,
//! two-logical-rows scratch), so a batched scan's `WorkMeter` equals
//! the scalar scan's except for the two `batch.*` counters
//! ([`Meter::batch_group`]) that exist only on this path. Padding
//! lanes (when fewer than [`LANES`] candidates remain) replicate lane 0
//! and are never metered or reported.
//!
//! The early-abandoning variant [`cdtw_batch_ea_metered`] carries a
//! per-lane alive mask: each lane folds its row minimum left-to-right
//! in column order — the abandon-test fold-order contract of the
//! scalar kernel ([`super::early_abandon`]) — and drops out of the
//! metering exactly at the row where the scalar kernel would abandon,
//! so per-lane outcomes, `rows_filled`, and `ea.*` counters all match
//! the scalar kernel with the same thresholds.

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Error, Result};
use crate::window::SearchWindow;
use tsdtw_obs::{Meter, NoMeter};

use super::banded::check_band;
use super::early_abandon::EaOutcome;

/// Number of candidate lanes per batched call. Eight f64 lanes match
/// the widest vector unit this crate targets and keep the struct-of-
/// lanes rows cache-resident for the band widths the experiments use.
pub const LANES: usize = 8;

/// Reusable scratch for the batched kernel: two struct-of-lanes DP
/// rows, the lane-transposed candidate block, and the memoized band
/// window (same contract as
/// [`DtwBuffer`](super::windowed::DtwBuffer) — a warmed fixed-shape
/// scan loop runs allocation-free).
#[derive(Debug, Default, Clone)]
pub struct BatchBuffer {
    prev: Vec<[f64; LANES]>,
    cur: Vec<[f64; LANES]>,
    /// `yt[j][l]` = candidate `l`'s column `j`.
    yt: Vec<[f64; LANES]>,
    cached_window: Option<(usize, SearchWindow)>,
}

impl BatchBuffer {
    /// Creates an empty buffer; scratch grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of scratch currently reserved.
    pub fn capacity_bytes(&self) -> usize {
        (self.prev.capacity() + self.cur.capacity() + self.yt.capacity())
            * std::mem::size_of::<[f64; LANES]>()
    }

    fn take_window(&mut self, n: usize, m: usize, band: usize) -> SearchWindow {
        match self.cached_window.take() {
            Some((b, w)) if b == band && w.n_rows() == n && w.n_cols() == m => w,
            _ => SearchWindow::sakoe_chiba(n, m, band),
        }
    }

    /// Transposes `ys` into lane-major layout; padding lanes replicate
    /// the first candidate (computed but never metered or reported).
    fn load(&mut self, ys: &[&[f64]]) {
        let m = ys[0].len();
        self.yt.clear();
        self.yt.resize(m, [0.0; LANES]);
        for l in 0..LANES {
            let y = ys.get(l).copied().unwrap_or(ys[0]);
            for (j, &v) in y.iter().enumerate() {
                self.yt[j][l] = v;
            }
        }
    }

    fn reset_rows(&mut self, width: usize) {
        self.prev.clear();
        self.prev.resize(width, [f64::INFINITY; LANES]);
        self.cur.clear();
        self.cur.resize(width, [f64::INFINITY; LANES]);
    }
}

/// Validates a batched call; returns the common candidate length.
fn check_batch(x: &[f64], ys: &[&[f64]], band: usize) -> Result<usize> {
    check_nonempty("x", x)?;
    check_finite("x", x)?;
    if ys.is_empty() || ys.len() > LANES {
        return Err(Error::InvalidParameter {
            name: "ys",
            reason: format!("batch holds 1..={LANES} candidates, got {}", ys.len()),
        });
    }
    let m = ys[0].len();
    for y in ys {
        check_nonempty("y", y)?;
        check_finite("y", y)?;
        if y.len() != m {
            return Err(Error::InvalidParameter {
                name: "ys",
                reason: format!(
                    "batched candidates must share one length, got {} and {}",
                    m,
                    y.len()
                ),
            });
        }
    }
    check_band(x.len(), m, band)?;
    Ok(m)
}

/// `cDTW_band` of `x` against every candidate in `ys` (all of one
/// length), written to `out` in candidate order. Each `out[l]` is
/// bitwise equal to `cdtw_distance(x, ys[l], band, cost)`.
pub fn cdtw_batch_distances<C: CostFn>(
    x: &[f64],
    ys: &[&[f64]],
    band: usize,
    cost: C,
    out: &mut [f64],
) -> Result<()> {
    let mut buf = BatchBuffer::new();
    cdtw_batch_distances_metered(x, ys, band, cost, out, &mut buf, &mut NoMeter)
}

/// [`cdtw_batch_distances`] with reusable scratch and work accounting.
/// Per-lane counters match the scalar entry point; one
/// [`Meter::batch_group`] records the group on top.
pub fn cdtw_batch_distances_metered<C: CostFn, M: Meter>(
    x: &[f64],
    ys: &[&[f64]],
    band: usize,
    cost: C,
    out: &mut [f64],
    buf: &mut BatchBuffer,
    meter: &mut M,
) -> Result<()> {
    let m = check_batch(x, ys, band)?;
    let active = ys.len();
    if out.len() != active {
        return Err(Error::InvalidParameter {
            name: "out",
            reason: format!("{} slots for {} candidates", out.len(), active),
        });
    }
    let _span = tsdtw_obs::span("dtw_batch");
    let n = x.len();
    let window = buf.take_window(n, m, band);

    let width = window.max_row_width();
    let area = window.cell_count() as u64;
    meter.batch_group(active as u64);
    for _ in 0..active {
        meter.window_cells(area);
        meter.cells(area);
        meter.dp_buffer_bytes(2 * width as u64 * std::mem::size_of::<f64>() as u64);
    }

    buf.load(ys);
    buf.reset_rows(width);

    // Row 0: per-lane prefix sums, identical to the scalar row-0 loop.
    let (lo0, hi0) = window.row_bounds(0);
    debug_assert_eq!(lo0, 0);
    let x0 = x[0];
    let mut acc = [0.0f64; LANES];
    for (k, j) in (lo0..=hi0).enumerate() {
        let yj = buf.yt[j];
        for l in 0..LANES {
            acc[l] += cost.cost(x0, yj[l]);
        }
        buf.prev[k] = acc;
    }
    let mut plo = lo0;
    let mut phi = hi0;

    for (i, &xi) in x.iter().enumerate().skip(1) {
        let (lo, hi) = window.row_bounds(i);
        batch_row(xi, &buf.yt, lo, hi, plo, phi, &buf.prev, &mut buf.cur, cost);
        std::mem::swap(&mut buf.prev, &mut buf.cur);
        plo = lo;
        phi = hi;
    }

    let (lo_last, hi_last) = window.row_bounds(n - 1);
    debug_assert_eq!(hi_last, m - 1);
    for (l, slot) in out.iter_mut().enumerate() {
        *slot = cost.finish(buf.prev[hi_last - lo_last][l]);
    }
    buf.cached_window = Some((band, window));
    Ok(())
}

/// One interior DP row across all lanes: the guarded scalar recurrence,
/// lane-vectorized. The `left` predecessor rides in a register.
#[allow(clippy::too_many_arguments)]
fn batch_row<C: CostFn>(
    xi: f64,
    yt: &[[f64; LANES]],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[[f64; LANES]],
    cur: &mut [[f64; LANES]],
    cost: C,
) {
    const INF_ROW: [f64; LANES] = [f64::INFINITY; LANES];
    let mut left = INF_ROW;
    for j in lo..=hi {
        let up = if j >= plo && j <= phi {
            prev[j - plo]
        } else {
            INF_ROW
        };
        let diag = if j > plo && j - 1 <= phi {
            prev[j - 1 - plo]
        } else {
            INF_ROW
        };
        let yj = yt[j];
        let mut v = [0.0f64; LANES];
        for l in 0..LANES {
            v[l] = cost.cost(xi, yj[l]) + diag[l].min(up[l]).min(left[l]);
        }
        cur[j - lo] = v;
        left = v;
    }
}

/// Early-abandoning batched `cDTW_band`: per-lane thresholds, optional
/// per-lane cumulative bounds (each of the candidate's length, as in
/// the scalar kernel), per-lane outcomes. Lane `l` abandons at exactly
/// the row `cdtw_distance_ea(x, ys[l], band, thresholds[l], cb_l, ..)`
/// abandons at, and completed lanes return the bitwise-equal exact
/// distance; `ea.*`/`cells` counters fold only over rows a lane was
/// still alive for, matching the scalar kernel per lane.
#[allow(clippy::too_many_arguments)]
pub fn cdtw_batch_ea_metered<C: CostFn, M: Meter>(
    x: &[f64],
    ys: &[&[f64]],
    band: usize,
    thresholds: &[f64],
    cbs: Option<&[&[f64]]>,
    cost: C,
    buf: &mut BatchBuffer,
    meter: &mut M,
) -> Result<Vec<EaOutcome>> {
    let m = check_batch(x, ys, band)?;
    let active = ys.len();
    if thresholds.len() != active {
        return Err(Error::InvalidParameter {
            name: "thresholds",
            reason: format!("{} thresholds for {} candidates", thresholds.len(), active),
        });
    }
    if let Some(cbs) = cbs {
        if cbs.len() != active {
            return Err(Error::InvalidParameter {
                name: "cbs",
                reason: format!("{} cumulative bounds for {} candidates", cbs.len(), active),
            });
        }
        for cb in cbs {
            if cb.len() != m {
                return Err(Error::InvalidParameter {
                    name: "cb",
                    reason: format!(
                        "cumulative bound has {} entries for a candidate of {} columns",
                        cb.len(),
                        m
                    ),
                });
            }
        }
    }
    let _span = tsdtw_obs::span("dtw_batch");
    let n = x.len();
    let window = buf.take_window(n, m, band);
    let band_area = window.cell_count() as u64;
    let width = window.max_row_width();
    meter.batch_group(active as u64);
    for _ in 0..active {
        meter.window_cells(band_area);
        meter.dp_buffer_bytes(2 * width as u64 * std::mem::size_of::<f64>() as u64);
    }

    buf.load(ys);
    buf.reset_rows(width);

    // The scalar kernel's suffix-bound index: columns beyond `row + band`
    // are unvisited after filling `row`.
    let suffix_bound = |l: usize, row: usize| {
        cbs.map_or(0.0, |cbs| {
            let k = row + band + 1;
            if k < m {
                cbs[l][k]
            } else {
                0.0
            }
        })
    };

    let mut outcome = vec![EaOutcome::Exact(f64::NAN); active];
    let mut alive = [false; LANES];
    alive[..active].fill(true);

    // Row 0: prefix sums with the left-to-right row-minimum fold.
    let (lo0, hi0) = window.row_bounds(0);
    let x0 = x[0];
    let mut acc = [0.0f64; LANES];
    let mut row_min = [f64::INFINITY; LANES];
    for (k, j) in (lo0..=hi0).enumerate() {
        let yj = buf.yt[j];
        for l in 0..LANES {
            acc[l] += cost.cost(x0, yj[l]);
            row_min[l] = row_min[l].min(acc[l]);
        }
        buf.prev[k] = acc;
    }
    let mut n_alive = active;
    for l in 0..active {
        meter.cells((hi0 - lo0 + 1) as u64);
        if row_min[l] + suffix_bound(l, 0) > thresholds[l] {
            meter.ea_rows(1, n as u64);
            outcome[l] = EaOutcome::Abandoned { rows_filled: 1 };
            alive[l] = false;
            n_alive -= 1;
        }
    }
    let mut plo = lo0;
    let mut phi = hi0;

    for (i, &xi) in x.iter().enumerate().skip(1) {
        if n_alive == 0 {
            break;
        }
        let (lo, hi) = window.row_bounds(i);
        for &live in alive.iter().take(active) {
            if live {
                meter.cells((hi - lo + 1) as u64);
            }
        }
        // Fill the row for every lane (dead lanes are masked out of the
        // abandon test and the meters, not out of the arithmetic — the
        // lockstep fill is what keeps the loop vector-shaped).
        const INF_ROW: [f64; LANES] = [f64::INFINITY; LANES];
        row_min = INF_ROW;
        let mut left = INF_ROW;
        for j in lo..=hi {
            let up = if j >= plo && j <= phi {
                buf.prev[j - plo]
            } else {
                INF_ROW
            };
            let diag = if j > plo && j - 1 <= phi {
                buf.prev[j - 1 - plo]
            } else {
                INF_ROW
            };
            let yj = buf.yt[j];
            let mut v = [0.0f64; LANES];
            for l in 0..LANES {
                v[l] = cost.cost(xi, yj[l]) + diag[l].min(up[l]).min(left[l]);
                row_min[l] = row_min[l].min(v[l]);
            }
            buf.cur[j - lo] = v;
            left = v;
        }
        for l in 0..active {
            if alive[l] && row_min[l] + suffix_bound(l, i) > thresholds[l] {
                meter.ea_rows((i + 1) as u64, n as u64);
                outcome[l] = EaOutcome::Abandoned { rows_filled: i + 1 };
                alive[l] = false;
                n_alive -= 1;
            }
        }
        std::mem::swap(&mut buf.prev, &mut buf.cur);
        plo = lo;
        phi = hi;
    }

    if n_alive > 0 {
        let (lo_last, _) = window.row_bounds(n - 1);
        for (l, slot) in outcome.iter_mut().enumerate() {
            if alive[l] {
                meter.ea_rows(n as u64, n as u64);
                *slot = EaOutcome::Exact(cost.finish(buf.prev[m - 1 - lo_last][l]));
            }
        }
    }
    buf.cached_window = Some((band, window));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AbsoluteCost, SquaredCost};
    use crate::dtw::banded::cdtw_distance;
    use crate::dtw::early_abandon::cdtw_distance_ea_metered;
    use tsdtw_obs::WorkMeter;

    fn series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    /// Meter with the `batch.*` counters cleared, for comparison against
    /// scalar scans (which cannot record them).
    fn sans_batch(mut m: WorkMeter) -> WorkMeter {
        m.batch_groups = 0;
        m.batch_lanes = 0;
        m
    }

    #[test]
    fn every_lane_is_bitwise_equal_to_the_scalar_kernel() {
        let x = series(40, 1);
        let cands: Vec<Vec<f64>> = (0..LANES as u64).map(|s| series(40, 10 + s)).collect();
        for band in [0usize, 1, 4, 13, 40] {
            for group in 1..=LANES {
                let ys: Vec<&[f64]> = cands[..group].iter().map(|c| c.as_slice()).collect();
                let mut out = vec![0.0; group];
                cdtw_batch_distances(&x, &ys, band, SquaredCost, &mut out).unwrap();
                for (l, y) in ys.iter().enumerate() {
                    let scalar = cdtw_distance(&x, y, band, SquaredCost).unwrap();
                    assert_eq!(
                        out[l].to_bits(),
                        scalar.to_bits(),
                        "band {band} group {group} lane {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn unequal_query_and_candidate_lengths_supported() {
        let x = series(31, 2);
        let cands: Vec<Vec<f64>> = (0..5u64).map(|s| series(17, 20 + s)).collect();
        let ys: Vec<&[f64]> = cands.iter().map(|c| c.as_slice()).collect();
        for band in [16usize, 20, 31] {
            let mut out = vec![0.0; ys.len()];
            cdtw_batch_distances(&x, &ys, band, AbsoluteCost, &mut out).unwrap();
            for (l, y) in ys.iter().enumerate() {
                let scalar = cdtw_distance(&x, y, band, AbsoluteCost).unwrap();
                assert_eq!(out[l].to_bits(), scalar.to_bits(), "band {band} lane {l}");
            }
        }
    }

    #[test]
    fn meters_match_the_scalar_scan_except_batch_counters() {
        let x = series(24, 3);
        let cands: Vec<Vec<f64>> = (0..6u64).map(|s| series(24, 30 + s)).collect();
        let ys: Vec<&[f64]> = cands.iter().map(|c| c.as_slice()).collect();
        let band = 5;

        let mut scalar = WorkMeter::new();
        for y in &cands {
            crate::dtw::banded::cdtw_distance_metered(&x, y, band, SquaredCost, &mut scalar)
                .unwrap();
        }
        let mut batched = WorkMeter::new();
        let mut out = vec![0.0; ys.len()];
        let mut buf = BatchBuffer::new();
        cdtw_batch_distances_metered(&x, &ys, band, SquaredCost, &mut out, &mut buf, &mut batched)
            .unwrap();
        assert_eq!(batched.batch_groups, 1);
        assert_eq!(batched.batch_lanes, 6);
        assert_eq!(sans_batch(batched), scalar, "padding lanes must not meter");
    }

    #[test]
    fn warmed_buffer_reuse_is_identical() {
        let x = series(20, 4);
        let cands: Vec<Vec<f64>> = (0..4u64).map(|s| series(20, 40 + s)).collect();
        let ys: Vec<&[f64]> = cands.iter().map(|c| c.as_slice()).collect();
        let mut buf = BatchBuffer::new();
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        cdtw_batch_distances_metered(&x, &ys, 3, SquaredCost, &mut a, &mut buf, &mut NoMeter)
            .unwrap();
        cdtw_batch_distances_metered(&x, &ys, 3, SquaredCost, &mut b, &mut buf, &mut NoMeter)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ea_outcomes_and_meters_match_the_scalar_kernel_per_lane() {
        let x = series(60, 5);
        // A mix of near and far candidates so some lanes abandon early,
        // some late, some complete.
        let cands: Vec<Vec<f64>> = (0..LANES as u64)
            .map(|s| {
                let shift = if s % 3 == 0 { 0.0 } else { s as f64 };
                series(60, 50 + s).iter().map(|v| v + shift).collect()
            })
            .collect();
        let ys: Vec<&[f64]> = cands.iter().map(|c| c.as_slice()).collect();
        let band = 6;
        let exact: Vec<f64> = cands
            .iter()
            .map(|y| cdtw_distance(&x, y, band, SquaredCost).unwrap())
            .collect();
        let thresholds: Vec<f64> = exact
            .iter()
            .enumerate()
            .map(|(l, d)| match l % 3 {
                0 => d * 1.5,
                1 => d * 0.5,
                _ => d * 0.05,
            })
            .collect();

        let mut scalar = WorkMeter::new();
        let scalar_out: Vec<EaOutcome> = cands
            .iter()
            .zip(&thresholds)
            .map(|(y, &t)| {
                cdtw_distance_ea_metered(&x, y, band, t, None, SquaredCost, &mut scalar).unwrap()
            })
            .collect();

        let mut batched = WorkMeter::new();
        let mut buf = BatchBuffer::new();
        let got = cdtw_batch_ea_metered(
            &x,
            &ys,
            band,
            &thresholds,
            None,
            SquaredCost,
            &mut buf,
            &mut batched,
        )
        .unwrap();
        assert!(got.iter().any(|o| matches!(o, EaOutcome::Abandoned { .. })));
        assert!(got.iter().any(|o| matches!(o, EaOutcome::Exact(_))));
        for (l, (g, s)) in got.iter().zip(&scalar_out).enumerate() {
            match (g, s) {
                (EaOutcome::Exact(a), EaOutcome::Exact(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "lane {l}")
                }
                (a, b) => assert_eq!(a, b, "lane {l}"),
            }
        }
        assert_eq!(sans_batch(batched), scalar);
    }

    #[test]
    fn ea_respects_per_lane_cumulative_bounds() {
        let x = series(50, 6);
        let cands: Vec<Vec<f64>> = (0..3u64)
            .map(|s| series(50, 60 + s).iter().map(|v| v + 2.0).collect())
            .collect();
        let ys: Vec<&[f64]> = cands.iter().map(|c| c.as_slice()).collect();
        let band = 5;
        let cb: Vec<f64> = (0..50).rev().map(|k| k as f64 * 0.5).collect();
        let cbs: Vec<&[f64]> = vec![&cb; 3];
        let thresholds = vec![1.0; 3];
        let mut buf = BatchBuffer::new();
        let got = cdtw_batch_ea_metered(
            &x,
            &ys,
            band,
            &thresholds,
            Some(&cbs),
            SquaredCost,
            &mut buf,
            &mut NoMeter,
        )
        .unwrap();
        for (l, y) in cands.iter().enumerate() {
            let s = cdtw_distance_ea_metered(
                &x,
                y,
                band,
                thresholds[l],
                Some(&cb),
                SquaredCost,
                &mut NoMeter,
            )
            .unwrap();
            assert_eq!(got[l], s, "lane {l}");
        }
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let x = series(10, 7);
        let a = series(10, 8);
        let b = series(9, 9);
        let mut out = vec![0.0; 2];
        // Mixed candidate lengths.
        assert!(cdtw_batch_distances(&x, &[&a, &b], 3, SquaredCost, &mut out).is_err());
        // Empty and oversized groups.
        assert!(cdtw_batch_distances(&x, &[], 3, SquaredCost, &mut []).is_err());
        let too_many: Vec<&[f64]> = (0..LANES + 1).map(|_| a.as_slice()).collect();
        let mut big = vec![0.0; LANES + 1];
        assert!(cdtw_batch_distances(&x, &too_many, 3, SquaredCost, &mut big).is_err());
        // Output length mismatch.
        let mut short = vec![0.0; 1];
        assert!(cdtw_batch_distances(&x, &[&a, &a], 3, SquaredCost, &mut short).is_err());
        // Threshold/cb arity mismatches on the EA form.
        let mut buf = BatchBuffer::new();
        assert!(cdtw_batch_ea_metered(
            &x,
            &[&a, &a],
            3,
            &[1.0],
            None,
            SquaredCost,
            &mut buf,
            &mut NoMeter
        )
        .is_err());
        let cb_bad = vec![0.0; 4];
        let cbs: Vec<&[f64]> = vec![&cb_bad, &cb_bad];
        assert!(cdtw_batch_ea_metered(
            &x,
            &[&a, &a],
            3,
            &[1.0, 1.0],
            Some(&cbs),
            SquaredCost,
            &mut buf,
            &mut NoMeter
        )
        .is_err());
    }
}
