//! The tiered row sweep shared by every DP kernel.
//!
//! A "row sweep" fills row `i` of the accumulated-cost matrix given the
//! previous row: for each admissible column `j ∈ [lo, hi]`,
//!
//! ```text
//! cur[j] = cost(x[i], y[j]) + min(diag, up, left)
//!     up   = prev[j]      if plo ≤ j ≤ phi      else ∞
//!     diag = prev[j - 1]  if plo < j ≤ phi + 1  else ∞
//!     left = cur[j - 1]   if j > lo             else ∞
//! ```
//!
//! where `[plo, phi]` is the previous row's admissible interval and both
//! rolling rows are stored relative to their own `lo`. Each sweep comes in
//! two tiers (selected by the caller per
//! [`Kernel`](super::kernel::Kernel)):
//!
//! * `*_generic` — the guarded loop above, correct for any window shape;
//! * `*_segmented` — splits the row at `seg_lo = max(lo, plo + 1)` and
//!   `seg_hi = min(hi, phi)`. Inside `[seg_lo, seg_hi]` both `up` and
//!   `diag` are admissible *by construction* (the segmentation invariant),
//!   so the interior loop carries `left` in a register and runs with no
//!   per-cell overlap checks; the prefix `[lo, seg_lo)` and suffix
//!   `(seg_hi, hi]` keep the guarded logic. Degenerate rows
//!   (`seg_lo > seg_hi`) fall back to the generic sweep wholesale.
//!
//! **Bitwise-equality contract.** The segmented tier performs the same
//! per-cell operations in the same order as the generic tier: the interior
//! merely substitutes the guard results that are statically known
//! (`up`/`diag` in-range, `left` = previously written value or the `∞`
//! carried past `lo`). The recurrence domain contains no NaN (inputs are
//! validated finite, costs are finite and non-negative) and no `-0.0`
//! (accumulated costs are sums of non-negative terms), so `f64::min` and
//! `+` are deterministic pure functions of their operand values and the two
//! tiers agree bit for bit on every window shape. `tests/kernel_equivalence.rs`
//! enforces this differentially; the meters are recorded by the callers
//! (per row, from the window bounds alone), so all `WorkMeter` counters
//! are tier-invariant by construction.

use crate::cost::CostFn;
use crate::matrix::WindowedDirections;
use crate::path::Direction;

/// The guarded three-neighbor minimum at column `j` (see module docs).
#[inline(always)]
fn guarded_best(j: usize, lo: usize, plo: usize, phi: usize, prev: &[f64], cur: &[f64]) -> f64 {
    let up = if j >= plo && j <= phi {
        prev[j - plo]
    } else {
        f64::INFINITY
    };
    let diag = if j > plo && j - 1 <= phi {
        prev[j - 1 - plo]
    } else {
        f64::INFINITY
    };
    let left = if j > lo {
        cur[j - 1 - lo]
    } else {
        f64::INFINITY
    };
    diag.min(up).min(left)
}

/// Fills one distance row with the guarded per-cell loop.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn distance_row_generic<C: CostFn>(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    cost: C,
) {
    for j in lo..=hi {
        let best = guarded_best(j, lo, plo, phi, prev, cur);
        debug_assert!(
            best.is_finite(),
            "unreachable cell (col {j}) in validated window"
        );
        cur[j - lo] = cost.cost(xi, y[j]) + best;
    }
}

/// Fills one distance row with the three-segment sweep: guarded prefix,
/// branch-free 4-wide-unrolled interior, guarded suffix.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn distance_row_segmented<C: CostFn>(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    cost: C,
) {
    let seg_lo = lo.max(plo + 1);
    let seg_hi = hi.min(phi);
    if seg_lo > seg_hi {
        // No interior (window narrower than 1 cell of overlap, or sliding
        // faster than one column per row): the guarded loop handles it.
        return distance_row_generic(xi, y, lo, hi, plo, phi, prev, cur, cost);
    }
    for j in lo..seg_lo {
        let best = guarded_best(j, lo, plo, phi, prev, cur);
        debug_assert!(best.is_finite());
        cur[j - lo] = cost.cost(xi, y[j]) + best;
    }
    let len = seg_hi - seg_lo + 1;
    // Interior invariant: for j ∈ [seg_lo, seg_hi], j ≥ plo + 1 makes both
    // `up` (prev[j]) and `diag` (prev[j-1]) admissible, and j ≤ phi keeps
    // them in the previous row's storage. `left` is the running value — the
    // cell written one step earlier, seeded from the prefix (or ∞ at the
    // row start), exactly what the guarded loop would have read.
    let mut left = if seg_lo > lo {
        cur[seg_lo - 1 - lo]
    } else {
        f64::INFINITY
    };
    let up_s = &prev[seg_lo - plo..seg_lo - plo + len];
    let diag_s = &prev[seg_lo - 1 - plo..seg_lo - 1 - plo + len];
    let y_s = &y[seg_lo..seg_lo + len];
    let out = &mut cur[seg_lo - lo..seg_lo - lo + len];
    let mut k = 0;
    while k + 4 <= len {
        let v0 = cost.cost(xi, y_s[k]) + diag_s[k].min(up_s[k]).min(left);
        let v1 = cost.cost(xi, y_s[k + 1]) + diag_s[k + 1].min(up_s[k + 1]).min(v0);
        let v2 = cost.cost(xi, y_s[k + 2]) + diag_s[k + 2].min(up_s[k + 2]).min(v1);
        let v3 = cost.cost(xi, y_s[k + 3]) + diag_s[k + 3].min(up_s[k + 3]).min(v2);
        out[k] = v0;
        out[k + 1] = v1;
        out[k + 2] = v2;
        out[k + 3] = v3;
        left = v3;
        k += 4;
    }
    while k < len {
        let v = cost.cost(xi, y_s[k]) + diag_s[k].min(up_s[k]).min(left);
        out[k] = v;
        left = v;
        k += 1;
    }
    for j in seg_hi + 1..=hi {
        let best = guarded_best(j, lo, plo, phi, prev, cur);
        debug_assert!(best.is_finite());
        cur[j - lo] = cost.cost(xi, y[j]) + best;
    }
}

/// Tier dispatch for the distance sweep. `segmented` is resolved once per
/// call by the kernel entry point (`kernel.segmented::<C>()`).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn distance_row<C: CostFn>(
    segmented: bool,
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    cost: C,
) {
    if segmented {
        distance_row_segmented(xi, y, lo, hi, plo, phi, prev, cur, cost);
    } else {
        distance_row_generic(xi, y, lo, hi, plo, phi, prev, cur, cost);
    }
}

/// Fills one row and returns its minimum (the early-abandon test value),
/// guarded tier.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn min_row_generic<C: CostFn>(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    cost: C,
) -> f64 {
    let mut row_min = f64::INFINITY;
    for j in lo..=hi {
        let v = cost.cost(xi, y[j]) + guarded_best(j, lo, plo, phi, prev, cur);
        cur[j - lo] = v;
        row_min = row_min.min(v);
    }
    row_min
}

/// Fills one row and returns its minimum, segmented tier. The running
/// minimum folds left-to-right exactly as the generic tier does, so the
/// abandonment decision (and therefore the `ea_*`/`cells` counters) cannot
/// differ between tiers.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn min_row_segmented<C: CostFn>(
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    cost: C,
) -> f64 {
    let seg_lo = lo.max(plo + 1);
    let seg_hi = hi.min(phi);
    if seg_lo > seg_hi {
        return min_row_generic(xi, y, lo, hi, plo, phi, prev, cur, cost);
    }
    let mut row_min = f64::INFINITY;
    for j in lo..seg_lo {
        let v = cost.cost(xi, y[j]) + guarded_best(j, lo, plo, phi, prev, cur);
        cur[j - lo] = v;
        row_min = row_min.min(v);
    }
    let len = seg_hi - seg_lo + 1;
    let mut left = if seg_lo > lo {
        cur[seg_lo - 1 - lo]
    } else {
        f64::INFINITY
    };
    let up_s = &prev[seg_lo - plo..seg_lo - plo + len];
    let diag_s = &prev[seg_lo - 1 - plo..seg_lo - 1 - plo + len];
    let y_s = &y[seg_lo..seg_lo + len];
    let out = &mut cur[seg_lo - lo..seg_lo - lo + len];
    for k in 0..len {
        let v = cost.cost(xi, y_s[k]) + diag_s[k].min(up_s[k]).min(left);
        out[k] = v;
        row_min = row_min.min(v);
        left = v;
    }
    for j in seg_hi + 1..=hi {
        let v = cost.cost(xi, y[j]) + guarded_best(j, lo, plo, phi, prev, cur);
        cur[j - lo] = v;
        row_min = row_min.min(v);
    }
    row_min
}

/// Tier dispatch for the min-tracking sweep.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn min_row<C: CostFn>(
    segmented: bool,
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    cost: C,
) -> f64 {
    if segmented {
        min_row_segmented(xi, y, lo, hi, plo, phi, prev, cur, cost)
    } else {
        min_row_generic(xi, y, lo, hi, plo, phi, prev, cur, cost)
    }
}

/// The tie-break shared by both path tiers: diagonal first, then the
/// vertical step, matching the classic presentation.
#[inline(always)]
fn pick(diag: f64, up: f64, left: f64) -> (f64, Direction) {
    if diag <= up && diag <= left {
        (diag, Direction::Diagonal)
    } else if up <= left {
        (up, Direction::Up)
    } else {
        (left, Direction::Left)
    }
}

/// Fills one row and records traceback directions, guarded tier.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn path_row_generic<C: CostFn>(
    i: usize,
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    dirs: &mut WindowedDirections,
    cost: C,
) {
    for j in lo..=hi {
        let up = if j >= plo && j <= phi {
            prev[j - plo]
        } else {
            f64::INFINITY
        };
        let diag = if j > plo && j - 1 <= phi {
            prev[j - 1 - plo]
        } else {
            f64::INFINITY
        };
        let left = if j > lo {
            cur[j - 1 - lo]
        } else {
            f64::INFINITY
        };
        let (best, dir) = pick(diag, up, left);
        debug_assert!(
            best.is_finite(),
            "unreachable cell ({i}, {j}) in validated window"
        );
        cur[j - lo] = cost.cost(xi, y[j]) + best;
        dirs.set(i, j, dir);
    }
}

/// Fills one row and records traceback directions, segmented tier. The
/// interior applies [`pick`] to the same (diag, up, left) values the
/// guarded tier would compute, so both the costs *and* the recorded
/// directions — hence the traced path — are identical.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn path_row_segmented<C: CostFn>(
    i: usize,
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    dirs: &mut WindowedDirections,
    cost: C,
) {
    let seg_lo = lo.max(plo + 1);
    let seg_hi = hi.min(phi);
    if seg_lo > seg_hi {
        return path_row_generic(i, xi, y, lo, hi, plo, phi, prev, cur, dirs, cost);
    }
    for j in lo..seg_lo {
        let up = if j >= plo && j <= phi {
            prev[j - plo]
        } else {
            f64::INFINITY
        };
        let diag = if j > plo && j - 1 <= phi {
            prev[j - 1 - plo]
        } else {
            f64::INFINITY
        };
        let left = if j > lo {
            cur[j - 1 - lo]
        } else {
            f64::INFINITY
        };
        let (best, dir) = pick(diag, up, left);
        debug_assert!(best.is_finite());
        cur[j - lo] = cost.cost(xi, y[j]) + best;
        dirs.set(i, j, dir);
    }
    let len = seg_hi - seg_lo + 1;
    let mut left = if seg_lo > lo {
        cur[seg_lo - 1 - lo]
    } else {
        f64::INFINITY
    };
    for k in 0..len {
        let j = seg_lo + k;
        let up = prev[j - plo];
        let diag = prev[j - 1 - plo];
        let (best, dir) = pick(diag, up, left);
        let v = cost.cost(xi, y[j]) + best;
        cur[j - lo] = v;
        dirs.set(i, j, dir);
        left = v;
    }
    for j in seg_hi + 1..=hi {
        let up = if j >= plo && j <= phi {
            prev[j - plo]
        } else {
            f64::INFINITY
        };
        let diag = if j > plo && j - 1 <= phi {
            prev[j - 1 - plo]
        } else {
            f64::INFINITY
        };
        let left = if j > lo {
            cur[j - 1 - lo]
        } else {
            f64::INFINITY
        };
        let (best, dir) = pick(diag, up, left);
        debug_assert!(best.is_finite());
        cur[j - lo] = cost.cost(xi, y[j]) + best;
        dirs.set(i, j, dir);
    }
}

/// Tier dispatch for the path sweep.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn path_row<C: CostFn>(
    segmented: bool,
    i: usize,
    xi: f64,
    y: &[f64],
    lo: usize,
    hi: usize,
    plo: usize,
    phi: usize,
    prev: &[f64],
    cur: &mut [f64],
    dirs: &mut WindowedDirections,
    cost: C,
) {
    if segmented {
        path_row_segmented(i, xi, y, lo, hi, plo, phi, prev, cur, dirs, cost);
    } else {
        path_row_generic(i, xi, y, lo, hi, plo, phi, prev, cur, dirs, cost);
    }
}
