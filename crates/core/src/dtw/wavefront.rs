//! Anti-diagonal ("wavefront") evaluation of the windowed DP.
//!
//! The row sweep (DESIGN.md §11) walks cells in row-major order, which
//! chains every interior cell on its *left* neighbor — a loop-carried
//! dependency that caps the scalar sweep at one fused min-add per cycle.
//! Walking the same recurrence in anti-diagonal order removes the chain:
//! every cell on diagonal `d = i + j` depends only on diagonals `d-1`
//! (its `up` and `left` predecessors) and `d-2` (its `diag`
//! predecessor), so all cells of one diagonal are mutually independent
//! and the inner loop runs in fixed-width `[f64; W]` lanes the compiler
//! autovectorizes — no unstable features, no target-specific intrinsics.
//!
//! **Bitwise equality.** Each cell computes exactly the row sweep's
//! expression, `cost(xᵢ, yⱼ) + diag.min(up).min(left)`, from the same
//! three predecessor *values* (out-of-window predecessors read `+∞`
//! here exactly where the sweep's guards substitute `+∞`). IEEE-754
//! addition and `f64::min` are deterministic functions of their operand
//! values, and the row-0 prefix sum `acc + cost` reappears here as
//! `cost + left` (addition is commutative bitwise on this domain — no
//! NaNs survive validation and costs are non-negative, so the `-0.0`
//! corner cannot arise). Distances are therefore bitwise equal to the
//! Generic/Segmented tiers on every window shape — the contract
//! `tests/kernel_equivalence.rs` locks.
//!
//! **Geometry.** With validated windows (`lo`/`hi` monotone
//! non-decreasing, `lo[i] ≤ hi[i-1] + 1`), both `f(i) = i + lo[i]` and
//! `g(i) = i + hi[i]` are strictly increasing, so the admissible rows of
//! diagonal `d` form one contiguous interval `[b_d, a_d]` with
//! `b_d = min{i : g(i) ≥ d}` and `a_d = max{i : f(i) ≤ d}`. Both ends
//! are monotone in `d` and advance by at most one per diagonal, so two
//! cursors track them in O(1) amortized. A diagonal can be empty
//! (`b_d = a_d + 1`; e.g. the odd diagonals of a width-1 band), but
//! never two in a row — the connectivity constraint bounds the gap
//! between consecutive row intervals at one diagonal.
//!
//! **Storage.** Three rolling buffers of length `n + 2`, indexed by
//! `row + 1`, hold diagonals `d`, `d-1` and `d-2`. After filling
//! `[b_d, a_d]` the kernel writes `+∞` sentinels at indices `b_d` and
//! `a_d + 2`; because the cursors move at most one step per diagonal,
//! every predecessor read of the next two diagonals lands either on a
//! written cell or on one of those sentinels — and a sentinel read is
//! always a genuinely out-of-window predecessor, so `+∞` is the correct
//! value. `y` is consulted once per diagonal as `y[d - i]`, a backwards
//! stride; the kernel reverses it once into scratch so the lane loop
//! reads all five streams (x, reversed-y, up, left, diag) forward.

use crate::cost::CostFn;
use crate::error::Result;
use crate::window::SearchWindow;
use tsdtw_obs::Meter;

use super::windowed::DtwBuffer;

/// Lane width of the diagonal inner loop. Eight f64 lanes fill one
/// 512-bit vector (or two 256-bit ops) — wide enough to saturate the
/// autovectorizer, small enough that short diagonals stay cheap.
pub(crate) const LANE_WIDTH: usize = 8;

/// Windowed DTW distance in wavefront order. Inputs are already
/// validated by the caller ([`windowed_distance_metered_kernel`]
/// dispatches here after `check_inputs`).
///
/// Meter counters are recorded from the window bounds alone — the same
/// per-row `window_cells`/`cells` and the same two-logical-rows
/// `dp_buffer_bytes` figure as the row sweep — so `WorkMeter` state is
/// byte-identical across tiers.
///
/// [`windowed_distance_metered_kernel`]: super::windowed::windowed_distance_metered_kernel
pub(crate) fn wavefront_distance<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    window: &SearchWindow,
    cost: C,
    buf: &mut DtwBuffer,
    meter: &mut M,
) -> Result<f64> {
    // Nested under the dispatcher's `dtw_windowed` span so sampled
    // profiles can split wavefront self-time from the row sweep's —
    // without this frame the two tiers are indistinguishable in a
    // flame view.
    let _span = tsdtw_obs::span("dtw_wavefront");
    let n = x.len();
    let m = y.len();

    // Tier-invariant metering: identical values to the row sweep's
    // per-row calls, folded in the same (order-insensitive) hooks.
    let width = window.max_row_width();
    meter.dp_buffer_bytes(2 * width as u64 * std::mem::size_of::<f64>() as u64);
    for i in 0..n {
        let (lo, hi) = window.row_bounds(i);
        meter.window_cells((hi - lo + 1) as u64);
        meter.cells((hi - lo + 1) as u64);
    }

    buf.wf_prev2.clear();
    buf.wf_prev2.resize(n + 2, f64::INFINITY);
    buf.wf_prev.clear();
    buf.wf_prev.resize(n + 2, f64::INFINITY);
    buf.wf_cur.clear();
    buf.wf_cur.resize(n + 2, f64::INFINITY);
    buf.yrev.clear();
    buf.yrev.extend(y.iter().rev());

    // Diagonal 0 is the corner cell alone: the sweep computes it as
    // `acc = 0.0 + cost`, bitwise the bare cost on this domain.
    buf.wf_cur[0] = f64::INFINITY;
    buf.wf_cur[1] = cost.cost(x[0], y[0]);
    buf.wf_cur[2] = f64::INFINITY;
    rotate(buf);

    // Cursors over the admissible row interval [imin, imax] = [b_d, a_d].
    let mut imin = 0usize;
    let mut imax = 0usize;
    for d in 1..=(n + m - 2) {
        // Advance b_d: smallest row whose interval still reaches d.
        while imin + window.row_bounds(imin).1 < d {
            imin += 1;
            debug_assert!(imin < n, "g(n-1) = n+m-2 bounds every diagonal");
        }
        // Advance a_d: largest row whose interval has started by d.
        while imax + 1 < n && (imax + 1) + window.row_bounds(imax + 1).0 <= d {
            imax += 1;
        }

        if imin <= imax {
            let cnt = imax - imin + 1;
            // y[d - i] for i in [imin, imax] is yrev[i + m - 1 - d],
            // a forward slice (imin ≥ d - m + 1 by admissibility).
            let yoff = imin + m - 1 - d;
            let xs = &x[imin..imin + cnt];
            let yr = &buf.yrev[yoff..yoff + cnt];
            // Predecessors of (i, d-i): up = (i-1, j) and left = (i, j-1)
            // live on diagonal d-1 at indices i and i+1; diag = (i-1, j-1)
            // on d-2 at index i.
            let up_s = &buf.wf_prev[imin..imin + cnt];
            let left_s = &buf.wf_prev[imin + 1..imin + 1 + cnt];
            let diag_s = &buf.wf_prev2[imin..imin + cnt];
            let out = &mut buf.wf_cur[imin + 1..imin + 1 + cnt];

            // Fixed-width lanes with the fused three-way min; every lane
            // is independent, so this loop vectorizes as written.
            let mut k = 0;
            while k + LANE_WIDTH <= cnt {
                let mut lane = [0.0f64; LANE_WIDTH];
                for (t, slot) in lane.iter_mut().enumerate() {
                    let pred = diag_s[k + t].min(up_s[k + t]).min(left_s[k + t]);
                    *slot = cost.cost(xs[k + t], yr[k + t]) + pred;
                }
                out[k..k + LANE_WIDTH].copy_from_slice(&lane);
                k += LANE_WIDTH;
            }
            while k < cnt {
                let pred = diag_s[k].min(up_s[k]).min(left_s[k]);
                out[k] = cost.cost(xs[k], yr[k]) + pred;
                k += 1;
            }
        }

        // Sentinels bracketing the written interval (for an empty
        // diagonal, imin = imax + 1 and the two writes are adjacent).
        // Reads on diagonals d+1 and d+2 stay within [b_d, a_d + 2] of
        // this buffer by cursor monotonicity, so nothing stale escapes.
        buf.wf_cur[imin] = f64::INFINITY;
        buf.wf_cur[imax + 2] = f64::INFINITY;
        rotate(buf);
    }

    // After the final rotation the last diagonal sits in wf_prev; the
    // bottom-right cell (n-1, m-1) is at index n.
    Ok(cost.finish(buf.wf_prev[n]))
}

/// `(prev2, prev, cur) ← (prev, cur, prev2)` — the retired `prev2`
/// buffer is recycled as the next diagonal's output.
#[inline]
fn rotate(buf: &mut DtwBuffer) {
    std::mem::swap(&mut buf.wf_prev2, &mut buf.wf_prev);
    std::mem::swap(&mut buf.wf_prev, &mut buf.wf_cur);
}

#[cfg(test)]
mod tests {
    use crate::cost::{AbsoluteCost, Rooted, SquaredCost};
    use crate::dtw::windowed::{windowed_distance_metered_kernel, DtwBuffer};
    use crate::window::SearchWindow;
    use crate::Kernel;
    use tsdtw_obs::WorkMeter;

    fn series(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + seed as f64 * 0.7) * 0.37).sin() * 3.0)
            .collect()
    }

    fn assert_wavefront_matches(x: &[f64], y: &[f64], w: &SearchWindow) {
        let mut buf = DtwBuffer::new();
        let mut m_seg = WorkMeter::new();
        let d_seg = windowed_distance_metered_kernel(x, y, w, SquaredCost, &mut buf, &mut m_seg, {
            Kernel::Segmented
        })
        .unwrap();
        let mut m_wf = WorkMeter::new();
        let d_wf = windowed_distance_metered_kernel(
            x,
            y,
            w,
            SquaredCost,
            &mut buf,
            &mut m_wf,
            Kernel::Wavefront,
        )
        .unwrap();
        assert_eq!(
            d_wf.to_bits(),
            d_seg.to_bits(),
            "{}x{} window",
            w.n_rows(),
            w.n_cols()
        );
        assert_eq!(m_wf, m_seg, "meters must be tier-invariant");
    }

    #[test]
    fn matches_row_sweep_on_bands_including_empty_diagonals() {
        // band 0 on equal lengths makes every odd diagonal empty — the
        // sentinel scheme's hardest shape.
        for n in [1usize, 2, 3, 7, 16, 33] {
            let x = series(n, 1);
            let y = series(n, 2);
            for band in [0usize, 1, 2, 5, n] {
                let w = SearchWindow::sakoe_chiba(n, n, band);
                assert_wavefront_matches(&x, &y, &w);
            }
        }
    }

    #[test]
    fn matches_row_sweep_on_rectangular_and_degenerate_shapes() {
        for (n, m) in [(1usize, 9usize), (9, 1), (5, 13), (13, 5), (24, 25)] {
            let x = series(n, 3);
            let y = series(m, 4);
            for band in [0usize, 2, 7, n.max(m)] {
                let w = SearchWindow::sakoe_chiba(n, m, band);
                assert_wavefront_matches(&x, &y, &w);
            }
        }
    }

    #[test]
    fn lane_remainders_cover_full_partial_and_single() {
        // Diagonal lengths n mod W ∈ {0, 1, W-1} exercise the chunked
        // loop, the scalar tail, and the all-tail case.
        for n in [8usize, 9, 15, 16, 17, 23] {
            let x = series(n, 5);
            let y = series(n, 6);
            let w = SearchWindow::full(n, n);
            assert_wavefront_matches(&x, &y, &w);
        }
    }

    #[test]
    fn other_costs_match_too() {
        let x = series(19, 7);
        let y = series(19, 8);
        let w = SearchWindow::sakoe_chiba(19, 19, 4);
        let mut buf = DtwBuffer::new();
        let d_seg = windowed_distance_metered_kernel(
            &x,
            &y,
            &w,
            AbsoluteCost,
            &mut buf,
            &mut WorkMeter::new(),
            Kernel::Generic,
        )
        .unwrap();
        let d_wf = windowed_distance_metered_kernel(
            &x,
            &y,
            &w,
            AbsoluteCost,
            &mut buf,
            &mut WorkMeter::new(),
            Kernel::Wavefront,
        )
        .unwrap();
        assert_eq!(d_wf.to_bits(), d_seg.to_bits());
        let r_seg = windowed_distance_metered_kernel(
            &x,
            &y,
            &w,
            Rooted(SquaredCost),
            &mut buf,
            &mut WorkMeter::new(),
            Kernel::Segmented,
        )
        .unwrap();
        let r_wf = windowed_distance_metered_kernel(
            &x,
            &y,
            &w,
            Rooted(SquaredCost),
            &mut buf,
            &mut WorkMeter::new(),
            Kernel::Wavefront,
        )
        .unwrap();
        assert_eq!(r_wf.to_bits(), r_seg.to_bits());
    }
}
