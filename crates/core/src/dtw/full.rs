//! Unconstrained ("Full") DTW — `cDTW_100` in the paper's notation.
//!
//! The distance-only kernel here is a hand-tightened two-row DP without any
//! window bookkeeping; the paper's Fig. 6 crossover experiment compares
//! exactly this kernel against FastDTW. The path variant delegates to the
//! windowed kernel with a full window.

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Result};
use crate::path::WarpingPath;
use crate::window::SearchWindow;

use super::kernel::{default_kernel, Kernel};
use super::sweep;

/// Exact unconstrained DTW distance between `x` and `y`.
///
/// Time `O(n·m)`, memory `O(min(n, m))` (the shorter series indexes the
/// columns).
pub fn dtw_distance<C: CostFn>(x: &[f64], y: &[f64], cost: C) -> Result<f64> {
    dtw_distance_kernel(x, y, cost, default_kernel())
}

/// [`dtw_distance`] with an explicit kernel tier.
///
/// The full matrix is the degenerate window `lo = 0, hi = m - 1` on every
/// row, so the segmented tier's interior is the whole row except column 0 —
/// the entire DP runs branch-free.
///
/// `Kernel::Rle` routes through the run-length block kernel
/// ([`crate::rle`]); `Kernel::Auto` does the same when the pair is
/// run-compressible ([`crate::rle::auto_picks_rle`]). Both produce
/// distances bitwise equal to the sweep on exactly-representable
/// (integer / dyadic) inputs — the guarantee class
/// `tests/rle_equivalence.rs` locks.
pub fn dtw_distance_kernel<C: CostFn>(
    x: &[f64],
    y: &[f64],
    cost: C,
    kernel: Kernel,
) -> Result<f64> {
    if kernel == Kernel::Rle
        || (kernel == Kernel::Auto
            && crate::rle::auto_picks_rle_metered(x, y, &mut tsdtw_obs::NoMeter))
    {
        return crate::rle::dtw_distance_rle(x, y, cost, &mut tsdtw_obs::NoMeter);
    }
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    let _span = tsdtw_obs::span("dtw_full");
    // Put the shorter series on the columns so the rolling rows are minimal.
    let (rows, cols) = if x.len() >= y.len() { (x, y) } else { (y, x) };
    let m = cols.len();

    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    // Row 0 is a prefix sum of costs against rows[0].
    let r0 = rows[0];
    let mut acc = 0.0;
    for (j, &cj) in cols.iter().enumerate() {
        acc += cost.cost(r0, cj);
        prev[j] = acc;
    }

    let segmented = kernel.segmented::<C>();
    for &ri in rows.iter().skip(1) {
        sweep::distance_row(
            segmented,
            ri,
            cols,
            0,
            m - 1,
            0,
            m - 1,
            &prev,
            &mut cur,
            cost,
        );
        std::mem::swap(&mut prev, &mut cur);
    }

    Ok(cost.finish(prev[m - 1]))
}

/// Exact unconstrained DTW distance *and* an optimal warping path.
///
/// Time and memory `O(n·m)`: one traceback byte per cell.
pub fn dtw_with_path<C: CostFn>(x: &[f64], y: &[f64], cost: C) -> Result<(f64, WarpingPath)> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    let window = SearchWindow::full(x.len(), y.len());
    super::windowed::windowed_with_path(x, y, &window, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Rooted, SquaredCost};

    #[test]
    fn zero_on_identical_series() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&x, &x, SquaredCost).unwrap(), 0.0);
    }

    #[test]
    fn singleton_pair_is_pointwise_cost() {
        assert_eq!(dtw_distance(&[3.0], &[1.0], SquaredCost).unwrap(), 4.0);
    }

    #[test]
    fn singleton_against_constant_series_is_sum() {
        // One point must align to every point of the other series.
        let d = dtw_distance(&[0.0], &[1.0, 1.0, 1.0], SquaredCost).unwrap();
        assert_eq!(d, 3.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let x = [0.0, 1.0, 5.0, 2.0, 0.0, 3.0];
        let y = [1.0, 4.0, 2.0, 2.0, 1.0];
        let a = dtw_distance(&x, &y, SquaredCost).unwrap();
        let b = dtw_distance(&y, &x, SquaredCost).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn shifted_spike_aligns_perfectly() {
        // DTW's canonical win over Euclidean: a time-shifted feature.
        let x = [0.0, 0.0, 5.0, 0.0, 0.0, 0.0];
        let y = [0.0, 0.0, 0.0, 0.0, 5.0, 0.0];
        let d = dtw_distance(&x, &y, SquaredCost).unwrap();
        assert_eq!(d, 0.0);
        let sq_euclid: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        assert_eq!(sq_euclid, 50.0);
    }

    #[test]
    fn never_exceeds_squared_euclidean() {
        // The lock-step (diagonal) path is always admissible, so DTW is a
        // lower envelope of squared Euclidean for equal lengths.
        let x = [0.3, -1.2, 2.2, 0.9, -0.4, 1.1, 1.8, -2.0];
        let y = [0.1, -0.9, 1.7, 1.3, -1.0, 0.6, 2.2, -1.5];
        let d = dtw_distance(&x, &y, SquaredCost).unwrap();
        let e: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(d <= e + 1e-12);
    }

    #[test]
    fn path_variant_matches_distance_variant() {
        let x = [0.0, 2.0, 4.0, 4.0, 1.0];
        let y = [0.0, 0.0, 2.0, 4.0, 1.0, 1.0];
        let d = dtw_distance(&x, &y, SquaredCost).unwrap();
        let (dp, path) = dtw_with_path(&x, &y, SquaredCost).unwrap();
        assert!((d - dp).abs() < 1e-12);
        assert_eq!(path.replay_cost(&x, &y, SquaredCost).unwrap(), dp);
    }

    #[test]
    fn rooted_cost_reports_square_root() {
        let x = [0.0, 3.0];
        let y = [0.0, 0.0];
        let raw = dtw_distance(&x, &y, SquaredCost).unwrap();
        let rooted = dtw_distance(&x, &y, Rooted(SquaredCost)).unwrap();
        assert!((rooted - raw.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn orientation_of_rolling_rows_does_not_change_result() {
        // Internal optimization puts the shorter series on columns; verify
        // both orientations produce the same distance.
        let x = [0.0, 1.0, 0.5, 2.0, 1.0, 0.0, 1.5];
        let y = [0.5, 1.5, 0.0];
        let a = dtw_distance(&x, &y, SquaredCost).unwrap();
        let b = dtw_distance(&y, &x, SquaredCost).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
