//! Early-abandoning constrained DTW.
//!
//! When DTW is evaluated repeatedly against a best-so-far threshold (nearest
//! neighbor search, 1-NN classification), the DP can stop as soon as *every*
//! cell of the current row already exceeds the threshold: accumulated costs
//! only grow, so no completion of the alignment can beat the incumbent.
//!
//! Combined with the cascading lower bounds of
//! [`lower_bounds`](crate::lower_bounds), this is the machinery the paper
//! credits (citing Rakthanmanon et al., KDD 2012) with accelerating exact
//! `cDTW` by "a further two to five orders of magnitude" over the plain
//! head-to-head comparisons of its figures — and it is only available to the
//! *exact* algorithm, not to FastDTW.
//!
//! The kernel optionally consumes a *cumulative bound* array `cb`, where
//! `cb[k]` lower-bounds the cost that the **candidate suffix** `y[k..]`
//! must still pay under any banded alignment (LB_Keogh's per-column
//! excursions, suffix-summed). After filling row `i`, every column beyond
//! the band limit `i + band` is still unvisited, so the abandon test is
//! `min(row i) + cb[i + band + 1] > threshold` — exactly the UCR-suite
//! formulation. (Using a tighter index would double-count columns already
//! paid inside the band and abandon unsoundly.) The caller obtains `cb`
//! from [`lb_keogh_with_contrib`](crate::lower_bounds::keogh) +
//! [`suffix_sums`](crate::lower_bounds::keogh).

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Error, Result};
use crate::window::SearchWindow;
use tsdtw_obs::{Meter, NoMeter};

use super::banded::check_band;
use super::kernel::{default_kernel, Kernel};
use super::sweep;
use super::windowed::DtwBuffer;

/// Outcome of an early-abandoning DTW evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EaOutcome {
    /// The computation ran to completion; the exact distance is attached
    /// (it may still exceed the threshold — the caller decides).
    Exact(f64),
    /// The computation proved, after filling `rows_filled` rows, that the
    /// distance must exceed the threshold, and stopped.
    Abandoned {
        /// Number of DP rows filled before the proof fired.
        rows_filled: usize,
    },
}

impl EaOutcome {
    /// The exact distance, if the computation completed.
    pub fn distance(self) -> Option<f64> {
        match self {
            EaOutcome::Exact(d) => Some(d),
            EaOutcome::Abandoned { .. } => None,
        }
    }
}

/// `cDTW_band` between `x` and `y`, abandoning as soon as the result is
/// provably greater than `threshold`.
///
/// `threshold` and the optional cumulative bound `cb` are in the
/// *accumulated cost* domain (i.e. pre-[`CostFn::finish`]); with the default
/// [`SquaredCost`](crate::cost::SquaredCost) that is the squared-distance
/// domain, matching UCR-suite practice. If `cb` is provided it must have
/// length `x.len()` and satisfy the suffix lower-bound property.
pub fn cdtw_distance_ea<C: CostFn>(
    x: &[f64],
    y: &[f64],
    band: usize,
    threshold: f64,
    cb: Option<&[f64]>,
    cost: C,
) -> Result<EaOutcome> {
    cdtw_distance_ea_metered(x, y, band, threshold, cb, cost, &mut NoMeter)
}

/// [`cdtw_distance_ea`] with work accounting: the meter receives the
/// full band area as window cells, the cells actually filled before any
/// abandonment as evaluated cells (this is where the two counters
/// diverge), and the rows filled vs total via
/// [`Meter::ea_rows`].
pub fn cdtw_distance_ea_metered<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    threshold: f64,
    cb: Option<&[f64]>,
    cost: C,
    meter: &mut M,
) -> Result<EaOutcome> {
    cdtw_distance_ea_metered_kernel(x, y, band, threshold, cb, cost, meter, default_kernel())
}

/// [`cdtw_distance_ea_metered`] with an explicit kernel tier. The
/// per-row minimum that drives the abandon test folds left-to-right in
/// both tiers, so the abandonment row — and with it every counter — is
/// tier-invariant.
#[allow(clippy::too_many_arguments)]
pub fn cdtw_distance_ea_metered_kernel<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    threshold: f64,
    cb: Option<&[f64]>,
    cost: C,
    meter: &mut M,
    kernel: Kernel,
) -> Result<EaOutcome> {
    let mut buf = DtwBuffer::new();
    cdtw_distance_ea_metered_buf_kernel(x, y, band, threshold, cb, cost, &mut buf, meter, kernel)
}

/// [`cdtw_distance_ea_metered_kernel`] reusing caller-provided scratch:
/// the DP rows *and* the memoized band window both live in `buf`, so a
/// warmed scan loop over a fixed `(n, m, band)` shape (the UCR
/// subsequence search) evaluates candidates without touching the heap —
/// the contract `tests/alloc_discipline.rs` gates. Counters are
/// identical to the unbuffered form.
#[allow(clippy::too_many_arguments)]
pub fn cdtw_distance_ea_metered_buf_kernel<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    threshold: f64,
    cb: Option<&[f64]>,
    cost: C,
    buf: &mut DtwBuffer,
    meter: &mut M,
    kernel: Kernel,
) -> Result<EaOutcome> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    check_band(x.len(), y.len(), band)?;
    if let Some(cb) = cb {
        if cb.len() != y.len() {
            return Err(Error::InvalidParameter {
                name: "cb",
                reason: format!(
                    "cumulative bound has {} entries for a candidate of {} columns",
                    cb.len(),
                    y.len()
                ),
            });
        }
    }
    let _span = tsdtw_obs::span("dtw_ea");
    let window = buf.take_sakoe_chiba(x.len(), y.len(), band);
    let r = ea_core(x, y, band, threshold, cb, cost, &window, buf, meter, kernel);
    buf.cache_window(band, window);
    r
}

/// The abandon-or-complete DP sweep over a prepared window. `buf` holds
/// only the two scratch rows here (the window was taken out of it).
#[allow(clippy::too_many_arguments)]
fn ea_core<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    band: usize,
    threshold: f64,
    cb: Option<&[f64]>,
    cost: C,
    window: &SearchWindow,
    buf: &mut DtwBuffer,
    meter: &mut M,
    kernel: Kernel,
) -> Result<EaOutcome> {
    let n = x.len();
    let band_area = window.cell_count() as u64;
    let width = window.max_row_width();
    buf.reset_rows(width);
    meter.window_cells(band_area);
    meter.dp_buffer_bytes(2 * width as u64 * std::mem::size_of::<f64>() as u64);

    let (lo0, hi0) = window.row_bounds(0);
    let x0 = x[0];
    let mut acc = 0.0;
    let mut row_min = f64::INFINITY;
    for (k, j) in (lo0..=hi0).enumerate() {
        acc += cost.cost(x0, y[j]);
        buf.prev[k] = acc;
        row_min = row_min.min(acc);
    }
    meter.cells((hi0 - lo0 + 1) as u64);
    let suffix_bound = |cb: Option<&[f64]>, row: usize| {
        cb.map_or(0.0, |cb| {
            let k = row + band + 1;
            if k < cb.len() {
                cb[k]
            } else {
                0.0
            }
        })
    };
    if row_min + suffix_bound(cb, 0) > threshold {
        meter.ea_rows(1, n as u64);
        return Ok(EaOutcome::Abandoned { rows_filled: 1 });
    }
    let mut plo = lo0;
    let mut phi = hi0;

    let segmented = kernel.segmented::<C>();
    for (i, &xi) in x.iter().enumerate().skip(1) {
        let (lo, hi) = window.row_bounds(i);
        meter.cells((hi - lo + 1) as u64);
        row_min = sweep::min_row(
            segmented,
            xi,
            y,
            lo,
            hi,
            plo,
            phi,
            &buf.prev,
            &mut buf.cur,
            cost,
        );
        if row_min + suffix_bound(cb, i) > threshold {
            meter.ea_rows((i + 1) as u64, n as u64);
            return Ok(EaOutcome::Abandoned { rows_filled: i + 1 });
        }
        std::mem::swap(&mut buf.prev, &mut buf.cur);
        plo = lo;
        phi = hi;
    }

    meter.ea_rows(n as u64, n as u64);
    let (lo_last, _) = window.row_bounds(n - 1);
    Ok(EaOutcome::Exact(
        cost.finish(buf.prev[y.len() - 1 - lo_last]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::banded::cdtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        // Tiny deterministic LCG so tests do not need a rand dependency here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn infinite_threshold_reproduces_exact_distance() {
        let x = rand_series(1, 50);
        let y = rand_series(2, 50);
        for band in [0, 3, 10, 50] {
            let exact = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
            let ea = cdtw_distance_ea(&x, &y, band, f64::INFINITY, None, SquaredCost).unwrap();
            assert_eq!(ea.distance(), Some(exact));
        }
    }

    #[test]
    fn tiny_threshold_abandons_early() {
        let x = rand_series(3, 200);
        let y: Vec<f64> = rand_series(4, 200).iter().map(|v| v + 10.0).collect();
        let ea = cdtw_distance_ea(&x, &y, 10, 1.0, None, SquaredCost).unwrap();
        match ea {
            EaOutcome::Abandoned { rows_filled } => {
                assert!(
                    rows_filled < 10,
                    "should abandon almost immediately, took {rows_filled} rows"
                );
            }
            EaOutcome::Exact(d) => panic!("expected abandonment, got exact {d}"),
        }
    }

    #[test]
    fn threshold_just_above_distance_completes() {
        let x = rand_series(5, 80);
        let y = rand_series(6, 80);
        let exact = cdtw_distance(&x, &y, 8, SquaredCost).unwrap();
        let ea = cdtw_distance_ea(&x, &y, 8, exact * 1.001, None, SquaredCost).unwrap();
        assert_eq!(ea.distance(), Some(exact));
    }

    #[test]
    fn abandonment_is_sound() {
        // Whenever the kernel abandons, the true distance really does exceed
        // the threshold.
        for seed in 0..20 {
            let x = rand_series(seed, 60);
            let y = rand_series(seed + 100, 60);
            let exact = cdtw_distance(&x, &y, 6, SquaredCost).unwrap();
            let threshold = exact * 0.5;
            match cdtw_distance_ea(&x, &y, 6, threshold, None, SquaredCost).unwrap() {
                EaOutcome::Abandoned { .. } => assert!(exact > threshold),
                EaOutcome::Exact(d) => assert!((d - exact).abs() < 1e-12),
            }
        }
    }

    #[test]
    fn cumulative_bound_accelerates_abandonment() {
        let x = rand_series(7, 300);
        let y: Vec<f64> = rand_series(8, 300).iter().map(|v| v + 2.0).collect();
        let exact = cdtw_distance(&x, &y, 15, SquaredCost).unwrap();
        let threshold = exact * 0.25;
        // A legitimate (if crude) suffix bound: each remaining row costs at
        // least 0. A stronger synthetic bound for the test: each row of the
        // shifted series contributes at least 1.0.
        let cb: Vec<f64> = (0..x.len()).rev().map(|k| k as f64 * 1.0).collect();
        let no_cb = cdtw_distance_ea(&x, &y, 15, threshold, None, SquaredCost).unwrap();
        let with_cb = cdtw_distance_ea(&x, &y, 15, threshold, Some(&cb), SquaredCost).unwrap();
        let rows = |o: EaOutcome| match o {
            EaOutcome::Abandoned { rows_filled } => rows_filled,
            EaOutcome::Exact(_) => usize::MAX,
        };
        assert!(rows(with_cb) <= rows(no_cb));
    }

    #[test]
    fn real_lb_keogh_cb_is_sound() {
        // Regression test for the cb indexing bug: with the genuine
        // LB_Keogh cumulative bound, abandonment must never fire when the
        // true distance is within the threshold.
        use crate::envelope::Envelope;
        use crate::lower_bounds::keogh::{lb_keogh_with_contrib, suffix_sums};
        for seed in 0..40 {
            let x = rand_series(seed, 70);
            let y = rand_series(seed + 1000, 70);
            let band = 4;
            let env = Envelope::new(&x, band).unwrap();
            let mut contrib = Vec::new();
            lb_keogh_with_contrib(&y, &env, &mut contrib).unwrap();
            let cb = suffix_sums(&contrib);
            let exact = cdtw_distance(&x, &y, band, SquaredCost).unwrap();
            // Threshold exactly at the true distance: must NOT abandon.
            let out =
                cdtw_distance_ea(&x, &y, band, exact + 1e-12, Some(&cb), SquaredCost).unwrap();
            assert_eq!(out.distance(), Some(exact), "seed {seed}");
            // Threshold below: abandoning is allowed, completing must
            // still return the exact value.
            match cdtw_distance_ea(&x, &y, band, exact * 0.9, Some(&cb), SquaredCost).unwrap() {
                EaOutcome::Exact(d) => assert!((d - exact).abs() < 1e-12),
                EaOutcome::Abandoned { .. } => assert!(exact > exact * 0.9),
            }
        }
    }

    #[test]
    fn metered_ea_counts_fewer_cells_when_abandoning() {
        use tsdtw_obs::WorkMeter;
        let x = rand_series(3, 200);
        let y: Vec<f64> = rand_series(4, 200).iter().map(|v| v + 10.0).collect();

        let mut full = WorkMeter::new();
        let out = cdtw_distance_ea_metered(&x, &y, 10, f64::INFINITY, None, SquaredCost, &mut full)
            .unwrap();
        assert!(out.distance().is_some());
        assert_eq!(
            full.cells, full.window_cells,
            "no abandon: whole band filled"
        );
        assert_eq!(full.ea_rows_filled, 200);
        assert_eq!(full.ea_rows_total, 200);

        let mut cut = WorkMeter::new();
        let out = cdtw_distance_ea_metered(&x, &y, 10, 1.0, None, SquaredCost, &mut cut).unwrap();
        assert!(matches!(out, EaOutcome::Abandoned { .. }));
        assert!(cut.cells < cut.window_cells, "abandon leaves band unfilled");
        assert!(cut.ea_rows_filled < cut.ea_rows_total);
        assert_eq!(cut.window_cells, full.window_cells);
    }

    #[test]
    fn rejects_bad_cb_length() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 2.0];
        let cb = [0.0; 2];
        assert!(cdtw_distance_ea(&x, &y, 1, 10.0, Some(&cb), SquaredCost).is_err());
    }
}
