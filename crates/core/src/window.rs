//! Search windows: per-row column ranges restricting the DTW dynamic program.
//!
//! A [`SearchWindow`] describes, for each row `i` of the `n × m` accumulated
//! cost matrix, an inclusive column interval `[lo(i), hi(i)]` of cells the DP
//! may visit. Three families of windows appear in this crate:
//!
//! * the **full** window (every cell) — unconstrained DTW;
//! * the **Sakoe–Chiba band** of radius `w` cells around the (scaled)
//!   diagonal — exact constrained `cDTW_w`;
//! * the **projected** window FastDTW builds by upsampling a low-resolution
//!   warping path and dilating it by the radius `r`.
//!
//! Windows are stored as two flat `Vec<usize>` bound arrays rather than a set
//! of cells: every window used by DTW is row-convex (each row is a contiguous
//! interval), which keeps the DP cache-friendly and the storage `O(n)`.

use crate::error::{Error, Result};
use crate::path::WarpingPath;

/// Per-row inclusive column bounds for a restricted DTW computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchWindow {
    /// Number of columns of the underlying matrix (length of series `y`).
    n_cols: usize,
    /// `lo[i]` — first admissible column in row `i`.
    lo: Vec<usize>,
    /// `hi[i]` — last admissible column in row `i` (inclusive).
    hi: Vec<usize>,
    /// Cached `max_i (hi[i] - lo[i] + 1)` — the scratch-row width every DP
    /// kernel needs; repeated-use evaluators (`BandedDtw`, 1-NN loops) would
    /// otherwise re-scan all rows on every call.
    max_width: usize,
    /// Cached total admissible-cell count.
    n_cells: usize,
}

impl SearchWindow {
    /// Builds a window from already-validated bounds, computing the cached
    /// aggregates. Every construction site funnels through here (or through
    /// [`SearchWindow::recache`] after in-place mutation) so the caches can
    /// never go stale.
    fn assemble(n_cols: usize, lo: Vec<usize>, hi: Vec<usize>) -> Self {
        let mut w = SearchWindow {
            n_cols,
            lo,
            hi,
            max_width: 0,
            n_cells: 0,
        };
        w.recache();
        w
    }

    /// Recomputes the cached row-width maximum and cell count from the
    /// current bounds.
    fn recache(&mut self) {
        let mut max_width = 0usize;
        let mut n_cells = 0usize;
        for (&l, &h) in self.lo.iter().zip(&self.hi) {
            // `saturating_sub` keeps the cache well-defined even on bounds
            // that `validate` will subsequently reject (empty rows).
            let width = (h + 1).saturating_sub(l);
            max_width = max_width.max(width);
            n_cells += width;
        }
        self.max_width = max_width;
        self.n_cells = n_cells;
    }
    /// Builds a window from explicit per-row inclusive bounds.
    ///
    /// Returns [`Error::InvalidWindow`] if any row is empty (`lo > hi`), any
    /// bound exceeds the matrix, or the rows are not connected enough for a
    /// monotone path from `(0,0)` to `(n-1, m-1)` to exist (see
    /// [`SearchWindow::validate`]).
    pub fn from_bounds(n_cols: usize, lo: Vec<usize>, hi: Vec<usize>) -> Result<Self> {
        if lo.len() != hi.len() {
            return Err(Error::InvalidWindow {
                reason: format!("lo has {} rows but hi has {}", lo.len(), hi.len()),
            });
        }
        let w = SearchWindow::assemble(n_cols, lo, hi);
        w.validate()?;
        Ok(w)
    }

    /// The full (unconstrained) window over an `n_rows × n_cols` matrix.
    pub fn full(n_rows: usize, n_cols: usize) -> Self {
        SearchWindow::assemble(
            n_cols,
            vec![0; n_rows],
            vec![n_cols.saturating_sub(1); n_rows],
        )
    }

    /// A Sakoe–Chiba band of radius `band` cells around the (staircase)
    /// diagonal of an `n_rows × n_cols` matrix.
    ///
    /// For equal lengths this is exactly the textbook `|i - j| ≤ band`
    /// constraint — no hidden slack, which matters for the soundness of
    /// LB_Keogh with a matching envelope radius. For unequal lengths the
    /// band dilates the integer staircase of the line from `(0,0)` to
    /// `(n-1, m-1)`, which is connected by construction, so even `band = 0`
    /// admits a monotone path.
    pub fn sakoe_chiba(n_rows: usize, n_cols: usize, band: usize) -> Self {
        assert!(n_rows > 0 && n_cols > 0, "band window over empty matrix");
        let mut lo = Vec::with_capacity(n_rows);
        let mut hi = Vec::with_capacity(n_rows);
        for i in 0..n_rows {
            // Columns of the diagonal staircase in row i:
            // [⌊i·m/n⌋, ⌊((i+1)·m − 1)/n⌋], which tiles the matrix row by
            // row and degenerates to {i} when n == m.
            let j0 = (i * n_cols) / n_rows;
            let j1 = ((i + 1) * n_cols - 1) / n_rows;
            lo.push(j0.saturating_sub(band));
            hi.push((j1 + band).min(n_cols - 1));
        }
        let w = SearchWindow::assemble(n_cols, lo, hi);
        debug_assert!(
            w.validate().is_ok(),
            "staircase band must be valid: {:?}",
            w.validate()
        );
        w
    }

    /// An Itakura-parallelogram-style window over an `n_rows × n_cols`
    /// matrix: the admissible region is bounded by lines of slope
    /// `max_slope` and `1/max_slope` through both corners, the classic
    /// alternative to the Sakoe–Chiba band (`max_slope > 1`; 2.0 is the
    /// traditional choice).
    ///
    /// Near the corners the parallelogram pinches to the diagonal, so it
    /// forbids the path from spending long runs in one series — a
    /// different inductive bias from the band, exposed for the constraint
    /// ablation.
    pub fn itakura(n_rows: usize, n_cols: usize, max_slope: f64) -> Result<Self> {
        if !max_slope.is_finite() || max_slope <= 1.0 {
            return Err(Error::InvalidWindow {
                reason: format!("Itakura slope must be finite and > 1, got {max_slope}"),
            });
        }
        assert!(n_rows > 0 && n_cols > 0, "Itakura window over empty matrix");
        // Degenerate shapes: a single row or column admits only one
        // possible (full) window.
        if n_rows == 1 || n_cols == 1 {
            return Ok(SearchWindow::full(n_rows, n_cols));
        }
        let n = (n_rows - 1) as f64;
        let m = (n_cols - 1) as f64;
        let s = max_slope;
        let mut lo = Vec::with_capacity(n_rows);
        let mut hi = Vec::with_capacity(n_rows);
        for i in 0..n_rows {
            let x = i as f64;
            // Lower boundary: at least slope 1/s from the start AND within
            // slope s of the end; upper: within slope s of the start AND
            // at least 1/s from the end.
            let low = (x / s).max(m - s * (n - x));
            let high = (s * x).min(m - (n - x) / s);
            let l = low.ceil().clamp(0.0, m) as usize;
            let h = high.floor().clamp(0.0, m) as usize;
            lo.push(l.min(h));
            hi.push(h.max(l));
        }
        lo[0] = 0;
        hi[n_rows - 1] = n_cols - 1;
        let mut w = SearchWindow::assemble(n_cols, lo, hi);
        w.repair_connectivity();
        Ok(w)
    }

    /// Builds the FastDTW search window: takes a warping path computed at
    /// half resolution, projects every path cell onto its 2×2 block at this
    /// resolution, dilates the result by `radius` (Chebyshev distance), and
    /// repairs connectivity.
    ///
    /// `n_rows × n_cols` are the dimensions at the *current* (finer)
    /// resolution. Odd lengths are handled by clamping projected blocks.
    pub fn from_low_res_path(
        low_res_path: &WarpingPath,
        n_rows: usize,
        n_cols: usize,
        radius: usize,
    ) -> Self {
        assert!(n_rows > 0 && n_cols > 0, "projection onto empty matrix");
        let mut lo = vec![usize::MAX; n_rows];
        let mut hi = vec![0usize; n_rows];
        let max_r = n_rows - 1;
        let max_c = n_cols - 1;
        for &(i, j) in low_res_path.cells() {
            // Each low-resolution cell (i, j) covers the 2×2 block
            // {2i, 2i+1} × {2j, 2j+1} at the finer resolution.
            let r0 = (2 * i).min(max_r);
            let r1 = (2 * i + 1).min(max_r);
            let c0 = (2 * j).min(max_c);
            let c1 = (2 * j + 1).min(max_c);
            for r in r0..=r1 {
                lo[r] = lo[r].min(c0);
                hi[r] = hi[r].max(c1);
            }
        }
        // Rows not touched by the projection (possible with odd lengths at
        // the boundary) inherit their neighbor's range before dilation.
        for r in 0..n_rows {
            if lo[r] == usize::MAX {
                let (pl, ph) = if r > 0 && lo[r - 1] != usize::MAX {
                    (lo[r - 1], hi[r - 1])
                } else {
                    (0, 0)
                };
                lo[r] = pl;
                hi[r] = ph;
            }
        }
        let mut w = SearchWindow::assemble(n_cols, lo, hi);
        if radius > 0 {
            w = w.dilate(radius);
        }
        w.lo[0] = 0;
        w.hi[n_rows - 1] = max_c;
        w.repair_connectivity();
        w
    }

    /// Returns a copy of this window dilated by `radius` in Chebyshev
    /// distance: a cell is admissible in the result iff some admissible cell
    /// of `self` lies within `radius` rows *and* `radius` columns of it.
    pub fn dilate(&self, radius: usize) -> Self {
        let n_rows = self.lo.len();
        let mut lo = vec![usize::MAX; n_rows];
        let mut hi = vec![0usize; n_rows];
        for i in 0..n_rows {
            let r0 = i.saturating_sub(radius);
            let r1 = (i + radius).min(n_rows - 1);
            let mut l = usize::MAX;
            let mut h = 0usize;
            for r in r0..=r1 {
                l = l.min(self.lo[r]);
                h = h.max(self.hi[r]);
            }
            lo[i] = l.saturating_sub(radius);
            hi[i] = (h + radius).min(self.n_cols - 1);
        }
        SearchWindow::assemble(self.n_cols, lo, hi)
    }

    /// Forces the window to admit at least one monotone staircase path from
    /// `(0,0)` to `(n-1, m-1)` by enforcing three properties:
    /// monotone non-decreasing `lo`, monotone non-decreasing `hi`, and
    /// row-to-row overlap `lo[i+1] ≤ hi[i] + 1`.
    ///
    /// These adjustments only ever *grow* rows, so every previously
    /// admissible cell stays admissible (the approximation can only improve).
    fn repair_connectivity(&mut self) {
        let n_rows = self.lo.len();
        if n_rows == 0 {
            return;
        }
        // Monotone hi (forward): a path can never move left.
        for i in 1..n_rows {
            if self.hi[i] < self.hi[i - 1] {
                self.hi[i] = self.hi[i - 1];
            }
        }
        // Monotone lo (backward): growing lo would *shrink* a row, so grow
        // the earlier row's lo bound downward instead.
        for i in (1..n_rows).rev() {
            if self.lo[i - 1] > self.lo[i] {
                self.lo[i - 1] = self.lo[i];
            }
        }
        // Overlap: row i+1 must start no later than one past row i's end.
        for i in 1..n_rows {
            if self.lo[i] > self.hi[i - 1] + 1 {
                // Grow the previous row's end rather than this row's start,
                // to preserve monotonicity already established.
                let need = self.lo[i] - 1;
                for k in (0..i).rev() {
                    if self.hi[k] >= need {
                        break;
                    }
                    self.hi[k] = need.min(self.n_cols - 1);
                }
            }
        }
        // Re-establish monotone hi after the overlap pass.
        for i in 1..n_rows {
            if self.hi[i] < self.hi[i - 1] {
                self.hi[i] = self.hi[i - 1];
            }
        }
        self.recache();
        debug_assert!(self.validate().is_ok(), "repair_connectivity failed");
    }

    /// Checks the structural invariants required by the windowed DP:
    /// every row non-empty and in-bounds, `lo`/`hi` monotone non-decreasing,
    /// rows overlapping (`lo[i] ≤ hi[i-1] + 1`), `(0,0)` and `(n-1, m-1)`
    /// admissible.
    pub fn validate(&self) -> Result<()> {
        let n_rows = self.lo.len();
        if n_rows == 0 {
            return Err(Error::InvalidWindow {
                reason: "window has no rows".into(),
            });
        }
        if self.n_cols == 0 {
            return Err(Error::InvalidWindow {
                reason: "window has no columns".into(),
            });
        }
        for i in 0..n_rows {
            if self.lo[i] > self.hi[i] {
                return Err(Error::InvalidWindow {
                    reason: format!("row {i} is empty: lo={} > hi={}", self.lo[i], self.hi[i]),
                });
            }
            if self.hi[i] >= self.n_cols {
                return Err(Error::InvalidWindow {
                    reason: format!(
                        "row {i} ends at {} but matrix has {} columns",
                        self.hi[i], self.n_cols
                    ),
                });
            }
            if i > 0 {
                if self.lo[i] < self.lo[i - 1] || self.hi[i] < self.hi[i - 1] {
                    return Err(Error::InvalidWindow {
                        reason: format!("bounds not monotone at row {i}"),
                    });
                }
                if self.lo[i] > self.hi[i - 1] + 1 {
                    return Err(Error::InvalidWindow {
                        reason: format!(
                            "gap between rows {} and {i}: lo={} > prev hi + 1 = {}",
                            i - 1,
                            self.lo[i],
                            self.hi[i - 1] + 1
                        ),
                    });
                }
            }
        }
        if self.lo[0] != 0 {
            return Err(Error::InvalidWindow {
                reason: "cell (0,0) not admissible".into(),
            });
        }
        if self.hi[n_rows - 1] != self.n_cols - 1 {
            return Err(Error::InvalidWindow {
                reason: "end cell (n-1, m-1) not admissible".into(),
            });
        }
        Ok(())
    }

    /// Number of rows of the window (length of series `x`).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.lo.len()
    }

    /// Number of columns of the underlying matrix (length of series `y`).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The inclusive column interval admissible in row `i`.
    #[inline]
    pub fn row_bounds(&self, i: usize) -> (usize, usize) {
        (self.lo[i], self.hi[i])
    }

    /// Whether cell `(i, j)` is admissible.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i < self.lo.len() && j >= self.lo[i] && j <= self.hi[i]
    }

    /// The widest row of the window, `max_i (hi[i] - lo[i] + 1)` — the
    /// scratch-row length the rolling-row DP kernels allocate.
    ///
    /// Cached at construction; O(1).
    #[inline]
    pub fn max_row_width(&self) -> usize {
        self.max_width
    }

    /// Total number of admissible cells — the work the DP will do.
    ///
    /// This is the quantity the paper's Fig. 1/Fig. 4 comparisons ultimately
    /// trade on: FastDTW's window has `O(N·r)` cells *per level*, while
    /// `cDTW_w`'s band has `O(N·w)` cells once.
    ///
    /// Cached at construction; O(1).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.n_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::WarpingPath;

    #[test]
    fn full_window_covers_everything() {
        let w = SearchWindow::full(4, 6);
        assert_eq!(w.n_rows(), 4);
        assert_eq!(w.n_cols(), 6);
        assert_eq!(w.cell_count(), 24);
        assert!(w.validate().is_ok());
        assert!(w.contains(0, 0));
        assert!(w.contains(3, 5));
        assert!(!w.contains(4, 0));
    }

    #[test]
    fn sakoe_chiba_square_band_zero_is_diagonalish() {
        let w = SearchWindow::sakoe_chiba(5, 5, 0);
        assert!(w.validate().is_ok());
        // Radius 0 with the slope allowance admits the diagonal plus
        // immediate neighbors; the diagonal itself must be admissible.
        for i in 0..5 {
            assert!(w.contains(i, i), "diagonal cell ({i},{i}) missing");
        }
    }

    #[test]
    fn sakoe_chiba_band_limits_deviation() {
        let band = 2;
        let n = 20;
        let w = SearchWindow::sakoe_chiba(n, n, band);
        assert!(w.validate().is_ok());
        for i in 0..n {
            let (lo, hi) = w.row_bounds(i);
            // Equal lengths: the band is exactly |i - j| <= band.
            assert!(i as isize - lo as isize <= band as isize);
            assert!(hi as isize - i as isize <= band as isize);
        }
    }

    #[test]
    fn sakoe_chiba_full_band_equals_full_window() {
        let w = SearchWindow::sakoe_chiba(8, 8, 8);
        assert_eq!(w.cell_count(), 64);
    }

    #[test]
    fn sakoe_chiba_handles_rectangular_matrices() {
        for (n, m) in [(5, 13), (13, 5), (1, 9), (9, 1), (2, 3)] {
            let w = SearchWindow::sakoe_chiba(n, m, 0);
            assert!(
                w.validate().is_ok(),
                "invalid band for {n}x{m}: {:?}",
                w.validate()
            );
        }
    }

    #[test]
    fn from_bounds_rejects_empty_row() {
        let r = SearchWindow::from_bounds(5, vec![0, 3], vec![4, 2]);
        assert!(matches!(r, Err(Error::InvalidWindow { .. })));
    }

    #[test]
    fn from_bounds_rejects_gap() {
        // Row 1 starts at column 4 but row 0 ends at column 1: unreachable.
        let r = SearchWindow::from_bounds(6, vec![0, 4], vec![1, 5]);
        assert!(matches!(r, Err(Error::InvalidWindow { .. })));
    }

    #[test]
    fn from_bounds_accepts_staircase() {
        let w = SearchWindow::from_bounds(4, vec![0, 0, 1, 2], vec![1, 2, 3, 3]).unwrap();
        assert_eq!(w.cell_count(), 2 + 3 + 3 + 2);
    }

    #[test]
    fn dilate_grows_symmetrically_and_clips() {
        let w = SearchWindow::from_bounds(5, vec![0, 1, 2, 2], vec![1, 2, 3, 4]).unwrap();
        let d = w.dilate(1);
        // Row 0 picks up row 1's range expanded by 1 column.
        assert_eq!(d.row_bounds(0), (0, 3));
        // Interior rows widen by one column each way plus vertical union.
        assert_eq!(d.row_bounds(1), (0, 4));
        // Every original cell stays admissible.
        for i in 0..4 {
            let (lo, hi) = w.row_bounds(i);
            for j in lo..=hi {
                assert!(d.contains(i, j));
            }
        }
    }

    #[test]
    fn projection_of_diagonal_path_covers_fine_diagonal() {
        // Low-res 4x4 diagonal path projected to 8x8.
        let p = WarpingPath::new(vec![(0, 0), (1, 1), (2, 2), (3, 3)]).unwrap();
        let w = SearchWindow::from_low_res_path(&p, 8, 8, 0);
        assert!(w.validate().is_ok());
        for i in 0..8 {
            assert!(w.contains(i, i), "fine diagonal cell ({i},{i}) missing");
        }
    }

    #[test]
    fn projection_handles_odd_fine_lengths() {
        let p = WarpingPath::new(vec![(0, 0), (1, 1), (2, 2)]).unwrap();
        for (n, m) in [(7, 7), (7, 6), (6, 7), (5, 7)] {
            let w = SearchWindow::from_low_res_path(&p, n, m, 1);
            assert!(w.validate().is_ok(), "{n}x{m}: {:?}", w.validate());
        }
    }

    #[test]
    fn projection_radius_grows_cell_count() {
        let p = WarpingPath::new(vec![(0, 0), (1, 1), (2, 2), (3, 3)]).unwrap();
        let w0 = SearchWindow::from_low_res_path(&p, 8, 8, 0);
        let w2 = SearchWindow::from_low_res_path(&p, 8, 8, 2);
        assert!(w2.cell_count() > w0.cell_count());
        // Radius dilation preserves admissibility of the core cells.
        for i in 0..8 {
            let (lo, hi) = w0.row_bounds(i);
            for j in lo..=hi {
                assert!(w2.contains(i, j));
            }
        }
    }

    #[test]
    fn itakura_is_valid_and_pinches_at_corners() {
        let w = SearchWindow::itakura(40, 40, 2.0).unwrap();
        assert!(w.validate().is_ok());
        // Middle row is wide, corner rows are narrow.
        let (lo_mid, hi_mid) = w.row_bounds(20);
        let (lo_edge, hi_edge) = w.row_bounds(2);
        assert!(hi_mid - lo_mid > hi_edge - lo_edge);
        // Diagonal always admissible.
        for i in 0..40 {
            assert!(w.contains(i, i), "diagonal cell {i}");
        }
        // Strictly smaller than the full matrix.
        assert!(w.cell_count() < 40 * 40);
    }

    #[test]
    fn itakura_rejects_bad_slopes() {
        assert!(SearchWindow::itakura(10, 10, 1.0).is_err());
        assert!(SearchWindow::itakura(10, 10, 0.5).is_err());
        assert!(SearchWindow::itakura(10, 10, f64::NAN).is_err());
    }

    #[test]
    fn itakura_handles_rectangles_and_tiny_inputs() {
        for (n, m) in [(1usize, 1usize), (1, 8), (8, 1), (5, 9), (9, 5)] {
            let w = SearchWindow::itakura(n, m, 2.0).unwrap();
            assert!(w.validate().is_ok(), "{n}x{m}: {:?}", w.validate());
        }
    }

    #[test]
    fn cached_aggregates_match_recomputation() {
        let p = WarpingPath::new(vec![(0, 0), (1, 1), (2, 1), (3, 2)]).unwrap();
        let windows = vec![
            SearchWindow::full(4, 6),
            SearchWindow::sakoe_chiba(9, 5, 2),
            SearchWindow::sakoe_chiba(5, 13, 0),
            SearchWindow::itakura(12, 17, 2.0).unwrap(),
            SearchWindow::from_bounds(4, vec![0, 0, 1, 2], vec![1, 2, 3, 3]).unwrap(),
            SearchWindow::from_low_res_path(&p, 8, 5, 1),
            SearchWindow::sakoe_chiba(9, 9, 1).dilate(2),
        ];
        for w in windows {
            let mut max_width = 0;
            let mut cells = 0;
            for i in 0..w.n_rows() {
                let (lo, hi) = w.row_bounds(i);
                max_width = max_width.max(hi - lo + 1);
                cells += hi - lo + 1;
            }
            assert_eq!(w.max_row_width(), max_width, "{w:?}");
            assert_eq!(w.cell_count(), cells, "{w:?}");
        }
    }

    #[test]
    fn cell_count_of_band_is_much_less_than_full() {
        let band = SearchWindow::sakoe_chiba(100, 100, 5);
        let full = SearchWindow::full(100, 100);
        assert!(band.cell_count() < full.cell_count() / 4);
    }
}
