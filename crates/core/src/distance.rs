//! Top-level convenience API: the distances most users need, with the
//! crate-default squared cost and percentage-form warping constraints.
//!
//! These free functions mirror the paper's notation: [`dtw`] is Full DTW
//! (`cDTW_100`), [`cdtw`] is `cDTW_w` with `w` as a percentage of the
//! series length, [`fastdtw`] is `FastDTW_r`.

use crate::cost::SquaredCost;
use crate::dtw::banded::{cdtw_distance, percent_to_band};
use crate::dtw::full::dtw_distance;
use crate::error::{Error, Result};
use crate::fastdtw::fastdtw_distance;

/// Full (unconstrained) DTW with squared local cost — the paper's
/// `cDTW_100`.
///
/// ```
/// // A time-shifted spike costs nothing under unconstrained warping
/// // (the shared boundary samples absorb the shift on both sides).
/// let x = [0.0, 5.0, 0.0, 0.0, 0.0];
/// let y = [0.0, 0.0, 0.0, 5.0, 0.0];
/// assert_eq!(tsdtw_core::dtw(&x, &y).unwrap(), 0.0);
/// ```
pub fn dtw(x: &[f64], y: &[f64]) -> Result<f64> {
    dtw_distance(x, y, SquaredCost)
}

/// Constrained DTW with the warping window `w_percent` given as a
/// percentage of the (longer) series length — the paper's `cDTW_w`.
///
/// ```
/// let x = [0.0, 1.0, 2.0, 1.0];
/// let y = [0.0, 0.0, 1.0, 2.0];
/// // w = 0 is the squared Euclidean distance; w = 100 is full DTW.
/// assert_eq!(
///     tsdtw_core::cdtw(&x, &y, 0.0).unwrap(),
///     tsdtw_core::sq_euclidean(&x, &y).unwrap()
/// );
/// assert_eq!(
///     tsdtw_core::cdtw(&x, &y, 100.0).unwrap(),
///     tsdtw_core::dtw(&x, &y).unwrap()
/// );
/// ```
pub fn cdtw(x: &[f64], y: &[f64], w_percent: f64) -> Result<f64> {
    let band = percent_to_band(x.len().max(y.len()), w_percent)?;
    cdtw_distance(x, y, band, SquaredCost)
}

/// FastDTW with the given radius — the paper's `FastDTW_r` (the tuned
/// implementation; see [`crate::fastdtw::reference`] for the canonical
/// one).
///
/// ```
/// let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
/// let y: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2 + 0.5).sin()).collect();
/// let exact = tsdtw_core::dtw(&x, &y).unwrap();
/// let approx = tsdtw_core::fastdtw(&x, &y, 4).unwrap();
/// // FastDTW evaluates one admissible path, so it upper-bounds the optimum.
/// assert!(approx >= exact);
/// ```
pub fn fastdtw(x: &[f64], y: &[f64], radius: usize) -> Result<f64> {
    fastdtw_distance(x, y, radius, SquaredCost)
}

/// Squared Euclidean distance (the paper's `cDTW_0`). Requires equal
/// lengths.
pub fn sq_euclidean(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.is_empty() {
        return Err(Error::EmptyInput { which: "x" });
    }
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    Ok(x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum())
}

/// Euclidean distance (root of [`sq_euclidean`]).
pub fn euclidean(x: &[f64], y: &[f64]) -> Result<f64> {
    sq_euclidean(x, y).map(f64::sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 8] = [0.0, 1.0, 3.0, 2.0, 0.0, -1.0, 0.0, 1.0];
    const Y: [f64; 8] = [0.0, 0.0, 1.0, 3.0, 2.0, 0.0, -1.0, 0.0];

    #[test]
    fn cdtw_at_zero_percent_is_sq_euclidean() {
        let a = cdtw(&X, &Y, 0.0).unwrap();
        let b = sq_euclidean(&X, &Y).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cdtw_at_hundred_percent_is_full_dtw() {
        let a = cdtw(&X, &Y, 100.0).unwrap();
        let b = dtw(&X, &Y).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn ordering_dtw_le_cdtw_le_euclidean() {
        let full = dtw(&X, &Y).unwrap();
        let banded = cdtw(&X, &Y, 25.0).unwrap();
        let e = sq_euclidean(&X, &Y).unwrap();
        assert!(full <= banded + 1e-12);
        assert!(banded <= e + 1e-12);
    }

    #[test]
    fn fastdtw_upper_bounds_dtw() {
        let full = dtw(&X, &Y).unwrap();
        for r in 0..4 {
            assert!(fastdtw(&X, &Y, r).unwrap() >= full - 1e-12);
        }
    }

    #[test]
    fn euclidean_is_root_of_squared() {
        let e = euclidean(&X, &Y).unwrap();
        let s = sq_euclidean(&X, &Y).unwrap();
        assert!((e * e - s).abs() < 1e-9);
    }

    #[test]
    fn euclidean_rejects_unequal_lengths() {
        assert!(sq_euclidean(&X, &Y[..7]).is_err());
        assert!(euclidean(&[], &[]).is_err());
    }
}
