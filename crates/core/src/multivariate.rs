//! Multivariate (dependent) DTW.
//!
//! The real `UWaveGestureLibraryAll` data behind the paper's Fig. 1 is
//! three accelerometer axes; the archive flattens them by concatenation,
//! but the principled treatment is *dependent* multivariate DTW: one
//! warping path for all dimensions, with the local cost summed across
//! dimensions (`DTW_D` of Shokoohi-Yekta et al.). This module provides it
//! for arbitrary dimension, with the same Sakoe–Chiba banding as the
//! univariate kernels, plus the *independent* variant (`DTW_I`: one DTW
//! per dimension, summed) for comparison.

use crate::error::{Error, Result};
use crate::window::SearchWindow;

/// A multivariate series: `data[t]` is the `dim`-dimensional sample at
/// time `t`, stored row-major in one flat buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    dim: usize,
    data: Vec<f64>,
}

impl MultiSeries {
    /// Builds a series from a flat row-major buffer of `len × dim` values.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidParameter {
                name: "dim",
                reason: "dimension must be at least 1".into(),
            });
        }
        if data.is_empty() || !data.len().is_multiple_of(dim) {
            return Err(Error::InvalidParameter {
                name: "data",
                reason: format!(
                    "buffer of {} values is not a positive multiple of dim {dim}",
                    data.len()
                ),
            });
        }
        if let Some(idx) = data.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteInput {
                which: "data",
                index: idx,
            });
        }
        Ok(MultiSeries { dim, data })
    }

    /// Builds a series from per-dimension channels of equal length.
    pub fn from_channels(channels: &[Vec<f64>]) -> Result<Self> {
        if channels.is_empty() {
            return Err(Error::EmptyInput { which: "channels" });
        }
        let len = channels[0].len();
        if len == 0 {
            return Err(Error::EmptyInput {
                which: "channels[0]",
            });
        }
        if channels.iter().any(|c| c.len() != len) {
            return Err(Error::InvalidParameter {
                name: "channels",
                reason: "all channels must share one length".into(),
            });
        }
        let dim = channels.len();
        let mut data = Vec::with_capacity(len * dim);
        for t in 0..len {
            for c in channels {
                data.push(c[t]);
            }
        }
        Self::from_flat(dim, data)
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// A series is never empty once constructed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions per sample.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `dim` values at time `t`.
    #[inline]
    pub fn sample(&self, t: usize) -> &[f64] {
        &self.data[t * self.dim..(t + 1) * self.dim]
    }

    /// One dimension extracted as a contiguous channel.
    pub fn channel(&self, d: usize) -> Result<Vec<f64>> {
        if d >= self.dim {
            return Err(Error::InvalidParameter {
                name: "d",
                reason: format!("channel {d} of a {}-dimensional series", self.dim),
            });
        }
        Ok((0..self.len())
            .map(|t| self.data[t * self.dim + d])
            .collect())
    }
}

#[inline(always)]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Dependent multivariate DTW (`DTW_D`): one path, per-sample squared
/// Euclidean local cost, restricted to a Sakoe–Chiba band of `band` cells
/// (pass `band ≥ max(n, m)` for the unconstrained case).
pub fn mdtw_d_distance(x: &MultiSeries, y: &MultiSeries, band: usize) -> Result<f64> {
    if x.dim() != y.dim() {
        return Err(Error::InvalidParameter {
            name: "y",
            reason: format!("dimension mismatch: {} vs {}", x.dim(), y.dim()),
        });
    }
    let n = x.len();
    let m = y.len();
    let window = SearchWindow::sakoe_chiba(n, m, band);

    let width = (0..n)
        .map(|i| {
            let (lo, hi) = window.row_bounds(i);
            hi - lo + 1
        })
        .max()
        .expect("n >= 1");
    let mut prev = vec![f64::INFINITY; width];
    let mut cur = vec![f64::INFINITY; width];

    let (lo0, hi0) = window.row_bounds(0);
    let mut acc = 0.0;
    for (k, j) in (lo0..=hi0).enumerate() {
        acc += sq_dist(x.sample(0), y.sample(j));
        prev[k] = acc;
    }
    let (mut plo, mut phi) = (lo0, hi0);

    for i in 1..n {
        let (lo, hi) = window.row_bounds(i);
        let xi = x.sample(i);
        for j in lo..=hi {
            let up = if j >= plo && j <= phi {
                prev[j - plo]
            } else {
                f64::INFINITY
            };
            let diag = if j > plo && j - 1 <= phi {
                prev[j - 1 - plo]
            } else {
                f64::INFINITY
            };
            let left = if j > lo {
                cur[j - 1 - lo]
            } else {
                f64::INFINITY
            };
            cur[j - lo] = sq_dist(xi, y.sample(j)) + diag.min(up).min(left);
        }
        std::mem::swap(&mut prev, &mut cur);
        plo = lo;
        phi = hi;
    }

    let (lo_last, _) = window.row_bounds(n - 1);
    Ok(prev[m - 1 - lo_last])
}

/// Independent multivariate DTW (`DTW_I`): the sum of per-dimension
/// univariate banded DTW distances (each dimension warps on its own).
pub fn mdtw_i_distance(x: &MultiSeries, y: &MultiSeries, band: usize) -> Result<f64> {
    if x.dim() != y.dim() {
        return Err(Error::InvalidParameter {
            name: "y",
            reason: format!("dimension mismatch: {} vs {}", x.dim(), y.dim()),
        });
    }
    let mut total = 0.0;
    for d in 0..x.dim() {
        let cx = x.channel(d)?;
        let cy = y.channel(d)?;
        total += crate::dtw::banded::cdtw_distance(&cx, &cy, band, crate::cost::SquaredCost)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::banded::cdtw_distance;
    use crate::SquaredCost;

    fn wave(dim: usize, n: usize, phase: f64) -> MultiSeries {
        let channels: Vec<Vec<f64>> = (0..dim)
            .map(|d| {
                (0..n)
                    .map(|t| ((t as f64 * 0.2) + phase + d as f64).sin())
                    .collect()
            })
            .collect();
        MultiSeries::from_channels(&channels).unwrap()
    }

    #[test]
    fn construction_roundtrips() {
        let s = MultiSeries::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.sample(1), &[3.0, 4.0]);
        assert_eq!(s.channel(0).unwrap(), vec![1.0, 3.0]);
        assert_eq!(s.channel(1).unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn construction_rejects_bad_shapes() {
        assert!(MultiSeries::from_flat(0, vec![1.0]).is_err());
        assert!(MultiSeries::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(MultiSeries::from_flat(2, vec![]).is_err());
        assert!(MultiSeries::from_flat(1, vec![f64::NAN]).is_err());
        assert!(MultiSeries::from_channels(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(MultiSeries::from_channels(&[]).is_err());
    }

    #[test]
    fn one_dimensional_case_matches_univariate_kernel() {
        let xc: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3).sin()).collect();
        let yc: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3 + 0.8).sin()).collect();
        let x = MultiSeries::from_channels(std::slice::from_ref(&xc)).unwrap();
        let y = MultiSeries::from_channels(std::slice::from_ref(&yc)).unwrap();
        for band in [0usize, 3, 40] {
            let multi = mdtw_d_distance(&x, &y, band).unwrap();
            let uni = cdtw_distance(&xc, &yc, band, SquaredCost).unwrap();
            assert!((multi - uni).abs() < 1e-9, "band {band}");
        }
    }

    #[test]
    fn zero_on_identical_series() {
        let x = wave(3, 50, 0.0);
        assert_eq!(mdtw_d_distance(&x, &x, 5).unwrap(), 0.0);
        assert_eq!(mdtw_i_distance(&x, &x, 5).unwrap(), 0.0);
    }

    #[test]
    fn dependent_never_below_independent() {
        // DTW_I lets each dimension warp separately, so it can only find
        // cheaper alignments: DTW_I <= DTW_D.
        for phase in [0.3, 0.9, 1.7] {
            let x = wave(3, 60, 0.0);
            let y = wave(3, 60, phase);
            let d = mdtw_d_distance(&x, &y, 60).unwrap();
            let i = mdtw_i_distance(&x, &y, 60).unwrap();
            assert!(i <= d + 1e-9, "phase {phase}: I {i} > D {d}");
        }
    }

    #[test]
    fn band_monotone_for_dependent_dtw() {
        let x = wave(2, 50, 0.0);
        let y = wave(2, 50, 1.2);
        let mut last = f64::INFINITY;
        for band in [0usize, 2, 5, 10, 50] {
            let d = mdtw_d_distance(&x, &y, band).unwrap();
            assert!(d <= last + 1e-9);
            last = d;
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let x = wave(2, 20, 0.0);
        let y = wave(3, 20, 0.0);
        assert!(mdtw_d_distance(&x, &y, 5).is_err());
        assert!(mdtw_i_distance(&x, &y, 5).is_err());
    }

    #[test]
    fn shifted_spike_in_all_dimensions_aligns() {
        let mut a = vec![0.0; 60];
        let mut b = vec![0.0; 60];
        a[10] = 5.0;
        b[30] = 5.0;
        let x = MultiSeries::from_channels(&[a.clone(), a]).unwrap();
        let y = MultiSeries::from_channels(&[b.clone(), b]).unwrap();
        let d = mdtw_d_distance(&x, &y, 60).unwrap();
        assert!(d < 1e-12, "dependent warp aligns the joint spike: {d}");
    }
}
