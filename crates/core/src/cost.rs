//! Pointwise cost functions for the DTW dynamic program.
//!
//! Every DP kernel in this crate is generic over a [`CostFn`], so exact DTW,
//! constrained DTW and FastDTW can be compared under *identical* local costs —
//! the paper stresses that its head-to-head comparisons keep "the same
//! language, the same hardware, the same task", and the same local cost is
//! part of that.
//!
//! The default throughout the crate is [`SquaredCost`], matching the
//! recurrence in the paper (`(X[i] - Y[j])^2 + min{...}`) and the UCR-suite
//! convention. [`AbsoluteCost`] (Manhattan) matches the original FastDTW
//! reference implementation by Salvador & Chan, whose published code used
//! `|x - y|`.

/// A local (pointwise) cost between two sample values.
///
/// Implementations must be cheap — this is the innermost call of every DP —
/// and must return non-negative, finite values for finite inputs so that
/// accumulated costs remain ordered and `f64::INFINITY` can serve as the
/// "unreachable cell" sentinel.
pub trait CostFn: Copy {
    /// Whether [`Kernel::Auto`](crate::dtw::kernel::Kernel) may route this
    /// cost through the segmented (branch-free interior) row sweep.
    ///
    /// The segmented tier is bitwise-equal to the generic tier for *every*
    /// cost — it performs the same per-cell operations in the same order —
    /// so this is purely a performance hint: the fused-min fast path only
    /// pays off when the cost call inlines to a couple of arithmetic ops.
    /// [`SquaredCost`] and [`AbsoluteCost`] (the two costs every experiment
    /// in this crate uses) opt in; exotic user costs stay on the proven
    /// generic sweep under `Auto` and can still be forced onto the
    /// segmented tier with `Kernel::Segmented`.
    const SEGMENTED_FAST: bool = false;

    /// The cost of aligning sample value `a` with sample value `b`.
    fn cost(&self, a: f64, b: f64) -> f64;

    /// Transforms a final accumulated cost into the reported distance.
    ///
    /// The identity by default. [`SquaredCost`] keeps the identity too (the
    /// UCR archive reports squared DTW); callers who want a rooted distance
    /// use [`Rooted`].
    #[inline]
    fn finish(&self, accumulated: f64) -> f64 {
        accumulated
    }
}

/// Squared difference: `(a - b)^2`. The crate-wide default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredCost;

impl CostFn for SquaredCost {
    const SEGMENTED_FAST: bool = true;

    #[inline(always)]
    fn cost(&self, a: f64, b: f64) -> f64 {
        let d = a - b;
        d * d
    }
}

/// Absolute difference: `|a - b|`, as used by the original FastDTW release.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsoluteCost;

impl CostFn for AbsoluteCost {
    const SEGMENTED_FAST: bool = true;

    #[inline(always)]
    fn cost(&self, a: f64, b: f64) -> f64 {
        (a - b).abs()
    }
}

/// Wraps another cost so the *reported* distance is the square root of the
/// accumulated cost (a true metric-style distance when the inner cost is
/// [`SquaredCost`]).
///
/// The paper's Table 2 values (e.g. `0.020`, `6.822`) are of this rooted
/// form; `repro table2` uses `Rooted(SquaredCost)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rooted<C: CostFn>(pub C);

impl<C: CostFn> CostFn for Rooted<C> {
    // Rooting only changes `finish`, not the per-cell work, so the wrapper
    // inherits the inner cost's fast-path eligibility.
    const SEGMENTED_FAST: bool = C::SEGMENTED_FAST;

    #[inline(always)]
    fn cost(&self, a: f64, b: f64) -> f64 {
        self.0.cost(a, b)
    }

    #[inline]
    fn finish(&self, accumulated: f64) -> f64 {
        accumulated.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_cost_is_square_of_difference() {
        assert_eq!(SquaredCost.cost(3.0, 1.0), 4.0);
        assert_eq!(SquaredCost.cost(1.0, 3.0), 4.0);
        assert_eq!(SquaredCost.cost(-2.0, 2.0), 16.0);
    }

    #[test]
    fn absolute_cost_is_magnitude_of_difference() {
        assert_eq!(AbsoluteCost.cost(3.0, 1.0), 2.0);
        assert_eq!(AbsoluteCost.cost(1.0, 3.0), 2.0);
        assert_eq!(AbsoluteCost.cost(-2.0, 2.0), 4.0);
    }

    #[test]
    fn costs_are_zero_on_identical_values() {
        for v in [-1.5, 0.0, 2.25, 1e6] {
            assert_eq!(SquaredCost.cost(v, v), 0.0);
            assert_eq!(AbsoluteCost.cost(v, v), 0.0);
        }
    }

    #[test]
    fn default_finish_is_identity() {
        assert_eq!(SquaredCost.finish(42.0), 42.0);
        assert_eq!(AbsoluteCost.finish(42.0), 42.0);
    }

    #[test]
    fn rooted_finish_takes_square_root_but_keeps_local_cost() {
        let c = Rooted(SquaredCost);
        assert_eq!(c.cost(3.0, 1.0), 4.0);
        assert_eq!(c.finish(9.0), 3.0);
    }
}
