//! Open-end (prefix) DTW for online alignment and score following.
//!
//! Case B of the paper is score alignment: tracking a live performance
//! against a reference score. The streaming form of that task uses
//! **open-end DTW** (OE-DTW): the query `x` must be consumed entirely, but
//! it may align to *any prefix* of the reference `y` — the reported
//! distance is `min_j D(n-1, j)`, and the matched prefix length falls out
//! of the argmin. This is the classic Mori/Tormene formulation, included
//! as an extension of the exact-DTW toolbox (it inherits banding and the
//! two-row memory profile; there is no FastDTW analogue, since committing
//! to coarse-level prefixes is exactly what the adversarial example
//! punishes).

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Result};

/// Result of an open-end alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenEndMatch {
    /// Accumulated cost of the best full-query-to-prefix alignment.
    pub distance: f64,
    /// Index into `y` of the last reference sample matched (the best
    /// prefix is `y[..=end]`).
    pub end: usize,
}

/// Open-end DTW: aligns all of `x` against the best prefix of `y`,
/// optionally constrained to a Sakoe–Chiba band of `band` cells around the
/// `x`-indexed diagonal `j = i` (pass `band ≥ max(x.len(), y.len())` for
/// unconstrained).
///
/// ```
/// use tsdtw_core::open_end::open_end_dtw;
/// use tsdtw_core::SquaredCost;
///
/// // The live feed so far is exactly the first half of the score.
/// let score: Vec<f64> = (0..40).map(|i| i as f64).collect();
/// let live: Vec<f64> = score[..20].to_vec();
/// let m = open_end_dtw(&live, &score, 40, SquaredCost).unwrap();
/// assert_eq!(m.end, 19);
/// assert_eq!(m.distance, 0.0);
/// ```
pub fn open_end_dtw<C: CostFn>(x: &[f64], y: &[f64], band: usize, cost: C) -> Result<OpenEndMatch> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    let n = x.len();
    let m = y.len();

    // Band around the identity diagonal j = i (prefix alignment assumes
    // comparable sampling rates; wider bands subsume rate mismatch).
    let bounds = |i: usize| -> (usize, usize) {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(m - 1);
        (lo.min(m - 1), hi)
    };

    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    let (lo0, hi0) = bounds(0);
    let mut acc = 0.0;
    for j in lo0..=hi0 {
        acc += cost.cost(x[0], y[j]);
        prev[j] = acc;
    }

    for (i, &xi) in x.iter().enumerate().skip(1) {
        let (lo, hi) = bounds(i);
        let (plo, phi) = bounds(i - 1);
        for j in lo..=hi {
            let up = if j >= plo && j <= phi {
                prev[j]
            } else {
                f64::INFINITY
            };
            let diag = if j > plo && j - 1 <= phi {
                prev[j - 1]
            } else {
                f64::INFINITY
            };
            let left = if j > lo { cur[j - 1] } else { f64::INFINITY };
            let best = diag.min(up).min(left);
            cur[j] = if best.is_finite() {
                cost.cost(xi, y[j]) + best
            } else {
                f64::INFINITY
            };
        }
        // Clear stale cells outside the current band before the swap.
        for v in cur.iter_mut().take(lo) {
            *v = f64::INFINITY;
        }
        for v in cur.iter_mut().skip(hi + 1) {
            *v = f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    let (lo_last, hi_last) = bounds(n - 1);
    let (mut best_j, mut best) = (lo_last, f64::INFINITY);
    for (j, &v) in prev.iter().enumerate().take(hi_last + 1).skip(lo_last) {
        if v < best {
            best = v;
            best_j = j;
        }
    }
    Ok(OpenEndMatch {
        distance: cost.finish(best),
        end: best_j,
    })
}

/// Incremental open-end tracker: feed live samples one at a time and read
/// the current best prefix match after each — one DP row (`O(m)` with
/// `O(band)` interesting cells) per sample instead of re-running the whole
/// DP. The batch function costs `O(t·band)` per update, so a naive tracker
/// is quadratic over a performance; this one is linear.
///
/// Equivalent, sample for sample, to calling [`open_end_dtw`] on the
/// growing prefix (the test suite pins the equivalence).
#[derive(Debug, Clone)]
pub struct OnlineOpenEnd<C: CostFn> {
    reference: Vec<f64>,
    band: usize,
    cost: C,
    /// DP row for the last pushed sample (index = reference column), plus
    /// that row's band bounds. Empty until the first push.
    row: Vec<f64>,
    bounds: Option<(usize, usize)>,
    t: usize,
}

impl<C: CostFn> OnlineOpenEnd<C> {
    /// Creates a tracker against `reference` with a Sakoe–Chiba band of
    /// `band` cells around the live-sample-indexed diagonal.
    pub fn new(reference: &[f64], band: usize, cost: C) -> Result<Self> {
        check_nonempty("reference", reference)?;
        check_finite("reference", reference)?;
        Ok(OnlineOpenEnd {
            reference: reference.to_vec(),
            band,
            cost,
            row: vec![f64::INFINITY; reference.len()],
            bounds: None,
            t: 0,
        })
    }

    /// Number of live samples consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether any samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    fn band_bounds(&self, i: usize) -> (usize, usize) {
        let m = self.reference.len();
        let lo = i.saturating_sub(self.band).min(m - 1);
        let hi = (i + self.band).min(m - 1);
        (lo, hi)
    }

    /// Consumes one live sample and returns the current best full-prefix
    /// alignment.
    pub fn push(&mut self, sample: f64) -> Result<OpenEndMatch> {
        if !sample.is_finite() {
            return Err(crate::error::Error::NonFiniteInput {
                which: "sample",
                index: self.t,
            });
        }
        let i = self.t;
        let (lo, hi) = self.band_bounds(i);
        let mut next = vec![f64::INFINITY; self.reference.len()];
        match self.bounds {
            None => {
                // Row 0: prefix sums along the admissible interval.
                let mut acc = 0.0;
                for (j, v) in next.iter_mut().enumerate().take(hi + 1).skip(lo) {
                    acc += self.cost.cost(sample, self.reference[j]);
                    *v = acc;
                }
            }
            Some((plo, phi)) => {
                for j in lo..=hi {
                    let up = if j >= plo && j <= phi {
                        self.row[j]
                    } else {
                        f64::INFINITY
                    };
                    let diag = if j > plo && j - 1 <= phi {
                        self.row[j - 1]
                    } else {
                        f64::INFINITY
                    };
                    let left = if j > lo { next[j - 1] } else { f64::INFINITY };
                    let best = diag.min(up).min(left);
                    next[j] = if best.is_finite() {
                        self.cost.cost(sample, self.reference[j]) + best
                    } else {
                        f64::INFINITY
                    };
                }
            }
        }
        self.row = next;
        self.bounds = Some((lo, hi));
        self.t += 1;

        let (mut best_j, mut best) = (lo, f64::INFINITY);
        for (j, &v) in self.row.iter().enumerate().take(hi + 1).skip(lo) {
            if v < best {
                best = v;
                best_j = j;
            }
        }
        Ok(OpenEndMatch {
            distance: self.cost.finish(best),
            end: best_j,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    #[test]
    fn full_reference_match_equals_plain_dtw_when_suffix_is_expensive() {
        // If the reference ends right where the query ends, open-end DTW
        // with the whole reference equals plain DTW.
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let y = x.clone();
        let m = open_end_dtw(&x, &y, y.len(), SquaredCost).unwrap();
        assert_eq!(m.end, y.len() - 1);
        assert!(m.distance < 1e-12);
    }

    #[test]
    fn finds_the_true_prefix() {
        // Query = first half of the reference; the rest of the reference
        // is wildly different, so the match must stop near the midpoint.
        let full: Vec<f64> = (0..80)
            .map(|i| {
                if i < 40 {
                    (i as f64 * 0.25).sin()
                } else {
                    10.0 + i as f64
                }
            })
            .collect();
        let query: Vec<f64> = full[..40].to_vec();
        let m = open_end_dtw(&query, &full, full.len(), SquaredCost).unwrap();
        assert!(
            (35..=45).contains(&m.end),
            "prefix should end near sample 40, got {}",
            m.end
        );
        assert!(m.distance < 1e-9);
    }

    #[test]
    fn never_exceeds_plain_dtw_against_whole_reference() {
        // Stopping early is always an option... including at the very end,
        // so OE-DTW <= DTW(x, y).
        let x: Vec<f64> = (0..25).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64 * 0.17).cos()).collect();
        let oe = open_end_dtw(&x, &y, y.len(), SquaredCost).unwrap();
        let plain = dtw_distance(&x, &y, SquaredCost).unwrap();
        assert!(oe.distance <= plain + 1e-9);
    }

    #[test]
    fn band_restricts_the_prefix_search() {
        let x = vec![0.0; 10];
        let y: Vec<f64> = (0..100).map(|i| i as f64 * 0.001).collect();
        let m = open_end_dtw(&x, &y, 5, SquaredCost).unwrap();
        // With a 5-cell band around j = i, the match cannot end past 14.
        assert!(m.end <= 14, "end {}", m.end);
    }

    #[test]
    fn online_tracking_follows_a_performance() {
        // Simulated score following: feed ever-longer live prefixes and
        // check the matched score position advances monotonically.
        let score: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let live: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1 + 0.05).sin()).collect();
        let mut last_end = 0;
        for t in (20..=200).step_by(30) {
            let m = open_end_dtw(&live[..t], &score, 20, SquaredCost).unwrap();
            assert!(m.end + 1 >= last_end, "tracker went backwards at t={t}");
            assert!(
                m.end.abs_diff(t - 1) <= 21,
                "tracker lost the position at t={t}: {}",
                m.end
            );
            last_end = m.end;
        }
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(open_end_dtw(&[], &[1.0], 1, SquaredCost).is_err());
        assert!(open_end_dtw(&[1.0], &[], 1, SquaredCost).is_err());
    }

    #[test]
    fn online_tracker_matches_batch_at_every_step() {
        let score: Vec<f64> = (0..120).map(|i| (i as f64 * 0.13).sin() * 2.0).collect();
        let live: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.13 + 0.07).sin() * 2.0)
            .collect();
        for band in [3usize, 10, 120] {
            let mut tracker = OnlineOpenEnd::new(&score, band, SquaredCost).unwrap();
            for t in 0..live.len() {
                let online = tracker.push(live[t]).unwrap();
                let batch = open_end_dtw(&live[..=t], &score, band, SquaredCost).unwrap();
                assert!(
                    (online.distance - batch.distance).abs() < 1e-9,
                    "band {band} t {t}: {online:?} vs {batch:?}"
                );
                assert_eq!(online.end, batch.end, "band {band} t {t}");
            }
            assert_eq!(tracker.len(), live.len());
        }
    }

    #[test]
    fn online_tracker_rejects_bad_inputs() {
        assert!(OnlineOpenEnd::new(&[], 3, SquaredCost).is_err());
        let mut t = OnlineOpenEnd::new(&[1.0, 2.0], 1, SquaredCost).unwrap();
        assert!(t.push(f64::NAN).is_err());
        assert!(t.push(1.5).is_ok());
    }
}
