//! FastDTW — a faithful Rust implementation of Salvador & Chan's multilevel
//! approximation (Intelligent Data Analysis, 2007).
//!
//! The algorithm:
//!
//! 1. **Base case.** If either series has at most `radius + 2` points, solve
//!    exactly with full DTW.
//! 2. **Coarsen.** Halve both series by pairwise averaging
//!    ([`paa::halve`](crate::paa::halve)).
//! 3. **Recurse** to obtain a low-resolution warping path.
//! 4. **Project & refine.** Expand every low-resolution path cell onto its
//!    2×2 block at the current resolution, dilate the region by `radius`
//!    cells, and run windowed DTW inside that region.
//!
//! Per level the window holds `O(N·(4r + 4))` cells and the level sizes form
//! a geometric series, so total work is **linear in `N`** — exactly as the
//! original paper advertises. Wu & Keogh's point, which this crate's
//! benchmark suite reproduces, is about the *constant factor* and the
//! comparison target: for every realistic `N` and natural warping width the
//! exact banded `cDTW_w` fills fewer cells than FastDTW's multilevel
//! cascade, and is exact.
//!
//! ## Two implementations, one algorithm
//!
//! This module hosts the **tuned** implementation: it shares its inner DP
//! loop with the exact kernels (see [`windowed`](crate::dtw::windowed)),
//! reuses buffers, stores its window as per-row ranges, and performs no
//! per-cell allocation — FastDTW done as well as we know how.
//!
//! The [`reference`](mod@reference) submodule is a faithful transliteration of the
//! *canonical* implementation (Salvador & Chan's reference, as consumed by
//! the community through the `fastdtw` package): explicit cell-list
//! windows, a hash-map DP table, full-enumeration base cases. The paper's
//! timing results are results about that artifact, and the benchmark suite
//! therefore measures it by default, reporting the tuned variant alongside
//! as an extension (see EXPERIMENTS.md for what changes and what doesn't).

pub mod reference;

pub use reference::{fastdtw_ref_distance, fastdtw_ref_metered, fastdtw_ref_with_path};

use crate::cost::CostFn;
use crate::dtw::kernel::{default_kernel, Kernel};
use crate::dtw::windowed::windowed_with_path_metered_kernel;
use crate::error::{check_finite, check_nonempty, Error, Result};
use crate::paa::halve;
use crate::path::WarpingPath;
use crate::window::SearchWindow;
use tsdtw_obs::{FastDtwLevel, Meter, NoMeter};

/// Upper bound on recursion depth: each level halves the series, so 64
/// levels cover any address space. Used only for a defensive assertion.
const MAX_LEVELS: u32 = 64;

/// Statistics describing the work one FastDTW invocation performed.
///
/// The paper's argument is ultimately about DP cells touched; exposing the
/// counter lets the benchmark harness report cells as a hardware-independent
/// work measure alongside wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastDtwStats {
    /// Number of resolution levels, including the exact base case.
    pub levels: u32,
    /// Total DP cells filled across all levels.
    pub cells: u64,
}

/// FastDTW distance with the given `radius`.
///
/// See [`fastdtw_with_path`] for details; this variant discards the path.
pub fn fastdtw_distance<C: CostFn>(x: &[f64], y: &[f64], radius: usize, cost: C) -> Result<f64> {
    fastdtw_with_path(x, y, radius, cost).map(|(d, _)| d)
}

/// FastDTW distance and the (approximate) warping path it commits to.
pub fn fastdtw_with_path<C: CostFn>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
) -> Result<(f64, WarpingPath)> {
    let (d, p, _) = fastdtw_with_stats(x, y, radius, cost)?;
    Ok((d, p))
}

/// FastDTW distance, path, and work statistics.
pub fn fastdtw_with_stats<C: CostFn>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
) -> Result<(f64, WarpingPath, FastDtwStats)> {
    fastdtw_metered(x, y, radius, cost, &mut NoMeter)
}

/// FastDTW distance, path, and work statistics, with full per-level work
/// accounting.
///
/// Beyond the aggregate [`FastDtwStats`], the meter receives one
/// [`FastDtwLevel`] per resolution (coarsest first) splitting each
/// level's window into cells the low-resolution path *projects* onto
/// versus cells the radius dilation *expands* into — the decomposition
/// the paper's Section 3 uses to compare FastDTW's total touched cells
/// against the single band of `cDTW_w`.
pub fn fastdtw_metered<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
    meter: &mut M,
) -> Result<(f64, WarpingPath, FastDtwStats)> {
    fastdtw_metered_kernel(x, y, radius, cost, meter, default_kernel())
}

/// [`fastdtw_metered`] with an explicit kernel tier for every per-level
/// refinement DP (including the exact base case).
pub fn fastdtw_metered_kernel<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
    meter: &mut M,
    kernel: Kernel,
) -> Result<(f64, WarpingPath, FastDtwStats)> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    let _span = tsdtw_obs::span("fastdtw");
    let mut stats = FastDtwStats::default();
    let (d, p) = recurse(x, y, radius, cost, &mut stats, 0, meter, kernel)?;
    Ok((d, p, stats))
}

#[allow(clippy::too_many_arguments)]
fn recurse<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
    stats: &mut FastDtwStats,
    depth: u32,
    meter: &mut M,
    kernel: Kernel,
) -> Result<(f64, WarpingPath)> {
    assert!(depth < MAX_LEVELS, "FastDTW recursion failed to converge");
    stats.levels += 1;

    // Salvador & Chan: below this size the exact computation is cheaper
    // than further recursion, and the window expansion needs at least this
    // much room.
    let min_size = radius + 2;
    if x.len() <= min_size || y.len() <= min_size {
        let nm = (x.len() * y.len()) as u64;
        stats.cells += nm;
        if meter.enabled() {
            meter.fastdtw_level(FastDtwLevel {
                len_x: x.len(),
                len_y: y.len(),
                window_cells: nm,
                projected_cells: nm,
                expanded_cells: 0,
                base_case: true,
            });
        }
        let _span = tsdtw_obs::span("fastdtw_base");
        let window = SearchWindow::full(x.len(), y.len());
        return windowed_with_path_metered_kernel(x, y, &window, cost, meter, kernel);
    }

    let shrunk_x = halve(x);
    let shrunk_y = halve(y);
    let (_, low_res_path) = recurse(
        &shrunk_x,
        &shrunk_y,
        radius,
        cost,
        stats,
        depth + 1,
        meter,
        kernel,
    )?;

    let _span = tsdtw_obs::span("fastdtw_level");
    let window = {
        let _expand = tsdtw_obs::span("fastdtw_expand");
        SearchWindow::from_low_res_path(&low_res_path, x.len(), y.len(), radius)
    };
    let window_cells = window.cell_count() as u64;
    stats.cells += window_cells;
    if meter.enabled() {
        // Rebuild the projection-only window (radius 0) to split this
        // level's cells into projected vs radius-expanded — extra work
        // that exists only under an enabled meter.
        let projected =
            SearchWindow::from_low_res_path(&low_res_path, x.len(), y.len(), 0).cell_count() as u64;
        meter.fastdtw_level(FastDtwLevel {
            len_x: x.len(),
            len_y: y.len(),
            window_cells,
            projected_cells: projected,
            expanded_cells: window_cells - projected,
            base_case: false,
        });
    }
    windowed_with_path_metered_kernel(x, y, &window, cost, meter, kernel)
}

/// Convenience struct bundling a radius, mirroring
/// [`BandedDtw`](crate::dtw::banded::BandedDtw) for symmetric APIs in the
/// benchmark harness.
#[derive(Debug, Clone, Copy)]
pub struct FastDtw {
    radius: usize,
}

impl FastDtw {
    /// Creates a FastDTW evaluator with the given radius.
    pub fn new(radius: usize) -> Self {
        FastDtw { radius }
    }

    /// The configured radius.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Computes the approximate distance.
    pub fn distance<C: CostFn>(&self, x: &[f64], y: &[f64], cost: C) -> Result<f64> {
        fastdtw_distance(x, y, self.radius, cost)
    }
}

/// The approximation error measure proposed in the original FastDTW paper:
/// `(approx - exact) / exact`, as a fraction (multiply by 100 for percent).
///
/// Returns an error if `exact` is negative, or if `exact` is zero while the
/// approximation is not (the error is unbounded there — the original paper
/// sidesteps this case; we surface it).
pub fn approximation_error(approx: f64, exact: f64) -> Result<f64> {
    if exact < 0.0 || !exact.is_finite() || !approx.is_finite() {
        return Err(Error::InvalidParameter {
            name: "exact",
            reason: "distances must be finite and non-negative".into(),
        });
    }
    if exact == 0.0 {
        if approx == 0.0 {
            return Ok(0.0);
        }
        return Err(Error::InvalidParameter {
            name: "exact",
            reason: "approximation error is unbounded when the exact distance is zero".into(),
        });
    }
    Ok((approx - exact) / exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut v = 0.0;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v += ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                v
            })
            .collect()
    }

    #[test]
    fn base_case_is_exact() {
        // Series short enough to hit the base case directly.
        let x = [0.0, 1.0, 2.0, 1.0];
        let y = [0.0, 0.0, 1.0, 2.0];
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        let approx = fastdtw_distance(&x, &y, 5, SquaredCost).unwrap();
        assert_eq!(exact, approx);
    }

    #[test]
    fn never_below_exact_dtw() {
        // FastDTW evaluates one admissible path, so it upper-bounds the
        // optimum.
        for seed in 0..10 {
            let x = rand_series(seed, 120);
            let y = rand_series(seed + 50, 120);
            let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
            for radius in [0, 1, 3, 10] {
                let approx = fastdtw_distance(&x, &y, radius, SquaredCost).unwrap();
                assert!(
                    approx >= exact - 1e-9,
                    "seed {seed} radius {radius}: approx {approx} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn huge_radius_equals_exact_dtw() {
        let x = rand_series(1, 60);
        let y = rand_series(2, 60);
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        // radius >= len-2 forces the exact base case.
        let approx = fastdtw_distance(&x, &y, 60, SquaredCost).unwrap();
        assert!((exact - approx).abs() < 1e-9);
    }

    #[test]
    fn larger_radius_never_hurts_much() {
        // Monotone improvement is not guaranteed in general, but on smooth
        // random walks the approximation must not blow up with radius.
        let x = rand_series(7, 200);
        let y = rand_series(8, 200);
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        let a1 = fastdtw_distance(&x, &y, 1, SquaredCost).unwrap();
        let a20 = fastdtw_distance(&x, &y, 20, SquaredCost).unwrap();
        assert!(a20 <= a1 + exact.max(1.0)); // sanity envelope
        assert!(a20 >= exact - 1e-9);
    }

    #[test]
    fn path_is_valid_and_replays_to_distance() {
        let x = rand_series(3, 97); // odd length exercises the tail handling
        let y = rand_series(4, 131);
        let (d, p) = fastdtw_with_path(&x, &y, 2, SquaredCost).unwrap();
        assert!(p.validate_for(x.len(), y.len()).is_ok());
        let replay = p.replay_cost(&x, &y, SquaredCost).unwrap();
        assert!((replay - d).abs() < 1e-9);
    }

    #[test]
    fn identical_series_give_zero() {
        let x = rand_series(5, 150);
        let d = fastdtw_distance(&x, &x, 1, SquaredCost).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn stats_report_linear_cell_growth() {
        // Cells should grow roughly linearly in N for fixed radius —
        // the defining property of FastDTW.
        let radius = 4;
        let (_, _, s1) = fastdtw_with_stats(
            &rand_series(1, 500),
            &rand_series(2, 500),
            radius,
            SquaredCost,
        )
        .unwrap();
        let (_, _, s2) = fastdtw_with_stats(
            &rand_series(3, 1000),
            &rand_series(4, 1000),
            radius,
            SquaredCost,
        )
        .unwrap();
        let ratio = s2.cells as f64 / s1.cells as f64;
        assert!(
            (1.5..3.0).contains(&ratio),
            "cells should scale ~2x when N doubles, got {ratio} ({} -> {})",
            s1.cells,
            s2.cells
        );
        assert!(s2.levels > 1);
    }

    #[test]
    fn metered_levels_decompose_the_cell_total() {
        use tsdtw_obs::WorkMeter;
        let x = rand_series(21, 700);
        let y = rand_series(22, 700);
        let radius = 3;
        let mut meter = WorkMeter::new();
        let (d, _, stats) = fastdtw_metered(&x, &y, radius, SquaredCost, &mut meter).unwrap();
        let (d0, _, stats0) = fastdtw_with_stats(&x, &y, radius, SquaredCost).unwrap();
        assert_eq!(d, d0);
        assert_eq!(stats, stats0);
        // The per-level decomposition must account for every counted cell.
        assert_eq!(meter.levels.len() as u32, stats.levels);
        assert_eq!(meter.fastdtw_total_window_cells(), stats.cells);
        assert_eq!(meter.window_cells, stats.cells);
        assert_eq!(meter.cells, stats.cells);
        for l in &meter.levels {
            assert_eq!(l.projected_cells + l.expanded_cells, l.window_cells);
            if !l.base_case {
                assert!(l.expanded_cells > 0, "radius > 0 must expand the window");
            }
        }
        // Exactly one base case, and it comes first (coarsest level).
        assert_eq!(meter.levels.iter().filter(|l| l.base_case).count(), 1);
        assert!(meter.levels[0].base_case);
    }

    #[test]
    fn radius_zero_is_legal() {
        let x = rand_series(11, 64);
        let y = rand_series(12, 64);
        let d = fastdtw_distance(&x, &y, 0, SquaredCost).unwrap();
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        assert!(d >= exact - 1e-9);
    }

    #[test]
    fn unequal_and_tiny_lengths() {
        for (n, m) in [(1, 1), (1, 9), (9, 1), (2, 3), (5, 64), (64, 5)] {
            let x = rand_series(n as u64, n);
            let y = rand_series(m as u64 + 99, m);
            let (d, p) = fastdtw_with_path(&x, &y, 1, SquaredCost).unwrap();
            assert!(d.is_finite(), "{n}x{m}");
            assert!(p.validate_for(n, m).is_ok(), "{n}x{m}");
        }
    }

    #[test]
    fn approximation_error_matches_original_papers_metric() {
        assert_eq!(approximation_error(2.0, 1.0).unwrap(), 1.0);
        assert_eq!(approximation_error(1.0, 1.0).unwrap(), 0.0);
        // The paper's Table 2 example: 31.24 vs 0.020 -> 156,100 %.
        let e = approximation_error(31.24, 0.020).unwrap();
        assert!((e * 100.0 - 156_100.0).abs() < 1.0);
        assert!(approximation_error(1.0, 0.0).is_err());
        assert_eq!(approximation_error(0.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(fastdtw_distance(&[], &[1.0], 1, SquaredCost).is_err());
        assert!(fastdtw_distance(&[1.0], &[], 1, SquaredCost).is_err());
    }
}
