//! The **reference** FastDTW: a faithful Rust transliteration of the
//! canonical implementation every citing paper actually ran.
//!
//! Salvador & Chan published FastDTW with a reference implementation, and
//! the community overwhelmingly consumed it through that code or the
//! `fastdtw` PyPI package that mirrors it (the package the paper's
//! Appendix B correspondent benchmarked). That implementation's data
//! structures are part of the published artifact:
//!
//! * the search window is an **explicit list of cells**, built by dilating
//!   the low-resolution path by `radius` *at the low resolution* and then
//!   projecting each cell to its 2×2 block (so the effective fine-level
//!   radius is about `2·radius` — a documented quirk of the reference);
//! * the DP table is a **hash map** keyed by cell, storing cost and
//!   predecessor;
//! * the exact base case enumerates **every** cell as a window list;
//! * odd-length series **drop their last sample** when halved.
//!
//! This module reproduces those choices deliberately — the paper's timing
//! claims are claims about this artifact. The sibling module
//! ([`super`], the "tuned" implementation) answers the follow-up question
//! "is the slowness inherent?" by sharing the exact banded kernel; the
//! benchmark suite measures both (see `ablations` and EXPERIMENTS.md).

use std::collections::{HashMap, HashSet};

use crate::cost::CostFn;
use crate::error::{check_finite, check_nonempty, Result};
use crate::path::WarpingPath;
use tsdtw_obs::{FastDtwLevel, Meter, NoMeter};

/// Reference FastDTW distance. See the module docs for provenance.
pub fn fastdtw_ref_distance<C: CostFn>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
) -> Result<f64> {
    fastdtw_ref_with_path(x, y, radius, cost).map(|(d, _)| d)
}

/// Reference FastDTW distance and committed warping path.
pub fn fastdtw_ref_with_path<C: CostFn>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
) -> Result<(f64, WarpingPath)> {
    fastdtw_ref_metered(x, y, radius, cost, &mut NoMeter)
}

/// [`fastdtw_ref_with_path`] with work accounting: one
/// [`FastDtwLevel`] per resolution (cells = explicit window-list
/// entries), the hash-map DP's payload bytes as the buffer figure, and
/// every window entry as an evaluated cell. Because the reference
/// dilates *before* projecting, its per-level windows are wider than the
/// tuned implementation's at the same radius — the meter makes that
/// difference a number.
pub fn fastdtw_ref_metered<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
    meter: &mut M,
) -> Result<(f64, WarpingPath)> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    let _span = tsdtw_obs::span("fastdtw_ref");
    let (d, cells) = recurse(x, y, radius, cost, meter);
    let path = WarpingPath::new(cells).expect("reference DP produces valid paths");
    path.validate_for(x.len(), y.len())?;
    Ok((d, path))
}

fn recurse<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    radius: usize,
    cost: C,
    meter: &mut M,
) -> (f64, Vec<(usize, usize)>) {
    // Reference: `if len(x) < min_time_size` — strictly less-than.
    let min_time_size = radius + 2;
    if x.len() < min_time_size || y.len() < min_time_size {
        let _span = tsdtw_obs::span("fastdtw_ref_base");
        let window = full_window(x.len(), y.len());
        if meter.enabled() {
            meter.fastdtw_level(FastDtwLevel {
                len_x: x.len(),
                len_y: y.len(),
                window_cells: window.len() as u64,
                projected_cells: window.len() as u64,
                expanded_cells: 0,
                base_case: true,
            });
        }
        return dtw_over_window(x, y, &window, cost, meter);
    }
    let shrunk_x = reduce_by_half(x);
    let shrunk_y = reduce_by_half(y);
    let (_, low_path) = recurse(&shrunk_x, &shrunk_y, radius, cost, meter);
    let _span = tsdtw_obs::span("fastdtw_ref_level");
    let window = {
        let _expand = tsdtw_obs::span("fastdtw_ref_expand");
        expand_window(&low_path, x.len(), y.len(), radius)
    };
    if meter.enabled() {
        let projected = expand_window(&low_path, x.len(), y.len(), 0).len() as u64;
        meter.fastdtw_level(FastDtwLevel {
            len_x: x.len(),
            len_y: y.len(),
            window_cells: window.len() as u64,
            projected_cells: projected,
            expanded_cells: (window.len() as u64).saturating_sub(projected),
            base_case: false,
        });
    }
    dtw_over_window(x, y, &window, cost, meter)
}

/// Pairwise means, dropping the unpaired tail of odd-length input — the
/// reference behavior (`range(0, len(x) - len(x) % 2, 2)`).
fn reduce_by_half(x: &[f64]) -> Vec<f64> {
    x.chunks_exact(2).map(|p| (p[0] + p[1]) * 0.5).collect()
}

/// Every cell of the matrix as an explicit list — the reference base case.
fn full_window(len_x: usize, len_y: usize) -> Vec<(usize, usize)> {
    let mut w = Vec::with_capacity(len_x * len_y);
    for i in 0..len_x {
        for j in 0..len_y {
            w.push((i, j));
        }
    }
    w
}

/// The reference window expansion: dilate the low-res path by `radius` (at
/// low resolution, Chebyshev), project every cell onto its 2×2 block, then
/// re-linearize into a row-major cell list by scanning each row from the
/// previous row's first hit.
fn expand_window(
    path: &[(usize, usize)],
    len_x: usize,
    len_y: usize,
    radius: usize,
) -> Vec<(usize, usize)> {
    let r = radius as isize;
    let mut path_set: HashSet<(isize, isize)> = HashSet::with_capacity(path.len() * (radius + 1));
    for &(i, j) in path {
        for a in -r..=r {
            for b in -r..=r {
                path_set.insert((i as isize + a, j as isize + b));
            }
        }
    }
    // The reference drops the unpaired tail sample when halving odd
    // lengths, so the final fine-resolution row/column can end up outside
    // the projected window when radius = 0 (the original implementation
    // crashes in that configuration). Re-covering the block past the low
    // path's end cell keeps the end reachable without widening anything
    // else.
    if let Some(&(li, lj)) = path.last() {
        for a in 0..=1isize {
            for b in 0..=1isize {
                path_set.insert((li as isize + a, lj as isize + b));
            }
        }
    }
    let mut window_set: HashSet<(usize, usize)> = HashSet::with_capacity(path_set.len() * 4);
    for &(i, j) in &path_set {
        if i < 0 || j < 0 {
            // Negative cells project to nothing valid; the reference keeps
            // them in the set and filters during the scan — clipping here
            // is equivalent and avoids signed keys downstream.
            continue;
        }
        let (i, j) = (i as usize, j as usize);
        window_set.insert((i * 2, j * 2));
        window_set.insert((i * 2, j * 2 + 1));
        window_set.insert((i * 2 + 1, j * 2));
        window_set.insert((i * 2 + 1, j * 2 + 1));
    }

    let mut window = Vec::with_capacity(window_set.len());
    let mut start_j = 0usize;
    for i in 0..len_x {
        let mut new_start_j: Option<usize> = None;
        for j in start_j..len_y {
            if window_set.contains(&(i, j)) {
                window.push((i, j));
                if new_start_j.is_none() {
                    new_start_j = Some(j);
                }
            } else if new_start_j.is_some() {
                break;
            }
        }
        start_j = new_start_j.unwrap_or(start_j);
    }
    window
}

/// The reference windowed DP: a hash map from 1-based cell to
/// `(cost, prev_i, prev_j)`, iterated in window order.
fn dtw_over_window<C: CostFn, M: Meter>(
    x: &[f64],
    y: &[f64],
    window: &[(usize, usize)],
    cost: C,
    meter: &mut M,
) -> (f64, Vec<(usize, usize)>) {
    let len_x = x.len();
    let len_y = y.len();
    meter.window_cells(window.len() as u64);
    meter.cells(window.len() as u64);
    // Payload bytes of the hash-map DP (key + value per entry, plus the
    // origin sentinel); hash-table overhead is excluded so the figure is
    // comparable across allocators.
    let entry = std::mem::size_of::<((usize, usize), (f64, usize, usize))>() as u64;
    meter.dp_buffer_bytes((window.len() as u64 + 1) * entry);
    let mut d: HashMap<(usize, usize), (f64, usize, usize)> =
        HashMap::with_capacity(window.len() + 1);
    d.insert((0, 0), (0.0, 0, 0));

    let get = |d: &HashMap<(usize, usize), (f64, usize, usize)>, i: usize, j: usize| -> f64 {
        d.get(&(i, j)).map_or(f64::INFINITY, |e| e.0)
    };

    for &(i0, j0) in window {
        // The reference shifts the window to 1-based indices.
        let (i, j) = (i0 + 1, j0 + 1);
        let dt = cost.cost(x[i - 1], y[j - 1]);
        let up = get(&d, i - 1, j);
        let left = get(&d, i, j - 1);
        let diag = get(&d, i - 1, j - 1);
        // min over the three predecessors, tracking provenance (the
        // reference uses a 3-way tuple min keyed on cost).
        let (best, pi, pj) = if up <= left && up <= diag {
            (up, i - 1, j)
        } else if left <= diag {
            (left, i, j - 1)
        } else {
            (diag, i - 1, j - 1)
        };
        if best.is_finite() {
            d.insert((i, j), (best + dt, pi, pj));
        }
    }

    let end = d
        .get(&(len_x, len_y))
        .copied()
        .expect("window connects (0,0) to (len_x, len_y)");

    // Traceback via predecessor pointers.
    let mut cells = Vec::with_capacity(len_x + len_y);
    let (mut i, mut j) = (len_x, len_y);
    while !(i == 0 && j == 0) {
        cells.push((i - 1, j - 1));
        let &(_, pi, pj) = d.get(&(i, j)).expect("traceback stays in table");
        i = pi;
        j = pj;
    }
    cells.reverse();
    (cost.finish(end.0), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;
    use crate::fastdtw::fastdtw_distance;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut v = 0.0;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v += ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                v
            })
            .collect()
    }

    #[test]
    fn base_case_is_exact_dtw() {
        let x = [0.0, 1.0, 2.0, 1.0];
        let y = [0.0, 0.0, 1.0, 2.0];
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        let (d, _) = fastdtw_ref_with_path(&x, &y, 5, SquaredCost).unwrap();
        assert!((d - exact).abs() < 1e-12);
    }

    #[test]
    fn never_below_exact_dtw() {
        for seed in 0..8 {
            let x = rand_series(seed, 100);
            let y = rand_series(seed + 40, 100);
            let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
            for radius in [0usize, 1, 5, 10] {
                let d = fastdtw_ref_distance(&x, &y, radius, SquaredCost).unwrap();
                assert!(d >= exact - 1e-9, "seed {seed} r {radius}: {d} < {exact}");
            }
        }
    }

    #[test]
    fn paths_are_valid_even_for_odd_lengths() {
        for (n, m) in [(97usize, 131usize), (64, 64), (33, 70), (5, 5)] {
            let x = rand_series(n as u64, n);
            let y = rand_series(m as u64 + 7, m);
            let (d, p) = fastdtw_ref_with_path(&x, &y, 2, SquaredCost).unwrap();
            assert!(d.is_finite());
            assert!(p.validate_for(n, m).is_ok(), "{n}x{m}");
        }
    }

    #[test]
    fn reference_and_tuned_agree_on_exact_regimes() {
        // Huge radius forces both to the exact answer.
        let x = rand_series(3, 50);
        let y = rand_series(4, 50);
        let exact = dtw_distance(&x, &y, SquaredCost).unwrap();
        let r = fastdtw_ref_distance(&x, &y, 64, SquaredCost).unwrap();
        let t = fastdtw_distance(&x, &y, 64, SquaredCost).unwrap();
        assert!((r - exact).abs() < 1e-9);
        assert!((t - exact).abs() < 1e-9);
    }

    #[test]
    fn reference_approximation_is_comparable_to_tuned() {
        // Same radius: the reference dilates before projection (wider
        // window), so it should approximate at least as well on average.
        let mut ref_worse = 0;
        for seed in 0..10 {
            let x = rand_series(seed + 100, 200);
            let y = rand_series(seed + 200, 200);
            let r = fastdtw_ref_distance(&x, &y, 4, SquaredCost).unwrap();
            let t = fastdtw_distance(&x, &y, 4, SquaredCost).unwrap();
            if r > t + 1e-9 {
                ref_worse += 1;
            }
        }
        assert!(
            ref_worse <= 3,
            "reference window is wider; it should rarely be worse"
        );
    }

    #[test]
    fn identical_series_give_zero() {
        let x = rand_series(9, 120);
        let d = fastdtw_ref_distance(&x, &x, 1, SquaredCost).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(fastdtw_ref_distance(&[], &[1.0], 1, SquaredCost).is_err());
        assert!(fastdtw_ref_distance(&[1.0], &[], 1, SquaredCost).is_err());
    }

    #[test]
    fn metered_reference_levels_decompose_the_cell_total() {
        use tsdtw_obs::WorkMeter;
        let x = rand_series(21, 300);
        let y = rand_series(22, 300);
        let mut meter = WorkMeter::new();
        let (d, _) = fastdtw_ref_metered(&x, &y, 3, SquaredCost, &mut meter).unwrap();
        let (plain, _) = fastdtw_ref_with_path(&x, &y, 3, SquaredCost).unwrap();
        assert_eq!(d, plain, "metering must not perturb the result");
        assert!(!meter.levels.is_empty());
        assert_eq!(
            meter.levels.iter().filter(|l| l.base_case).count(),
            1,
            "exactly one base-case level"
        );
        assert!(meter.levels[0].base_case, "coarsest level is the base case");
        for level in &meter.levels {
            assert_eq!(
                level.projected_cells + level.expanded_cells,
                level.window_cells,
                "level {}x{}",
                level.len_x,
                level.len_y
            );
        }
        let level_total: u64 = meter.levels.iter().map(|l| l.window_cells).sum();
        assert_eq!(meter.window_cells, level_total);
        assert_eq!(
            meter.cells, level_total,
            "hash-map DP visits every window cell"
        );
        assert!(meter.dp_peak_bytes > 0);
    }

    #[test]
    fn tuned_is_much_faster_than_reference_at_same_radius() {
        // The heart of the repository's extension finding: the published
        // artifact's constants, not the algorithm sketch, carry most of
        // FastDTW's slowness.
        use std::time::Instant;
        let x = rand_series(11, 2000);
        let y = rand_series(12, 2000);
        let t0 = Instant::now();
        let a = fastdtw_ref_distance(&x, &y, 10, SquaredCost).unwrap();
        let t_ref = t0.elapsed();
        let t0 = Instant::now();
        let b = fastdtw_distance(&x, &y, 10, SquaredCost).unwrap();
        let t_tuned = t0.elapsed();
        assert!(a.is_finite() && b.is_finite());
        assert!(
            t_ref > t_tuned,
            "hash-map DP must cost more than the shared banded kernel: {t_ref:?} vs {t_tuned:?}"
        );
    }
}
