//! Warping envelopes for LB_Keogh: per-point running min/max within a band.
//!
//! The envelope of a series `q` under band radius `w` is the pair of series
//! `U[i] = max(q[i-w ..= i+w])`, `L[i] = min(q[i-w ..= i+w])`. LB_Keogh then
//! charges a candidate only for excursions outside `[L, U]`.
//!
//! Two constructions are provided: a naive `O(n·w)` reference and Lemire's
//! streaming monotonic-deque algorithm, which is `O(n)` regardless of `w`
//! and is what production search uses. The test suite pins them to each
//! other.

use crate::error::{check_finite, check_nonempty, Result};
use std::collections::VecDeque;

/// The upper/lower warping envelope of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// `upper[i] = max(q[i-w ..= i+w])`.
    pub upper: Vec<f64>,
    /// `lower[i] = min(q[i-w ..= i+w])`.
    pub lower: Vec<f64>,
}

impl Envelope {
    /// Builds the envelope with Lemire's streaming min/max (O(n)).
    ///
    /// ```
    /// use tsdtw_core::Envelope;
    ///
    /// let q = [0.0, 1.0, 0.0, -1.0, 0.0];
    /// let e = Envelope::new(&q, 1).unwrap();
    /// assert_eq!(e.upper, vec![1.0, 1.0, 1.0, 0.0, 0.0]);
    /// assert_eq!(e.lower, vec![0.0, 0.0, -1.0, -1.0, -1.0]);
    /// ```
    pub fn new(q: &[f64], band: usize) -> Result<Self> {
        check_nonempty("q", q)?;
        check_finite("q", q)?;
        let _span = tsdtw_obs::span("envelope");
        Ok(lemire(q, band))
    }

    /// Naive reference construction (O(n·w)); exported for tests and
    /// benchmarks of the envelope itself.
    pub fn naive(q: &[f64], band: usize) -> Result<Self> {
        check_nonempty("q", q)?;
        check_finite("q", q)?;
        let n = q.len();
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(band);
            let hi = (i + band).min(n - 1);
            let win = &q[lo..=hi];
            upper.push(win.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
            lower.push(win.iter().cloned().fold(f64::INFINITY, f64::min));
        }
        Ok(Envelope { upper, lower })
    }

    /// Series length the envelope covers.
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// Envelopes are never empty (construction rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }
}

/// Lemire 2009: streaming min/max over a sliding window of width `2·band+1`
/// using monotonic deques of indices. Each index enters and leaves each
/// deque at most once, so the whole pass is linear.
fn lemire(q: &[f64], band: usize) -> Envelope {
    let n = q.len();
    let mut upper = vec![0.0; n];
    let mut lower = vec![0.0; n];
    // Deques hold indices with monotone values: front is the extremum of
    // the current window [i - band, i + band].
    let mut max_dq: VecDeque<usize> = VecDeque::with_capacity(2 * band + 2);
    let mut min_dq: VecDeque<usize> = VecDeque::with_capacity(2 * band + 2);

    for j in 0..n + band {
        // Admit q[j] (the right edge of windows centered at j - band).
        if j < n {
            while let Some(&back) = max_dq.back() {
                if q[back] <= q[j] {
                    max_dq.pop_back();
                } else {
                    break;
                }
            }
            max_dq.push_back(j);
            while let Some(&back) = min_dq.back() {
                if q[back] >= q[j] {
                    min_dq.pop_back();
                } else {
                    break;
                }
            }
            min_dq.push_back(j);
        }
        // Emit the envelope for center i = j - band.
        if j >= band {
            let i = j - band;
            if i < n {
                // Expire indices left of the window.
                while let Some(&front) = max_dq.front() {
                    if front + band < i {
                        max_dq.pop_front();
                    } else {
                        break;
                    }
                }
                while let Some(&front) = min_dq.front() {
                    if front + band < i {
                        min_dq.pop_front();
                    } else {
                        break;
                    }
                }
                upper[i] = q[*max_dq.front().expect("window never empty")];
                lower[i] = q[*min_dq.front().expect("window never empty")];
            }
        }
    }
    Envelope { upper, lower }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn lemire_matches_naive_across_bands_and_lengths() {
        for seed in 0..5 {
            for n in [1usize, 2, 3, 7, 32, 100] {
                let q = rand_series(seed, n);
                for band in [0usize, 1, 2, 5, 50] {
                    let fast = Envelope::new(&q, band).unwrap();
                    let slow = Envelope::naive(&q, band).unwrap();
                    assert_eq!(fast, slow, "seed={seed} n={n} band={band}");
                }
            }
        }
    }

    #[test]
    fn envelope_bounds_the_series() {
        let q = rand_series(42, 200);
        let e = Envelope::new(&q, 7).unwrap();
        for (i, &v) in q.iter().enumerate() {
            assert!(e.lower[i] <= v && v <= e.upper[i], "index {i}");
        }
    }

    #[test]
    fn band_zero_envelope_is_the_series() {
        let q = rand_series(1, 50);
        let e = Envelope::new(&q, 0).unwrap();
        assert_eq!(e.upper, q);
        assert_eq!(e.lower, q);
    }

    #[test]
    fn band_larger_than_series_is_global_extrema() {
        let q = [3.0, -1.0, 4.0, 1.0, -5.0];
        let e = Envelope::new(&q, 100).unwrap();
        assert!(e.upper.iter().all(|&v| v == 4.0));
        assert!(e.lower.iter().all(|&v| v == -5.0));
    }

    #[test]
    fn wider_band_widens_the_envelope() {
        let q = rand_series(9, 80);
        let narrow = Envelope::new(&q, 2).unwrap();
        let wide = Envelope::new(&q, 10).unwrap();
        for i in 0..q.len() {
            assert!(wide.upper[i] >= narrow.upper[i]);
            assert!(wide.lower[i] <= narrow.lower[i]);
        }
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Envelope::new(&[], 1).is_err());
        assert!(Envelope::new(&[1.0, f64::NAN], 1).is_err());
    }
}
