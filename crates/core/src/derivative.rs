//! Derivative DTW (DDTW, Keogh & Pazzani 2001): align estimated local
//! slopes instead of raw values.
//!
//! DDTW is one of the classic DTW variants the surrounding literature
//! reaches for when raw-value alignment produces "singularities" (one point
//! of one series mapping to a long run of the other). It is included as an
//! extension beyond the paper's experiments; the paper's arguments about
//! exact-vs-approximate speed apply to it unchanged, since it is just DTW
//! on a transformed signal.

use crate::cost::CostFn;
use crate::dtw::banded::cdtw_distance;
use crate::dtw::full::dtw_distance;
use crate::error::{check_finite, check_nonempty, Error, Result};

/// The derivative estimate of Keogh & Pazzani:
/// `d[i] = ((s[i] − s[i−1]) + (s[i+1] − s[i−1]) / 2) / 2`,
/// with the boundary values copied from their nearest interior neighbor.
///
/// Requires at least 3 points (a slope needs interior context).
pub fn derivative_transform(s: &[f64]) -> Result<Vec<f64>> {
    check_nonempty("s", s)?;
    check_finite("s", s)?;
    if s.len() < 3 {
        return Err(Error::InvalidParameter {
            name: "s",
            reason: format!(
                "derivative transform needs at least 3 points, got {}",
                s.len()
            ),
        });
    }
    let n = s.len();
    let mut d = Vec::with_capacity(n);
    d.push(0.0); // placeholder, patched below
    for i in 1..n - 1 {
        d.push(((s[i] - s[i - 1]) + (s[i + 1] - s[i - 1]) / 2.0) / 2.0);
    }
    d.push(0.0);
    d[0] = d[1];
    d[n - 1] = d[n - 2];
    Ok(d)
}

/// Full (unconstrained) derivative DTW.
pub fn ddtw_distance<C: CostFn>(x: &[f64], y: &[f64], cost: C) -> Result<f64> {
    let dx = derivative_transform(x)?;
    let dy = derivative_transform(y)?;
    dtw_distance(&dx, &dy, cost)
}

/// Banded derivative DTW: `cDTW_band` on the slope transforms.
pub fn cddtw_distance<C: CostFn>(x: &[f64], y: &[f64], band: usize, cost: C) -> Result<f64> {
    let dx = derivative_transform(x)?;
    let dy = derivative_transform(y)?;
    cdtw_distance(&dx, &dy, band, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;

    #[test]
    fn derivative_of_linear_ramp_is_constant_slope() {
        let s: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let d = derivative_transform(&s).unwrap();
        assert!(d.iter().all(|&v| (v - 2.0).abs() < 1e-12), "{d:?}");
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        let d = derivative_transform(&[5.0; 8]).unwrap();
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn derivative_preserves_length() {
        let s = [0.0, 1.0, 4.0, 9.0, 16.0];
        assert_eq!(derivative_transform(&s).unwrap().len(), s.len());
    }

    #[test]
    fn ddtw_ignores_constant_offset() {
        // Raw DTW sees a large gap between offset copies; DDTW sees none.
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 100.0).collect();
        let raw = dtw_distance(&x, &y, SquaredCost).unwrap();
        let ddtw = ddtw_distance(&x, &y, SquaredCost).unwrap();
        assert!(raw > 1e5);
        assert!(ddtw < 1e-12);
    }

    #[test]
    fn banded_ddtw_upper_bounds_full_ddtw() {
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3 + 0.7).sin()).collect();
        let full = ddtw_distance(&x, &y, SquaredCost).unwrap();
        let banded = cddtw_distance(&x, &y, 2, SquaredCost).unwrap();
        assert!(banded >= full - 1e-12);
    }

    #[test]
    fn too_short_series_rejected() {
        assert!(derivative_transform(&[1.0, 2.0]).is_err());
        assert!(ddtw_distance(&[1.0, 2.0], &[1.0, 2.0, 3.0], SquaredCost).is_err());
    }
}
