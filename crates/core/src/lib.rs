//! # tsdtw-core — exact and approximate Dynamic Time Warping
//!
//! The algorithmic heart of the `tsdtw` workspace, which reproduces
//! Wu & Keogh, *"FastDTW is approximate and Generally Slower than the
//! Algorithm it Approximates"* (ICDE 2021). It provides, under one roof
//! and sharing a single DP inner loop:
//!
//! * **Full DTW** — [`dtw()`], [`dtw::full`](mod@dtw::full);
//! * **Constrained DTW** (`cDTW_w`, Sakoe–Chiba band) — [`cdtw()`],
//!   [`dtw::banded`](mod@dtw::banded), with `w` in the paper's percentage
//!   convention;
//! * **FastDTW** (Salvador & Chan 2007) — [`fastdtw()`] (tuned) and
//!   [`fastdtw::reference`](mod@fastdtw::reference) (the canonical
//!   implementation);
//! * the **UCR-suite acceleration stack** that only the exact algorithm can
//!   use: z-normalization ([`norm`]), Lemire envelopes ([`envelope`]),
//!   LB_Kim / LB_Keogh / LB_Improved and the pruning cascade
//!   ([`lower_bounds`]), and early-abandoning DTW
//!   ([`dtw::early_abandon`]);
//! * classic variants as extensions: derivative DTW ([`derivative`]) and
//!   weighted DTW ([`wdtw`]);
//! * a **run-length-encoded exact backend** ([`rle`]): lossless (and
//!   epsilon-quantized) run encoding plus a block-decomposition DTW
//!   kernel whose work scales with run boundaries rather than points —
//!   [`Kernel::Auto`] dispatches to it on highly compressible inputs.
//!
//! ## Observability
//!
//! Every kernel has a `*_metered` twin taking a
//! [`tsdtw_obs::Meter`]: DP cells evaluated vs. admissible
//! window cells, FastDTW per-level windows, lower-bound and envelope
//! invocations, cascade prune tallies, early-abandon row counts, and
//! peak DP-buffer bytes. The meter is a monomorphized generic whose
//! no-op default ([`obs::NoMeter`], what the plain entry points pass)
//! compiles to the uninstrumented code. Enable the `obs` cargo feature
//! to additionally wrap kernels in timing spans.
//!
//! ## Conventions
//!
//! * Series are `&[f64]`; all kernels validate for emptiness and
//!   non-finite values and return [`error::Result`].
//! * The default local cost is the squared difference and reported
//!   distances are accumulated costs (no square root), matching the UCR
//!   archive; wrap a cost in [`cost::Rooted`] for rooted values.
//! * Warping constraints: `w` (a *percentage* of series length, the
//!   paper's convention) converts to a cell radius via
//!   [`dtw::banded::percent_to_band`]. FastDTW's `radius` is in cells at
//!   each resolution level, exactly as in the original paper — the two
//!   parameters are *not* comparable, as the paper is at pains to note.
//!
//! ## Example
//!
//! ```
//! use tsdtw_core::{dtw, cdtw, fastdtw};
//!
//! let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
//! let y: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1 + 0.4).sin()).collect();
//!
//! let exact_full = dtw(&x, &y).unwrap();
//! let exact_banded = cdtw(&x, &y, 10.0).unwrap(); // w = 10 % of N
//! let approx = fastdtw(&x, &y, 10).unwrap();      // r = 10 cells
//!
//! assert!(exact_full <= exact_banded);
//! assert!(exact_full <= approx + 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod cost;
pub mod derivative;
pub mod distance;
pub mod dtw;
pub mod envelope;
pub mod error;
pub mod fastdtw;
pub mod lower_bounds;
pub mod matrix;
pub mod multivariate;
pub mod norm;
pub mod open_end;
pub mod paa;
pub mod path;
pub mod rle;
pub mod subsequence;
pub mod wdtw;
pub mod window;

/// Re-export of the work-accounting crate, so downstream users can name
/// [`obs::Meter`], [`obs::NoMeter`], and [`obs::WorkMeter`] without a
/// separate dependency on `tsdtw-obs`.
pub use tsdtw_obs as obs;

pub use cost::{AbsoluteCost, CostFn, Rooted, SquaredCost};
pub use distance::{cdtw, dtw, euclidean, fastdtw, sq_euclidean};
pub use dtw::kernel::{default_kernel, set_default_kernel, Kernel};
pub use envelope::Envelope;
pub use error::{Error, Result};
pub use fastdtw::{
    fastdtw_distance, fastdtw_metered, fastdtw_ref_distance, fastdtw_ref_metered,
    fastdtw_ref_with_path, fastdtw_with_path, fastdtw_with_stats, FastDtw, FastDtwStats,
};
pub use path::WarpingPath;
pub use rle::{RleSeries, Run};
pub use window::SearchWindow;
