//! Matrix storage for DP kernels that need full traceback information.
//!
//! Distance-only kernels in this crate use rolling two-row storage and never
//! touch these types; the `with_path` variants store one byte of traceback
//! direction per *admissible* cell. For windowed computations the storage is
//! compacted to the window (`O(window cells)`, not `O(n·m)`), which is what
//! lets `cDTW` on `N = 24,000` series (the paper's Case B) run in a few
//! megabytes instead of four gigabytes.

use crate::path::Direction;
use crate::window::SearchWindow;

/// A dense row-major matrix. Used for full-DTW traceback planes and exposed
/// for tests and visualization helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    data: Vec<T>,
}

impl<T: Copy> DenseMatrix<T> {
    /// Allocates an `n_rows × n_cols` matrix filled with `fill`.
    pub fn filled(n_rows: usize, n_cols: usize, fill: T) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![fill; n_rows * n_cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Reads cell `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.n_rows && j < self.n_cols);
        self.data[i * self.n_cols + j]
    }

    /// Writes cell `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.n_rows && j < self.n_cols);
        self.data[i * self.n_cols + j] = v;
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }
}

/// Traceback directions stored compactly over the cells of a
/// [`SearchWindow`].
///
/// Cell `(i, j)` with `j` inside row `i`'s window interval lives at
/// `row_offset[i] + (j - lo[i])`.
#[derive(Debug, Clone)]
pub struct WindowedDirections {
    row_offsets: Vec<usize>,
    row_lo: Vec<usize>,
    data: Vec<u8>,
}

impl WindowedDirections {
    /// Allocates traceback storage for every admissible cell of `window`,
    /// initialized to [`Direction::Unreached`].
    pub fn for_window(window: &SearchWindow) -> Self {
        let n_rows = window.n_rows();
        let mut row_offsets = Vec::with_capacity(n_rows);
        let mut row_lo = Vec::with_capacity(n_rows);
        let mut total = 0usize;
        for i in 0..n_rows {
            let (lo, hi) = window.row_bounds(i);
            row_offsets.push(total);
            row_lo.push(lo);
            total += hi - lo + 1;
        }
        WindowedDirections {
            row_offsets,
            row_lo,
            data: vec![Direction::Unreached as u8; total],
        }
    }

    /// Records the direction for cell `(i, j)`. The cell must be admissible.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, d: Direction) {
        let idx = self.row_offsets[i] + (j - self.row_lo[i]);
        self.data[idx] = d as u8;
    }

    /// Reads the direction for cell `(i, j)`. The cell must be admissible.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Direction {
        let idx = self.row_offsets[i] + (j - self.row_lo[i]);
        Direction::from_u8(self.data[idx])
    }

    /// Walks the direction plane from `(n-1, m-1)` back to `(0, 0)` and
    /// returns the path cells in forward order.
    ///
    /// Panics (in debug) if the plane contains an `Unreached` cell on the
    /// walk — that would be a kernel bug, not a user error.
    pub fn traceback(&self, end: (usize, usize)) -> Vec<(usize, usize)> {
        let (mut i, mut j) = end;
        let mut cells = Vec::with_capacity(i + j + 1);
        loop {
            cells.push((i, j));
            if i == 0 && j == 0 {
                break;
            }
            match self.get(i, j) {
                Direction::Diagonal => {
                    i -= 1;
                    j -= 1;
                }
                Direction::Up => i -= 1,
                Direction::Left => j -= 1,
                Direction::Unreached => {
                    debug_assert!(false, "traceback hit unreached cell ({i}, {j})");
                    break;
                }
            }
        }
        cells.reverse();
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_roundtrip() {
        let mut m = DenseMatrix::filled(3, 4, 0.0f64);
        m.set(2, 3, 7.5);
        m.set(0, 0, -1.0);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.get(0, 0), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0, 7.5]);
    }

    #[test]
    fn windowed_directions_compact_storage() {
        let w = SearchWindow::from_bounds(4, vec![0, 0, 1, 2], vec![1, 2, 3, 3]).unwrap();
        let d = WindowedDirections::for_window(&w);
        assert_eq!(d.data.len(), w.cell_count());
    }

    #[test]
    fn traceback_follows_directions() {
        let w = SearchWindow::full(3, 3);
        let mut d = WindowedDirections::for_window(&w);
        // Path (0,0) -> (0,1) -> (1,2) -> (2,2).
        d.set(0, 1, Direction::Left);
        d.set(1, 2, Direction::Diagonal);
        d.set(2, 2, Direction::Up);
        assert_eq!(d.traceback((2, 2)), vec![(0, 0), (0, 1), (1, 2), (2, 2)]);
    }
}
