//! Weighted DTW (WDTW, Jeong et al. 2011): a soft alternative to the hard
//! Sakoe–Chiba constraint.
//!
//! Instead of forbidding cells far from the diagonal, WDTW multiplies the
//! local cost of cell `(i, j)` by a logistic weight of the phase difference
//! `|i − j|`. As the steepness `g` grows, WDTW interpolates from full DTW
//! (`g = 0` up to a constant factor) toward Euclidean-like behaviour —
//! the same "a little warping is good, too much is bad" intuition the
//! paper's Section 3.1 quotes as Ratanamahatana's observation, expressed
//! smoothly. Included as an extension.

use crate::error::{check_finite, check_nonempty, Error, Result};

/// The logistic weight vector: `w[d] = w_max / (1 + exp(−g · (d − n/2)))`,
/// normalized so the weights span `(0, w_max)`.
pub fn logistic_weights(n: usize, g: f64, w_max: f64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: "length must be positive".into(),
        });
    }
    if !g.is_finite() || g < 0.0 {
        return Err(Error::InvalidParameter {
            name: "g",
            reason: format!("steepness must be finite and non-negative, got {g}"),
        });
    }
    let half = n as f64 / 2.0;
    Ok((0..n)
        .map(|d| w_max / (1.0 + (-g * (d as f64 - half)).exp()))
        .collect())
}

/// Weighted DTW distance with weights indexed by phase difference
/// `|i − j|`. `weights.len()` must be at least `max(n, m)`.
pub fn wdtw_distance(x: &[f64], y: &[f64], weights: &[f64]) -> Result<f64> {
    check_nonempty("x", x)?;
    check_nonempty("y", y)?;
    check_finite("x", x)?;
    check_finite("y", y)?;
    check_finite("weights", weights)?;
    let n = x.len();
    let m = y.len();
    if weights.len() < n.max(m) {
        return Err(Error::InvalidParameter {
            name: "weights",
            reason: format!("need at least {} weights, got {}", n.max(m), weights.len()),
        });
    }

    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    let c00 = x[0] - y[0];
    prev[0] = weights[0] * c00 * c00;
    for j in 1..m {
        let c = x[0] - y[j];
        prev[j] = prev[j - 1] + weights[j] * c * c;
    }
    for i in 1..n {
        let c = x[i] - y[0];
        cur[0] = prev[0] + weights[i] * c * c;
        for j in 1..m {
            let c = x[i] - y[j];
            let w = weights[i.abs_diff(j)];
            cur[j] = w * c * c + prev[j - 1].min(prev[j]).min(cur[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    Ok(prev[m - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SquaredCost;
    use crate::dtw::full::dtw_distance;

    #[test]
    fn logistic_weights_are_monotone_increasing() {
        let w = logistic_weights(50, 0.25, 1.0).unwrap();
        for i in 1..w.len() {
            assert!(w[i] >= w[i - 1]);
        }
        assert!(w[0] < 0.01);
        assert!(w[49] > 0.99);
    }

    #[test]
    fn flat_weights_reproduce_scaled_dtw() {
        let x = [0.0, 1.0, 3.0, 2.0, 0.0];
        let y = [0.0, 0.0, 1.0, 3.0, 2.0];
        let flat = vec![2.0; 5];
        let wd = wdtw_distance(&x, &y, &flat).unwrap();
        let d = dtw_distance(&x, &y, SquaredCost).unwrap();
        assert!((wd - 2.0 * d).abs() < 1e-12);
    }

    #[test]
    fn zero_for_identical_series() {
        let x = [0.3, 1.7, -2.0, 0.5];
        let w = logistic_weights(4, 0.1, 1.0).unwrap();
        assert_eq!(wdtw_distance(&x, &x, &w).unwrap(), 0.0);
    }

    #[test]
    fn steeper_weights_raise_relative_warping_penalty() {
        // The defining property of the logistic weighting: the *relative*
        // price of a large phase difference versus staying on the diagonal
        // grows with the steepness g.
        let gentle = logistic_weights(16, 0.05, 1.0).unwrap();
        let steep = logistic_weights(16, 1.0, 1.0).unwrap();
        assert!(steep[12] / steep[0] > gentle[12] / gentle[0]);
    }

    #[test]
    fn wdtw_is_sandwiched_by_scaled_dtw() {
        // min(w) · DTW ≤ WDTW ≤ max(w) · DTW: every path's weighted cost is
        // bounded by its unweighted cost scaled by the extreme weights.
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin() * 2.0).collect();
        let y: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4 + 0.9).cos()).collect();
        let w = logistic_weights(24, 0.3, 1.0).unwrap();
        let wmin = w.iter().cloned().fold(f64::INFINITY, f64::min);
        let wmax = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let d = dtw_distance(&x, &y, SquaredCost).unwrap();
        let wd = wdtw_distance(&x, &y, &w).unwrap();
        assert!(wd >= wmin * d - 1e-12);
        assert!(wd <= wmax * d + 1e-12);
    }

    #[test]
    fn rejects_short_weight_vector() {
        assert!(wdtw_distance(&[0.0; 5], &[0.0; 5], &[1.0; 4]).is_err());
    }

    #[test]
    fn rejects_bad_steepness() {
        assert!(logistic_weights(10, -1.0, 1.0).is_err());
        assert!(logistic_weights(0, 0.1, 1.0).is_err());
    }
}
