//! Golden tests for the flight-recorder trace export: the Chrome-trace
//! output must parse as JSON, be begin/end balanced and properly
//! nested, and the ring must drop oldest-first at capacity. Runs under
//! both feature configurations — without `spans` the recorder yields an
//! empty but still valid trace file.

use tsdtw_obs::{
    heap_telemetry_enabled, recorder_start, recorder_stop, span, spans_enabled, take_spans, Json,
    Recorder, Trace, TraceEvent, TracePhase,
};

/// The `ph: "B"` / `"E"` span records of a `traceEvents` stream, with
/// the `ph: "C"` heap counter samples (emitted under `alloc-telemetry`)
/// filtered out.
fn span_events(events: &[Json]) -> Vec<Json> {
    events
        .iter()
        .filter(|e| e["ph"].as_str() != Some("C"))
        .cloned()
        .collect()
}

/// Replays a Chrome `traceEvents` stream against a stack, asserting
/// strict begin/end balance and label-matched nesting. Counter records
/// (`ph: "C"`) only need monotone timestamps. Returns the maximum
/// nesting depth observed.
fn assert_balanced(events: &[Json]) -> usize {
    let mut stack: Vec<String> = Vec::new();
    let mut max_depth = 0;
    let mut last_ts = f64::NEG_INFINITY;
    for e in events {
        let ts = e["ts"].as_f64().expect("ts is numeric");
        assert!(ts >= last_ts, "timestamps must be monotone");
        last_ts = ts;
        match e["ph"].as_str().expect("ph is a string") {
            "B" => {
                stack.push(e["name"].as_str().unwrap().to_string());
                max_depth = max_depth.max(stack.len());
            }
            "E" => {
                let open = stack.pop().expect("E without matching B");
                assert_eq!(open, e["name"].as_str().unwrap(), "mismatched nesting");
            }
            "C" => {
                assert_eq!(e["name"], "heap_live_bytes");
                assert!(
                    heap_telemetry_enabled(),
                    "counter records only appear under alloc-telemetry"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
    max_depth
}

#[test]
fn chrome_trace_from_real_spans_parses_and_nests() {
    recorder_start(1 << 12);
    {
        let _outer = span("golden_outer");
        for _ in 0..3 {
            let _inner = span("golden_inner");
            std::hint::black_box(1 + 1);
        }
    }
    let trace = recorder_stop().expect("recorder was active");
    let _ = take_spans(); // drain the aggregate table too

    // The export must round-trip through the strict parser.
    let text = trace.chrome_json().to_string_pretty();
    let parsed = Json::parse(&text).expect("chrome trace is valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");

    if spans_enabled() {
        let spans_only = span_events(events);
        assert_eq!(spans_only.len(), 8, "4 spans = 8 events");
        let depth = assert_balanced(events);
        assert_eq!(depth, 2, "inner spans nest under the outer span");
        assert_eq!(
            spans_only[0]["name"], "golden_outer",
            "outermost span begins first"
        );
        if heap_telemetry_enabled() {
            assert_eq!(
                events.len(),
                16,
                "each span record carries a heap counter sample"
            );
        }
    } else {
        assert!(events.is_empty(), "no probes compiled in");
    }
    assert_eq!(parsed["otherData"]["dropped_events"], 0u64);
    assert_eq!(
        parsed["otherData"]["spans_feature"],
        spans_enabled(),
        "the file records how it was built"
    );
}

#[test]
fn ring_buffer_drops_oldest_first_and_export_stays_balanced() {
    // 10 spans (20 events) through an 8-slot ring: only the newest
    // events survive, and the oldest retained pair has the highest
    // evicted span id + 1.
    let mut r = Recorder::new(8);
    for _ in 0..10 {
        let id = r.begin("wrap");
        r.end("wrap", id);
    }
    let trace = r.finish();
    assert_eq!(trace.events.len(), 8);
    assert_eq!(trace.dropped, 12);
    assert_eq!(trace.events[0].span_id, 6, "spans 0..=5 were evicted");

    let parsed = Json::parse(&trace.chrome_json().to_string_compact()).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();
    assert_eq!(
        span_events(events).len(),
        8,
        "all retained pairs are balanced"
    );
    assert_balanced(events);
    assert_eq!(parsed["otherData"]["dropped_events"], 12u64);
}

#[test]
fn export_filters_orphans_created_by_wraparound() {
    // A parent whose Begin was evicted mid-flight: the ring holds the
    // child pair plus the parent's End. The export keeps only the
    // balanced child.
    let t = Trace {
        events: vec![
            TraceEvent {
                label: "child",
                phase: TracePhase::Begin,
                ts_us: 10.0,
                depth: 1,
                span_id: 5,
                track: 0,
                heap_live: 0,
                alloc_bytes: 0,
            },
            TraceEvent {
                label: "child",
                phase: TracePhase::End,
                ts_us: 20.0,
                depth: 1,
                span_id: 5,
                track: 0,
                heap_live: 0,
                alloc_bytes: 0,
            },
            TraceEvent {
                label: "parent",
                phase: TracePhase::End,
                ts_us: 30.0,
                depth: 0,
                span_id: 4,
                track: 0,
                heap_live: 0,
                alloc_bytes: 0,
            },
        ],
        counters: vec![],
        dropped: 1,
        capacity: 3,
    };
    let parsed = Json::parse(&t.chrome_json().to_string_compact()).unwrap();
    let events = parsed["traceEvents"].as_array().unwrap();
    let spans_only = span_events(events);
    assert_eq!(spans_only.len(), 2);
    assert_balanced(events);
    assert_eq!(spans_only[0]["name"], "child");

    // The summary sees the same balanced view.
    let rows = t.summary();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].label, "child");
    assert_eq!(rows[0].count, 1);
    assert!((rows[0].total_s - 10e-6).abs() < 1e-12);
}
