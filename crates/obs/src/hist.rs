//! Log-linear (HDR-style) latency histograms.
//!
//! A [`LatencyHist`] buckets durations (recorded in integer nanoseconds)
//! into a fixed layout: 64 exact one-nanosecond buckets, then 32 linear
//! sub-buckets per power-of-two octave. Bucket width is at most 1/32 of
//! the bucket's lower bound, so any quantile read back from the buckets
//! carries a bounded **≤ 3.2 % relative error** — the classic
//! HdrHistogram trade: O(1) record, O(1) memory independent of sample
//! count, and percentiles without retaining samples.
//!
//! The minimum and maximum are additionally tracked exactly, so
//! `percentile_s(1.0)` (and any rank that resolves to the top sample)
//! returns the true maximum, not a bucket bound.
//!
//! ## The nearest-rank convention
//!
//! Every percentile in the workspace — here, in
//! `tsdtw-bench::timing`, and in the per-span stats — uses the
//! *nearest-rank* definition pinned by [`nearest_rank`]: the p-th
//! percentile of `n` samples is the sample at 1-based rank
//! `clamp(ceil(p·n), 1, n)` in sorted order. No interpolation. The
//! clamp makes tiny sample counts well-defined: with `n = 1` every
//! percentile is the sample itself; with `n = 2` every `p ≤ 0.5` is the
//! smaller sample and every `p > 0.5` the larger.

use crate::json::{Json, ToJson};

/// Exact 1 ns buckets below this value; log-linear octaves above.
const LINEAR_MAX: u64 = 64;
/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// One past the largest reachable bucket index for any `u64` value
/// (`msb = 63` ⇒ `octave = 58` ⇒ index `63 + 58·32 = 1919`).
const NUM_BUCKETS: usize = 1920;

/// 1-based nearest-rank of the `q`-quantile among `n` sorted samples:
/// `clamp(ceil(q·n), 1, n)`. `q` outside `[0, 1]` is clamped; `n` must
/// be non-zero.
///
/// This is the single percentile convention used across the workspace
/// (see the module docs for the tiny-`n` cases it pins down).
pub fn nearest_rank(n: usize, q: f64) -> usize {
    assert!(n > 0, "nearest_rank needs at least one sample");
    let q = q.clamp(0.0, 1.0);
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

/// Bucket index for a duration of `ns` nanoseconds.
fn bucket_index(ns: u64) -> usize {
    if ns < LINEAR_MAX {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let octave = msb - SUB_BITS;
    ((ns >> octave) + SUBS * octave as u64) as usize
}

/// Inclusive upper bound (in ns) of the values mapping to bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let octave = (i as u64 / SUBS) - 1;
    let base = i as u64 - SUBS * octave;
    // `(base + 1) << octave` can overflow for the top bucket; the split
    // form stays in range (the last bucket's bound is exactly u64::MAX).
    (base << octave) + ((1u64 << octave) - 1)
}

/// A fixed-layout log-linear histogram of durations.
///
/// `Default`/[`new`](LatencyHist::new) allocate nothing; the bucket
/// array appears on the first [`record_ns`](LatencyHist::record_ns) and
/// grows only to the highest bucket touched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHist {
    counts: Vec<u64>,
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let i = bucket_index(ns);
        if self.counts.len() <= i {
            self.counts.resize((i + 1).min(NUM_BUCKETS), 0);
        }
        self.counts[i] += 1;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns as u128;
    }

    /// Records one duration in seconds (negative and non-finite values
    /// clamp to zero; durations are non-negative by construction).
    pub fn record_s(&mut self, seconds: f64) {
        let ns = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9).round().min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.record_ns(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }

    /// Mean duration in seconds; zero for an empty histogram.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s() / self.count as f64
        }
    }

    /// Exact minimum in seconds; zero for an empty histogram.
    pub fn min_s(&self) -> f64 {
        self.min_ns as f64 * 1e-9
    }

    /// Exact maximum in seconds; zero for an empty histogram.
    pub fn max_s(&self) -> f64 {
        self.max_ns as f64 * 1e-9
    }

    /// The `q`-quantile in seconds by the [`nearest_rank`] convention,
    /// read from the buckets (≤ 3.2 % relative error; the top bucket
    /// resolves to the exact maximum). Zero for an empty histogram.
    pub fn percentile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = nearest_rank(self.count as usize, q) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            // Saturating for the same reason `merge` is: bucket counts
            // may individually sit at u64::MAX after saturated merges.
            seen = seen.saturating_add(c);
            if seen >= rank {
                return (bucket_upper(i).min(self.max_ns).max(self.min_ns)) as f64 * 1e-9;
            }
        }
        self.max_s()
    }

    /// Folds another histogram into this one.
    ///
    /// Counts and totals saturate instead of overflowing: a registry
    /// histogram that lives for the whole process may be merged into
    /// long after its shards individually carry huge counts, and the
    /// trend detector reads quantiles off the result — a wrapped count
    /// would silently reorder every rank, while a pinned `u64::MAX`
    /// keeps quantiles monotone (see `merge_saturates_at_extremes`).
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst = dst.saturating_add(*src);
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }

    /// Non-empty buckets as `(upper_bound_ns, count)`, lowest first —
    /// the raw trajectory-snapshot payload.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

impl ToJson for LatencyHist {
    fn to_json(&self) -> Json {
        crate::json_obj! {
            "count" => self.count,
            "mean_s" => self.mean_s(),
            "min_s" => self.min_s(),
            "p50_s" => self.percentile_s(0.50),
            "p90_s" => self.percentile_s(0.90),
            "p99_s" => self.percentile_s(0.99),
            "max_s" => self.max_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps into exactly one bucket whose bounds contain it,
        // and indices never decrease with the value.
        let mut prev = 0usize;
        for ns in (0..4096u64).chain([1 << 20, (1 << 20) + 7, u64::MAX >> 1, u64::MAX]) {
            let i = bucket_index(ns);
            assert!(i >= prev || ns < 4096, "monotone");
            assert!(ns <= bucket_upper(i), "{ns} above its bucket bound");
            if i > 0 {
                assert!(ns > bucket_upper(i - 1), "{ns} below its bucket");
            }
            assert!(i < NUM_BUCKETS);
            if ns >= 4096 {
                continue;
            }
            prev = i;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / lower bound <= 1/32 beyond the linear region.
        for ns in [100u64, 1_000, 123_456, 10_000_000, 1 << 40] {
            let i = bucket_index(ns);
            let upper = bucket_upper(i) as f64;
            assert!(
                (upper - ns as f64) / ns as f64 <= 1.0 / 32.0 + 1e-12,
                "{ns}: upper {upper}"
            );
        }
    }

    #[test]
    fn nearest_rank_convention_pinned() {
        // n = 1: every quantile is the single sample.
        assert_eq!(nearest_rank(1, 0.0), 1);
        assert_eq!(nearest_rank(1, 0.5), 1);
        assert_eq!(nearest_rank(1, 0.95), 1);
        assert_eq!(nearest_rank(1, 1.0), 1);
        // n = 2: p <= 0.5 -> the smaller sample, p > 0.5 -> the larger.
        assert_eq!(nearest_rank(2, 0.5), 1);
        assert_eq!(nearest_rank(2, 0.50001), 2);
        assert_eq!(nearest_rank(2, 0.95), 2);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(nearest_rank(5, -3.0), 1);
        assert_eq!(nearest_rank(5, 7.0), 5);
        // The textbook cases.
        assert_eq!(nearest_rank(20, 0.95), 19);
        assert_eq!(nearest_rank(100, 0.95), 95);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn nearest_rank_rejects_empty() {
        nearest_rank(0, 0.5);
    }

    #[test]
    fn percentiles_track_known_distributions() {
        let mut h = LatencyHist::new();
        for ns in 1..=1000u64 {
            h.record_ns(ns * 1000); // 1 µs .. 1 ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile_s(0.50);
        let p99 = h.percentile_s(0.99);
        assert!((p50 - 500e-6).abs() / 500e-6 < 0.04, "p50 {p50}");
        assert!((p99 - 990e-6).abs() / 990e-6 < 0.04, "p99 {p99}");
        // Max is exact, not a bucket bound.
        assert_eq!(h.max_s(), 1e-3);
        assert_eq!(h.percentile_s(1.0), 1e-3);
        assert!((h.mean_s() - 500.5e-6).abs() < 1e-9);
    }

    #[test]
    fn tiny_counts_follow_the_pinned_convention() {
        let mut h = LatencyHist::new();
        h.record_s(1e-3);
        // n = 1: everything is the one sample (exact via min/max clamping).
        assert_eq!(h.percentile_s(0.5), 1e-3);
        assert_eq!(h.percentile_s(0.99), 1e-3);
        h.record_s(3e-3);
        // n = 2: p50 -> smaller, p99 -> larger.
        assert!((h.percentile_s(0.5) - 1e-3).abs() / 1e-3 < 0.04);
        assert_eq!(h.percentile_s(0.99), 3e-3);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = LatencyHist::new();
        a.record_ns(10);
        let mut b = LatencyHist::new();
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 1_000_000);
        let empty = LatencyHist::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn merge_preserves_exact_extrema_and_total_count() {
        // The parallel executor merges per-worker histograms shard-wise;
        // the merged histogram must agree exactly with one built from
        // the full sample stream — bucket counts, exact min/max, count,
        // and total are all preserved, in any merge order.
        let samples: Vec<u64> = (0..200u64).map(|i| (i * 7919 + 13) % 1_000_003).collect();
        let mut whole = LatencyHist::new();
        for &s in &samples {
            whole.record_ns(s);
        }
        for chunk_len in [1usize, 3, 7, 64] {
            let shards: Vec<LatencyHist> = samples
                .chunks(chunk_len)
                .map(|c| {
                    let mut h = LatencyHist::new();
                    for &s in c {
                        h.record_ns(s);
                    }
                    h
                })
                .collect();
            let mut fwd = LatencyHist::new();
            for s in &shards {
                fwd.merge(s);
            }
            assert_eq!(fwd, whole, "chunk {chunk_len}");
            let mut rev = LatencyHist::new();
            for s in shards.iter().rev() {
                rev.merge(s);
            }
            assert_eq!(rev.count(), whole.count());
            assert_eq!(rev.min_ns, whole.min_ns);
            assert_eq!(rev.max_ns, whole.max_ns);
            assert_eq!(rev.total_ns, whole.total_ns);
            assert_eq!(rev.nonzero_buckets(), whole.nonzero_buckets());
        }
    }

    #[test]
    fn merge_of_two_empties_is_empty() {
        let mut a = LatencyHist::new();
        let b = LatencyHist::new();
        a.merge(&b);
        assert_eq!(a, LatencyHist::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.percentile_s(0.5), 0.0);
        assert_eq!(a.mean_s(), 0.0);
        assert!(a.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_empty_with_single_sample_adopts_it_exactly() {
        // empty ⊕ {x}: every quantile is x (nearest-rank n = 1), and
        // the exact extrema come from the single sample, not from the
        // empty side's zero-initialized min/max.
        let mut single = LatencyHist::new();
        single.record_ns(123_456);
        let mut a = LatencyHist::new();
        a.merge(&single);
        assert_eq!(a, single);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile_s(q), 123_456e-9, "q={q}");
        }
        assert_eq!(a.min_ns, 123_456);
        assert_eq!(a.max_ns, 123_456);
        // The mirror image {x} ⊕ empty is already covered by
        // merge_combines_counts_and_extrema; check symmetry anyway.
        let mut b = single.clone();
        b.merge(&LatencyHist::new());
        assert_eq!(b, single);
    }

    #[test]
    fn merge_saturates_at_extremes() {
        // Repeated self-merge doubles the count each time; 64+ rounds
        // would overflow u64 if merge used wrapping adds. Saturation
        // pins count, buckets, and total at their maxima and keeps the
        // histogram usable (quantiles still resolve, no panic).
        let mut h = LatencyHist::new();
        h.record_ns(1_000);
        h.record_ns(2_000_000);
        for _ in 0..70 {
            let snapshot = h.clone();
            h.merge(&snapshot);
        }
        assert_eq!(h.count(), u64::MAX);
        assert!(h.counts.contains(&u64::MAX));
        // The u128 total genuinely exceeds u64 range (2^70 doublings of
        // 2 001 000 ns) without wrapping — saturating_add never fired.
        assert!(h.total_ns > u64::MAX as u128);
        assert_eq!(h.min_ns, 1_000);
        assert_eq!(h.max_ns, 2_000_000);
        // Quantiles remain well-defined and ordered on the saturated
        // state. (Rank information *within* a saturated bucket is gone
        // — every rank lands in the first u64::MAX bucket — so p100 is
        // no longer the max; what saturation guarantees is no panic, no
        // wrap-induced inversion, and exact extrema via min_s/max_s.)
        let p50 = h.percentile_s(0.50);
        let p99 = h.percentile_s(0.99);
        assert!(p50 > 0.0 && p50 <= p99);
        assert!(h.percentile_s(1.0) <= h.max_s());
        assert_eq!(h.max_s(), 2_000_000e-9);
        // Merging more into a saturated histogram stays saturated.
        let mut extra = LatencyHist::new();
        extra.record_ns(500);
        h.merge(&extra);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.min_ns, 500);
    }

    #[test]
    fn quantiles_are_monotone_after_merge() {
        // p50 <= p90 <= p99 <= max must hold on any merged histogram —
        // the trend detector compares these fields across history
        // records and a rank inversion would fabricate drift. Exercise
        // skewed shard shapes: disjoint ranges, overlapping ranges,
        // one-hot shards, and a shard that saturates a bucket.
        let shard = |samples: &[u64]| {
            let mut h = LatencyHist::new();
            for &s in samples {
                h.record_ns(s);
            }
            h
        };
        let shards = [
            shard(&(1..100u64).map(|i| i * 17).collect::<Vec<_>>()),
            shard(&(1..50u64).map(|i| i * 1_000_003).collect::<Vec<_>>()),
            shard(&[42]),
            shard(&[u64::MAX >> 20]),
            shard(
                &(0..200u64)
                    .map(|i| (i * 7919 + 13) % 65_536)
                    .collect::<Vec<_>>(),
            ),
        ];
        let mut merged = LatencyHist::new();
        for s in &shards {
            merged.merge(s);
            if merged.count() == 0 {
                continue;
            }
            let p50 = merged.percentile_s(0.50);
            let p90 = merged.percentile_s(0.90);
            let p99 = merged.percentile_s(0.99);
            let max = merged.max_s();
            assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
            assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
            assert!(p99 <= max, "p99 {p99} > max {max}");
            assert!(merged.min_s() <= p50, "min above p50");
        }
    }

    #[test]
    fn serializes_summary_fields() {
        let mut h = LatencyHist::new();
        h.record_s(2e-3);
        let j = h.to_json();
        for key in [
            "count", "mean_s", "min_s", "p50_s", "p90_s", "p99_s", "max_s",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j["count"], 1u64);
    }

    #[test]
    fn nonzero_buckets_are_sparse() {
        let mut h = LatencyHist::new();
        h.record_ns(5);
        h.record_ns(5);
        h.record_ns(100_000);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (5, 2));
        assert!(buckets[1].0 >= 100_000);
    }
}
