//! A small, ordered JSON value.
//!
//! The workspace writes every benchmark report and `--stats-json` dump
//! as JSON, but builds hermetically with no registry access, so it
//! cannot pull in `serde_json`. This module is the replacement: a value
//! enum whose objects preserve insertion order (reports diff cleanly
//! run-to-run), a [`ToJson`] conversion trait for report record
//! structs, and the [`impl_to_json!`](crate::impl_to_json) /
//! [`json_obj!`](crate::json_obj) convenience macros.
//!
//! Serialization is complemented by a small strict parser,
//! [`Json::parse`], used by the perf-trajectory tooling (`tsdtw report
//! diff` reads `BENCH_*.json` snapshots back in) and the trace golden
//! tests. Non-finite floats serialize as `null` (JSON has no
//! NaN/Infinity).

use std::fmt;

/// A JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer. Counters (cell counts, tallies) stay exact here
    /// instead of rounding through `f64`.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Shared `null` returned by indexing misses, mirroring `serde_json`'s
/// forgiving `value["missing"]` behaviour that the bench tests rely on.
const NULL: Json = Json::Null;

impl Json {
    /// An empty object to populate with [`Json::set`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array to populate with [`Json::push`].
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl ToJson) -> &mut Self {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object");
        };
        let value = value.to_json();
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_string(), value)),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl ToJson) -> Self {
        self.set(key, value);
        self
    }

    /// Appends to an array.
    ///
    /// # Panics
    /// If `self` is not an array.
    pub fn push(&mut self, value: impl ToJson) -> &mut Self {
        let Json::Arr(items) = self else {
            panic!("Json::push on non-array");
        };
        items.push(value.to_json());
        self
    }

    /// `true` for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (both `Int` and `Float` qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// Strict (RFC 8259) grammar: one value, no trailing characters, no
    /// comments or trailing commas. Integers without fraction or
    /// exponent that fit an `i64` become [`Json::Int`]; every other
    /// number becomes [`Json::Float`]. Object key order is preserved.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Compact serialization (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline, matching what `serde_json::to_string_pretty` produced
    /// for the seed reports closely enough for human diffing.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest round-trip formatting; always valid JSON.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Appends `s` to `out` with every JSON-significant character escaped:
/// quotes, backslashes, and all control characters below U+0020 (named
/// escapes where RFC 8259 has them, `\u00XX` otherwise). No surrounding
/// quotes — callers add their own delimiter.
///
/// This is the single escaping routine behind every string the
/// workspace emits: [`Json`] serialization (and therefore the
/// Chrome-trace export and the `BENCH_*.json` snapshot writer funnel
/// through it), plus the Prometheus exposition writer in
/// [`metrics`](crate::metrics), whose label-value escaping rules are a
/// subset of JSON's. Everything written here round-trips through
/// [`Json::parse`] (`json_escape_round_trips` locks this).
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`json_escape_into`] returning a fresh `String` (still without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    json_escape_into(&mut out, s);
    out
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    json_escape_into(out, s);
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// `value["key"]`; yields `Json::Null` when absent or non-object.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// `value[i]`; yields `Json::Null` when out of bounds or non-array.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! eq_via {
    ($($t:ty => $conv:ident),* $(,)?) => {$(
        impl PartialEq<$t> for Json {
            fn eq(&self, other: &$t) -> bool {
                self.$conv() == Some(*other as _)
            }
        }

        impl PartialEq<Json> for $t {
            fn eq(&self, other: &Json) -> bool {
                other == self
            }
        }
    )*};
}

eq_via!(
    i32 => as_i64,
    i64 => as_i64,
    u32 => as_i64,
    u64 => as_u64,
    usize => as_u64,
    f64 => as_f64,
    bool => as_bool,
);

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Json> for &str {
    fn eq(&self, other: &Json) -> bool {
        other == self
    }
}

/// Conversion into [`Json`]; the analogue of `serde::Serialize` for the
/// report structs in `tsdtw-bench`. Implement by hand or with
/// [`impl_to_json!`](crate::impl_to_json).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields in the
/// order they should appear in the object:
///
/// ```ignore
/// impl_to_json!(SweepRow { algo, param, measured_pairs, measured_s });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let mut obj = $crate::Json::object();
                $(obj.set(stringify!($field), &self.$field);)+
                obj
            }
        }
    };
}

/// Builds an ordered JSON object literal:
///
/// ```ignore
/// let j = json_obj! { "n" => 1024, "algo" => "cdtw" };
/// ```
#[macro_export]
macro_rules! json_obj {
    ($($k:expr => $v:expr),* $(,)?) => {{
        #[allow(unused_mut)]
        let mut obj = $crate::Json::object();
        $(obj.set($k, $v);)*
        obj
    }};
}

/// Error from [`Json::parse`]: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting depth bound, protecting the recursive-descent parser's stack
/// against adversarial inputs.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy the full UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq_match_serde_json_idioms() {
        let j = json_obj! { "x" => 3, "name" => "dtw", "ratio" => 1.5 };
        assert_eq!(j["x"], 3);
        assert_eq!(j["name"], "dtw");
        assert_eq!(j["ratio"].as_f64().unwrap(), 1.5);
        assert!(j["missing"].is_null());
        assert_eq!(j["x"].as_f64().unwrap(), 3.0);
    }

    #[test]
    fn arrays_index_and_report_len() {
        let mut a = Json::array();
        a.push(1).push(2).push(3);
        assert_eq!(a.as_array().unwrap().len(), 3);
        assert_eq!(a[1], 2);
        assert!(a[9].is_null());
    }

    #[test]
    fn object_order_is_insertion_order_and_set_replaces() {
        let mut o = Json::object();
        o.set("b", 1).set("a", 2).set("b", 3);
        let keys: Vec<&str> = o
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(o["b"], 3);
    }

    #[test]
    fn compact_serialization() {
        let j = json_obj! {
            "s" => "a\"b\n",
            "v" => vec![1.0f64, 2.5],
            "none" => Option::<u32>::None,
            "nan" => f64::NAN,
        };
        assert_eq!(
            j.to_string_compact(),
            r#"{"s":"a\"b\n","v":[1.0,2.5],"none":null,"nan":null}"#
        );
    }

    #[test]
    fn pretty_serialization_indents() {
        let j = json_obj! { "a" => 1, "b" => Json::Arr(vec![Json::Int(2)]) };
        assert_eq!(
            j.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }

    #[test]
    fn floats_round_trip_distinguishably() {
        assert_eq!(Json::Float(1.0).to_string_compact(), "1.0");
        assert_eq!(Json::Float(0.1).to_string_compact(), "0.1");
        assert_eq!(Json::Int(1).to_string_compact(), "1");
    }

    #[test]
    fn impl_to_json_macro() {
        struct P {
            n: usize,
            label: String,
        }
        impl_to_json!(P { n, label });
        let j = P {
            n: 7,
            label: "x".into(),
        }
        .to_json();
        assert_eq!(j["n"], 7);
        assert_eq!(j["label"], "x");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let j = json_obj! {
            "s" => "a\"b\nc\\d",
            "v" => vec![1.0f64, 2.5],
            "i" => -42,
            "big" => u64::MAX as f64,
            "none" => Option::<u32>::None,
            "flag" => true,
            "nested" => json_obj! { "empty_arr" => Json::array(), "empty_obj" => Json::object() },
        };
        for text in [j.to_string_compact(), j.to_string_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, j, "{text}");
        }
    }

    #[test]
    fn parse_distinguishes_ints_and_floats() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // Integers beyond i64 degrade to floats instead of failing.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\"b\n\t\u0041""#).unwrap(),
            Json::Str("a\"b\n\tA".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "nullx",
            "[1] trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_reports_offsets() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn json_escape_round_trips() {
        // Every string the emitters might see — quotes, backslashes,
        // named and unnamed control characters, multi-byte UTF-8 —
        // must survive escape -> parse unchanged. Span labels and env
        // fields (hostnames are attacker-ish input) funnel through
        // this exact routine.
        let nasty = [
            "plain",
            "with \"quotes\" inside",
            "back\\slash \\\\ doubled",
            "newline\nand\ttab\rand\u{0}nul",
            "\u{1b}[31mansi\u{1b}[0m",
            "unit\u{1f}sep and héllo 😀",
            "", // empty
        ];
        for s in nasty {
            let escaped = json_escape(s);
            assert!(
                !escaped
                    .chars()
                    .any(|c| (c as u32) < 0x20 || c == '"' && !escaped.contains("\\\"")),
                "raw control char or bare quote leaked: {escaped:?}"
            );
            let doc = format!("\"{escaped}\"");
            assert_eq!(Json::parse(&doc).unwrap(), Json::Str(s.into()), "{s:?}");
            // And the same bytes come out of the Json serializer.
            assert_eq!(Json::Str(s.into()).to_string_compact(), doc);
        }
        // A whole object with nasty keys and values round-trips too.
        let j = json_obj! { "key\n\"k\"" => "val\\\u{7}" };
        assert_eq!(Json::parse(&j.to_string_compact()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_string_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }
}
