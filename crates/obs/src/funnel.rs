//! Per-stage prune-funnel ledger: the EXPLAIN ANALYZE view of a
//! pruning cascade.
//!
//! [`WorkMeter`](crate::WorkMeter)'s scalar counters answer *how much*
//! work a search did; the [`Funnel`] answers *which stage earned its
//! keep*. Every cascaded search (the LB cascade in
//! `tsdtw-core::lower_bounds::cascade` and the subsequence-search
//! pipeline in `tsdtw-mining`) reports, per stage:
//!
//! * **entered** — candidates that reached the stage,
//! * **pruned** — candidates the stage disposed of (for the DTW stage:
//!   early-abandoned),
//! * **cost_units** — a deterministic work proxy (see below), and
//! * **tightness** — a histogram of `LB / true-DTW` ratios for
//!   candidates that survived to an exact DTW, measuring how close each
//!   bound came to the true distance.
//!
//! The cost proxies are *defined*, not measured, so they are exact
//! integers and bitwise thread-count-invariant (DESIGN.md §14):
//!
//! | stage         | cost per candidate entering        |
//! |---------------|------------------------------------|
//! | `lb_kim`      | 1 (constant-time endpoint compare) |
//! | `lb_keogh_qc` | `m` (one envelope walk)            |
//! | `lb_keogh_cq` | `3·m` (envelope build `2m` + walk) |
//! | `dtw`         | rows filled × band width           |
//!
//! Tightness ratios are quantized to **parts-per-billion** before
//! recording (see [`tightness_ppb`]), reusing [`LatencyHist`]'s
//! nanosecond buckets so the `*_s` accessors return the raw
//! dimensionless ratio. A ratio of `1.0` (a perfectly tight bound)
//! stores as `1e9` and lands well inside the histogram's range.
//!
//! The funnel obeys the same shard-merge algebra as the meter counters:
//! addition per stage, histogram bucket-count addition for tightness —
//! associative and commutative — so the parallel executor's
//! item-index-order absorb produces a funnel bit-identical to a serial
//! run at any thread count (`parallel_equivalence` locks this).

use crate::hist::LatencyHist;
use crate::json::{Json, ToJson};

/// Funnel resolution of a tightness ratio of exactly `1.0`
/// (bound equals the true distance): ratios are stored in
/// parts-per-billion.
pub const TIGHTNESS_ONE_PPB: u64 = 1_000_000_000;

/// Quantizes a lower bound / true distance pair to the
/// parts-per-billion tightness sample the funnel records.
///
/// Returns `None` when the ratio is undefined or meaningless: a
/// non-finite input, a non-positive true distance, or a negative
/// bound. Ratios are clamped to `[0, 1]` — an admissible lower bound
/// can only exceed its true distance through floating-point noise, and
/// letting such noise escape the unit interval would poison the
/// histogram's range.
pub fn tightness_ppb(lb: f64, dtw: f64) -> Option<u64> {
    if !lb.is_finite() || !dtw.is_finite() || dtw <= 0.0 || lb < 0.0 {
        return None;
    }
    let ratio = (lb / dtw).clamp(0.0, 1.0);
    Some((ratio * TIGHTNESS_ONE_PPB as f64).round() as u64)
}

/// One stage of the pruning funnel.
///
/// Mirrors the cascade's evaluation order. The two early-abandon
/// dispositions of [`StageTag`](crate::StageTag) (`DtwAbandoned`,
/// `DtwExact`) both belong to the single [`Dtw`](FunnelStage::Dtw)
/// stage here: abandonment counts as that stage pruning the candidate,
/// an exact distance as the candidate surviving the whole funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunnelStage {
    /// LB_Kim (constant-time endpoint bound).
    Kim,
    /// LB_Keogh(query → candidate), the reordered envelope walk.
    KeoghQC,
    /// LB_Keogh(candidate → query), the on-demand-envelope pass.
    KeoghCQ,
    /// The early-abandoning banded DTW itself.
    Dtw,
}

impl FunnelStage {
    /// Every stage, in cascade evaluation order.
    pub const ALL: [FunnelStage; 4] = [
        FunnelStage::Kim,
        FunnelStage::KeoghQC,
        FunnelStage::KeoghCQ,
        FunnelStage::Dtw,
    ];

    /// Canonical stage name, used for report keys, metrics families
    /// (`tsdtw_cascade_stage_<name>_*`), and the EXPLAIN table. The LB
    /// names match the span labels of the same stages.
    pub fn name(self) -> &'static str {
        match self {
            FunnelStage::Kim => "lb_kim",
            FunnelStage::KeoghQC => "lb_keogh_qc",
            FunnelStage::KeoghCQ => "lb_keogh_cq",
            FunnelStage::Dtw => "dtw",
        }
    }

    /// Position in [`ALL`](Self::ALL).
    pub const fn index(self) -> usize {
        match self {
            FunnelStage::Kim => 0,
            FunnelStage::KeoghQC => 1,
            FunnelStage::KeoghCQ => 2,
            FunnelStage::Dtw => 3,
        }
    }
}

/// The per-stage disposition ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageLedger {
    /// Candidates that reached this stage.
    pub entered: u64,
    /// Candidates this stage disposed of.
    pub pruned: u64,
    /// Deterministic work proxy spent in this stage (module docs).
    pub cost_units: u64,
    /// `LB / true-DTW` ratios in parts-per-billion, recorded for
    /// candidates that survived to an exact DTW distance.
    pub tightness: LatencyHist,
}

impl StageLedger {
    /// Candidates that passed through to the next stage.
    pub fn survived(&self) -> u64 {
        self.entered.saturating_sub(self.pruned)
    }

    /// Folds another ledger into this one (counter addition, histogram
    /// bucket addition).
    pub fn merge(&mut self, other: &StageLedger) {
        self.entered += other.entered;
        self.pruned += other.pruned;
        self.cost_units += other.cost_units;
        self.tightness.merge(&other.tightness);
    }

    /// Candidates pruned per 1000 cost units; `None` when no cost was
    /// spent.
    pub fn prune_rate_per_kcost(&self) -> Option<f64> {
        if self.cost_units == 0 {
            None
        } else {
            Some(self.pruned as f64 * 1000.0 / self.cost_units as f64)
        }
    }
}

/// The complete funnel: one [`StageLedger`] per [`FunnelStage`].
///
/// Lives inside [`WorkMeter`](crate::WorkMeter) (as its `funnel`
/// field) and merges whenever meters merge, so it inherits the meter's
/// shard algebra and thread-count invariance for free. Deliberately
/// *not* part of the `work` report section — it has its own `funnel`
/// section in bench snapshots (schema v4) so pre-existing `work`
/// baselines stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Funnel {
    /// Ledgers indexed by [`FunnelStage::index`].
    pub stages: [StageLedger; 4],
}

impl Funnel {
    /// A funnel with every ledger at zero. Allocates nothing (the
    /// tightness histograms size lazily on first record).
    pub fn new() -> Self {
        Self::default()
    }

    /// The ledger for `stage`.
    pub fn stage(&self, stage: FunnelStage) -> &StageLedger {
        &self.stages[stage.index()]
    }

    /// Mutable ledger for `stage`.
    pub fn stage_mut(&mut self, stage: FunnelStage) -> &mut StageLedger {
        &mut self.stages[stage.index()]
    }

    /// One candidate reached `stage`.
    #[inline]
    pub fn record_entered(&mut self, stage: FunnelStage) {
        self.stages[stage.index()].entered += 1;
    }

    /// `stage` disposed of one candidate.
    #[inline]
    pub fn record_pruned(&mut self, stage: FunnelStage) {
        self.stages[stage.index()].pruned += 1;
    }

    /// `units` of deterministic cost were spent in `stage`.
    #[inline]
    pub fn record_cost(&mut self, stage: FunnelStage, units: u64) {
        self.stages[stage.index()].cost_units += units;
    }

    /// A `LB / true-DTW` tightness sample (parts-per-billion, see
    /// [`tightness_ppb`]) for `stage`'s bound. Values above `1.0` are
    /// clamped.
    #[inline]
    pub fn record_tightness(&mut self, stage: FunnelStage, ratio_ppb: u64) {
        self.stages[stage.index()]
            .tightness
            .record_ns(ratio_ppb.min(TIGHTNESS_ONE_PPB));
    }

    /// Whether nothing entered any stage (no cascaded search ran).
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.entered == 0)
    }

    /// Candidates that entered the funnel at its first engaged stage.
    pub fn candidates(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.entered)
            .find(|&e| e > 0)
            .unwrap_or(0)
    }

    /// Total deterministic cost across all stages.
    pub fn total_cost_units(&self) -> u64 {
        self.stages.iter().map(|s| s.cost_units).sum()
    }

    /// Folds another funnel into this one; the algebra is associative
    /// and commutative, matching the meter's shard contract.
    pub fn merge(&mut self, other: &Funnel) {
        for (dst, src) in self.stages.iter_mut().zip(other.stages.iter()) {
            dst.merge(src);
        }
    }

    /// Stages ordered by measured prune-rate-per-cost, best first —
    /// the exact signal ROADMAP item 4's adaptive cascade reorder will
    /// consume. Stages that nothing entered are excluded; ties break by
    /// cascade order, so the ranking is fully deterministic.
    pub fn ranking(&self) -> Vec<FunnelStage> {
        let mut ranked: Vec<FunnelStage> = FunnelStage::ALL
            .into_iter()
            .filter(|s| self.stage(*s).entered > 0)
            .collect();
        ranked.sort_by(|a, b| {
            let ra = self.stage(*a).prune_rate_per_kcost().unwrap_or(0.0);
            let rb = self.stage(*b).prune_rate_per_kcost().unwrap_or(0.0);
            rb.total_cmp(&ra).then(a.index().cmp(&b.index()))
        });
        ranked
    }

    /// The `funnel` section of bench snapshots and `--explain=FILE`
    /// dumps. Integer leaves (dispositions, cost units, tightness
    /// sample counts) are hard-gated by `report diff` / `report trend`
    /// at zero tolerance; float leaves (tightness quantiles) are
    /// advisory by omission from the counter-leaf walk. All four
    /// stages are always present so the section shape is stable.
    pub fn report(&self) -> Json {
        let mut stages = Json::object();
        for stage in FunnelStage::ALL {
            let s = self.stage(stage);
            let mut j = crate::json_obj! {
                "entered" => s.entered,
                "pruned" => s.pruned,
                "survived" => s.survived(),
                "cost_units" => s.cost_units,
            };
            if s.tightness.count() > 0 {
                j.set(
                    "tightness",
                    crate::json_obj! {
                        "count" => s.tightness.count(),
                        "mean" => s.tightness.mean_s(),
                        "p50" => s.tightness.percentile_s(50.0),
                        "p90" => s.tightness.percentile_s(90.0),
                        "p99" => s.tightness.percentile_s(99.0),
                        "max" => s.tightness.max_s(),
                    },
                );
            }
            stages.set(stage.name(), j);
        }
        crate::json_obj! {
            "candidates" => self.candidates(),
            "total_cost_units" => self.total_cost_units(),
            "stages" => stages,
        }
    }

    /// The EXPLAIN table the CLI `--explain` flag renders: per-stage
    /// dispositions, prune%, cost share, prune-rate-per-cost, and the
    /// bound-tightness median. Derived exclusively from merged
    /// counters, so the rendering is bitwise identical at every thread
    /// count. Returns the empty string when the funnel is empty.
    pub fn table(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let total_cost = self.total_cost_units();
        let mut out = String::new();
        out.push_str(&format!(
            "prune funnel: {} candidates, {} cost units\n",
            self.candidates(),
            total_cost
        ));
        out.push_str(&format!(
            "  {:<12} {:>10} {:>10} {:>8} {:>10} {:>12} {:>7} {:>13} {:>11}\n",
            "stage",
            "entered",
            "pruned",
            "prune%",
            "survived",
            "cost_units",
            "cost%",
            "pruned/kcost",
            "lb/dtw p50"
        ));
        for stage in FunnelStage::ALL {
            let s = self.stage(stage);
            if s.entered == 0 {
                out.push_str(&format!(
                    "  {:<12} {:>10} {:>10} {:>8} {:>10} {:>12} {:>7} {:>13} {:>11}\n",
                    stage.name(),
                    0,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-"
                ));
                continue;
            }
            let prune_pct = s.pruned as f64 * 100.0 / s.entered as f64;
            let cost_pct = if total_cost == 0 {
                0.0
            } else {
                s.cost_units as f64 * 100.0 / total_cost as f64
            };
            let rate = s
                .prune_rate_per_kcost()
                .map_or_else(|| "-".to_string(), |r| format!("{r:.3}"));
            let p50 = if s.tightness.count() > 0 {
                format!("{:.3}", s.tightness.percentile_s(50.0))
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "  {:<12} {:>10} {:>10} {:>7.2}% {:>10} {:>12} {:>6.2}% {:>13} {:>11}\n",
                stage.name(),
                s.entered,
                s.pruned,
                prune_pct,
                s.survived(),
                s.cost_units,
                cost_pct,
                rate,
                p50
            ));
        }
        let ranking: Vec<&str> = self.ranking().into_iter().map(|s| s.name()).collect();
        if !ranking.is_empty() {
            out.push_str(&format!(
                "  prune-rate-per-cost ranking: {}\n",
                ranking.join(" > ")
            ));
        }
        out
    }
}

impl ToJson for Funnel {
    fn to_json(&self) -> Json {
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random funnel for the algebra tests.
    fn arbitrary_funnel(seed: u64) -> Funnel {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut f = Funnel::new();
        for stage in FunnelStage::ALL {
            for _ in 0..(next() % 5 + 1) {
                f.record_entered(stage);
            }
            for _ in 0..(next() % 3) {
                f.record_pruned(stage);
            }
            f.record_cost(stage, next() % 1000);
            if next() % 2 == 0 {
                f.record_tightness(stage, next() % TIGHTNESS_ONE_PPB);
            }
        }
        f
    }

    #[test]
    fn new_funnel_is_empty_and_table_is_blank() {
        let f = Funnel::new();
        assert!(f.is_empty());
        assert_eq!(f.candidates(), 0);
        assert_eq!(f.table(), "");
    }

    #[test]
    fn records_land_on_the_right_stage() {
        let mut f = Funnel::new();
        f.record_entered(FunnelStage::Kim);
        f.record_entered(FunnelStage::Kim);
        f.record_pruned(FunnelStage::Kim);
        f.record_entered(FunnelStage::KeoghQC);
        f.record_cost(FunnelStage::KeoghQC, 64);
        f.record_tightness(FunnelStage::KeoghQC, 830_000_000);
        assert_eq!(f.stage(FunnelStage::Kim).entered, 2);
        assert_eq!(f.stage(FunnelStage::Kim).pruned, 1);
        assert_eq!(f.stage(FunnelStage::Kim).survived(), 1);
        assert_eq!(f.stage(FunnelStage::KeoghQC).cost_units, 64);
        assert_eq!(f.stage(FunnelStage::KeoghQC).tightness.count(), 1);
        assert_eq!(f.stage(FunnelStage::KeoghCQ).entered, 0);
        assert!(!f.is_empty());
        assert_eq!(f.candidates(), 2);
    }

    #[test]
    fn tightness_ppb_quantizes_and_rejects_degenerate_inputs() {
        assert_eq!(tightness_ppb(0.5, 1.0), Some(500_000_000));
        assert_eq!(tightness_ppb(1.0, 1.0), Some(TIGHTNESS_ONE_PPB));
        // FP noise above the true distance clamps to 1.0.
        assert_eq!(tightness_ppb(1.0000001, 1.0), Some(TIGHTNESS_ONE_PPB));
        assert_eq!(tightness_ppb(0.0, 1.0), Some(0));
        assert_eq!(tightness_ppb(1.0, 0.0), None);
        assert_eq!(tightness_ppb(1.0, -2.0), None);
        assert_eq!(tightness_ppb(-1.0, 2.0), None);
        assert_eq!(tightness_ppb(f64::INFINITY, 1.0), None);
        assert_eq!(tightness_ppb(1.0, f64::NAN), None);
    }

    #[test]
    fn tightness_samples_read_back_as_raw_ratios() {
        let mut f = Funnel::new();
        f.record_tightness(FunnelStage::Kim, tightness_ppb(0.8, 1.0).unwrap());
        let t = &f.stage(FunnelStage::Kim).tightness;
        assert_eq!(t.count(), 1);
        // ppb storage ÷ histogram's 1e9 denominator = the raw ratio
        // (up to the log-linear bucket width).
        let p50 = t.percentile_s(50.0);
        assert!((p50 - 0.8).abs() < 0.01, "p50 {p50} should be ≈0.8");
        // A clamped full-tightness sample stays ≤ 1.0 + bucket width.
        f.record_tightness(FunnelStage::Kim, u64::MAX);
        let max = f.stage(FunnelStage::Kim).tightness.max_s();
        assert!(max <= 1.01, "max {max} must clamp near 1.0");
    }

    #[test]
    fn merge_is_associative_and_commutative_with_identity() {
        let (a, b, c) = (
            arbitrary_funnel(1),
            arbitrary_funnel(2),
            arbitrary_funnel(3),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut with_zero = a.clone();
        with_zero.merge(&Funnel::new());
        assert_eq!(with_zero, a);
    }

    #[test]
    fn report_has_stable_shape_and_integer_dispositions() {
        let mut f = Funnel::new();
        for _ in 0..10 {
            f.record_entered(FunnelStage::Kim);
        }
        for _ in 0..4 {
            f.record_pruned(FunnelStage::Kim);
        }
        f.record_cost(FunnelStage::Kim, 10);
        for _ in 0..6 {
            f.record_entered(FunnelStage::Dtw);
        }
        f.record_tightness(FunnelStage::Kim, 500_000_000);
        let j = f.report();
        assert_eq!(j["candidates"], 10u64);
        // All four stages present even when untouched.
        for stage in FunnelStage::ALL {
            assert!(
                !j["stages"][stage.name()].is_null(),
                "stage {} missing",
                stage.name()
            );
        }
        assert_eq!(j["stages"]["lb_kim"]["entered"], 10u64);
        assert_eq!(j["stages"]["lb_kim"]["pruned"], 4u64);
        assert_eq!(j["stages"]["lb_kim"]["survived"], 6u64);
        assert_eq!(j["stages"]["lb_kim"]["tightness"]["count"], 1u64);
        assert_eq!(j["stages"]["dtw"]["entered"], 6u64);
        // Untouched stage omits the tightness block entirely.
        assert!(j["stages"]["lb_keogh_cq"]["tightness"].is_null());
    }

    #[test]
    fn table_renders_all_stages_and_ranking() {
        let mut f = Funnel::new();
        for _ in 0..100 {
            f.record_entered(FunnelStage::Kim);
        }
        for _ in 0..60 {
            f.record_pruned(FunnelStage::Kim);
        }
        f.record_cost(FunnelStage::Kim, 100);
        for _ in 0..40 {
            f.record_entered(FunnelStage::KeoghQC);
        }
        for _ in 0..30 {
            f.record_pruned(FunnelStage::KeoghQC);
        }
        f.record_cost(FunnelStage::KeoghQC, 4000);
        for _ in 0..10 {
            f.record_entered(FunnelStage::Dtw);
        }
        for _ in 0..3 {
            f.record_pruned(FunnelStage::Dtw);
        }
        f.record_cost(FunnelStage::Dtw, 50_000);
        let t = f.table();
        assert!(t.contains("prune funnel: 100 candidates"));
        assert!(t.contains("lb_kim"));
        assert!(t.contains("lb_keogh_cq")); // dormant stage still listed
                                            // Kim prunes 600/kcost, KeoghQC 7.5/kcost, Dtw 0.06/kcost.
        assert!(t.contains("prune-rate-per-cost ranking: lb_kim > lb_keogh_qc > dtw"));
        assert!(t.contains("60.00%"), "prune% column:\n{t}");
    }

    #[test]
    fn ranking_breaks_ties_by_cascade_order() {
        let mut f = Funnel::new();
        for stage in [FunnelStage::KeoghQC, FunnelStage::Kim] {
            f.record_entered(stage);
            f.record_pruned(stage);
            f.record_cost(stage, 10);
        }
        assert_eq!(f.ranking(), vec![FunnelStage::Kim, FunnelStage::KeoghQC]);
    }
}
