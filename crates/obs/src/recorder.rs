//! The flight recorder: a fixed-capacity ring buffer of structured span
//! events.
//!
//! The per-label aggregate table in [`span`](crate::span) answers "how
//! much time went to each kernel"; the flight recorder answers *where in
//! the run* it went. While a recorder is active on a thread, every span
//! guard additionally appends a begin event on open and an end event on
//! drop, with the parent/child structure (nesting depth) intact — a
//! FastDTW invocation shows each resolution level, its window
//! expansion, and the PAA coarsening as individually timed children.
//!
//! The buffer is a *flight recorder* in the avionics sense: fixed
//! capacity chosen up front, oldest events overwritten first, so an
//! arbitrarily long run keeps the last N events at a bounded, constant
//! memory and per-event cost. Dropped events are counted, never
//! silently lost.
//!
//! Two exporters:
//! * [`Trace::chrome_json`] — the Chrome Trace Format (the
//!   `traceEvents` array of `ph: "B"` / `"E"` records), openable
//!   directly in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing`. Only balanced begin/end pairs are exported, so
//!   the file is always well-formed even after ring wrap-around.
//! * [`Trace::summary_table`] — a compact per-label table (count,
//!   total, p50/p99/max from a [`LatencyHist`]) for terminal output.
//!
//! Recording is wired through the feature-gated span probes: with the
//! `spans` cargo feature off, spans compile to nothing, no events are
//! ever produced, and [`recorder_stop`] returns an empty (but valid)
//! trace. The [`Recorder`]/[`Trace`] types themselves are always
//! available, so exporters and tests are feature-independent.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use crate::hist::LatencyHist;
use crate::json::Json;

/// Default ring capacity used by CLI `--trace` (events, not spans; one
/// span is two events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Whether a [`TraceEvent`] opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// The span opened (guard created).
    Begin,
    /// The span closed (guard dropped).
    End,
}

/// One structured event in the flight-recorder ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The span label (same label as the aggregate table).
    pub label: &'static str,
    /// Begin or end.
    pub phase: TracePhase,
    /// Microseconds since the recorder started.
    pub ts_us: f64,
    /// Nesting depth of the span this event belongs to (0 = root).
    pub depth: u32,
    /// Identifier pairing this event with its begin/end partner,
    /// unique per recorder.
    pub span_id: u64,
    /// Which execution track the event belongs to: 0 is the recording
    /// thread itself; absorbed worker shards (see [`recorder_absorb`])
    /// get successive tracks 1, 2, … and export as distinct `tid`s.
    pub track: u32,
    /// Live heap bytes attributed to the recording thread when the
    /// event was recorded; 0 unless built with `alloc-telemetry`.
    /// Exported as a Chrome-trace counter track.
    pub heap_live: u64,
    /// For end events: heap bytes allocated during the span (from the
    /// guard's [`AllocScope`](crate::AllocScope)); 0 on begin events
    /// and without `alloc-telemetry`.
    pub alloc_bytes: u64,
}

/// One sample on a named counter track (a `ph: "C"` Chrome-trace
/// record): the metrics sampler snapshots registry values onto the
/// recorder timeline through these.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// The counter-track name (a metrics-registry metric name).
    pub name: String,
    /// Microseconds since the recorder epoch.
    pub ts_us: f64,
    /// The sampled value.
    pub value: f64,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct Recorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    counters: Vec<CounterSample>,
    dropped: u64,
    depth: u32,
    next_id: u64,
    next_track: u32,
    epoch: Instant,
}

impl Recorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 2,
    /// one begin/end pair).
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// A recorder whose timestamps are measured from `epoch` instead of
    /// "now" — worker shards share the parent's epoch so their events
    /// land on the same timeline (see [`recorder_start_shard`]).
    fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        let capacity = capacity.max(2);
        Recorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            counters: Vec::new(),
            dropped: 0,
            depth: 0,
            next_id: 0,
            next_track: 1,
            epoch,
        }
    }

    /// Appends one counter-track sample. Samples share the span ring's
    /// capacity bound (a sampler at any cadence stays at constant
    /// memory); overflow drops the *newest* sample and counts it — the
    /// early samples anchor the trajectory, the tail is the live edge
    /// the sampler is still producing.
    pub fn counter_sample(&mut self, sample: CounterSample) {
        if self.counters.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.counters.push(sample);
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Records a begin event, returning the span id its end must echo.
    pub fn begin(&mut self, label: &'static str) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let depth = self.depth;
        self.depth += 1;
        self.push(TraceEvent {
            label,
            phase: TracePhase::Begin,
            ts_us: self.epoch.elapsed().as_secs_f64() * 1e6,
            depth,
            span_id: id,
            track: 0,
            heap_live: crate::alloc::current_live_bytes(),
            alloc_bytes: 0,
        });
        id
    }

    /// Records the end event matching [`begin`](Recorder::begin).
    pub fn end(&mut self, label: &'static str, span_id: u64) {
        self.end_with_alloc(label, span_id, 0);
    }

    /// [`end`](Recorder::end), carrying the heap bytes the span
    /// allocated (what the span guards report under `alloc-telemetry`).
    pub fn end_with_alloc(&mut self, label: &'static str, span_id: u64, alloc_bytes: u64) {
        self.depth = self.depth.saturating_sub(1);
        let depth = self.depth;
        self.push(TraceEvent {
            label,
            phase: TracePhase::End,
            ts_us: self.epoch.elapsed().as_secs_f64() * 1e6,
            depth,
            span_id,
            track: 0,
            heap_live: crate::alloc::current_live_bytes(),
            alloc_bytes,
        });
    }

    /// Merges a worker shard's trace into this recorder: span ids are
    /// remapped into this recorder's id space (so begin/end pairing
    /// survives the merge) and every absorbed event is stamped with the
    /// next free track number, keeping each shard a well-nested stream
    /// of its own. Shard drop counts accumulate.
    pub fn absorb(&mut self, shard: Trace) {
        let offset = self.next_id;
        let mut max_id = None::<u64>;
        let track = self.next_track;
        self.next_track += 1;
        for ev in shard.events {
            max_id = Some(max_id.map_or(ev.span_id, |m| m.max(ev.span_id)));
            self.push(TraceEvent {
                span_id: offset + ev.span_id,
                track,
                ..ev
            });
        }
        if let Some(m) = max_id {
            self.next_id = offset + m + 1;
        }
        for sample in shard.counters {
            self.counter_sample(sample);
        }
        self.dropped += shard.dropped;
    }

    /// Stops recording and yields the retained events.
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events.into_iter().collect(),
            counters: self.counters,
            dropped: self.dropped,
            capacity: self.capacity,
        }
    }
}

/// The drained contents of a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Counter-track samples (metrics sampler output), oldest first.
    pub counters: Vec<CounterSample>,
    /// Events evicted by ring wrap-around, plus counter samples
    /// rejected at the capacity bound.
    pub dropped: u64,
    /// The ring capacity the trace was recorded with.
    pub capacity: usize,
}

impl Trace {
    /// Span ids with both a begin and an end retained in the ring —
    /// the set the exporters emit, guaranteeing balance.
    fn balanced_ids(&self) -> std::collections::HashSet<u64> {
        let mut begun = std::collections::HashSet::new();
        let mut balanced = std::collections::HashSet::new();
        for ev in &self.events {
            match ev.phase {
                TracePhase::Begin => {
                    begun.insert(ev.span_id);
                }
                TracePhase::End => {
                    if begun.contains(&ev.span_id) {
                        balanced.insert(ev.span_id);
                    }
                }
            }
        }
        balanced
    }

    /// The trace in Chrome Trace Format, openable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Only balanced begin/end pairs are emitted (ring eviction can
    /// orphan the oldest events), so the `traceEvents` stream is always
    /// properly nested. Drop accounting lands in `otherData`.
    pub fn chrome_json(&self) -> Json {
        let balanced = self.balanced_ids();
        let heap_track = crate::heap_telemetry_enabled();
        let mut events = Json::array();
        for ev in &self.events {
            if !balanced.contains(&ev.span_id) {
                continue;
            }
            let mut args = crate::json_obj! {
                "depth" => ev.depth,
                "span_id" => ev.span_id,
            };
            if heap_track && ev.phase == TracePhase::End {
                args.set("alloc_bytes", ev.alloc_bytes);
            }
            events.push(crate::json_obj! {
                "name" => ev.label,
                "cat" => "tsdtw",
                "ph" => match ev.phase {
                    TracePhase::Begin => "B",
                    TracePhase::End => "E",
                },
                "ts" => ev.ts_us,
                "pid" => 1,
                // Track 0 (the recording thread) keeps the historical
                // tid 1; absorbed worker shards render as tid 2, 3, …
                "tid" => ev.track + 1,
                "args" => args,
            });
            if heap_track {
                // A Chrome-trace counter track ("ph": "C") sampling the
                // recording thread's live heap at every span boundary —
                // Perfetto renders it as a staircase under the spans.
                events.push(crate::json_obj! {
                    "name" => "heap_live_bytes",
                    "cat" => "tsdtw",
                    "ph" => "C",
                    "ts" => ev.ts_us,
                    "pid" => 1,
                    "tid" => ev.track + 1,
                    "args" => crate::json_obj! { "bytes" => ev.heap_live },
                });
            }
        }
        // Metrics-sampler counter tracks: one "ph": "C" series per
        // metric name, on the recording thread's track. Perfetto
        // renders each name as its own counter lane under the spans.
        for s in &self.counters {
            events.push(crate::json_obj! {
                "name" => s.name.as_str(),
                "cat" => "tsdtw",
                "ph" => "C",
                "ts" => s.ts_us,
                "pid" => 1,
                "tid" => 1,
                "args" => crate::json_obj! { "value" => s.value },
            });
        }
        crate::json_obj! {
            "traceEvents" => events,
            "displayTimeUnit" => "ms",
            "otherData" => crate::json_obj! {
                "source" => "tsdtw flight recorder",
                "capacity" => self.capacity,
                "dropped_events" => self.dropped,
                "spans_feature" => crate::spans_enabled(),
            },
        }
    }

    /// Per-label aggregation over the balanced spans: count, total
    /// time, and a latency histogram of span durations.
    pub fn summary(&self) -> Vec<TraceSummaryRow> {
        let balanced = self.balanced_ids();
        let mut open: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        let mut rows: Vec<TraceSummaryRow> = Vec::new();
        for ev in &self.events {
            if !balanced.contains(&ev.span_id) {
                continue;
            }
            match ev.phase {
                TracePhase::Begin => {
                    open.insert(ev.span_id, ev.ts_us);
                }
                TracePhase::End => {
                    let Some(begin_us) = open.remove(&ev.span_id) else {
                        continue;
                    };
                    let dur_s = (ev.ts_us - begin_us).max(0.0) * 1e-6;
                    let row = match rows.iter_mut().find(|r| r.label == ev.label) {
                        Some(row) => row,
                        None => {
                            rows.push(TraceSummaryRow {
                                label: ev.label,
                                count: 0,
                                total_s: 0.0,
                                alloc_bytes: 0,
                                hist: LatencyHist::new(),
                            });
                            rows.last_mut().expect("just pushed")
                        }
                    };
                    row.count += 1;
                    row.total_s += dur_s;
                    row.alloc_bytes += ev.alloc_bytes;
                    row.hist.record_s(dur_s);
                }
            }
        }
        rows
    }

    /// The compact per-span summary table for terminal output.
    pub fn summary_table(&self) -> String {
        let rows = self.summary();
        let heap = crate::heap_telemetry_enabled();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24}{:>10}{:>14}{:>12}{:>12}{:>12}",
            "span", "count", "total", "p50", "p99", "max"
        ));
        if heap {
            out.push_str(&format!("{:>14}", "alloc_b"));
        }
        out.push('\n');
        for r in &rows {
            out.push_str(&format!(
                "{:<24}{:>10}{:>14.6}{:>12.9}{:>12.9}{:>12.9}",
                r.label,
                r.count,
                r.total_s,
                r.hist.percentile_s(0.5),
                r.hist.percentile_s(0.99),
                r.hist.max_s(),
            ));
            if heap {
                out.push_str(&format!("{:>14}", r.alloc_bytes));
            }
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} older events dropped at ring capacity {})\n",
                self.dropped, self.capacity
            ));
        }
        out
    }
}

/// One row of [`Trace::summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummaryRow {
    /// The span label.
    pub label: &'static str,
    /// Completed (balanced) spans with this label.
    pub count: u64,
    /// Total seconds across those spans.
    pub total_s: f64,
    /// Heap bytes allocated inside those spans; 0 without
    /// `alloc-telemetry`.
    pub alloc_bytes: u64,
    /// Duration distribution.
    pub hist: LatencyHist,
}

thread_local! {
    static ACTIVE: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Starts (or restarts) the flight recorder on this thread with the
/// given ring capacity. Span guards opened after this call record
/// begin/end events until [`recorder_stop`].
pub fn recorder_start(capacity: usize) {
    ACTIVE.with(|a| *a.borrow_mut() = Some(Recorder::new(capacity)));
}

/// Stops this thread's recorder and returns its trace; `None` when no
/// recorder was active. Without the `spans` cargo feature the trace is
/// empty (the probes compile away) but still exports as a valid file.
pub fn recorder_stop() -> Option<Trace> {
    ACTIVE.with(|a| a.borrow_mut().take()).map(Recorder::finish)
}

/// Whether a recorder is active on this thread.
pub fn recorder_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// A capability for starting a worker-shard recorder that shares the
/// parent's epoch and capacity, so shard timestamps line up with the
/// parent timeline. Obtained on the parent thread *before* spawning
/// workers via [`recorder_handoff`].
#[derive(Debug, Clone, Copy)]
pub struct RecorderHandoff {
    capacity: usize,
    epoch: Instant,
}

impl RecorderHandoff {
    /// Microseconds elapsed since the parent recorder's epoch — the
    /// timestamp base every event on that recorder's timeline uses.
    /// The metrics sampler calls this from its own thread so counter
    /// samples land at the right place among the spans.
    pub fn elapsed_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }
}

/// Captures this thread's recorder configuration for handing to worker
/// threads; `None` when no recorder is active (workers then record
/// nothing, at zero cost).
pub fn recorder_handoff() -> Option<RecorderHandoff> {
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|r| RecorderHandoff {
            capacity: r.capacity,
            epoch: r.epoch,
        })
    })
}

/// Starts a shard recorder on a worker thread from a parent's
/// [`RecorderHandoff`]. Stop it with [`recorder_stop`] and feed the
/// returned trace to [`recorder_absorb`] on the parent thread.
pub fn recorder_start_shard(handoff: RecorderHandoff) {
    ACTIVE.with(|a| *a.borrow_mut() = Some(Recorder::with_epoch(handoff.capacity, handoff.epoch)));
}

/// Appends counter-track samples to this thread's active recorder;
/// returns how many were delivered (0 when no recorder is active —
/// the samples are simply discarded, matching the span probes'
/// no-recorder behavior).
pub fn recorder_counter_samples(samples: Vec<CounterSample>) -> usize {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        let Some(r) = borrow.as_mut() else {
            return 0;
        };
        let n = samples.len();
        for s in samples {
            r.counter_sample(s);
        }
        n
    })
}

/// Merges a worker shard's trace into this thread's active recorder
/// (see [`Recorder::absorb`]); a no-op when no recorder is active.
pub fn recorder_absorb(shard: Trace) {
    ACTIVE.with(|a| {
        if let Some(r) = a.borrow_mut().as_mut() {
            r.absorb(shard);
        }
    });
}

/// Span-guard hook: begin event if a recorder is active.
#[cfg_attr(not(feature = "spans"), allow(dead_code))]
pub(crate) fn recorder_begin(label: &'static str) -> Option<u64> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(|r| r.begin(label)))
}

/// Span-guard hook: end event matching `recorder_begin`.
#[cfg_attr(not(feature = "spans"), allow(dead_code))]
pub(crate) fn recorder_end(label: &'static str, span_id: Option<u64>, alloc_bytes: u64) {
    if let Some(id) = span_id {
        ACTIVE.with(|a| {
            if let Some(r) = a.borrow_mut().as_mut() {
                r.end_with_alloc(label, id, alloc_bytes);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The B/E span records of an exported `traceEvents` array, with
    /// the heap counter samples (`ph: "C"`, present under
    /// `alloc-telemetry`) filtered out.
    fn span_records(chrome: &Json) -> Vec<Json> {
        chrome["traceEvents"]
            .as_array()
            .expect("traceEvents array")
            .iter()
            .filter(|e| e["ph"].as_str() != Some("C"))
            .cloned()
            .collect()
    }

    fn ev(
        label: &'static str,
        phase: TracePhase,
        ts_us: f64,
        depth: u32,
        span_id: u64,
    ) -> TraceEvent {
        TraceEvent {
            label,
            phase,
            ts_us,
            depth,
            span_id,
            track: 0,
            heap_live: 0,
            alloc_bytes: 0,
        }
    }

    #[test]
    fn absorb_remaps_span_ids_and_assigns_tracks() {
        let mut main = Recorder::new(64);
        let a = main.begin("main_work");
        main.end("main_work", a);

        let mut shard1 = Recorder::new(64);
        let s = shard1.begin("worker_work");
        shard1.end("worker_work", s);
        let mut shard2 = Recorder::new(64);
        let s = shard2.begin("worker_work");
        shard2.end("worker_work", s);
        let mut t2 = shard2.finish();
        t2.dropped = 3; // pretend this shard wrapped

        main.absorb(shard1.finish());
        main.absorb(t2);
        let b = main.begin("after"); // ids must stay unique after absorb
        main.end("after", b);

        let t = main.finish();
        assert_eq!(t.events.len(), 8);
        assert_eq!(t.dropped, 3);
        let ids: std::collections::HashSet<u64> = t.events.iter().map(|e| e.span_id).collect();
        assert_eq!(ids.len(), 4, "span ids must be unique after the merge");
        let tracks: Vec<u32> = t.events.iter().map(|e| e.track).collect();
        assert_eq!(tracks, vec![0, 0, 1, 1, 2, 2, 0, 0]);
        // Every pair stays balanced, so both exporters see all spans.
        let rows = t.summary();
        let worker: &TraceSummaryRow = rows
            .iter()
            .find(|r| r.label == "worker_work")
            .expect("worker spans survive the merge");
        assert_eq!(worker.count, 2);
        let json = t.chrome_json().to_string_compact();
        assert!(
            json.contains("\"tid\": 2") || json.contains("\"tid\":2"),
            "{json}"
        );
    }

    #[test]
    fn recorder_nests_and_balances() {
        let mut r = Recorder::new(64);
        let a = r.begin("outer");
        let b = r.begin("inner");
        r.end("inner", b);
        r.end("outer", a);
        let t = r.finish();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events[0].depth, 0);
        assert_eq!(t.events[1].depth, 1);
        // Timestamps never go backwards.
        for w in t.events.windows(2) {
            assert!(w[1].ts_us >= w[0].ts_us);
        }
        let rows = t.summary();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "inner"); // inner closes first
        assert_eq!(rows[0].count, 1);
    }

    #[test]
    fn ring_drops_oldest_first_and_counts_drops() {
        let mut r = Recorder::new(4);
        for i in 0..3 {
            let id = r.begin("s");
            r.end("s", id);
            let _ = i;
        }
        let t = r.finish();
        // 6 events through a 4-slot ring: the first pair was evicted.
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events[0].span_id, 1, "oldest events go first");
        // The evicted pair is gone from the export; what's left balances.
        let events = span_records(&t.chrome_json());
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn chrome_export_is_balanced_after_partial_eviction() {
        // Hand-built pathological ring contents: an orphan End (its Begin
        // was evicted) and an unclosed Begin must both be filtered out.
        let t = Trace {
            events: vec![
                ev("lost_begin", TracePhase::End, 1.0, 0, 7),
                ev("ok", TracePhase::Begin, 2.0, 0, 8),
                ev("ok", TracePhase::End, 3.0, 0, 8),
                ev("still_open", TracePhase::Begin, 4.0, 0, 9),
            ],
            counters: vec![],
            dropped: 1,
            capacity: 4,
        };
        let chrome = t.chrome_json();
        let events = span_records(&chrome);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "B");
        assert_eq!(events[1]["ph"], "E");
        assert_eq!(events[0]["name"], "ok");
        assert_eq!(chrome["otherData"]["dropped_events"], 1u64);
    }

    #[test]
    fn chrome_export_nesting_is_stack_disciplined() {
        let mut r = Recorder::new(64);
        let a = r.begin("fastdtw");
        let b = r.begin("fastdtw_level");
        r.end("fastdtw_level", b);
        let c = r.begin("fastdtw_level");
        r.end("fastdtw_level", c);
        r.end("fastdtw", a);
        let chrome = r.finish().chrome_json();
        let events = span_records(&chrome);
        // Replay the B/E stream against a stack: it must never underflow
        // and must end empty.
        let mut stack: Vec<String> = Vec::new();
        for e in &events {
            match e["ph"].as_str().unwrap() {
                "B" => stack.push(e["name"].as_str().unwrap().to_string()),
                "E" => {
                    let top = stack.pop().expect("E without open B");
                    assert_eq!(top, e["name"].as_str().unwrap());
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stack.is_empty(), "unclosed spans in export");
    }

    #[test]
    fn summary_table_mentions_labels_and_drops() {
        let mut r = Recorder::new(2);
        for _ in 0..3 {
            let id = r.begin("kernel");
            r.end("kernel", id);
        }
        let t = r.finish();
        let table = t.summary_table();
        assert!(table.contains("kernel"), "{table}");
        assert!(table.contains("dropped"), "{table}");
    }

    #[test]
    fn thread_local_recorder_roundtrip() {
        assert!(!recorder_active());
        assert!(recorder_stop().is_none());
        recorder_start(16);
        assert!(recorder_active());
        if let Some(id) = recorder_begin("tl_span") {
            recorder_end("tl_span", Some(id), 0);
        }
        let t = recorder_stop().expect("was active");
        assert!(!recorder_active());
        assert_eq!(t.capacity, 16);
        assert_eq!(t.events.len(), 2);
    }
}
