//! Heap telemetry: the instrumented global allocator and its scope API.
//!
//! The paper's memory argument (Wu & Keogh §3; Salvador & Chan §4) is
//! that FastDTW's multilevel recursion carries window/path/coarsened
//! -series baggage that cDTW's O(N) rolling rows never pay — and the
//! UCR-suite repeated-eval wins depend on hot loops being
//! *allocation-free*. Before this module the workspace could only
//! assert the first half of that via the hand-maintained
//! `dp_peak_bytes` counter; nothing observed what the allocator
//! actually did. With the `alloc-telemetry` cargo feature enabled this
//! module installs a counting `#[global_allocator]` wrapper around
//! [`std::alloc::System`] that keeps **thread-local** counters — bytes
//! allocated/freed, live bytes, peak live bytes, and
//! alloc/realloc/dealloc counts — read through two RAII probes:
//!
//! * [`AllocScope`] — brackets a region and yields the [`AllocDelta`]
//!   of everything the *current thread* allocated inside it. Entering a
//!   scope saves the thread's peak-live watermark and resets it to the
//!   current live level, so `peak_bytes` is the exact high-water mark
//!   *above the scope's entry level*, not a stale global maximum.
//!   Scopes must nest LIFO (guaranteed by ordinary lexical use).
//! * [`AllocRegion`] — the parallel-executor helper. Worker threads
//!   measure each item with an `AllocScope` of their own; the caller
//!   [`credit`](AllocRegion::credit)s those deltas **in item-index
//!   order** and [`finish`](AllocRegion::finish) then rewrites the
//!   caller's counters to exactly `state-at-begin ∘ credited deltas` —
//!   erasing the executor's own machinery (chunk lists, spawn closures,
//!   the result vector's storage) from the account. Because sequential
//!   composition of deltas ([`AllocDelta::merge`]) is exactly what a
//!   serial run would have produced, the thread's heap counters after a
//!   `par_map` are **bitwise identical at any thread count** for
//!   deterministic per-item workloads (see DESIGN.md §12 for the
//!   caveats: error paths and meters that themselves allocate).
//!
//! With the feature disabled every type here still exists —
//! [`AllocDelta`] stays a real struct so report plumbing needs no
//! `cfg` — but the probes are unit structs, every counter reads zero,
//! and the program keeps the plain system allocator.
//!
//! The counters are `Cell`s in a `thread_local!`, not atomics: the hot
//! path (every allocation in the program) pays two thread-local reads
//! and writes, no synchronization, and the `ablation_alloc` bench group
//! in `tsdtw-bench` pins the armed overhead on the windowed-DTW hot
//! path below 5%. Allocator hooks use `try_with`, so allocations during
//! thread-local teardown are simply not counted instead of aborting.

use crate::json::Json;

/// Whether the counting allocator is compiled in.
pub const fn heap_telemetry_enabled() -> bool {
    cfg!(feature = "alloc-telemetry")
}

/// What one [`AllocScope`] observed: the current thread's heap traffic
/// between `begin` and `end`.
///
/// `peak_bytes` is the high-water mark of live bytes *above the
/// scope's entry level* — 0 when the scope allocated nothing (or freed
/// more than it allocated before ever rising). All other fields are
/// plain event counts and byte totals. Realloc calls count once in
/// `reallocs` and once in `realloc_grows`/`realloc_shrinks`; only the
/// *size delta* lands in `bytes_allocated`/`bytes_freed`, so
/// `net_bytes` tracks live memory exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// `alloc`/`alloc_zeroed` calls.
    pub allocs: u64,
    /// `dealloc` calls.
    pub frees: u64,
    /// `realloc` calls (grow + shrink).
    pub reallocs: u64,
    /// Reallocs to a larger size.
    pub realloc_grows: u64,
    /// Reallocs to a smaller size.
    pub realloc_shrinks: u64,
    /// Bytes obtained from the allocator (incl. realloc growth deltas).
    pub bytes_allocated: u64,
    /// Bytes returned to the allocator (incl. realloc shrink deltas).
    pub bytes_freed: u64,
    /// High-water mark of live bytes above the scope's entry level.
    pub peak_bytes: u64,
}

impl AllocDelta {
    /// Live-byte change across the scope; negative when the scope freed
    /// more than it allocated.
    pub fn net_bytes(&self) -> i64 {
        self.bytes_allocated as i64 - self.bytes_freed as i64
    }

    /// `true` when the scope saw no allocator traffic at all — the
    /// "zero steady-state allocation" contract of `alloc_discipline`.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Sequential composition: folds `next` into `self` as if `next`'s
    /// region ran immediately after `self`'s on the same thread.
    ///
    /// Counts and byte totals add. The composed peak is
    /// `max(self.peak, self.net + next.peak)` (clamped at 0): either
    /// the first region's high-water stands, or the second region
    /// pushed past it starting from the first region's settling level.
    /// The parallel executor composes per-item deltas in item-index
    /// order with exactly this rule, which is why merged counters are
    /// thread-count-invariant.
    pub fn merge(&mut self, next: &AllocDelta) {
        let composed = self
            .net_bytes()
            .saturating_add(next.peak_bytes as i64)
            .max(0) as u64;
        self.peak_bytes = self.peak_bytes.max(composed);
        self.allocs += next.allocs;
        self.frees += next.frees;
        self.reallocs += next.reallocs;
        self.realloc_grows += next.realloc_grows;
        self.realloc_shrinks += next.realloc_shrinks;
        self.bytes_allocated += next.bytes_allocated;
        self.bytes_freed += next.bytes_freed;
    }

    /// The `memory` section emitted into snapshots and `--stats-json`:
    /// event counts first (hard-gated by `report diff`), byte totals
    /// after (advisory — they move with allocator and libstd versions).
    pub fn report(&self) -> Json {
        crate::json_obj! {
            "telemetry" => heap_telemetry_enabled(),
            "allocs" => self.allocs,
            "frees" => self.frees,
            "reallocs" => self.reallocs,
            "realloc_grows" => self.realloc_grows,
            "realloc_shrinks" => self.realloc_shrinks,
            "bytes_allocated" => self.bytes_allocated,
            "bytes_freed" => self.bytes_freed,
            "net_bytes" => self.net_bytes(),
            "peak_bytes" => self.peak_bytes,
        }
    }

    /// One-line human rendering for `--stats` output.
    pub fn summary(&self) -> String {
        format!(
            "memory: {} allocs / {} frees / {} reallocs ({} grow, {} shrink), \
             {} B allocated, {} B freed, peak {} B above entry",
            self.allocs,
            self.frees,
            self.reallocs,
            self.realloc_grows,
            self.realloc_shrinks,
            self.bytes_allocated,
            self.bytes_freed,
            self.peak_bytes
        )
    }
}

crate::impl_to_json!(AllocDelta {
    allocs,
    frees,
    reallocs,
    realloc_grows,
    realloc_shrinks,
    bytes_allocated,
    bytes_freed,
    peak_bytes
});

/// The armed implementation: the counting `#[global_allocator]` and the
/// thread-local counter cell. The crate denies `unsafe_code`; this
/// module is the one sanctioned carve-out, because `GlobalAlloc` is an
/// unsafe trait — every hook forwards verbatim to [`std::alloc::System`]
/// and only *observes* sizes, never changes what the caller gets back.
#[cfg(feature = "alloc-telemetry")]
#[allow(unsafe_code)]
mod armed {
    use super::AllocDelta;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    /// The raw thread-local counter block. `Copy` so the whole state
    /// snapshots with one `Cell::get`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(super) struct Counters {
        pub allocs: u64,
        pub frees: u64,
        pub reallocs: u64,
        pub realloc_grows: u64,
        pub realloc_shrinks: u64,
        pub bytes_allocated: u64,
        pub bytes_freed: u64,
        pub live_bytes: u64,
        pub peak_live_bytes: u64,
    }

    impl Counters {
        pub(super) const ZERO: Counters = Counters {
            allocs: 0,
            frees: 0,
            reallocs: 0,
            realloc_grows: 0,
            realloc_shrinks: 0,
            bytes_allocated: 0,
            bytes_freed: 0,
            live_bytes: 0,
            peak_live_bytes: 0,
        };
    }

    thread_local! {
        static TL: Cell<Counters> = const { Cell::new(Counters::ZERO) };
    }

    #[inline]
    pub(super) fn tl_get() -> Counters {
        TL.try_with(Cell::get).unwrap_or(Counters::ZERO)
    }

    #[inline]
    pub(super) fn tl_set(c: Counters) {
        let _ = TL.try_with(|t| t.set(c));
    }

    #[inline]
    fn on_alloc(bytes: u64) {
        let _ = TL.try_with(|t| {
            let mut c = t.get();
            c.allocs += 1;
            c.bytes_allocated += bytes;
            c.live_bytes += bytes;
            c.peak_live_bytes = c.peak_live_bytes.max(c.live_bytes);
            t.set(c);
        });
    }

    #[inline]
    fn on_free(bytes: u64) {
        let _ = TL.try_with(|t| {
            let mut c = t.get();
            c.frees += 1;
            c.bytes_freed += bytes;
            c.live_bytes = c.live_bytes.saturating_sub(bytes);
            t.set(c);
        });
    }

    #[inline]
    fn on_realloc(old: u64, new: u64) {
        let _ = TL.try_with(|t| {
            let mut c = t.get();
            c.reallocs += 1;
            if new > old {
                c.realloc_grows += 1;
                c.bytes_allocated += new - old;
                c.live_bytes += new - old;
                c.peak_live_bytes = c.peak_live_bytes.max(c.live_bytes);
            } else if new < old {
                c.realloc_shrinks += 1;
                c.bytes_freed += old - new;
                c.live_bytes = c.live_bytes.saturating_sub(old - new);
            }
            t.set(c);
        });
    }

    /// [`System`] with per-thread counting. Observation only: pointers
    /// and layouts pass through untouched, and a returned null is never
    /// counted (the caller got nothing).
    pub(super) struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_free(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_realloc(layout.size() as u64, new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;

    /// Delta between a later counter snapshot and an earlier one.
    pub(super) fn delta_since(start: &Counters, cur: &Counters) -> AllocDelta {
        AllocDelta {
            allocs: cur.allocs - start.allocs,
            frees: cur.frees - start.frees,
            reallocs: cur.reallocs - start.reallocs,
            realloc_grows: cur.realloc_grows - start.realloc_grows,
            realloc_shrinks: cur.realloc_shrinks - start.realloc_shrinks,
            bytes_allocated: cur.bytes_allocated - start.bytes_allocated,
            bytes_freed: cur.bytes_freed - start.bytes_freed,
            peak_bytes: cur.peak_live_bytes.saturating_sub(start.live_bytes),
        }
    }
}

#[cfg(feature = "alloc-telemetry")]
mod scope_armed {
    use super::armed::{delta_since, tl_get, tl_set, Counters};
    use super::AllocDelta;
    use std::marker::PhantomData;

    /// RAII heap probe; see the module docs. `!Send`: the delta is read
    /// from the thread that opened the scope.
    #[must_use = "an AllocScope measures the region holding it; call end()"]
    pub struct AllocScope {
        start: Counters,
        ended: bool,
        _not_send: PhantomData<*const ()>,
    }

    impl AllocScope {
        /// Opens a scope: snapshots this thread's counters and resets
        /// the peak-live watermark to the current live level, so the
        /// scope's `peak_bytes` measures only its own high water.
        pub fn begin() -> AllocScope {
            let start = tl_get();
            let mut c = start;
            c.peak_live_bytes = c.live_bytes;
            tl_set(c);
            AllocScope {
                start,
                ended: false,
                _not_send: PhantomData,
            }
        }

        /// Closes the scope, restoring the outer watermark (the outer
        /// scope's peak is the max of its saved watermark and anything
        /// this scope reached), and yields the measured delta.
        pub fn end(mut self) -> AllocDelta {
            let cur = tl_get();
            let delta = delta_since(&self.start, &cur);
            let mut c = cur;
            c.peak_live_bytes = cur.peak_live_bytes.max(self.start.peak_live_bytes);
            tl_set(c);
            self.ended = true;
            delta
        }

        pub(super) fn start_counters(&self) -> Counters {
            self.start
        }

        pub(super) fn defuse(&mut self) {
            self.ended = true;
        }
    }

    impl Drop for AllocScope {
        fn drop(&mut self) {
            if !self.ended {
                // A scope dropped without `end` (an early return, a
                // panic unwinding through) must still restore the outer
                // watermark, or the enclosing scope would under-report
                // any peak it hit before this scope opened.
                let mut c = tl_get();
                c.peak_live_bytes = c.peak_live_bytes.max(self.start.peak_live_bytes);
                tl_set(c);
            }
        }
    }

    /// Credits a delta measured elsewhere (a worker thread's
    /// [`AllocScope`]) to this thread's counters, exactly as if the
    /// measured work had run here sequentially: counts and byte totals
    /// add, the peak watermark rises to `live + delta.peak` if that is
    /// a new high, and live settles at `live + delta.net`.
    pub fn absorb_alloc_delta(d: &AllocDelta) {
        let mut c = tl_get();
        c.allocs += d.allocs;
        c.frees += d.frees;
        c.reallocs += d.reallocs;
        c.realloc_grows += d.realloc_grows;
        c.realloc_shrinks += d.realloc_shrinks;
        c.bytes_allocated += d.bytes_allocated;
        c.bytes_freed += d.bytes_freed;
        c.peak_live_bytes = c.peak_live_bytes.max(c.live_bytes + d.peak_bytes);
        c.live_bytes = (c.live_bytes as i64 + d.net_bytes()).max(0) as u64;
        tl_set(c);
    }

    /// Live bytes currently attributed to this thread (allocated here
    /// or credited via [`absorb_alloc_delta`], minus frees). Feeds the
    /// flight recorder's heap counter track.
    pub fn current_live_bytes() -> u64 {
        tl_get().live_bytes
    }

    /// The parallel executor's accounting region; see the module docs.
    ///
    /// Between `begin` and `finish` the executor runs its machinery and
    /// credits per-item deltas in item-index order. `finish` rewrites
    /// the thread's counters to exactly `state-at-begin` composed with
    /// the credited deltas, so the account is independent of how the
    /// machinery scheduled the work. Dropping the region without
    /// `finish` (an executor error path) keeps the raw counters —
    /// over-counted by machinery but never losing credited work.
    #[must_use = "an AllocRegion left unfinished keeps machinery allocations in the account"]
    pub struct AllocRegion {
        scope: AllocScope,
        credited: AllocDelta,
    }

    impl AllocRegion {
        /// Opens the accounting region on the calling thread.
        pub fn begin() -> AllocRegion {
            AllocRegion {
                scope: AllocScope::begin(),
                credited: AllocDelta::default(),
            }
        }

        /// Credits one item's measured delta, in item-index order:
        /// applies it to the thread counters ([`absorb_alloc_delta`])
        /// and folds it into the region's serial composition.
        pub fn credit(&mut self, d: &AllocDelta) {
            absorb_alloc_delta(d);
            self.credited.merge(d);
        }

        /// Closes the region: the thread's counters become exactly the
        /// state at `begin` composed with the credited deltas — the
        /// machinery's own traffic (and the double-count from crediting
        /// on top of natively-counted serial work) is erased.
        pub fn finish(mut self) {
            let start = self.scope.start_counters();
            let credited = self.credited;
            self.scope.defuse();
            let mut c = tl_get();
            c.allocs = start.allocs + credited.allocs;
            c.frees = start.frees + credited.frees;
            c.reallocs = start.reallocs + credited.reallocs;
            c.realloc_grows = start.realloc_grows + credited.realloc_grows;
            c.realloc_shrinks = start.realloc_shrinks + credited.realloc_shrinks;
            c.bytes_allocated = start.bytes_allocated + credited.bytes_allocated;
            c.bytes_freed = start.bytes_freed + credited.bytes_freed;
            c.peak_live_bytes = start
                .peak_live_bytes
                .max(start.live_bytes + credited.peak_bytes);
            c.live_bytes = (start.live_bytes as i64 + credited.net_bytes()).max(0) as u64;
            tl_set(c);
        }
    }
}

#[cfg(feature = "alloc-telemetry")]
pub use scope_armed::{absorb_alloc_delta, current_live_bytes, AllocRegion, AllocScope};

#[cfg(not(feature = "alloc-telemetry"))]
mod scope_disarmed {
    use super::AllocDelta;

    /// Unit-sized probe; with `alloc-telemetry` off the scope measures
    /// nothing and the program keeps the plain system allocator.
    #[must_use = "an AllocScope measures the region holding it; call end()"]
    pub struct AllocScope;

    impl AllocScope {
        /// Disabled: returns the unit probe.
        #[inline(always)]
        pub fn begin() -> AllocScope {
            AllocScope
        }

        /// Disabled: always the zero delta.
        #[inline(always)]
        pub fn end(self) -> AllocDelta {
            AllocDelta::default()
        }
    }

    /// Disabled: a no-op.
    #[inline(always)]
    pub fn absorb_alloc_delta(_d: &AllocDelta) {}

    /// Disabled: always 0.
    #[inline(always)]
    pub fn current_live_bytes() -> u64 {
        0
    }

    /// Unit-sized stand-in for the executor's accounting region.
    #[must_use = "an AllocRegion left unfinished keeps machinery allocations in the account"]
    pub struct AllocRegion;

    impl AllocRegion {
        /// Disabled: returns the unit stand-in.
        #[inline(always)]
        pub fn begin() -> AllocRegion {
            AllocRegion
        }

        /// Disabled: a no-op.
        #[inline(always)]
        pub fn credit(&mut self, _d: &AllocDelta) {}

        /// Disabled: a no-op.
        #[inline(always)]
        pub fn finish(self) {}
    }
}

#[cfg(not(feature = "alloc-telemetry"))]
pub use scope_disarmed::{absorb_alloc_delta, current_live_bytes, AllocRegion, AllocScope};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_default_is_zero_and_net_signs_work() {
        let d = AllocDelta::default();
        assert!(d.is_zero());
        assert_eq!(d.net_bytes(), 0);
        let d = AllocDelta {
            bytes_allocated: 10,
            bytes_freed: 25,
            ..Default::default()
        };
        assert_eq!(d.net_bytes(), -15);
        assert!(!d.is_zero());
    }

    #[test]
    fn merge_is_sequential_composition() {
        // Region A: allocates 100, frees 40 (net +60), peaked at 100.
        let a = AllocDelta {
            allocs: 2,
            frees: 1,
            bytes_allocated: 100,
            bytes_freed: 40,
            peak_bytes: 100,
            ..Default::default()
        };
        // Region B: allocates 10, peaked at 10 above its own entry.
        let b = AllocDelta {
            allocs: 1,
            bytes_allocated: 10,
            peak_bytes: 10,
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.allocs, 3);
        assert_eq!(ab.frees, 1);
        assert_eq!(ab.bytes_allocated, 110);
        assert_eq!(ab.bytes_freed, 40);
        // B entered at +60 and rose 10 more: 70 < A's own peak of 100.
        assert_eq!(ab.peak_bytes, 100);

        // A taller second region overtakes the first peak.
        let tall = AllocDelta {
            allocs: 1,
            bytes_allocated: 80,
            peak_bytes: 80,
            ..Default::default()
        };
        let mut at = a;
        at.merge(&tall);
        assert_eq!(at.peak_bytes, 140, "60 net + 80 peak");
    }

    #[test]
    fn merge_peak_clamps_below_entry_level() {
        // First region net-frees 50; the next peak is measured from the
        // settled (negative) level and must clamp at 0, never wrap.
        let a = AllocDelta {
            frees: 1,
            bytes_freed: 50,
            ..Default::default()
        };
        let b = AllocDelta {
            allocs: 1,
            bytes_allocated: 20,
            peak_bytes: 20,
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.peak_bytes, 0, "-50 + 20 stays below entry level");
    }

    #[test]
    fn merge_matches_one_flat_scope() {
        // Composing the per-phase deltas of a run must equal measuring
        // the whole run in one scope. Simulated phases:
        //   p1: +100 (peak 100), p2: -100, p3: +30 (peak 30)
        let p1 = AllocDelta {
            allocs: 1,
            bytes_allocated: 100,
            peak_bytes: 100,
            ..Default::default()
        };
        let p2 = AllocDelta {
            frees: 1,
            bytes_freed: 100,
            ..Default::default()
        };
        let p3 = AllocDelta {
            allocs: 1,
            bytes_allocated: 30,
            peak_bytes: 30,
            ..Default::default()
        };
        let mut composed = p1;
        composed.merge(&p2);
        composed.merge(&p3);
        let flat = AllocDelta {
            allocs: 2,
            frees: 1,
            bytes_allocated: 130,
            bytes_freed: 100,
            peak_bytes: 100, // the run's true high water was p1's
            ..Default::default()
        };
        assert_eq!(composed, flat);
    }

    #[test]
    fn merge_is_associative() {
        let ds = [
            AllocDelta {
                allocs: 3,
                bytes_allocated: 64,
                peak_bytes: 64,
                ..Default::default()
            },
            AllocDelta {
                frees: 2,
                bytes_freed: 48,
                ..Default::default()
            },
            AllocDelta {
                allocs: 1,
                reallocs: 1,
                realloc_grows: 1,
                bytes_allocated: 72,
                peak_bytes: 40,
                ..Default::default()
            },
        ];
        let mut left = ds[0];
        left.merge(&ds[1]);
        left.merge(&ds[2]);
        let mut bc = ds[1];
        bc.merge(&ds[2]);
        let mut right = ds[0];
        right.merge(&bc);
        assert_eq!(left, right);
        // Identity element.
        let mut with_zero = ds[0];
        with_zero.merge(&AllocDelta::default());
        assert_eq!(with_zero, ds[0]);
    }

    #[test]
    fn report_leads_with_counts_and_flags_telemetry() {
        let d = AllocDelta {
            allocs: 4,
            frees: 2,
            bytes_allocated: 256,
            bytes_freed: 128,
            peak_bytes: 200,
            ..Default::default()
        };
        let j = d.report();
        assert_eq!(j["telemetry"], heap_telemetry_enabled());
        assert_eq!(j["allocs"], 4u64);
        assert_eq!(j["net_bytes"], 128i64);
        assert_eq!(j["peak_bytes"], 200u64);
        assert!(d.summary().contains("4 allocs"), "{}", d.summary());
    }

    #[cfg(not(feature = "alloc-telemetry"))]
    #[test]
    fn disarmed_probes_read_zero() {
        assert!(!heap_telemetry_enabled());
        let s = AllocScope::begin();
        let _v: Vec<u8> = Vec::with_capacity(4096);
        assert!(s.end().is_zero());
        assert_eq!(current_live_bytes(), 0);
        let mut r = AllocRegion::begin();
        r.credit(&AllocDelta {
            allocs: 1,
            ..Default::default()
        });
        r.finish();
        assert_eq!(current_live_bytes(), 0);
    }

    #[cfg(feature = "alloc-telemetry")]
    mod armed_probes {
        use super::super::*;

        #[test]
        fn scope_sees_a_vec_allocation() {
            let s = AllocScope::begin();
            let v: Vec<u8> = Vec::with_capacity(4096);
            let held = AllocScope::begin();
            drop(v);
            let freed = held.end();
            let d = s.end();
            assert_eq!(d.allocs, 1);
            assert_eq!(d.frees, 1);
            assert_eq!(d.bytes_allocated, 4096);
            assert_eq!(d.bytes_freed, 4096);
            assert_eq!(d.net_bytes(), 0);
            assert_eq!(d.peak_bytes, 4096);
            // The inner scope opened after the alloc: it saw only the free.
            assert_eq!(freed.allocs, 0);
            assert_eq!(freed.frees, 1);
            assert_eq!(freed.peak_bytes, 0);
        }

        #[test]
        fn nested_scope_peaks_do_not_leak_outward_or_inward() {
            let outer = AllocScope::begin();
            let big: Vec<u8> = Vec::with_capacity(10_000);
            drop(big); // outer peak: 10_000, live back to entry level
            let inner = AllocScope::begin();
            let small: Vec<u8> = Vec::with_capacity(100);
            drop(small);
            let di = inner.end();
            assert_eq!(di.peak_bytes, 100, "inner must not see the outer spike");
            let d = outer.end();
            assert_eq!(
                d.peak_bytes, 10_000,
                "outer keeps its own high water across the nested scope"
            );
        }

        #[test]
        fn dropped_scope_still_restores_the_outer_watermark() {
            let outer = AllocScope::begin();
            let spike: Vec<u8> = Vec::with_capacity(5_000);
            drop(spike);
            {
                let _abandoned = AllocScope::begin(); // dropped, not ended
                let v: Vec<u8> = Vec::with_capacity(10);
                drop(v);
            }
            let d = outer.end();
            assert_eq!(d.peak_bytes, 5_000);
        }

        #[test]
        // The with_capacity + resize split is the point: the test needs
        // exactly one plain `alloc` (not `alloc_zeroed`, which `vec![0; n]`
        // would route through) so the counter arithmetic below is exact.
        #[allow(clippy::slow_vector_initialization)]
        fn realloc_grow_and_shrink_account_deltas() {
            let s = AllocScope::begin();
            let mut v: Vec<u8> = Vec::with_capacity(64);
            v.resize(64, 0);
            v.reserve_exact(64); // grow 64 -> >=128
            let grown = v.capacity() as u64;
            v.truncate(16);
            v.shrink_to_fit(); // shrink to 16
            let d = s.end();
            drop(v);
            assert_eq!(d.allocs, 1);
            assert_eq!(d.reallocs, d.realloc_grows + d.realloc_shrinks);
            assert!(d.realloc_grows >= 1, "{d:?}");
            assert!(d.realloc_shrinks >= 1, "{d:?}");
            // Deltas, not full sizes: allocated = 64 + (grown - 64),
            // freed = grown - 16; net = live 16 bytes.
            assert_eq!(d.bytes_allocated, grown);
            assert_eq!(d.bytes_freed, grown - 16);
            assert_eq!(d.net_bytes(), 16);
            assert_eq!(d.peak_bytes, grown);
        }

        #[test]
        fn absorb_counts_as_if_run_here() {
            let outer = AllocScope::begin();
            let base_live = current_live_bytes();
            let d = AllocDelta {
                allocs: 2,
                frees: 1,
                bytes_allocated: 300,
                bytes_freed: 100,
                peak_bytes: 250,
                ..Default::default()
            };
            absorb_alloc_delta(&d);
            assert_eq!(current_live_bytes(), base_live + 200);
            let seen = outer.end();
            assert_eq!(seen.allocs, 2);
            assert_eq!(seen.frees, 1);
            assert_eq!(seen.peak_bytes, 250);
            // Put the books back for other tests on this thread.
            absorb_alloc_delta(&AllocDelta {
                frees: 1,
                bytes_freed: 200,
                ..Default::default()
            });
        }

        #[test]
        fn region_erases_machinery_and_keeps_credits() {
            let observer = AllocScope::begin();
            let mut region = AllocRegion::begin();
            // "Machinery": allocations the executor makes that must not
            // land in the account.
            let machinery: Vec<u8> = Vec::with_capacity(7777);
            drop(machinery);
            // Two "items", measured the way workers measure them.
            for _ in 0..2 {
                let item = AllocScope::begin();
                let v: Vec<u8> = Vec::with_capacity(50);
                drop(v);
                let d = item.end();
                region.credit(&d);
            }
            region.finish();
            let seen = observer.end();
            assert_eq!(seen.allocs, 2, "{seen:?}");
            assert_eq!(seen.frees, 2);
            assert_eq!(seen.bytes_allocated, 100);
            assert_eq!(seen.bytes_freed, 100);
            assert_eq!(seen.peak_bytes, 50, "items compose serially: max, not sum");
        }

        #[test]
        fn region_credits_compose_in_index_order_like_serial() {
            // Credit order is the executor's index order; the composed
            // peak must equal the serial back-to-back execution.
            let d1 = AllocDelta {
                allocs: 1,
                bytes_allocated: 400,
                peak_bytes: 400,
                ..Default::default()
            }; // leaves 400 live
            let d2 = AllocDelta {
                allocs: 1,
                frees: 1,
                bytes_allocated: 100,
                bytes_freed: 500,
                peak_bytes: 500,
                ..Default::default()
            }; // rises to 400+500 = 900 equivalent? no: peak relative 500
            let observer = AllocScope::begin();
            let mut region = AllocRegion::begin();
            region.credit(&d1);
            region.credit(&d2);
            region.finish();
            let seen = observer.end();
            let mut serial = d1;
            serial.merge(&d2);
            assert_eq!(seen, serial);
            assert_eq!(seen.peak_bytes, 900);
            // Books back: the two credits net to 0 live bytes already.
            assert_eq!(seen.net_bytes(), 0);
        }
    }
}
