//! Work accounting and tracing for the tsdtw stack.
//!
//! The paper's core claim ("FastDTW is generally slower than cDTW")
//! is ultimately an argument about *work*: how many dynamic-programming
//! cells each algorithm touches as a function of series length and
//! constraint radius. This crate provides the instrumentation used to
//! measure that work everywhere in the workspace without perturbing it:
//!
//! * [`Meter`] — a monomorphized counter sink. Kernels are generic over
//!   `M: Meter`; the default [`NoMeter`] has `#[inline]` empty methods,
//!   so the un-instrumented call path compiles to exactly the code it
//!   had before instrumentation (verified by the `meter_ablation`
//!   criterion group in `tsdtw-bench`). [`WorkMeter`] records
//!   everything: DP cells evaluated, admissible window cells, FastDTW
//!   per-level breakdowns, lower-bound invocations, prune-cascade
//!   dispositions, early-abandon row progress, and peak scratch bytes.
//! * [`Json`] / [`ToJson`] — a small ordered JSON value used for bench
//!   `Report`s, the repro `work` sections, and the CLI `--stats-json`
//!   dump. Insertion order is preserved so reports diff cleanly.
//! * [`span`] — feature-gated timing probes (`--features spans`).
//!   Disabled, a span is a unit struct and the probe vanishes; enabled,
//!   per-label call counts and wall time accumulate in a thread-local
//!   table drained by [`take_spans`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod json;
mod meter;
mod span;

pub use json::{Json, ToJson};
pub use meter::{FastDtwLevel, LbKind, Meter, NoMeter, StageTag, WorkMeter};
pub use span::{span, spans_enabled, take_spans, SpanGuard, SpanStat};
