//! Work accounting and tracing for the tsdtw stack.
//!
//! The paper's core claim ("FastDTW is generally slower than cDTW")
//! is ultimately an argument about *work*: how many dynamic-programming
//! cells each algorithm touches as a function of series length and
//! constraint radius. This crate provides the instrumentation used to
//! measure that work everywhere in the workspace without perturbing it:
//!
//! * [`Meter`] — a monomorphized counter sink. Kernels are generic over
//!   `M: Meter`; the default [`NoMeter`] has `#[inline]` empty methods,
//!   so the un-instrumented call path compiles to exactly the code it
//!   had before instrumentation (verified by the `meter_ablation`
//!   criterion group in `tsdtw-bench`). [`WorkMeter`] records
//!   everything: DP cells evaluated, admissible window cells, FastDTW
//!   per-level breakdowns, lower-bound invocations, prune-cascade
//!   dispositions, early-abandon row progress, and peak scratch bytes.
//! * [`Json`] / [`ToJson`] — a small ordered JSON value used for bench
//!   `Report`s, the repro `work` sections, and the CLI `--stats-json`
//!   dump. Insertion order is preserved so reports diff cleanly.
//!   [`Json::parse`] reads documents back in for the perf-trajectory
//!   diff tooling.
//! * [`span`] — feature-gated timing probes (`--features spans`).
//!   Disabled, a span is a unit struct and the probe vanishes; enabled,
//!   per-label call counts, wall time, and a latency histogram
//!   accumulate in a thread-local table drained by [`take_spans`].
//! * [`recorder_start`] / [`recorder_stop`] — the flight recorder: a
//!   fixed-capacity ring of structured begin/end span events with
//!   nesting intact, exportable as a Chrome Trace Format file
//!   ([`Trace::chrome_json`], openable in Perfetto) or a compact
//!   per-span summary table.
//! * [`Profiler`] / [`ProfileReport`](mod@profile) — the wall-clock
//!   sampling profiler (`profile` module): every metered thread
//!   publishes its live span stack into a per-thread slot; a sampler
//!   thread folds the stacks at a configurable rate (default 997 Hz)
//!   into `flamegraph.pl`-compatible collapsed stacks, per-span
//!   self-vs-total attribution, and the advisory snapshot `profile`
//!   section that drift attribution ranks suspects from.
//! * [`Funnel`] — the per-stage prune-funnel ledger behind the CLI's
//!   `--explain` flag and the `funnel` bench experiment: candidates
//!   entered / pruned / survived per cascade stage, deterministic
//!   cost proxies, and `LB/true-DTW` bound-tightness histograms, all
//!   merging with the same thread-count-invariant shard algebra as
//!   [`WorkMeter`] (whose `funnel` field carries it).
//! * [`LatencyHist`] — the log-linear (HDR-style) histogram behind
//!   every latency quantile in the workspace, with the nearest-rank
//!   percentile convention pinned by [`nearest_rank`].
//! * [`alloc`](mod@alloc) — heap telemetry (`--features
//!   alloc-telemetry`): a counting `#[global_allocator]` wrapper with
//!   thread-local byte/count/peak counters, the [`AllocScope`] probe
//!   that snapshots per-region [`AllocDelta`]s, and the
//!   [`AllocRegion`] helper the parallel executor uses to keep heap
//!   counters thread-count-invariant. Disabled, the probes are unit
//!   structs and the program keeps the plain system allocator.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc;
pub mod funnel;
mod hist;
mod json;
mod meter;
pub mod metrics;
pub mod profile;
mod recorder;
mod span;

pub use alloc::{
    absorb_alloc_delta, current_live_bytes, heap_telemetry_enabled, AllocDelta, AllocRegion,
    AllocScope,
};
pub use funnel::{tightness_ppb, Funnel, FunnelStage, StageLedger, TIGHTNESS_ONE_PPB};
pub use hist::{nearest_rank, LatencyHist};
pub use json::{json_escape, json_escape_into, Json, JsonParseError, ToJson};
pub use meter::{FastDtwLevel, LbKind, Meter, MeterShard, NoMeter, StageTag, WorkMeter};
pub use metrics::{MetricsRegistry, MetricsSampler};
pub use profile::{ProfileReport, Profiler, SpanProfile, DEFAULT_SAMPLE_HZ};
pub use recorder::{
    recorder_absorb, recorder_active, recorder_counter_samples, recorder_handoff, recorder_start,
    recorder_start_shard, recorder_stop, CounterSample, Recorder, RecorderHandoff, Trace,
    TraceEvent, TracePhase, TraceSummaryRow, DEFAULT_TRACE_CAPACITY,
};
pub use span::{
    absorb_raw_spans, drain_raw_spans, span, spans_enabled, take_spans, RawSpans, SpanGuard,
    SpanStat,
};
