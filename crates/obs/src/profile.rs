//! Wall-clock sampling profiler over the span live stacks.
//!
//! The aggregate span table (`span.rs`) answers *how long* each labelled
//! region took in total; the flight recorder answers *when* each guard
//! opened and closed, but only for one bounded trace. Neither answers
//! the question a perf-gate investigation starts with: *where is the
//! time concentrated right now, as a fraction of the whole run?* This
//! module adds the third leg: a zero-dependency sampling profiler.
//!
//! ## How it works
//!
//! Every metered thread publishes its **live span stack** — the labels
//! of the currently open [`span`](crate::span) guards, outermost first —
//! into a per-thread slot (a `Mutex<Vec<&'static str>>` registered in a
//! process-wide slot registry). The publishing hook piggybacks on the
//! same begin/end events that feed the flight recorder, so arming the
//! profiler requires no changes at call sites and no new probes.
//!
//! A dedicated sampler thread, started by [`Profiler::start`], wakes at
//! a configurable rate (default [`DEFAULT_SAMPLE_HZ`]), walks every
//! registered slot, and folds each non-empty stack into a
//! `root;child;leaf -> count` table — the *collapsed stack* format that
//! `flamegraph.pl` and `inferno` consume directly. [`Profiler::stop`]
//! joins the thread and returns a [`ProfileReport`].
//!
//! ## The live-stack contract
//!
//! * Pushes happen only while the profiler is **armed** (a relaxed
//!   atomic load is the entire disarmed cost), so a disarmed build pays
//!   nothing measurable on the span hot path.
//! * Each [`SpanGuard`](crate::SpanGuard) remembers whether *it* pushed
//!   and pops only its own frame, so arming or disarming mid-span never
//!   unbalances a stack — at worst the first samples after arming are
//!   missing already-open ancestor frames.
//! * Guards pop during unwinding too (`Drop` runs on panic), and a
//!   thread's slot is cleared and deregistered when the thread exits,
//!   so a worker panic cannot leave a stale stack that poisons later
//!   samples. All slot and registry locks recover from poisoning.
//!
//! ## Why profile data is advisory-only
//!
//! Sample counts are a function of scheduler timing, sampling phase,
//! and machine load — two identical runs produce different counts. The
//! snapshot `profile` section therefore rides along like `wall_s` and
//! `kernels`: diffed for visibility, surfaced by drift attribution,
//! never part of a hard gate, and deliberately excluded from the trend
//! detector's counter walk. The deterministic sections (`work`,
//! `funnel`, `rle`, `tiers`) are byte-identical with the profiler armed
//! or disarmed; a test pins that.

use crate::{json_obj, Json};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Default sampler rate, in samples per second. Prime on purpose: a
/// non-round period cannot phase-lock with millisecond-granular work
/// loops, which would over- or under-count spans whose duration is a
/// multiple of the sampling period.
pub const DEFAULT_SAMPLE_HZ: f64 = 997.0;

/// Whether a sampler is currently collecting. Relaxed is enough: a
/// push missed around the arming edge only costs one sample's frames,
/// and the guard-local `profiled` flag keeps pops balanced regardless.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Locks a mutex, recovering the data from a poisoned lock. Every lock
/// in this module is poison-tolerant by design: a panic on a metered
/// thread must not take the profiler (or later samples) down with it.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One thread's published live stack.
struct Slot {
    stack: Mutex<Vec<&'static str>>,
}

fn registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Thread-local handle that registers this thread's slot on first use
/// and — crucially — clears and deregisters it when the thread exits,
/// so dead threads never contribute stale frames to later samples.
struct LocalSlot {
    slot: Arc<Slot>,
}

impl LocalSlot {
    fn new() -> LocalSlot {
        let slot = Arc::new(Slot {
            stack: Mutex::new(Vec::new()),
        });
        relock(registry()).push(Arc::clone(&slot));
        LocalSlot { slot }
    }
}

impl Drop for LocalSlot {
    fn drop(&mut self) {
        // Clear first (own lock only), then deregister (registry lock
        // only) — never both at once, so the sampler's registry->slot
        // lock order cannot deadlock against thread teardown.
        relock(&self.slot.stack).clear();
        let mut reg = relock(registry());
        if let Some(i) = reg.iter().position(|s| Arc::ptr_eq(s, &self.slot)) {
            reg.swap_remove(i);
        }
    }
}

thread_local! {
    static LOCAL: LocalSlot = LocalSlot::new();
}

/// Publishes `label` onto this thread's live stack. Returns whether a
/// frame was actually pushed; the caller (the span guard) must pop iff
/// this returned `true`. No-op (and `false`) when no sampler is armed
/// or the thread is already tearing down its locals.
#[cfg_attr(not(feature = "spans"), allow(dead_code))] // hooked from span.rs's enabled path
pub(crate) fn live_push(label: &'static str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    LOCAL
        .try_with(|l| relock(&l.slot.stack).push(label))
        .is_ok()
}

/// Pops the frame a prior successful [`live_push`] published. Tolerates
/// thread teardown (the slot is already gone) and an externally cleared
/// stack (the pop saturates at empty).
#[cfg_attr(not(feature = "spans"), allow(dead_code))] // hooked from span.rs's enabled path
pub(crate) fn live_pop() {
    let _ = LOCAL.try_with(|l| {
        relock(&l.slot.stack).pop();
    });
}

/// Snapshot of every registered thread's live stack, outermost label
/// first, in registration order. Diagnostic aid for tests asserting the
/// panic-safety contract (no stale frames after a worker unwinds); not
/// meant for steady-state use — the sampler reads the slots directly.
pub fn live_snapshot() -> Vec<Vec<&'static str>> {
    relock(registry())
        .iter()
        .map(|s| relock(&s.stack).clone())
        .collect()
}

/// Walks every slot once, folding non-empty stacks into `folded`.
fn sample_once(ticks: &mut u64, folded: &mut HashMap<String, u64>) {
    *ticks += 1;
    let reg = relock(registry());
    for slot in reg.iter() {
        let stack = relock(&slot.stack);
        if stack.is_empty() {
            continue;
        }
        let key = stack.join(";");
        drop(stack);
        *folded.entry(key).or_insert(0) += 1;
    }
}

/// A running sampling profiler. Construct with [`Profiler::start`];
/// [`Profiler::stop`] consumes it and returns the collected
/// [`ProfileReport`]. One profiler at a time: arming is process-wide.
#[must_use = "a profiler collects nothing unless stopped for its report"]
pub struct Profiler {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: std::thread::JoinHandle<(u64, HashMap<String, u64>)>,
    rate_hz: f64,
    started: Instant,
}

impl Profiler {
    /// Arms the live-stack hooks and spawns the sampler thread at
    /// `rate_hz` samples per second (non-finite or non-positive rates
    /// fall back to [`DEFAULT_SAMPLE_HZ`]).
    pub fn start(rate_hz: f64) -> Profiler {
        let rate = if rate_hz.is_finite() && rate_hz > 0.0 {
            rate_hz
        } else {
            DEFAULT_SAMPLE_HZ
        };
        let period = Duration::from_secs_f64(1.0 / rate);
        ARMED.store(true, Ordering::SeqCst);
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("tsdtw-profiler".into())
            .spawn(move || {
                let mut ticks = 0u64;
                let mut folded = HashMap::new();
                let (lock, cvar) = &*thread_shared;
                loop {
                    sample_once(&mut ticks, &mut folded);
                    let stopped = relock(lock);
                    if *stopped {
                        break;
                    }
                    let (stopped, _) = cvar
                        .wait_timeout(stopped, period)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if *stopped {
                        break;
                    }
                }
                (ticks, folded)
            })
            .expect("spawn the profiler sampler thread");
        Profiler {
            shared,
            handle,
            rate_hz: rate,
            started: Instant::now(),
        }
    }

    /// Disarms the hooks, joins the sampler, and returns its report.
    /// Panic-safe: a sampler that died mid-run yields an empty report
    /// rather than propagating.
    pub fn stop(self) -> ProfileReport {
        ARMED.store(false, Ordering::SeqCst);
        {
            let (lock, cvar) = &*self.shared;
            *relock(lock) = true;
            cvar.notify_all();
        }
        let (ticks, folded) = self.handle.join().unwrap_or_default();
        let mut folded: Vec<(String, u64)> = folded.into_iter().collect();
        folded.sort();
        ProfileReport {
            rate_hz: self.rate_hz,
            duration_s: self.started.elapsed().as_secs_f64(),
            ticks,
            folded,
        }
    }
}

/// Per-label self-time vs total-time attribution derived from folded
/// stacks. "Self" samples caught the label as the innermost open span;
/// "total" samples caught it anywhere on the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanProfile {
    /// The span label.
    pub label: String,
    /// Samples with this label at the top (innermost) of a stack.
    pub self_samples: u64,
    /// Samples with this label anywhere on the stack (counted once per
    /// sample even if the label recurses).
    pub total_samples: u64,
}

/// What a stopped [`Profiler`] collected.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Configured sampler rate (samples per second).
    pub rate_hz: f64,
    /// Wall-clock seconds the profiler was armed.
    pub duration_s: f64,
    /// Sampler wakeups, including ones that found every stack empty.
    pub ticks: u64,
    /// Folded stacks: `root;child;leaf` to sample count, sorted by
    /// stack string so every rendering below is deterministic given the
    /// same counts.
    pub folded: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Samples that caught at least one open span.
    pub fn samples(&self) -> u64 {
        self.folded.iter().map(|(_, n)| n).sum()
    }

    /// Renders the `flamegraph.pl` / `inferno` collapsed-stack format:
    /// one `stack count` line per folded stack, sorted.
    pub fn collapsed(&self) -> String {
        collapse(&self.folded)
    }

    /// Per-label self vs total attribution, ordered by self samples
    /// descending (ties by label, so the order is deterministic).
    pub fn self_totals(&self) -> Vec<SpanProfile> {
        self_totals(&self.folded)
    }

    /// Renders the self/total table for the terminal.
    pub fn table(&self) -> String {
        let rows = self.self_totals();
        let samples = self.samples();
        let mut out = String::new();
        out.push_str(&format!(
            "sampler: {:.0} Hz nominal, {} tick(s), {} sample(s) in span, {:.3}s armed\n",
            self.rate_hz, self.ticks, samples, self.duration_s
        ));
        if rows.is_empty() {
            out.push_str("no samples caught an open span\n");
            return out;
        }
        let width = rows.iter().map(|r| r.label.len()).max().unwrap_or(4).max(4);
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>8}  {:>7}\n",
            "span", "self", "total", "self%"
        ));
        for r in rows {
            let share = if samples == 0 {
                0.0
            } else {
                r.self_samples as f64 / samples as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<width$}  {:>8}  {:>8}  {:>6.1}%\n",
                r.label, r.self_samples, r.total_samples, share
            ));
        }
        out
    }

    /// The snapshot `profile` section (schema v7). Sample counts and
    /// self-time shares only — advisory data, like `wall_s`.
    pub fn to_json(&self) -> Json {
        let samples = self.samples();
        let mut spans = Json::object();
        for r in self.self_totals() {
            let share = if samples == 0 {
                0.0
            } else {
                r.self_samples as f64 / samples as f64
            };
            spans.set(
                &r.label,
                json_obj! {
                    "self_samples" => r.self_samples,
                    "total_samples" => r.total_samples,
                    "self_share" => share,
                },
            );
        }
        json_obj! {
            "sampler_hz" => self.rate_hz,
            "duration_s" => self.duration_s,
            "ticks" => self.ticks,
            "samples" => samples,
            "spans" => spans,
        }
    }

    /// Renders the ASCII flame view of the folded stacks (see
    /// [`flame_ascii`]).
    pub fn flame_ascii(&self, width: usize) -> String {
        flame_ascii(&self.folded, width)
    }
}

/// Renders folded stacks in the collapsed-stack text format: one
/// `stack count` line per entry. Input order is preserved; pass
/// pre-sorted data (as [`ProfileReport::folded`] is) for a canonical
/// document.
pub fn collapse(folded: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, n) in folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack text back into folded `(stack, count)` pairs,
/// sorted by stack. Duplicate stacks merge by summing counts, so
/// `collapse(&parse_collapsed(t)?)` is a fixpoint: parsing canonical
/// output and re-collapsing reproduces it byte for byte.
pub fn parse_collapsed(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut map: HashMap<String, u64> = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no count field: {line:?}", i + 1));
        };
        let count: u64 = count
            .parse()
            .map_err(|e| format!("line {}: bad count {count:?}: {e}", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack: {line:?}", i + 1));
        }
        *map.entry(stack.to_string()).or_insert(0) += count;
    }
    let mut folded: Vec<(String, u64)> = map.into_iter().collect();
    folded.sort();
    Ok(folded)
}

/// Per-label self/total attribution over folded stacks (free-function
/// form of [`ProfileReport::self_totals`], usable on parsed files).
pub fn self_totals(folded: &[(String, u64)]) -> Vec<SpanProfile> {
    let mut map: HashMap<&str, (u64, u64)> = HashMap::new();
    for (stack, n) in folded {
        let frames: Vec<&str> = stack.split(';').collect();
        if let Some(leaf) = frames.last() {
            map.entry(leaf).or_insert((0, 0)).0 += n;
        }
        let mut seen: Vec<&str> = Vec::with_capacity(frames.len());
        for f in frames {
            if !seen.contains(&f) {
                seen.push(f);
                map.entry(f).or_insert((0, 0)).1 += n;
            }
        }
    }
    let mut rows: Vec<SpanProfile> = map
        .into_iter()
        .map(|(label, (s, t))| SpanProfile {
            label: label.to_string(),
            self_samples: s,
            total_samples: t,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.self_samples
            .cmp(&a.self_samples)
            .then_with(|| a.label.cmp(&b.label))
    });
    rows
}

/// Renders an ASCII flame view of folded stacks: a depth-first tree of
/// frames, each line carrying an indentation for depth, a bar sized by
/// the frame's share of all samples, the percentage, and the count.
/// `width` bounds the bar column (clamped to at least 10).
pub fn flame_ascii(folded: &[(String, u64)], width: usize) -> String {
    #[derive(Default)]
    struct Node {
        children: Vec<(String, Node)>,
        total: u64,
    }
    fn insert(node: &mut Node, frames: &[&str], n: u64) {
        node.total += n;
        let Some((first, rest)) = frames.split_first() else {
            return;
        };
        let child = match node.children.iter_mut().position(|(k, _)| k == first) {
            Some(i) => &mut node.children[i].1,
            None => {
                node.children.push((first.to_string(), Node::default()));
                &mut node.children.last_mut().expect("just pushed").1
            }
        };
        insert(child, rest, n);
    }
    fn render(
        out: &mut String,
        name: &str,
        node: &Node,
        depth: usize,
        grand_total: u64,
        bar_width: usize,
    ) {
        let share = node.total as f64 / grand_total as f64;
        let bar = (share * bar_width as f64).round().max(1.0) as usize;
        out.push_str(&format!(
            "{:indent$}{:<bar_width$} {:>5.1}% {:>8}  {name}\n",
            "",
            "#".repeat(bar.min(bar_width)),
            share * 100.0,
            node.total,
            indent = depth * 2,
        ));
        let mut kids: Vec<&(String, Node)> = node.children.iter().collect();
        kids.sort_by(|a, b| b.1.total.cmp(&a.1.total).then_with(|| a.0.cmp(&b.0)));
        for (child_name, child) in kids {
            render(out, child_name, child, depth + 1, grand_total, bar_width);
        }
    }

    let mut root = Node::default();
    for (stack, n) in folded {
        let frames: Vec<&str> = stack.split(';').collect();
        insert(&mut root, &frames, *n);
    }
    if root.total == 0 {
        return "no samples\n".to_string();
    }
    let bar_width = width.max(10);
    let mut out = String::new();
    let mut roots: Vec<&(String, Node)> = root.children.iter().collect();
    roots.sort_by(|a, b| b.1.total.cmp(&a.1.total).then_with(|| a.0.cmp(&b.0)));
    for (name, node) in roots {
        render(&mut out, name, node, 0, root.total, bar_width);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming is process-wide; tests that start a profiler serialize on
    /// this so a concurrently disarming test cannot blind them.
    fn arm_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        relock(&LOCK)
    }

    fn folded(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(s, n)| (s.to_string(), *n)).collect()
    }

    #[test]
    fn collapse_parse_round_trip_is_bitwise_stable() {
        let f = folded(&[("a;b;c", 3), ("a;b", 1), ("d", 9)]);
        let text = collapse(&parse_collapsed(&collapse(&f)).unwrap());
        let again = collapse(&parse_collapsed(&text).unwrap());
        assert_eq!(text, again);
        // Canonical order is sorted-by-stack.
        assert!(text.find("a;b 1").unwrap() < text.find("a;b;c 3").unwrap());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_collapsed("no-count-here").is_err());
        assert!(parse_collapsed("a;b not-a-number").is_err());
        assert!(parse_collapsed(" 12").is_err(), "empty stack");
        assert_eq!(parse_collapsed("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn parse_merges_duplicate_stacks() {
        let f = parse_collapsed("a;b 2\na;b 3\n").unwrap();
        assert_eq!(f, folded(&[("a;b", 5)]));
    }

    #[test]
    fn self_totals_attribute_leaf_and_ancestors() {
        let rows = self_totals(&folded(&[("outer;inner", 4), ("outer", 1)]));
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap().clone();
        assert_eq!(get("inner").self_samples, 4);
        assert_eq!(get("inner").total_samples, 4);
        assert_eq!(get("outer").self_samples, 1);
        assert_eq!(get("outer").total_samples, 5);
        // Ordered by self samples descending.
        assert_eq!(rows[0].label, "inner");
    }

    #[test]
    fn self_totals_count_recursion_once_per_sample() {
        let rows = self_totals(&folded(&[("f;f;f", 2)]));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].self_samples, 2);
        assert_eq!(rows[0].total_samples, 2, "not 6: once per sample");
    }

    #[test]
    fn report_json_carries_shares_and_counts() {
        let r = ProfileReport {
            rate_hz: 997.0,
            duration_s: 0.5,
            ticks: 10,
            folded: folded(&[("a;b", 3), ("a", 1)]),
        };
        let j = r.to_json();
        assert_eq!(j["samples"], 4u64);
        assert_eq!(j["ticks"], 10u64);
        assert_eq!(j["spans"]["b"]["self_samples"], 3u64);
        assert_eq!(j["spans"]["a"]["total_samples"], 4u64);
        let share = j["spans"]["b"]["self_share"].as_f64().unwrap();
        assert!((share - 0.75).abs() < 1e-12, "{share}");
        assert!(r.table().contains("self%"), "{}", r.table());
    }

    #[test]
    fn flame_ascii_orders_hot_frames_first() {
        let text = flame_ascii(&folded(&[("cold", 1), ("hot;leaf", 9)]), 20);
        let hot = text.find("hot").unwrap();
        let leaf = text.find("leaf").unwrap();
        let cold = text.find("cold").unwrap();
        assert!(hot < leaf && leaf < cold, "{text}");
        assert!(text.contains('#'), "{text}");
        assert_eq!(flame_ascii(&[], 20), "no samples\n");
    }

    #[test]
    fn armed_sampler_catches_spans_and_stop_disarms() {
        let _serial = arm_lock();
        let p = Profiler::start(5000.0);
        if crate::spans_enabled() {
            let _g = crate::span("profile_unit_test_span");
            std::thread::sleep(Duration::from_millis(25));
            drop(_g);
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = p.stop();
        let _ = crate::take_spans();
        assert!(report.ticks > 0);
        assert!(!ARMED.load(Ordering::SeqCst), "stop disarms");
        if crate::spans_enabled() {
            assert!(
                report
                    .folded
                    .iter()
                    .any(|(s, _)| s.contains("profile_unit_test_span")),
                "{:?}",
                report.folded
            );
            // Advisory JSON is well-formed even on live data.
            let j = report.to_json();
            assert!(j["samples"].as_u64().unwrap() >= 1);
        }
        // Disarmed again: pushes are refused.
        assert!(!live_push("after_stop"));
    }

    #[test]
    fn live_stack_balances_across_panic_unwind() {
        let _serial = arm_lock();
        let p = Profiler::start(5000.0);
        let result = std::panic::catch_unwind(|| {
            let _g = crate::span("profile_panic_span");
            panic!("mid-span panic");
        });
        assert!(result.is_err());
        let report = p.stop();
        let _ = crate::take_spans();
        drop(report);
        // The unwound guard popped its frame: this thread's live stack
        // is empty again, so later samples cannot see a stale frame.
        let depth_here = LOCAL.try_with(|l| relock(&l.slot.stack).len()).unwrap();
        assert_eq!(depth_here, 0, "stale frame after unwind");
    }

    #[test]
    fn dead_threads_deregister_their_slots() {
        let _serial = arm_lock();
        let p = Profiler::start(5000.0);
        std::thread::spawn(|| {
            let _g = crate::span("profile_dead_thread_span");
        })
        .join()
        .unwrap();
        let _ = p.stop();
        // The worker's slot is gone from the registry, and nothing that
        // remains carries its frames.
        for stack in live_snapshot() {
            assert!(
                !stack.contains(&"profile_dead_thread_span"),
                "stale slot: {stack:?}"
            );
        }
    }

    #[test]
    fn disarmed_hooks_are_inert() {
        // Not holding arm_lock would race other tests' arming, so take
        // it and rely on every armed test disarming via stop().
        let _serial = arm_lock();
        assert!(!live_push("never_pushed"));
        live_pop(); // saturates silently on the empty stack
        let depth = LOCAL.try_with(|l| relock(&l.slot.stack).len()).unwrap();
        assert_eq!(depth, 0);
    }
}
