//! The process-wide metrics registry and its Prometheus exposition.
//!
//! [`WorkMeter`] answers "how much work did *this call* do"; the bench
//! snapshots answer "how much work did *this run* do". The registry is
//! the third time horizon: a process-lifetime accumulation of named
//! counters, gauges, and latency summaries that a serving front end can
//! scrape at any moment. It is the data plane the planned `tsdtw-serve`
//! `/metrics` endpoint mounts unchanged: [`MetricsRegistry::render`]
//! emits the Prometheus text exposition format, and the CLI's
//! `--metrics FILE` writes the same bytes today.
//!
//! ## Determinism contract
//!
//! Everything the registry stores folds with an associative,
//! commutative discipline — counters saturating-add, gauges fold by
//! max, summaries merge bucket-wise (see [`LatencyHist::merge`]) — and
//! [`MetricsRegistry::render`] emits metrics in sorted name order. A
//! registry fed the same *values* therefore renders the same *bytes*,
//! regardless of how work was sharded across threads: the PR 3 meter
//! invariance (merged [`WorkMeter`]s are bitwise thread-count-
//! independent) extends through [`record_meter`](MetricsRegistry::record_meter)
//! to the exposition text. The `parallel_equivalence` suite locks this.
//!
//! ## Naming convention
//!
//! * `tsdtw_work_<counter>` — the [`WorkMeter`] table, dots replaced
//!   with underscores (`prune.kim` → `tsdtw_work_prune_kim`). Add-fold
//!   counters become Prometheus counters; max-fold high-water marks
//!   (`dp_peak_bytes`) become gauges.
//! * `tsdtw_cascade_stage_<stage>_<quantity>` — the prune-funnel
//!   ledger (`entered` / `pruned` / `cost_units` counters and a
//!   dimensionless `tightness` summary per cascade stage), via
//!   [`record_funnel`](MetricsRegistry::record_funnel).
//! * `tsdtw_<subsystem>_<quantity>_<unit>` for everything else, e.g.
//!   `tsdtw_request_seconds` (a summary), `tsdtw_corpus_bytes` (a
//!   gauge). Base units, never prefixed units: seconds and bytes.
//!
//! ## Sampling onto the flight recorder
//!
//! [`MetricsSampler`] snapshots every numeric registry value on a fixed
//! cadence from a background thread and, on stop, delivers the samples
//! to the active flight recorder as counter tracks
//! ([`CounterSample`], exported as Chrome-trace `ph: "C"` records) —
//! so a Perfetto view of a run shows counter trajectories under the
//! span waterfall. Timestamps come from the recorder's own epoch via
//! [`RecorderHandoff::elapsed_us`](crate::RecorderHandoff::elapsed_us),
//! so samples land at the right place on the span timeline.

use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::funnel::{Funnel, FunnelStage};
use crate::hist::LatencyHist;
use crate::json::json_escape;
use crate::meter::WorkMeter;
use crate::recorder::CounterSample;

/// The value payload of one registered metric.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    /// Monotone accumulation; folds by saturating add.
    Counter(u64),
    /// Instantaneous level; folds by max (deterministic under any
    /// shard absorption order).
    Gauge(f64),
    /// A duration distribution; folds bucket-wise. Rendered as a
    /// Prometheus `summary` (quantile series + `_sum` + `_count`).
    Summary(LatencyHist),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Summary(_) => "summary",
        }
    }
}

/// One named metric: name, help text, and the typed value.
#[derive(Debug, Clone, PartialEq)]
struct Metric {
    name: String,
    help: String,
    value: Value,
}

/// A registry of named metrics, kept sorted by name.
///
/// Plain value type: build thread-local shard registries on workers and
/// fold them into an owner with [`absorb`](MetricsRegistry::absorb)
/// (index-ordered, like every other shard merge in the workspace), or
/// use the process-wide instance behind [`with_registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Drops every registered metric (tests and per-run CLI isolation).
    pub fn reset(&mut self) {
        self.metrics.clear();
    }

    /// The slot for `name`, created with `make` on first touch.
    /// Panics if `name` is already registered under a different kind —
    /// metric names are static program structure, so a kind collision
    /// is a bug, not data.
    fn slot(&mut self, name: &str, help: &str, make: impl FnOnce() -> Value) -> &mut Value {
        let i = match self.metrics.binary_search_by(|m| m.name.as_str().cmp(name)) {
            Ok(i) => i,
            Err(i) => {
                self.metrics.insert(
                    i,
                    Metric {
                        name: name.to_string(),
                        help: help.to_string(),
                        value: make(),
                    },
                );
                i
            }
        };
        &mut self.metrics[i].value
    }

    /// Adds `n` to the counter `name` (registering it on first touch).
    pub fn counter_add(&mut self, name: &str, help: &str, n: u64) {
        match self.slot(name, help, || Value::Counter(0)) {
            Value::Counter(v) => *v = v.saturating_add(n),
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge `name` to `v` (registering it on first touch).
    pub fn gauge_set(&mut self, name: &str, help: &str, v: f64) {
        match self.slot(name, help, || Value::Gauge(v)) {
            Value::Gauge(g) => *g = v,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Raises the gauge `name` to at least `v` — the fold used for
    /// high-water marks like peak scratch bytes, and the only gauge
    /// write that commutes across shard absorption.
    pub fn gauge_max(&mut self, name: &str, help: &str, v: f64) {
        match self.slot(name, help, || Value::Gauge(v)) {
            Value::Gauge(g) => *g = g.max(v),
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one duration into the summary `name` (registering it on
    /// first touch).
    pub fn observe_s(&mut self, name: &str, help: &str, seconds: f64) {
        match self.slot(name, help, || Value::Summary(LatencyHist::new())) {
            Value::Summary(h) => h.record_s(seconds),
            other => panic!("metric {name} is a {}, not a summary", other.kind()),
        }
    }

    /// Folds a finished [`WorkMeter`] into the registry under the
    /// `tsdtw_work_*` names. Fold kinds come from the meter's own
    /// counter table: add-fold entries accumulate as counters, max-fold
    /// entries (peak bytes) raise gauges.
    pub fn record_meter(&mut self, meter: &WorkMeter) {
        for ((dotted, value), fold) in meter
            .counter_values()
            .into_iter()
            .zip(WorkMeter::COUNTER_FOLDS)
        {
            let name = format!("tsdtw_work_{}", dotted.replace('.', "_"));
            let help = format!("WorkMeter counter {dotted}.");
            match *fold {
                "max" => self.gauge_max(&name, &help, value as f64),
                _ => self.counter_add(&name, &help, value),
            }
        }
    }

    /// Merges a whole histogram into the summary `name` (registering
    /// it on first touch) — the bulk form of
    /// [`observe_s`](Self::observe_s), used when a finished run hands
    /// over an already-accumulated distribution such as a funnel
    /// stage's bound-tightness histogram.
    pub fn summary_merge(&mut self, name: &str, help: &str, hist: &LatencyHist) {
        match self.slot(name, help, || Value::Summary(LatencyHist::new())) {
            Value::Summary(h) => h.merge(hist),
            other => panic!("metric {name} is a {}, not a summary", other.kind()),
        }
    }

    /// Folds a finished [`Funnel`] into the registry under the
    /// `tsdtw_cascade_stage_<stage>_*` names: per-stage `entered`,
    /// `pruned`, and `cost_units` counters plus a `tightness` summary
    /// (the `LB / true-DTW` ratio distribution — dimensionless, stored
    /// at parts-per-billion resolution so the rendered quantiles are
    /// the raw ratios). An empty funnel registers nothing, so
    /// non-cascaded commands leave the exposition untouched.
    pub fn record_funnel(&mut self, funnel: &Funnel) {
        if funnel.is_empty() {
            return;
        }
        for stage in FunnelStage::ALL {
            let s = funnel.stage(stage);
            let base = format!("tsdtw_cascade_stage_{}", stage.name());
            self.counter_add(
                &format!("{base}_entered"),
                &format!("Candidates entering cascade stage {}.", stage.name()),
                s.entered,
            );
            self.counter_add(
                &format!("{base}_pruned"),
                &format!("Candidates pruned by cascade stage {}.", stage.name()),
                s.pruned,
            );
            self.counter_add(
                &format!("{base}_cost_units"),
                &format!("Deterministic cost units spent in stage {}.", stage.name()),
                s.cost_units,
            );
            if s.tightness.count() > 0 {
                self.summary_merge(
                    &format!("{base}_tightness"),
                    &format!("LB/true-DTW tightness ratio at stage {}.", stage.name()),
                    &s.tightness,
                );
            }
        }
    }

    /// Folds another registry into this one, metric-by-metric with each
    /// kind's own discipline (counters add saturating, gauges max,
    /// summaries histogram-merge). Absorb shards in item-index order to
    /// match the workspace-wide merge convention; the result is
    /// value-identical under any order regardless.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for m in &other.metrics {
            match &m.value {
                Value::Counter(v) => self.counter_add(&m.name, &m.help, *v),
                Value::Gauge(v) => self.gauge_max(&m.name, &m.help, *v),
                Value::Summary(h) => {
                    match self.slot(&m.name, &m.help, || Value::Summary(LatencyHist::new())) {
                        Value::Summary(mine) => mine.merge(h),
                        other => panic!("metric {} is a {}, not a summary", m.name, other.kind()),
                    }
                }
            }
        }
    }

    /// Every metric reduced to one instantaneous number, in name
    /// order — what the sampler snapshots onto counter tracks.
    /// Counters and gauges are themselves; a summary contributes its
    /// sample count as `<name>_count`.
    pub fn numeric_values(&self) -> Vec<(String, f64)> {
        self.metrics
            .iter()
            .map(|m| match &m.value {
                Value::Counter(v) => (m.name.clone(), *v as f64),
                Value::Gauge(v) => (m.name.clone(), *v),
                Value::Summary(h) => (format!("{}_count", m.name), h.count() as f64),
            })
            .collect()
    }

    /// The registry in the Prometheus text exposition format (version
    /// 0.0.4): `# HELP` / `# TYPE` headers and one sample line per
    /// series, metrics in sorted name order. Help text goes through the
    /// shared [`json_escape`] — its escape set (backslash, quote,
    /// newline, control characters) is a superset of what the
    /// exposition format requires, so a hostile help string can never
    /// break line framing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, json_escape(&m.help)));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.value.kind()));
            match &m.value {
                Value::Counter(v) => out.push_str(&format!("{} {v}\n", m.name)),
                Value::Gauge(v) => out.push_str(&format!("{} {v}\n", m.name)),
                Value::Summary(h) => {
                    for q in [0.5, 0.9, 0.99] {
                        out.push_str(&format!(
                            "{}{{quantile=\"{q}\"}} {}\n",
                            m.name,
                            h.percentile_s(q)
                        ));
                    }
                    out.push_str(&format!("{}_sum {}\n", m.name, h.total_s()));
                    out.push_str(&format!("{}_count {}\n", m.name, h.count()));
                }
            }
        }
        out
    }
}

/// The process-wide registry instance.
fn global() -> &'static Mutex<MetricsRegistry> {
    static GLOBAL: OnceLock<Mutex<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(MetricsRegistry::new()))
}

/// Runs `f` with the process-wide registry locked. All the global
/// convenience wrappers ([`counter_add`], [`record_meter`], …) go
/// through here; use it directly for compound updates that must be
/// atomic with respect to the sampler.
pub fn with_registry<R>(f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
    f(&mut global().lock().expect("metrics registry poisoned"))
}

/// [`MetricsRegistry::counter_add`] on the process-wide registry.
pub fn counter_add(name: &str, help: &str, n: u64) {
    with_registry(|r| r.counter_add(name, help, n));
}

/// [`MetricsRegistry::gauge_set`] on the process-wide registry.
pub fn gauge_set(name: &str, help: &str, v: f64) {
    with_registry(|r| r.gauge_set(name, help, v));
}

/// [`MetricsRegistry::gauge_max`] on the process-wide registry.
pub fn gauge_max(name: &str, help: &str, v: f64) {
    with_registry(|r| r.gauge_max(name, help, v));
}

/// [`MetricsRegistry::observe_s`] on the process-wide registry.
pub fn observe_s(name: &str, help: &str, seconds: f64) {
    with_registry(|r| r.observe_s(name, help, seconds));
}

/// [`MetricsRegistry::record_meter`] on the process-wide registry.
pub fn record_meter(meter: &WorkMeter) {
    with_registry(|r| r.record_meter(meter));
}

/// [`MetricsRegistry::record_funnel`] on the process-wide registry.
pub fn record_funnel(funnel: &Funnel) {
    with_registry(|r| r.record_funnel(funnel));
}

/// Renders the process-wide registry's Prometheus exposition.
pub fn render() -> String {
    with_registry(|r| r.render())
}

/// Clears the process-wide registry (tests and per-run isolation).
pub fn reset() {
    with_registry(|r| r.reset());
}

/// A background thread sampling the process-wide registry onto counter
/// tracks.
///
/// Started with a cadence, it wakes every `period`, snapshots
/// [`MetricsRegistry::numeric_values`], and timestamps the batch
/// against the flight-recorder epoch captured at start (falling back to
/// its own start instant when no recorder was active). One final
/// snapshot is always taken at stop, so a run shorter than the period
/// still yields a sample. [`stop_onto_recorder`](Self::stop_onto_recorder)
/// hands everything to the active recorder as `ph: "C"` counter tracks.
#[derive(Debug)]
pub struct MetricsSampler {
    signal: std::sync::Arc<(Mutex<bool>, Condvar)>,
    handle: std::thread::JoinHandle<Vec<CounterSample>>,
}

impl MetricsSampler {
    /// Spawns the sampling thread. Call on the thread whose recorder
    /// (if any) should own the timeline — the recorder handoff is
    /// captured here, exactly like handing off to a worker shard.
    pub fn start(period: Duration) -> MetricsSampler {
        let signal = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let inner = std::sync::Arc::clone(&signal);
        let handoff = crate::recorder::recorder_handoff();
        let own_epoch = Instant::now();
        let handle = std::thread::spawn(move || {
            let mut samples = Vec::new();
            let (lock, cvar) = &*inner;
            let mut stopped = lock.lock().expect("sampler signal poisoned");
            loop {
                if !*stopped {
                    stopped = cvar
                        .wait_timeout(stopped, period)
                        .expect("sampler signal poisoned")
                        .0;
                }
                let done = *stopped;
                let ts_us = handoff.map_or_else(
                    || own_epoch.elapsed().as_secs_f64() * 1e6,
                    |h| h.elapsed_us(),
                );
                for (name, value) in with_registry(|r| r.numeric_values()) {
                    samples.push(CounterSample { name, ts_us, value });
                }
                if done {
                    return samples;
                }
            }
        });
        MetricsSampler { signal, handle }
    }

    /// Stops the thread and returns everything it sampled (including
    /// the final at-stop snapshot), oldest first.
    pub fn stop(self) -> Vec<CounterSample> {
        {
            let (lock, cvar) = &*self.signal;
            *lock.lock().expect("sampler signal poisoned") = true;
            cvar.notify_all();
        }
        self.handle.join().unwrap_or_default()
    }

    /// Stops the thread and delivers its samples to this thread's
    /// active flight recorder as counter tracks; returns how many
    /// samples were delivered (0 when no recorder is active).
    pub fn stop_onto_recorder(self) -> usize {
        let samples = self.stop();
        if samples.is_empty() {
            return 0;
        }
        crate::recorder::recorder_counter_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{recorder_start, recorder_stop};
    use crate::Json;

    #[test]
    fn exposition_is_sorted_typed_and_stable() {
        let mut r = MetricsRegistry::new();
        r.counter_add("tsdtw_z_last", "Registered first, renders last.", 3);
        r.gauge_set("tsdtw_a_first", "Registered last, renders first.", 1.5);
        r.counter_add("tsdtw_m_mid", "Middle.", 7);
        r.counter_add("tsdtw_z_last", "Registered first, renders last.", 4);
        let text = r.render();
        let expect = "# HELP tsdtw_a_first Registered last, renders first.\n\
                      # TYPE tsdtw_a_first gauge\n\
                      tsdtw_a_first 1.5\n\
                      # HELP tsdtw_m_mid Middle.\n\
                      # TYPE tsdtw_m_mid counter\n\
                      tsdtw_m_mid 7\n\
                      # HELP tsdtw_z_last Registered first, renders last.\n\
                      # TYPE tsdtw_z_last counter\n\
                      tsdtw_z_last 7\n";
        assert_eq!(text, expect);
        // Rendering is a pure read: same registry, same bytes.
        assert_eq!(r.render(), text);
    }

    #[test]
    fn help_text_cannot_break_line_framing() {
        let mut r = MetricsRegistry::new();
        r.counter_add("tsdtw_hostile", "multi\nline \"help\" with \\ and \u{1}", 1);
        let text = r.render();
        // One HELP line, one TYPE line, one sample line — the newline
        // in the help text was escaped, not emitted.
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("multi\\nline"), "{text}");
    }

    #[test]
    fn summaries_render_quantiles_sum_and_count() {
        let mut r = MetricsRegistry::new();
        for i in 1..=100u64 {
            r.observe_s("tsdtw_request_seconds", "Request latency.", i as f64 * 1e-3);
        }
        let text = r.render();
        assert!(
            text.contains("# TYPE tsdtw_request_seconds summary"),
            "{text}"
        );
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                text.contains(&format!("tsdtw_request_seconds{{quantile=\"{q}\"}}")),
                "{text}"
            );
        }
        assert!(text.contains("tsdtw_request_seconds_count 100"), "{text}");
        assert!(text.contains("tsdtw_request_seconds_sum "), "{text}");
    }

    #[test]
    fn record_meter_follows_the_counter_table() {
        let mut m = WorkMeter::new();
        m.cells = 42;
        m.window_cells = 100;
        m.dp_peak_bytes = 4096;
        m.pruned_kim = 7;
        let mut r = MetricsRegistry::new();
        r.record_meter(&m);
        let text = r.render();
        assert!(text.contains("# TYPE tsdtw_work_cells counter"), "{text}");
        assert!(text.contains("tsdtw_work_cells 42"), "{text}");
        assert!(text.contains("tsdtw_work_prune_kim 7"), "{text}");
        // The max-fold high-water mark is a gauge, and re-recording a
        // smaller meter must not lower it while counters accumulate.
        assert!(
            text.contains("# TYPE tsdtw_work_dp_peak_bytes gauge"),
            "{text}"
        );
        let mut smaller = WorkMeter::new();
        smaller.cells = 1;
        smaller.dp_peak_bytes = 16;
        r.record_meter(&smaller);
        let text = r.render();
        assert!(text.contains("tsdtw_work_cells 43"), "{text}");
        assert!(text.contains("tsdtw_work_dp_peak_bytes 4096"), "{text}");
        // Every table entry landed under the convention name.
        for dotted in WorkMeter::COUNTER_NAMES {
            let name = format!("tsdtw_work_{}", dotted.replace('.', "_"));
            assert!(text.contains(&name), "missing {name}");
        }
    }

    #[test]
    fn record_funnel_exports_stage_families_and_skips_empty() {
        use crate::funnel::Funnel;

        // An empty funnel leaves the registry untouched.
        let mut r = MetricsRegistry::new();
        r.record_funnel(&Funnel::new());
        assert!(r.is_empty());

        let mut f = Funnel::new();
        for _ in 0..8 {
            f.record_entered(FunnelStage::Kim);
        }
        for _ in 0..5 {
            f.record_pruned(FunnelStage::Kim);
        }
        f.record_cost(FunnelStage::Kim, 8);
        for _ in 0..3 {
            f.record_entered(FunnelStage::Dtw);
        }
        f.record_tightness(FunnelStage::Kim, 750_000_000);
        r.record_funnel(&f);
        let text = r.render();
        assert!(
            text.contains("tsdtw_cascade_stage_lb_kim_entered 8"),
            "{text}"
        );
        assert!(
            text.contains("tsdtw_cascade_stage_lb_kim_pruned 5"),
            "{text}"
        );
        assert!(
            text.contains("tsdtw_cascade_stage_lb_kim_cost_units 8"),
            "{text}"
        );
        assert!(text.contains("tsdtw_cascade_stage_dtw_entered 3"), "{text}");
        // Dormant stages still export (zero-valued) counters, so the
        // family set is stable once any cascade ran.
        assert!(
            text.contains("tsdtw_cascade_stage_lb_keogh_cq_entered 0"),
            "{text}"
        );
        // The tightness summary renders the raw ratio (ppb ÷ 1e9).
        assert!(
            text.contains("# TYPE tsdtw_cascade_stage_lb_kim_tightness summary"),
            "{text}"
        );
        assert!(
            text.contains("tsdtw_cascade_stage_lb_kim_tightness_count 1"),
            "{text}"
        );
        let p50_line = text
            .lines()
            .find(|l| l.contains("lb_kim_tightness{quantile=\"0.5\"}"))
            .expect("tightness quantile line");
        let value: f64 = p50_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((value - 0.75).abs() < 0.01, "p50 {value} ≈ 0.75");
        // Recording the same funnel twice accumulates (counter semantics).
        r.record_funnel(&f);
        assert!(
            r.render().contains("tsdtw_cascade_stage_lb_kim_entered 16"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn absorb_matches_serial_accumulation_in_any_order() {
        let shard = |c: u64, peak: f64, obs_ms: u64| {
            let mut r = MetricsRegistry::new();
            r.counter_add("tsdtw_c", "c", c);
            r.gauge_max("tsdtw_g", "g", peak);
            for i in 0..obs_ms {
                r.observe_s("tsdtw_s_seconds", "s", (i + 1) as f64 * 1e-3);
            }
            r
        };
        let shards = [shard(1, 10.0, 3), shard(2, 5.0, 0), shard(4, 20.0, 7)];
        let mut fwd = MetricsRegistry::new();
        for s in &shards {
            fwd.absorb(s);
        }
        let mut rev = MetricsRegistry::new();
        for s in shards.iter().rev() {
            rev.absorb(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.render(), rev.render());
        assert!(fwd.render().contains("tsdtw_c 7"));
        assert!(fwd.render().contains("tsdtw_g 20"));
        assert!(fwd.render().contains("tsdtw_s_seconds_count 10"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_collisions_are_programmer_errors() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("tsdtw_oops", "first a gauge", 1.0);
        r.counter_add("tsdtw_oops", "now a counter", 1);
    }

    #[test]
    fn numeric_values_cover_every_kind() {
        let mut r = MetricsRegistry::new();
        r.counter_add("tsdtw_nv_c", "c", 5);
        r.gauge_set("tsdtw_nv_g", "g", 2.5);
        r.observe_s("tsdtw_nv_s_seconds", "s", 1e-3);
        let vals = r.numeric_values();
        assert_eq!(
            vals,
            vec![
                ("tsdtw_nv_c".to_string(), 5.0),
                ("tsdtw_nv_g".to_string(), 2.5),
                ("tsdtw_nv_s_seconds_count".to_string(), 1.0),
            ]
        );
    }

    #[test]
    fn sampler_lands_counter_tracks_on_the_recorder() {
        // Global state: use names unique to this test; other tests may
        // add their own globals concurrently, which is fine — we only
        // assert on ours.
        counter_add("tsdtw_sampler_test_ticks", "Sampler test counter.", 9);
        recorder_start(1 << 10);
        let sampler = MetricsSampler::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(25));
        counter_add("tsdtw_sampler_test_ticks", "Sampler test counter.", 1);
        let delivered = sampler.stop_onto_recorder();
        assert!(delivered > 0, "at least the at-stop snapshot");
        let trace = recorder_stop().expect("recorder active");
        let ours: Vec<&CounterSample> = trace
            .counters
            .iter()
            .filter(|s| s.name == "tsdtw_sampler_test_ticks")
            .collect();
        assert!(!ours.is_empty());
        // Samples are timestamped on the recorder timeline, monotone,
        // and the last one saw the final increment.
        for w in ours.windows(2) {
            assert!(w[1].ts_us >= w[0].ts_us);
        }
        assert_eq!(ours.last().unwrap().value, 10.0);
        // They export as ph:"C" records that parse back.
        let chrome = Json::parse(&trace.chrome_json().to_string_compact()).unwrap();
        let has_track = chrome["traceEvents"].as_array().unwrap().iter().any(|e| {
            e["ph"].as_str() == Some("C") && e["name"].as_str() == Some("tsdtw_sampler_test_ticks")
        });
        assert!(has_track, "counter track missing from Chrome export");
    }

    #[test]
    fn sampler_without_recorder_discards_cleanly() {
        let sampler = MetricsSampler::start(Duration::from_millis(500));
        // Stop immediately: the final snapshot fires, but with no
        // recorder on this thread delivery reports zero.
        assert_eq!(sampler.stop_onto_recorder(), 0);
    }
}
