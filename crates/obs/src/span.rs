//! Feature-gated timing spans.
//!
//! A span brackets a region of interest — a DTW kernel, a mining loop
//! iteration batch — with a label. With the `spans` cargo feature off
//! (the default), [`span`] returns a unit-sized guard and the whole
//! probe compiles away; call sites need no `cfg` of their own. With
//! `--features spans`, each guard's drop adds its wall time to a
//! thread-local per-label table that [`take_spans`] drains.
//!
//! The table is thread-local on purpose: the hot loops are spawned
//! per-thread, and a global table would put a lock on the measured
//! path. Callers that fan out drain per-thread and merge, the same
//! pattern as [`WorkMeter::merge`](crate::WorkMeter::merge).

/// Aggregated timings for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// The label passed to [`span`].
    pub label: &'static str,
    /// How many guards with this label were dropped.
    pub count: u64,
    /// Total wall time across those guards, in seconds.
    pub total_s: f64,
}

crate::impl_to_json!(SpanStat {
    label,
    count,
    total_s
});

/// Whether span timing is compiled in.
pub const fn spans_enabled() -> bool {
    cfg!(feature = "spans")
}

#[cfg(feature = "spans")]
mod enabled {
    use super::SpanStat;
    use std::cell::RefCell;
    use std::time::Instant;

    thread_local! {
        static TABLE: RefCell<Vec<(&'static str, u64, f64)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Timing guard; records on drop.
    #[must_use = "a span measures the scope holding the guard"]
    pub struct SpanGuard {
        label: &'static str,
        start: Instant,
    }

    /// Opens a timing span labelled `label`.
    pub fn span(label: &'static str) -> SpanGuard {
        SpanGuard {
            label,
            start: Instant::now(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let dt = self.start.elapsed().as_secs_f64();
            TABLE.with(|t| {
                let mut t = t.borrow_mut();
                match t.iter_mut().find(|(l, _, _)| *l == self.label) {
                    Some((_, count, total)) => {
                        *count += 1;
                        *total += dt;
                    }
                    None => t.push((self.label, 1, dt)),
                }
            });
        }
    }

    /// Drains this thread's span table, first-opened label first.
    pub fn take_spans() -> Vec<SpanStat> {
        TABLE.with(|t| {
            t.borrow_mut()
                .drain(..)
                .map(|(label, count, total_s)| SpanStat {
                    label,
                    count,
                    total_s,
                })
                .collect()
        })
    }
}

#[cfg(feature = "spans")]
pub use enabled::{span, take_spans, SpanGuard};

#[cfg(not(feature = "spans"))]
mod disabled {
    use super::SpanStat;

    /// Unit-sized guard; the disabled probe compiles to nothing.
    #[must_use = "a span measures the scope holding the guard"]
    pub struct SpanGuard;

    /// Opens a (disabled) timing span; `label` is ignored.
    #[inline(always)]
    pub fn span(_label: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Always empty with spans disabled.
    #[inline]
    pub fn take_spans() -> Vec<SpanStat> {
        Vec::new()
    }
}

#[cfg(not(feature = "spans"))]
pub use disabled::{span, take_spans, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_empty_enabled_spans_record() {
        {
            let _g = span("unit_test_region");
            std::hint::black_box(1 + 1);
        }
        let stats = take_spans();
        if spans_enabled() {
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].label, "unit_test_region");
            assert_eq!(stats[0].count, 1);
            assert!(stats[0].total_s >= 0.0);
            assert!(take_spans().is_empty(), "drained");
        } else {
            assert!(stats.is_empty());
        }
    }
}
