//! Feature-gated timing spans.
//!
//! A span brackets a region of interest — a DTW kernel, a FastDTW
//! resolution level, a mining loop iteration — with a label. With the
//! `spans` cargo feature off (the default), [`span`] returns a
//! unit-sized guard and the whole probe compiles away; call sites need
//! no `cfg` of their own. With `--features spans`, each guard's drop
//! adds its wall time to a thread-local per-label table that
//! [`take_spans`] drains, folding the duration into a per-label
//! [`LatencyHist`](crate::LatencyHist) so every kernel carries
//! p50/p99/max alongside count and total.
//!
//! When a flight recorder is active on the thread (see
//! [`recorder_start`](crate::recorder_start)), each guard additionally
//! records a begin event on open and an end event on drop, preserving
//! the parent/child nesting — that is what turns the aggregate table
//! into an openable Chrome trace.
//!
//! The table is thread-local on purpose: the hot loops are spawned
//! per-thread, and a global table would put a lock on the measured
//! path. Callers that fan out drain per-thread and merge, the same
//! pattern as [`WorkMeter::merge`](crate::WorkMeter::merge).

/// Aggregated timings for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// The label passed to [`span`].
    pub label: &'static str,
    /// How many guards with this label were dropped.
    pub count: u64,
    /// Total wall time across those guards, in seconds.
    pub total_s: f64,
    /// Median guard duration (nearest-rank, from the histogram).
    pub p50_s: f64,
    /// 99th-percentile guard duration (nearest-rank, from the
    /// histogram).
    pub p99_s: f64,
    /// Longest single guard, exact.
    pub max_s: f64,
    /// Heap bytes allocated inside those guards on the recording
    /// thread; 0 unless built with `alloc-telemetry`
    /// (see [`heap_telemetry_enabled`](crate::heap_telemetry_enabled)).
    pub alloc_bytes: u64,
}

crate::impl_to_json!(SpanStat {
    label,
    count,
    total_s,
    p50_s,
    p99_s,
    max_s,
    alloc_bytes
});

/// Whether span timing is compiled in.
pub const fn spans_enabled() -> bool {
    cfg!(feature = "spans")
}

#[cfg(feature = "spans")]
mod enabled {
    use super::SpanStat;
    use crate::hist::LatencyHist;
    use std::cell::RefCell;
    use std::time::Instant;

    struct Entry {
        label: &'static str,
        count: u64,
        total_s: f64,
        alloc_bytes: u64,
        hist: LatencyHist,
    }

    thread_local! {
        static TABLE: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
    }

    /// Timing guard; records on drop.
    #[must_use = "a span measures the scope holding the guard"]
    pub struct SpanGuard {
        label: &'static str,
        start: Instant,
        recorder_id: Option<u64>,
        // Whether this guard pushed a frame onto the profiler's live
        // stack; only then does it pop one, so arming or disarming the
        // sampler mid-span never unbalances the stack.
        profiled: bool,
        // Unit-sized unless `alloc-telemetry` is on; spans nest LIFO,
        // which is exactly the discipline AllocScope requires.
        alloc: Option<crate::alloc::AllocScope>,
    }

    /// Opens a timing span labelled `label`.
    pub fn span(label: &'static str) -> SpanGuard {
        let recorder_id = crate::recorder::recorder_begin(label);
        let profiled = crate::profile::live_push(label);
        SpanGuard {
            label,
            start: Instant::now(),
            recorder_id,
            profiled,
            alloc: Some(crate::alloc::AllocScope::begin()),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let dt = self.start.elapsed().as_secs_f64();
            if self.profiled {
                crate::profile::live_pop();
            }
            let heap = self
                .alloc
                .take()
                .map(crate::alloc::AllocScope::end)
                .unwrap_or_default();
            crate::recorder::recorder_end(
                self.label,
                self.recorder_id.take(),
                heap.bytes_allocated,
            );
            TABLE.with(|t| {
                let mut t = t.borrow_mut();
                let entry = match t.iter_mut().find(|e| e.label == self.label) {
                    Some(e) => e,
                    None => {
                        t.push(Entry {
                            label: self.label,
                            count: 0,
                            total_s: 0.0,
                            alloc_bytes: 0,
                            hist: LatencyHist::new(),
                        });
                        t.last_mut().expect("just pushed")
                    }
                };
                entry.count += 1;
                entry.total_s += dt;
                entry.alloc_bytes += heap.bytes_allocated;
                entry.hist.record_s(dt);
            });
        }
    }

    /// Drains this thread's span table, first-opened label first.
    pub fn take_spans() -> Vec<SpanStat> {
        TABLE.with(|t| {
            t.borrow_mut()
                .drain(..)
                .map(|e| SpanStat {
                    label: e.label,
                    count: e.count,
                    total_s: e.total_s,
                    p50_s: e.hist.percentile_s(0.50),
                    p99_s: e.hist.percentile_s(0.99),
                    max_s: e.hist.max_s(),
                    alloc_bytes: e.alloc_bytes,
                })
                .collect()
        })
    }

    /// One worker thread's span aggregates, drained with their
    /// histograms intact so a parent thread can absorb them losslessly.
    /// Opaque; with the `spans` feature off this is a unit struct.
    #[must_use = "drained spans are lost unless absorbed"]
    pub struct RawSpans(Vec<Entry>);

    /// Drains this thread's span table with histograms intact, for
    /// handing back to a parent thread (see [`absorb_raw_spans`]).
    pub fn drain_raw_spans() -> RawSpans {
        RawSpans(TABLE.with(|t| t.borrow_mut().drain(..).collect()))
    }

    /// Folds a worker's drained span aggregates into this thread's
    /// table: counts and totals sum, histograms merge bucket-wise
    /// (preserving exact min/max). Callers absorb worker shards in a
    /// fixed order so the resulting label order is deterministic.
    pub fn absorb_raw_spans(raw: RawSpans) {
        TABLE.with(|t| {
            let mut t = t.borrow_mut();
            for e in raw.0 {
                match t.iter_mut().find(|dst| dst.label == e.label) {
                    Some(dst) => {
                        dst.count += e.count;
                        dst.total_s += e.total_s;
                        dst.alloc_bytes += e.alloc_bytes;
                        dst.hist.merge(&e.hist);
                    }
                    None => t.push(e),
                }
            }
        });
    }
}

#[cfg(feature = "spans")]
pub use enabled::{absorb_raw_spans, drain_raw_spans, span, take_spans, RawSpans, SpanGuard};

#[cfg(not(feature = "spans"))]
mod disabled {
    use super::SpanStat;

    /// Unit-sized guard; the disabled probe compiles to nothing.
    #[must_use = "a span measures the scope holding the guard"]
    pub struct SpanGuard;

    /// Opens a (disabled) timing span; `label` is ignored.
    #[inline(always)]
    pub fn span(_label: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Always empty with spans disabled.
    #[inline]
    pub fn take_spans() -> Vec<SpanStat> {
        Vec::new()
    }

    /// Unit-sized stand-in; with spans disabled there is nothing to
    /// drain or absorb.
    #[must_use = "drained spans are lost unless absorbed"]
    pub struct RawSpans;

    /// Disabled: returns the unit stand-in.
    #[inline(always)]
    pub fn drain_raw_spans() -> RawSpans {
        RawSpans
    }

    /// Disabled: a no-op.
    #[inline(always)]
    pub fn absorb_raw_spans(_raw: RawSpans) {}
}

#[cfg(not(feature = "spans"))]
pub use disabled::{absorb_raw_spans, drain_raw_spans, span, take_spans, RawSpans, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_empty_enabled_spans_record() {
        {
            let _g = span("unit_test_region");
            std::hint::black_box(1 + 1);
        }
        let stats = take_spans();
        if spans_enabled() {
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].label, "unit_test_region");
            assert_eq!(stats[0].count, 1);
            assert!(stats[0].total_s >= 0.0);
            assert!(stats[0].max_s >= stats[0].p50_s || stats[0].count == 1);
            assert!(take_spans().is_empty(), "drained");
        } else {
            assert!(stats.is_empty());
        }
    }

    #[test]
    fn raw_spans_round_trip_across_threads() {
        let _ = take_spans(); // start from a clean table
        {
            let _g = span("raw_parent");
        }
        let raw = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    {
                        let _g = span("raw_parent");
                    }
                    {
                        let _g = span("raw_child_only");
                    }
                    drain_raw_spans()
                })
                .join()
                .expect("worker")
        });
        absorb_raw_spans(raw);
        let stats = take_spans();
        if spans_enabled() {
            // Shared label merged (count 2), worker-only label appended.
            assert_eq!(stats.len(), 2, "{stats:?}");
            assert_eq!(stats[0].label, "raw_parent");
            assert_eq!(stats[0].count, 2);
            assert_eq!(stats[1].label, "raw_child_only");
            assert_eq!(stats[1].count, 1);
        } else {
            assert!(stats.is_empty());
        }
    }

    #[test]
    fn enabled_spans_feed_an_active_recorder() {
        crate::recorder_start(64);
        {
            let _outer = span("rec_outer");
            let _inner = span("rec_inner");
        }
        let trace = crate::recorder_stop().expect("recorder was started");
        let _ = take_spans(); // keep the aggregate table clean for other tests
        if spans_enabled() {
            assert_eq!(trace.events.len(), 4, "two begin/end pairs");
            let rows = trace.summary();
            assert_eq!(rows.len(), 2);
        } else {
            assert!(trace.events.is_empty(), "no probes compiled in");
        }
    }
}
