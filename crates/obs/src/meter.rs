//! The [`Meter`] abstraction: monomorphized work counters.
//!
//! Every instrumented kernel in `tsdtw-core` is generic over
//! `M: Meter` and calls the trait's recording methods at the points
//! where work happens (a DP cell evaluated, a candidate pruned, a row
//! abandoned). The default sink, [`NoMeter`], implements every method
//! as an empty `#[inline]` body; after monomorphization the compiler
//! erases the calls entirely, so the public un-metered entry points —
//! which delegate with `&mut NoMeter` — keep their original machine
//! code. The `meter_ablation` bench group in `tsdtw-bench` checks this
//! stays true (<2% overhead on banded DTW).
//!
//! [`WorkMeter`] is the recording sink. Its counters map one-to-one to
//! the quantities in the paper's Section 3 argument: `cells` is the
//! number of DP recurrences actually executed, `window_cells` the
//! admissible-band area, and `levels` the FastDTW per-resolution
//! breakdown whose sum the `cells` experiment compares against the
//! cDTW band area.

use crate::funnel::{Funnel, FunnelStage};
use crate::json::Json;

/// Which lower bound was invoked, for [`Meter::lb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbKind {
    /// LB_Kim (constant-time endpoint bound).
    Kim,
    /// LB_Keogh (envelope bound), either orientation.
    Keogh,
    /// LB_Improved (Lemire's two-pass refinement).
    Improved,
    /// LB_Yi (sum over values outside the min/max range).
    Yi,
}

/// Where a pruning cascade disposed of a candidate, for
/// [`Meter::prune`]. Mirrors `PruneStage` in
/// `tsdtw-core::lower_bounds::cascade` (which maps into this; `obs` is
/// a leaf crate and cannot depend on core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageTag {
    /// Pruned by LB_Kim.
    Kim,
    /// Pruned by LB_Keogh(query → candidate).
    KeoghQC,
    /// Pruned by LB_Keogh(candidate → query).
    KeoghCQ,
    /// Early-abandoned inside the banded DTW.
    DtwAbandoned,
    /// Survived every filter; exact DTW computed.
    DtwExact,
}

/// One resolution level of a FastDTW run, for [`Meter::fastdtw_level`].
///
/// `window_cells = projected_cells + expanded_cells`: the cells the
/// low-resolution warp path projects onto plus the extra cells the
/// radius dilation admits. The paper's Section 3 compares the sum of
/// `window_cells` over all levels against the single-level band area of
/// cDTW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDtwLevel {
    /// Resolution length of `x` at this level.
    pub len_x: usize,
    /// Resolution length of `y` at this level.
    pub len_y: usize,
    /// Admissible cells in this level's window.
    pub window_cells: u64,
    /// Cells covered by projecting the coarser level's path.
    pub projected_cells: u64,
    /// Additional cells admitted by the radius dilation.
    pub expanded_cells: u64,
    /// Whether this level was the full-DTW base case.
    pub base_case: bool,
}

crate::impl_to_json!(FastDtwLevel {
    len_x,
    len_y,
    window_cells,
    projected_cells,
    expanded_cells,
    base_case,
});

/// A sink for work accounting events.
///
/// All methods default to empty `#[inline]` bodies, so a sink only
/// overrides what it cares about and [`NoMeter`] overrides nothing.
pub trait Meter {
    /// Whether this sink records anything. Kernels consult it before
    /// computing *expensive arguments* that exist only for metering
    /// (e.g. FastDTW's separate projection-only window); for `NoMeter`
    /// it is a constant `false`, so the guarded block is statically
    /// dead after monomorphization.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// `n` DP cell recurrences were evaluated.
    #[inline]
    fn cells(&mut self, n: u64) {
        let _ = n;
    }

    /// A DP pass began over a window admitting `n` cells (the band
    /// area for cDTW; the projected+expanded window for FastDTW).
    #[inline]
    fn window_cells(&mut self, n: u64) {
        let _ = n;
    }

    /// A DP scratch buffer of `bytes` was in use; the meter keeps the
    /// maximum seen.
    #[inline]
    fn dp_buffer_bytes(&mut self, bytes: u64) {
        let _ = bytes;
    }

    /// One FastDTW resolution level completed.
    #[inline]
    fn fastdtw_level(&mut self, level: FastDtwLevel) {
        let _ = level;
    }

    /// A lower bound was invoked.
    #[inline]
    fn lb(&mut self, kind: LbKind) {
        let _ = kind;
    }

    /// An LB_Keogh envelope was built over `points` points.
    #[inline]
    fn envelope_built(&mut self, points: u64) {
        let _ = points;
    }

    /// A pruning cascade disposed of one candidate at `stage`.
    #[inline]
    fn prune(&mut self, stage: StageTag) {
        let _ = stage;
    }

    /// An early-abandoning DTW finished having filled `filled` of
    /// `total` rows (`filled == total` means it ran to completion).
    #[inline]
    fn ea_rows(&mut self, filled: u64, total: u64) {
        let _ = (filled, total);
    }

    /// A series entered the RLE-DTW kernel encoded as `runs` runs.
    #[inline]
    fn rle_encoded(&mut self, runs: u64) {
        let _ = runs;
    }

    /// `Kernel::Auto` ran its run-compressibility probe (one O(N) pass
    /// over both series) to decide whether to dispatch to the RLE
    /// backend. Recorded whether or not RLE is picked, so probe cost on
    /// paths that can never take the RLE route is observable.
    #[inline]
    fn rle_probe(&mut self) {}

    /// A query-batched DP group was dispatched with `lanes` active
    /// lanes (1 ≤ lanes ≤ `batch::LANES`; padding lanes are not
    /// counted).
    #[inline]
    fn batch_group(&mut self, lanes: u64) {
        let _ = lanes;
    }

    /// One run-pair block of the RLE-DTW block decomposition was
    /// solved, computing `boundary_cells` boundary DP values (the RLE
    /// analogue of [`cells`](Self::cells): the work actually done,
    /// compared against the dense band area in the `rle` experiment).
    #[inline]
    fn rle_block(&mut self, boundary_cells: u64) {
        let _ = boundary_cells;
    }

    /// A candidate reached funnel `stage` of a pruning cascade.
    /// Together with [`prune`](Self::prune) (which records the funnel
    /// disposition) this drives the per-stage EXPLAIN ledger.
    #[inline]
    fn stage_entered(&mut self, stage: FunnelStage) {
        let _ = stage;
    }

    /// `units` of deterministic funnel cost (see the cost-proxy table
    /// in [`funnel`](crate::funnel)) were spent in `stage`.
    #[inline]
    fn stage_cost(&mut self, stage: FunnelStage, units: u64) {
        let _ = (stage, units);
    }

    /// A bound-tightness sample for `stage`: `LB / true-DTW` in
    /// parts-per-billion (see [`tightness_ppb`](crate::tightness_ppb)).
    #[inline]
    fn stage_tightness(&mut self, stage: FunnelStage, ratio_ppb: u64) {
        let _ = (stage, ratio_ppb);
    }
}

/// The do-nothing sink; the default for every un-metered entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoMeter;

impl Meter for NoMeter {}

impl<M: Meter + ?Sized> Meter for &mut M {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn cells(&mut self, n: u64) {
        (**self).cells(n);
    }

    #[inline]
    fn window_cells(&mut self, n: u64) {
        (**self).window_cells(n);
    }

    #[inline]
    fn dp_buffer_bytes(&mut self, bytes: u64) {
        (**self).dp_buffer_bytes(bytes);
    }

    #[inline]
    fn fastdtw_level(&mut self, level: FastDtwLevel) {
        (**self).fastdtw_level(level);
    }

    #[inline]
    fn lb(&mut self, kind: LbKind) {
        (**self).lb(kind);
    }

    #[inline]
    fn envelope_built(&mut self, points: u64) {
        (**self).envelope_built(points);
    }

    #[inline]
    fn prune(&mut self, stage: StageTag) {
        (**self).prune(stage);
    }

    #[inline]
    fn ea_rows(&mut self, filled: u64, total: u64) {
        (**self).ea_rows(filled, total);
    }

    #[inline]
    fn rle_encoded(&mut self, runs: u64) {
        (**self).rle_encoded(runs);
    }

    #[inline]
    fn rle_block(&mut self, boundary_cells: u64) {
        (**self).rle_block(boundary_cells);
    }

    #[inline]
    fn rle_probe(&mut self) {
        (**self).rle_probe();
    }

    #[inline]
    fn batch_group(&mut self, lanes: u64) {
        (**self).batch_group(lanes);
    }

    #[inline]
    fn stage_entered(&mut self, stage: FunnelStage) {
        (**self).stage_entered(stage);
    }

    #[inline]
    fn stage_cost(&mut self, stage: FunnelStage, units: u64) {
        (**self).stage_cost(stage, units);
    }

    #[inline]
    fn stage_tightness(&mut self, stage: FunnelStage, ratio_ppb: u64) {
        (**self).stage_tightness(stage, ratio_ppb);
    }
}

/// The single-source table of [`WorkMeter`]'s scalar counters.
///
/// Each entry is `(field, "dotted.report.name", gate, fold)`. Every
/// consumer of the counters is generated from this one list — the
/// struct-field merge in [`WorkMeter::merge`], the name list
/// [`WorkMeter::COUNTER_NAMES`], the by-name lookup
/// [`WorkMeter::field`], the ordered dump
/// [`WorkMeter::counter_values`], and the leaf emission inside
/// [`WorkMeter::report`] / [`WorkMeter::summary`] — so a counter added
/// here shows up everywhere at once and cannot drift between the
/// human-readable and JSON views (`counter_table_matches_report`
/// locks this).
///
/// * `field` — the `WorkMeter` struct field.
/// * name — where the value lands in the `work` JSON section; a dot
///   nests it one object deep (`"prune.kim"` → `work.prune.kim`).
/// * `gate` — the group whose counters must be non-zero for these
///   leaves to be emitted at all (`always` leaves are unconditional).
/// * `fold` — `add` or `max` under merge.
macro_rules! for_each_work_counter {
    ($cb:ident! ( $($args:tt)* )) => {
        $cb! { ($($args)*)
            { cells, "cells", always, add },
            { window_cells, "window_cells", always, add },
            { dp_peak_bytes, "dp_peak_bytes", always, max },
            { lb_kim, "lower_bounds.kim", lower_bounds, add },
            { lb_keogh, "lower_bounds.keogh", lower_bounds, add },
            { lb_improved, "lower_bounds.improved", lower_bounds, add },
            { lb_yi, "lower_bounds.yi", lower_bounds, add },
            { envelopes_built, "envelopes_built", envelopes, add },
            { envelope_points, "envelope_points", envelopes, add },
            { pruned_kim, "prune.kim", prune, add },
            { pruned_keogh_qc, "prune.keogh_qc", prune, add },
            { pruned_keogh_cq, "prune.keogh_cq", prune, add },
            { dtw_abandoned, "prune.dtw_abandoned", prune, add },
            { dtw_exact, "prune.dtw_exact", prune, add },
            { ea_invocations, "early_abandon.invocations", early_abandon, add },
            { ea_rows_filled, "early_abandon.rows_filled", early_abandon, add },
            { ea_rows_total, "early_abandon.rows_total", early_abandon, add },
            { rle_runs, "rle.runs", rle, add },
            { rle_blocks, "rle.blocks", rle, add },
            { rle_boundary_cells, "rle.boundary_cells", rle, add },
            { rle_probes, "rle.probes", rle, add },
            { batch_groups, "batch.groups", batch, add },
            { batch_lanes, "batch.lanes", batch, add },
        }
    };
}

macro_rules! fold_counter {
    (add, $dst:expr, $src:expr) => {
        $dst += $src
    };
    (max, $dst:expr, $src:expr) => {
        $dst = $dst.max($src)
    };
}

macro_rules! emit_counter_api {
    (() $({ $field:ident, $name:literal, $gate:ident, $fold:ident },)*) => {
        /// Canonical dotted names of every scalar counter, in report
        /// emission order (generated from the counter table).
        pub const COUNTER_NAMES: &'static [&'static str] = &[$($name),*];

        /// Fold discipline for each counter, aligned index-for-index
        /// with [`COUNTER_NAMES`](Self::COUNTER_NAMES): `"add"` for
        /// accumulating counters, `"max"` for high-water marks. The
        /// metrics registry consumes this to pick Prometheus kinds
        /// (add → counter, max → gauge).
        pub const COUNTER_FOLDS: &'static [&'static str] = &[$(stringify!($fold)),*];

        /// Every scalar counter as `(dotted_name, value)`, in table
        /// order.
        pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
            vec![$(($name, self.$field)),*]
        }

        /// Looks a scalar counter up by its dotted report name; `None`
        /// for names not in [`COUNTER_NAMES`](Self::COUNTER_NAMES).
        pub fn field(&self, name: &str) -> Option<u64> {
            match name {
                $($name => Some(self.$field),)*
                _ => None,
            }
        }

        /// Whether `name`'s gate group has recorded anything (an
        /// `always` leaf is unconditionally open). Leaves of a closed
        /// gate are omitted from [`report`](Self::report) and
        /// [`summary`](Self::summary).
        fn gate_open(&self, name: &str) -> bool {
            let gate = match name {
                $($name => stringify!($gate),)*
                _ => return false,
            };
            if gate == "always" {
                return true;
            }
            let mut sum = 0u64;
            $(
                if stringify!($gate) == gate {
                    sum += self.$field;
                }
            )*
            sum > 0
        }

        fn merge_counters(&mut self, other: &WorkMeter) {
            $(fold_counter!($fold, self.$field, other.$field);)*
        }
    };
}

/// The recording sink: plain counters, no allocation on the hot path
/// except the per-level `Vec` push (once per FastDTW resolution).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkMeter {
    /// DP cell recurrences evaluated.
    pub cells: u64,
    /// Admissible cells across all DP windows entered.
    pub window_cells: u64,
    /// Peak DP scratch bytes observed.
    pub dp_peak_bytes: u64,
    /// FastDTW per-level breakdown, outermost call's coarsest level first.
    pub levels: Vec<FastDtwLevel>,
    /// LB_Kim invocations.
    pub lb_kim: u64,
    /// LB_Keogh invocations (either orientation).
    pub lb_keogh: u64,
    /// LB_Improved invocations.
    pub lb_improved: u64,
    /// LB_Yi invocations.
    pub lb_yi: u64,
    /// Envelopes built.
    pub envelopes_built: u64,
    /// Total points across built envelopes.
    pub envelope_points: u64,
    /// Candidates pruned by LB_Kim.
    pub pruned_kim: u64,
    /// Candidates pruned by LB_Keogh(q→c).
    pub pruned_keogh_qc: u64,
    /// Candidates pruned by LB_Keogh(c→q).
    pub pruned_keogh_cq: u64,
    /// Candidates abandoned inside banded DTW.
    pub dtw_abandoned: u64,
    /// Candidates that needed the exact DTW.
    pub dtw_exact: u64,
    /// Early-abandoning DTW invocations.
    pub ea_invocations: u64,
    /// Rows actually filled across those invocations.
    pub ea_rows_filled: u64,
    /// Rows that would have been filled without abandoning.
    pub ea_rows_total: u64,
    /// Runs entering the RLE-DTW kernel (both series).
    pub rle_runs: u64,
    /// Run-pair blocks solved by the RLE-DTW block decomposition.
    pub rle_blocks: u64,
    /// Boundary DP values computed across those blocks — the RLE
    /// analogue of `cells`.
    pub rle_boundary_cells: u64,
    /// `Kernel::Auto` compressibility probes run (the O(N) run-count
    /// pass at full-window dispatch points).
    pub rle_probes: u64,
    /// Query-batched DP groups dispatched.
    pub batch_groups: u64,
    /// Active lanes summed across those groups (padding lanes
    /// excluded) — `batch_lanes / batch_groups` is the mean occupancy.
    pub batch_lanes: u64,
    /// Per-stage prune-funnel ledger (EXPLAIN analytics). Not a table
    /// counter: it has its own `funnel` report section rather than
    /// leaves inside `work`, so existing `work` baselines stay
    /// byte-identical.
    pub funnel: Funnel,
}

/// Sets `value` at a dotted path inside an object, creating the
/// one-deep intermediate object on demand (the counter table nests at
/// most one level).
fn set_dotted(j: &mut Json, path: &'static str, value: u64) {
    let Some((group, leaf)) = path.split_once('.') else {
        j.set(path, value);
        return;
    };
    if matches!(j.get(group), None | Some(Json::Null)) {
        j.set(group, Json::object());
    }
    if let Json::Obj(entries) = j {
        if let Some((_, sub)) = entries.iter_mut().find(|(k, _)| k == group) {
            sub.set(leaf, value);
        }
    }
}

impl WorkMeter {
    for_each_work_counter!(emit_counter_api!());

    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total candidates the pruning cascade disposed of (all stages).
    pub fn candidates(&self) -> u64 {
        self.pruned_kim
            + self.pruned_keogh_qc
            + self.pruned_keogh_cq
            + self.dtw_abandoned
            + self.dtw_exact
    }

    /// Evaluated-cells over admissible-cells; `None` before any DP ran.
    pub fn fill_fraction(&self) -> Option<f64> {
        if self.window_cells == 0 {
            None
        } else {
            Some(self.cells as f64 / self.window_cells as f64)
        }
    }

    /// Sum of per-level window cells — FastDTW's total touched-cell
    /// account that the paper compares against the cDTW band area.
    pub fn fastdtw_total_window_cells(&self) -> u64 {
        self.levels.iter().map(|l| l.window_cells).sum()
    }

    /// Folds another meter's counters into this one (used when worker
    /// threads each carry their own meter). Scalar folding is generated
    /// from the counter table; `levels` (the only non-scalar field)
    /// concatenates in call order.
    pub fn merge(&mut self, other: &WorkMeter) {
        self.merge_counters(other);
        self.levels.extend(other.levels.iter().copied());
        self.funnel.merge(&other.funnel);
    }

    /// The `work` section emitted into bench reports and `--stats-json`.
    ///
    /// Scalar leaves come straight from the counter table (gated groups
    /// are omitted until they record something); the derived values —
    /// `fill_fraction`, the FastDTW level breakdown, and the prune
    /// `candidates` total — are appended after.
    pub fn report(&self) -> Json {
        let mut j = Json::object();
        for (name, value) in self.counter_values() {
            if self.gate_open(name) {
                set_dotted(&mut j, name, value);
            }
        }
        if let Some(f) = self.fill_fraction() {
            j.set("fill_fraction", f);
        }
        if !self.levels.is_empty() {
            j.set("fastdtw_levels", &self.levels);
            j.set(
                "fastdtw_total_window_cells",
                self.fastdtw_total_window_cells(),
            );
        }
        if self.candidates() > 0 {
            set_dotted(&mut j, "prune.candidates", self.candidates());
        }
        j
    }

    /// Human-readable multi-line counter summary for `--stats`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "work: {} DP cells evaluated / {} cells in window",
            self.cells, self.window_cells
        ));
        if let Some(f) = self.fill_fraction() {
            out.push_str(&format!(" ({:.1}% filled)", f * 100.0));
        }
        out.push('\n');
        out.push_str(&format!("  peak DP buffer: {} bytes\n", self.dp_peak_bytes));
        if !self.levels.is_empty() {
            out.push_str(&format!(
                "  fastdtw: {} levels, {} total window cells\n",
                self.levels.len(),
                self.fastdtw_total_window_cells()
            ));
            for (i, l) in self.levels.iter().enumerate() {
                out.push_str(&format!(
                    "    level {i}: {}x{} {} ({} projected + {} radius-expanded)\n",
                    l.len_x,
                    l.len_y,
                    if l.base_case { "full DP" } else { "windowed" },
                    l.projected_cells,
                    l.expanded_cells,
                ));
            }
        }
        if self.envelopes_built > 0 {
            out.push_str(&format!(
                "  envelopes built: {} ({} points)\n",
                self.envelopes_built, self.envelope_points
            ));
        }
        // The grouped lines are generated from the counter table, so
        // they always show exactly the leaves the JSON report emits.
        for (group, title) in [
            ("lower_bounds", "lower bounds"),
            ("prune", "prune cascade"),
            ("early_abandon", "early abandon"),
            ("rle", "rle kernel"),
            ("batch", "batched kernel"),
        ] {
            let leaves: Vec<String> = self
                .counter_values()
                .into_iter()
                .filter(|(name, _)| {
                    name.split_once('.').is_some_and(|(g, _)| g == group) && self.gate_open(name)
                })
                .map(|(name, value)| {
                    let leaf = name.split_once('.').expect("filtered to dotted").1;
                    format!("{leaf}={value}")
                })
                .collect();
            if leaves.is_empty() {
                continue;
            }
            if group == "prune" {
                out.push_str(&format!(
                    "  {title} ({} candidates): {}\n",
                    self.candidates(),
                    leaves.join(" ")
                ));
            } else {
                out.push_str(&format!("  {title}: {}\n", leaves.join(" ")));
            }
        }
        out
    }
}

/// A [`Meter`] that can be sharded across worker threads and merged
/// back deterministically.
///
/// The parallel executor in `tsdtw-mining::par` gives every work item
/// its own shard (created with [`fresh`](MeterShard::fresh) on the
/// worker thread) and folds the shards into the caller's meter **in
/// item-index order** with [`absorb`](MeterShard::absorb). Because
/// counter addition is associative and commutative and the only
/// order-sensitive field (`levels`) is concatenated in item order, the
/// merged meter is bit-identical to the one a serial run would have
/// produced — at any thread count.
pub trait MeterShard: Meter + Send + Sized {
    /// A fresh, empty shard of this meter kind.
    fn fresh() -> Self;

    /// Folds a worker shard back into this meter. Callers must absorb
    /// shards in item-index order to preserve the serial ordering of
    /// order-sensitive fields.
    fn absorb(&mut self, shard: Self);
}

impl MeterShard for NoMeter {
    #[inline]
    fn fresh() -> Self {
        NoMeter
    }

    #[inline]
    fn absorb(&mut self, _shard: Self) {}
}

impl MeterShard for WorkMeter {
    fn fresh() -> Self {
        WorkMeter::new()
    }

    fn absorb(&mut self, shard: Self) {
        self.merge(&shard);
    }
}

impl Meter for WorkMeter {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn cells(&mut self, n: u64) {
        self.cells += n;
    }

    #[inline]
    fn window_cells(&mut self, n: u64) {
        self.window_cells += n;
    }

    #[inline]
    fn dp_buffer_bytes(&mut self, bytes: u64) {
        self.dp_peak_bytes = self.dp_peak_bytes.max(bytes);
    }

    #[inline]
    fn fastdtw_level(&mut self, level: FastDtwLevel) {
        self.levels.push(level);
    }

    #[inline]
    fn lb(&mut self, kind: LbKind) {
        match kind {
            LbKind::Kim => self.lb_kim += 1,
            LbKind::Keogh => self.lb_keogh += 1,
            LbKind::Improved => self.lb_improved += 1,
            LbKind::Yi => self.lb_yi += 1,
        }
    }

    #[inline]
    fn envelope_built(&mut self, points: u64) {
        self.envelopes_built += 1;
        self.envelope_points += points;
    }

    #[inline]
    fn prune(&mut self, stage: StageTag) {
        // Dispositions also drive the funnel ledger: each prune tag
        // maps onto its funnel stage's `pruned` column, except
        // `DtwExact`, which is the candidate *surviving* the whole
        // funnel (survivors are derived as entered − pruned).
        match stage {
            StageTag::Kim => {
                self.pruned_kim += 1;
                self.funnel.record_pruned(FunnelStage::Kim);
            }
            StageTag::KeoghQC => {
                self.pruned_keogh_qc += 1;
                self.funnel.record_pruned(FunnelStage::KeoghQC);
            }
            StageTag::KeoghCQ => {
                self.pruned_keogh_cq += 1;
                self.funnel.record_pruned(FunnelStage::KeoghCQ);
            }
            StageTag::DtwAbandoned => {
                self.dtw_abandoned += 1;
                self.funnel.record_pruned(FunnelStage::Dtw);
            }
            StageTag::DtwExact => self.dtw_exact += 1,
        }
    }

    #[inline]
    fn ea_rows(&mut self, filled: u64, total: u64) {
        self.ea_invocations += 1;
        self.ea_rows_filled += filled;
        self.ea_rows_total += total;
    }

    #[inline]
    fn rle_encoded(&mut self, runs: u64) {
        self.rle_runs += runs;
    }

    #[inline]
    fn rle_block(&mut self, boundary_cells: u64) {
        self.rle_blocks += 1;
        self.rle_boundary_cells += boundary_cells;
    }

    #[inline]
    fn rle_probe(&mut self) {
        self.rle_probes += 1;
    }

    #[inline]
    fn batch_group(&mut self, lanes: u64) {
        self.batch_groups += 1;
        self.batch_lanes += lanes;
    }

    #[inline]
    fn stage_entered(&mut self, stage: FunnelStage) {
        self.funnel.record_entered(stage);
    }

    #[inline]
    fn stage_cost(&mut self, stage: FunnelStage, units: u64) {
        self.funnel.record_cost(stage, units);
    }

    #[inline]
    fn stage_tightness(&mut self, stage: FunnelStage, ratio_ppb: u64) {
        self.funnel.record_tightness(stage, ratio_ppb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_meter_is_inert() {
        let mut m = NoMeter;
        m.cells(10);
        m.prune(StageTag::Kim);
        m.ea_rows(1, 2);
        assert_eq!(m, NoMeter);
    }

    #[test]
    fn work_meter_accumulates() {
        let mut m = WorkMeter::new();
        m.cells(5);
        m.cells(7);
        m.window_cells(20);
        m.dp_buffer_bytes(100);
        m.dp_buffer_bytes(64);
        m.lb(LbKind::Keogh);
        m.lb(LbKind::Keogh);
        m.envelope_built(32);
        m.prune(StageTag::Kim);
        m.prune(StageTag::DtwExact);
        m.ea_rows(3, 10);
        assert_eq!(m.cells, 12);
        assert_eq!(m.window_cells, 20);
        assert_eq!(m.dp_peak_bytes, 100);
        assert_eq!(m.lb_keogh, 2);
        assert_eq!(m.envelopes_built, 1);
        assert_eq!(m.envelope_points, 32);
        assert_eq!(m.candidates(), 2);
        assert_eq!(m.ea_rows_filled, 3);
        assert_eq!(m.ea_rows_total, 10);
        assert_eq!(m.fill_fraction(), Some(0.6));
    }

    #[test]
    fn merge_folds_counters_and_maxes_peak() {
        let mut a = WorkMeter::new();
        a.cells(1);
        a.dp_buffer_bytes(10);
        let mut b = WorkMeter::new();
        b.cells(2);
        b.dp_buffer_bytes(30);
        b.fastdtw_level(FastDtwLevel {
            len_x: 4,
            len_y: 4,
            window_cells: 16,
            projected_cells: 16,
            expanded_cells: 0,
            base_case: true,
        });
        a.merge(&b);
        assert_eq!(a.cells, 3);
        assert_eq!(a.dp_peak_bytes, 30);
        assert_eq!(a.levels.len(), 1);
        assert_eq!(a.fastdtw_total_window_cells(), 16);
    }

    #[test]
    fn report_emits_populated_sections_only() {
        let mut m = WorkMeter::new();
        m.cells(4);
        m.window_cells(8);
        let j = m.report();
        assert_eq!(j["cells"], 4u64);
        assert_eq!(j["window_cells"], 8u64);
        assert_eq!(j["fill_fraction"].as_f64().unwrap(), 0.5);
        assert!(j["prune"].is_null());
        assert!(j["fastdtw_levels"].is_null());

        m.prune(StageTag::DtwExact);
        let j = m.report();
        assert_eq!(j["prune"]["dtw_exact"], 1u64);
        assert_eq!(j["prune"]["candidates"], 1u64);
    }

    #[test]
    fn summary_mentions_key_counters() {
        let mut m = WorkMeter::new();
        m.cells(4);
        m.window_cells(8);
        m.prune(StageTag::Kim);
        let s = m.summary();
        assert!(s.contains("4 DP cells"));
        assert!(s.contains("prune cascade"));
    }

    /// A deterministic pseudo-random meter for the algebra tests.
    fn arbitrary_meter(seed: u64) -> WorkMeter {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 97
        };
        let mut m = WorkMeter::new();
        m.cells(next());
        m.window_cells(next());
        m.dp_buffer_bytes(next());
        m.lb(LbKind::Kim);
        m.lb(LbKind::Keogh);
        m.envelope_built(next());
        m.prune(StageTag::KeoghQC);
        m.prune(StageTag::DtwExact);
        m.ea_rows(next() % 10, 10);
        m.rle_encoded(next() + 1);
        m.rle_block(next() + 1);
        m.rle_probe();
        m.batch_group(next() % 8 + 1);
        m.fastdtw_level(FastDtwLevel {
            len_x: (next() + 1) as usize,
            len_y: (next() + 1) as usize,
            window_cells: next(),
            projected_cells: next(),
            expanded_cells: next(),
            base_case: next() % 2 == 0,
        });
        m
    }

    /// Strips the order-sensitive `levels` field so the commutativity
    /// check compares only the plain counters.
    fn counters_only(mut m: WorkMeter) -> WorkMeter {
        m.levels.clear();
        m
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (arbitrary_meter(1), arbitrary_meter(2), arbitrary_meter(3));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_counters_are_commutative() {
        let (a, b) = (arbitrary_meter(7), arbitrary_meter(11));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // `levels` ordering is deliberately order-sensitive; every plain
        // counter commutes.
        assert_eq!(counters_only(ab.clone()), counters_only(ba));
        // ... and the identity element leaves everything unchanged.
        let mut with_zero = a.clone();
        with_zero.merge(&WorkMeter::new());
        assert_eq!(with_zero, a);
    }

    #[test]
    fn shard_fresh_is_empty_and_absorb_matches_merge() {
        assert_eq!(WorkMeter::fresh(), WorkMeter::new());
        let (a, b) = (arbitrary_meter(5), arbitrary_meter(6));
        let mut via_absorb = a.clone();
        via_absorb.absorb(b.clone());
        let mut via_merge = a.clone();
        via_merge.merge(&b);
        assert_eq!(via_absorb, via_merge);
        // NoMeter shards are inert.
        let mut n = NoMeter;
        n.absorb(NoMeter::fresh());
        assert_eq!(n, NoMeter);
    }

    /// Locks the counter table to the JSON report: with every gate
    /// open, each table entry must appear in `report()` at its dotted
    /// path with the value `field()` returns — no drift between the
    /// table, the lookup, and the emission.
    #[test]
    fn counter_table_matches_report() {
        let m = arbitrary_meter(42); // records in every gate group
        let j = m.report();
        assert_eq!(WorkMeter::COUNTER_NAMES.len(), 23);
        for &name in WorkMeter::COUNTER_NAMES {
            let from_field = m.field(name).expect("table names always resolve");
            let from_json = match name.split_once('.') {
                None => &j[name],
                Some((group, leaf)) => &j[group][leaf],
            };
            assert_eq!(
                from_json.as_u64(),
                Some(from_field),
                "report leaf {name} must match the table"
            );
        }
        // counter_values() is the same table in the same order.
        let values = m.counter_values();
        assert_eq!(values.len(), WorkMeter::COUNTER_NAMES.len());
        for ((name, value), &expect) in values.iter().zip(WorkMeter::COUNTER_NAMES) {
            assert_eq!(*name, expect);
            assert_eq!(m.field(name), Some(*value));
        }
        // Unknown names miss cleanly.
        assert_eq!(m.field("no_such_counter"), None);
    }

    /// Gated leaves vanish together: an empty meter reports only the
    /// always-on leaves, exactly as the table's gates dictate.
    #[test]
    fn gates_hide_whole_groups() {
        let m = WorkMeter::new();
        let j = m.report();
        for &name in WorkMeter::COUNTER_NAMES {
            let gated = !matches!(name, "cells" | "window_cells" | "dp_peak_bytes");
            let top = name.split_once('.').map_or(name, |(g, _)| g);
            assert_eq!(
                j[top].is_null(),
                gated,
                "leaf {name} gating disagrees with the table"
            );
        }
    }

    #[test]
    fn rle_hooks_accumulate_into_their_gated_group() {
        let mut m = WorkMeter::new();
        // Empty meter: the whole `rle` group is gated out of the report.
        assert!(m.report()["rle"].is_null());
        m.rle_encoded(3);
        m.rle_encoded(4);
        m.rle_block(11);
        m.rle_block(9);
        assert_eq!(m.rle_runs, 7);
        assert_eq!(m.rle_blocks, 2);
        assert_eq!(m.rle_boundary_cells, 20);
        let j = m.report();
        assert_eq!(j["rle"]["runs"], 7u64);
        assert_eq!(j["rle"]["blocks"], 2u64);
        assert_eq!(j["rle"]["boundary_cells"], 20u64);
        assert!(m.summary().contains("rle kernel"));
        // The dense-cell counters are untouched: the experiment compares
        // `rle.boundary_cells` against the band's `cells` directly.
        assert_eq!(m.cells, 0);
    }

    #[test]
    fn batch_hooks_accumulate_into_their_gated_group() {
        let mut m = WorkMeter::new();
        // Empty meter: the whole `batch` group is gated out of the report.
        assert!(m.report()["batch"].is_null());
        m.batch_group(8);
        m.batch_group(3);
        assert_eq!(m.batch_groups, 2);
        assert_eq!(m.batch_lanes, 11);
        let j = m.report();
        assert_eq!(j["batch"]["groups"], 2u64);
        assert_eq!(j["batch"]["lanes"], 11u64);
        assert!(m.summary().contains("batched kernel"));
        // The batched tier meters its DP work through the ordinary
        // cells/window hooks; the group counters only describe grouping.
        assert_eq!(m.cells, 0);
    }

    #[test]
    fn rle_probe_counts_into_the_rle_group() {
        let mut m = WorkMeter::new();
        assert!(m.report()["rle"].is_null());
        m.rle_probe();
        m.rle_probe();
        assert_eq!(m.rle_probes, 2);
        let j = m.report();
        assert_eq!(j["rle"]["probes"], 2u64);
        // A probe that declines RLE leaves the kernel counters at zero.
        assert_eq!(j["rle"]["runs"], 0u64);
    }

    #[test]
    fn prune_dispositions_ride_into_the_funnel() {
        let mut m = WorkMeter::new();
        m.stage_entered(FunnelStage::Kim);
        m.stage_entered(FunnelStage::Kim);
        m.stage_cost(FunnelStage::Kim, 2);
        m.prune(StageTag::Kim);
        m.stage_entered(FunnelStage::Dtw);
        m.prune(StageTag::DtwExact); // survivor: no funnel prune
        m.stage_tightness(FunnelStage::Kim, 900_000_000);
        assert_eq!(m.funnel.stage(FunnelStage::Kim).entered, 2);
        assert_eq!(m.funnel.stage(FunnelStage::Kim).pruned, 1);
        assert_eq!(m.funnel.stage(FunnelStage::Kim).cost_units, 2);
        assert_eq!(m.funnel.stage(FunnelStage::Kim).tightness.count(), 1);
        assert_eq!(m.funnel.stage(FunnelStage::Dtw).entered, 1);
        assert_eq!(m.funnel.stage(FunnelStage::Dtw).pruned, 0);
        assert_eq!(m.funnel.stage(FunnelStage::Dtw).survived(), 1);
        // The scalar disposition counters are unchanged by the ledger.
        assert_eq!(m.pruned_kim, 1);
        assert_eq!(m.dtw_exact, 1);
        // ... and the funnel stays out of the `work` report section.
        assert!(m.report()["funnel"].is_null());

        // Meter merge folds the funnel with the same shard algebra.
        let mut other = WorkMeter::new();
        other.stage_entered(FunnelStage::Kim);
        other.prune(StageTag::DtwAbandoned);
        m.merge(&other);
        assert_eq!(m.funnel.stage(FunnelStage::Kim).entered, 3);
        assert_eq!(m.funnel.stage(FunnelStage::Dtw).pruned, 1);
    }

    #[test]
    fn meter_through_mut_ref() {
        fn run<M: Meter>(mut m: M) {
            m.cells(3);
        }
        let mut w = WorkMeter::new();
        run(&mut w);
        assert_eq!(w.cells, 3);
    }
}
