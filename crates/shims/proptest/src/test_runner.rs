//! Deterministic case generation for the [`proptest!`](crate::proptest)
//! macro: a per-test seeded PRNG and the run configuration.

/// Number of cases to run per property, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// How many random cases each property is exercised with.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// A small, fast, deterministic PRNG (xoshiro256++), seeded from the test
/// name so every test has a stable, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary 64-bit value via SplitMix64,
    /// the recommended seeding procedure for xoshiro.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds from a test name (FNV-1a hash), so each property gets a
    /// distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let mut a = TestRng::for_test("t1");
        let mut b = TestRng::for_test("t2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = TestRng::from_seed(9);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn usize_in_respects_bounds() {
        let mut r = TestRng::from_seed(10);
        for _ in 0..1000 {
            let v = r.usize_in(3, 9);
            assert!((3..=9).contains(&v));
        }
    }
}
