//! The [`Strategy`] trait and the strategy implementations the workspace's
//! property tests rely on: numeric ranges, tuples, and `prop_flat_map`.

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree or shrinking: a
/// strategy is simply a generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps each generated value through `f` to obtain a dependent
    /// strategy, then draws from that (proptest's monadic bind).
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }

    /// Maps each generated value through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(isize, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::vec;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let u = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&u));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let s = (-5i64..-1).generate(&mut rng);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = vec(0.0f64..1.0, 2usize..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = vec(0u64..9, 4usize..=4).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn flat_map_dependent_pairs() {
        let strat =
            (1usize..6).prop_flat_map(|n| (vec(0.0f64..1.0, n..=n), vec(0.0f64..1.0, n..=n)));
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::from_seed(4);
        let doubled = (1usize..4).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0);
        assert_eq!(Just(7u32).generate(&mut rng), 7);
    }
}
