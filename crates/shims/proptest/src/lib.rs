//! Offline stand-in for the `proptest` crate.
//!
//! The real `proptest` cannot be vendored into this environment, so this
//! shim implements exactly the subset of its surface the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header and `pattern in strategy`
//!   arguments);
//! * range strategies over the primitive numeric types;
//! * `prop::collection::vec` with a `Range`/`RangeInclusive` size;
//! * tuple strategies and [`Strategy::prop_flat_map`](crate::strategy::Strategy::prop_flat_map);
//! * `prop_assert!` / `prop_assert_eq!` (mapped to panicking asserts).
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (derived from the test name, so failures are perfectly
//! reproducible), and there is **no shrinking** — a failing case reports
//! its inputs via the assertion message instead.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: a half-open or inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident(
            $($arg:pat in $strat:expr),* $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property; panics (failing the test case) when violated.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of two expressions within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
