//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — enough to keep
//! every `benches/*.rs` file source-compatible with the real crate — while
//! actually measuring: each benchmark is warmed up, an iteration count is
//! calibrated to a per-sample time budget, and mean / median / p95 of the
//! per-iteration time are printed in criterion's familiar one-line format.
//!
//! Command line: a single optional substring filter argument selects which
//! benchmarks run (like criterion); `--bench`/`--test` flags passed by
//! cargo are accepted and ignored (under `--test` each benchmark runs one
//! iteration only, mirroring criterion's test mode).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = t0.elapsed();
    }
}

/// The benchmark manager. Construct with [`Criterion::default`].
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
    sample_budget: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                a if a.starts_with("--") => {} // ignore unknown criterion flags
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            test_mode,
            sample_size: 20,
            sample_budget: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkName, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let sample_size = self.sample_size;
        self.run_one(&name.into_name(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, full_name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut elapsed = Duration::ZERO;
        if self.test_mode {
            f(&mut Bencher {
                iters: 1,
                elapsed: &mut elapsed,
            });
            println!("{full_name}: ok (test mode)");
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut Bencher {
                iters: 1,
                elapsed: &mut elapsed,
            });
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters =
            ((self.sample_budget.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            f(&mut Bencher {
                iters,
                elapsed: &mut elapsed,
            });
            samples.push(elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        let p95 = samples[((samples.len() as f64 * 0.95) as usize).min(samples.len() - 1)];
        println!(
            "{full_name:<50} time: [mean {} median {} p95 {}]  ({} samples x {} iters)",
            human(mean),
            human(median),
            human(p95),
            samples.len(),
            iters
        );
    }
}

/// Adaptive time formatting for the one-line reports.
fn human(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `f` under `{group}/{name}`.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkName, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name.into_name());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `{group}/{id}`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 12).full, "f/12");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
    }

    #[test]
    fn bencher_times_iterations() {
        let mut elapsed = Duration::ZERO;
        let mut b = Bencher {
            iters: 10,
            elapsed: &mut elapsed,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 10);
        assert!(elapsed >= Duration::ZERO); // recorded
    }

    #[test]
    fn human_units() {
        assert!(human(2.0).contains('s'));
        assert!(human(2.0e-3).contains("ms"));
        assert!(human(2.0e-6).contains("µs"));
        assert!(human(2.0e-9).contains("ns"));
    }
}
