//! Property-based tests over the mining layer: exactness of accelerated
//! paths, clustering invariants, and search equivalences on randomized
//! inputs.

use proptest::prelude::*;
use tsdtw_mining::cluster::{agglomerative, k_medoids, Linkage};
use tsdtw_mining::dataset_views::LabeledView;
use tsdtw_mining::knn::{classify_knn, knn_brute_force, nn_brute_force, nn_cascade, DistanceSpec};
use tsdtw_mining::pairwise::{pairwise_matrix, DistanceMatrix};
use tsdtw_mining::search::{subsequence_search, subsequence_search_brute};

fn labeled_pool(count: usize, len: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>)> {
    (
        prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, len..=len),
            count..=count,
        ),
        prop::collection::vec(0usize..3, count..=count),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cascade's 1-NN is exactly brute force's, on arbitrary data.
    #[test]
    fn cascade_equals_brute_force((series, labels) in labeled_pool(12, 24), band in 0usize..6) {
        let view = LabeledView::new(&series, &labels).unwrap();
        for (q, s) in series.iter().enumerate().take(3) {
            let bf = nn_brute_force(&view, s, DistanceSpec::CdtwBand(band), q).unwrap();
            let fast = nn_cascade(&view, s, band, q).unwrap();
            prop_assert_eq!(bf.index, fast.index);
            prop_assert!((bf.distance - fast.distance).abs() < 1e-9);
        }
    }

    /// k-NN distances are sorted and k=1 equals 1-NN.
    #[test]
    fn knn_consistency((series, labels) in labeled_pool(10, 16), k in 1usize..5) {
        let view = LabeledView::new(&series, &labels).unwrap();
        let nns = knn_brute_force(&view, &series[0], DistanceSpec::Euclidean, k, 0).unwrap();
        prop_assert_eq!(nns.len(), k.min(9));
        for w in nns.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        let nn = nn_brute_force(&view, &series[0], DistanceSpec::Euclidean, 0).unwrap();
        prop_assert_eq!(nns[0].index, nn.index);
        // classify_knn never fails on valid input.
        let _ = classify_knn(&view, &series[0], DistanceSpec::Euclidean, k).unwrap();
    }

    /// Pairwise matrices are symmetric with zero diagonals regardless of
    /// thread count.
    #[test]
    fn pairwise_symmetry((series, _) in labeled_pool(8, 12), threads in 1usize..5) {
        let m = pairwise_matrix(&series, threads, |a, b| {
            tsdtw_core::distance::sq_euclidean(a, b)
        })
        .unwrap();
        for i in 0..series.len() {
            prop_assert_eq!(m.get(i, i), 0.0);
            for j in 0..series.len() {
                prop_assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    /// Hierarchical clustering produces n-1 merges, a valid cut at every
    /// k, and single-linkage heights that are genuine pairwise distances.
    #[test]
    fn dendrogram_structure(n in 2usize..10, seed in 0u64..50) {
        // Deterministic pseudo-random symmetric matrix.
        let mut vals = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for i in 0..n {
            for j in (i + 1)..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let d = ((state >> 33) as f64 / (1u64 << 31) as f64) + 0.01;
                vals.push((i, j, d));
            }
        }
        let m = DistanceMatrix::from_triples(n, &vals);
        let tree = agglomerative(&m, Linkage::Single).unwrap();
        prop_assert_eq!(tree.merges.len(), n - 1);
        for k in 1..=n {
            let labels = tree.cut(k).unwrap();
            let mut uniq = labels.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), k);
        }
        // Single-linkage first merge height is the global minimum distance.
        let min_d = vals.iter().map(|v| v.2).fold(f64::INFINITY, f64::min);
        prop_assert!((tree.merges[0].height - min_d).abs() < 1e-12);
    }

    /// k-medoids inertia is non-negative, zero iff k == n (distinct rows),
    /// and assignments index valid medoids.
    #[test]
    fn kmedoids_invariants(n in 2usize..10, k_frac in 0.1f64..1.0, seed in 0u64..50) {
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        let mut vals = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for i in 0..n {
            for j in (i + 1)..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let d = ((state >> 33) as f64 / (1u64 << 31) as f64) + 0.01;
                vals.push((i, j, d));
            }
        }
        let m = DistanceMatrix::from_triples(n, &vals);
        let r = k_medoids(&m, k, 20).unwrap();
        prop_assert_eq!(r.medoids.len(), k);
        prop_assert!(r.inertia >= 0.0);
        prop_assert!(r.assignment.iter().all(|&a| a < k));
        if k == n {
            prop_assert_eq!(r.inertia, 0.0);
        }
    }

    /// The accelerated subsequence search equals the brute-force scan.
    #[test]
    fn search_equivalence(seed in 0u64..30) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let hay: Vec<f64> = (0..200).map(|_| rnd() * 2.0).collect();
        let query: Vec<f64> = (0..24).map(|_| rnd()).collect();
        let fast = subsequence_search(&hay, &query, 3).unwrap();
        let brute = subsequence_search_brute(&hay, &query, 3).unwrap();
        prop_assert_eq!(fast.position, brute.position);
        prop_assert!((fast.distance - brute.distance).abs() < 1e-9);
    }
}
