//! Differential tests extending the executor's determinism contract to
//! the metrics layer: a [`MetricsRegistry`] fed the meters of the same
//! workload run at different `--threads` values renders **bitwise
//! identical** Prometheus exposition text. The chain under test is
//!
//! work loop → merged `WorkMeter` (PR 3: thread-count-invariant) →
//! `record_meter` (fold table from the meter macro) → sorted render,
//!
//! so any break anywhere in the chain shows up as a byte diff here.

use tsdtw_mining::knn::{evaluate_split_par, DistanceSpec};
use tsdtw_mining::search::subsequence_search_par;
use tsdtw_mining::ParConfig;
use tsdtw_obs::{MetricsRegistry, WorkMeter};

/// Runs a subsequence search at `threads` workers and returns the
/// exposition a fresh registry renders from its meter.
fn search_exposition(threads: usize) -> String {
    let query: Vec<f64> = (0..32).map(|i| (i as f64 * 0.35).sin() * 2.0).collect();
    let mut hay: Vec<f64> = (0..600).map(|i| ((i * i) as f64).sin() * 3.0).collect();
    for (j, &q) in query.iter().enumerate() {
        hay[321 + j] = q;
    }
    let par = ParConfig::new(threads).unwrap();
    let mut meter = WorkMeter::new();
    let r = subsequence_search_par(&hay, &query, 3, &par, &mut meter).unwrap();
    assert_eq!(r.position, 321, "search result itself is thread-invariant");
    let mut reg = MetricsRegistry::new();
    reg.record_meter(&meter);
    reg.record_funnel(&meter.funnel);
    reg.render()
}

/// Same discipline over the 1-NN split evaluation (a max-fold
/// `dp_peak_bytes` gauge plus the add-fold counters).
fn classify_exposition(threads: usize) -> String {
    let data = tsdtw_datasets::cbf::dataset(48, 8, 7).unwrap();
    let (train, test) = data.split_stratified(4).unwrap();
    let train_view =
        tsdtw_mining::dataset_views::LabeledView::new(&train.series, &train.labels).unwrap();
    let test_view =
        tsdtw_mining::dataset_views::LabeledView::new(&test.series, &test.labels).unwrap();
    let par = ParConfig::new(threads).unwrap();
    let mut meter = WorkMeter::new();
    evaluate_split_par(
        &train_view,
        &test_view,
        DistanceSpec::CdtwBand(3),
        &par,
        &mut meter,
    )
    .unwrap();
    let mut reg = MetricsRegistry::new();
    reg.record_meter(&meter);
    reg.render()
}

#[test]
fn search_metrics_exposition_is_bitwise_thread_invariant() {
    let serial = search_exposition(1);
    assert!(
        serial.contains("tsdtw_work_cells"),
        "exposition carries the meter table: {serial}"
    );
    assert!(serial.contains("tsdtw_work_prune_kim"), "{serial}");
    assert!(
        serial.contains("tsdtw_cascade_stage_lb_kim_entered"),
        "exposition carries the per-stage funnel families: {serial}"
    );
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            search_exposition(threads),
            "exposition must not depend on threads={threads}"
        );
    }
}

#[test]
fn classify_metrics_exposition_is_bitwise_thread_invariant() {
    let serial = classify_exposition(1);
    assert!(
        serial.contains("# TYPE tsdtw_work_dp_peak_bytes gauge"),
        "max-fold high-water mark renders as a gauge: {serial}"
    );
    for threads in [2, 4] {
        assert_eq!(
            serial,
            classify_exposition(threads),
            "exposition must not depend on threads={threads}"
        );
    }
}

#[test]
fn shard_registries_fold_order_independently() {
    // Worker shards each build a private registry; the owner absorbs
    // them in index order by convention, but the exposition must be a
    // pure function of the shard *set* — any absorption order, and any
    // sharding of the same totals, renders the same bytes.
    let meter_with = |cells: u64, peak: u64| {
        let mut m = WorkMeter::new();
        m.cells = cells;
        m.window_cells = cells;
        m.dp_peak_bytes = peak;
        m
    };
    let shards = [
        meter_with(10, 100),
        meter_with(0, 400),
        meter_with(7, 250),
        meter_with(1, 399),
    ];
    let render_order = |idx: &[usize]| {
        let mut owner = MetricsRegistry::new();
        for &i in idx {
            let mut shard_reg = MetricsRegistry::new();
            shard_reg.record_meter(&shards[i]);
            owner.absorb(&shard_reg);
        }
        owner.render()
    };
    let canonical = render_order(&[0, 1, 2, 3]);
    assert_eq!(canonical, render_order(&[3, 2, 1, 0]));
    assert_eq!(canonical, render_order(&[2, 0, 3, 1]));
    // And the same totals recorded through one meter render identically.
    let mut one = MetricsRegistry::new();
    one.record_meter(&meter_with(18, 400));
    assert_eq!(canonical, one.render());
}
