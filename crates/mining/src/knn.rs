//! 1-nearest-neighbor classification — the task behind the paper's Fig. 1,
//! Fig. 2 and Appendix B.
//!
//! Two execution paths are provided for the exact constrained measure:
//!
//! * **brute force** under any [`DistanceSpec`] — the apples-to-apples
//!   head-to-head the paper's figures use;
//! * the **cascaded** path (LB_Kim → LB_Keogh ×2 → early-abandoning DTW)
//!   that only exact `cDTW` admits — the "further two to five orders of
//!   magnitude" of §3.4. Both return identical predictions; tests pin that.

use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::banded::{cdtw_distance_metered_with_buf, percent_to_band};
use tsdtw_core::dtw::batch::{cdtw_batch_distances_metered, BatchBuffer, LANES};
use tsdtw_core::dtw::full::dtw_distance;
use tsdtw_core::dtw::windowed::DtwBuffer;
use tsdtw_core::dtw::{default_kernel, Kernel};
use tsdtw_core::error::{Error, Result};
use tsdtw_core::fastdtw::{fastdtw_metered, fastdtw_ref_metered};
use tsdtw_core::lower_bounds::Cascade;
use tsdtw_obs::{Meter, MeterShard, NoMeter};

use crate::dataset_views::LabeledView;
use crate::par::{par_fold_argmin, par_map, ParConfig};

/// Training-set indices that survive the leave-one-out `skip`, in order.
fn candidate_indices(train: &LabeledView<'_>, skip: usize) -> Vec<usize> {
    (0..train.series.len()).filter(|&i| i != skip).collect()
}

/// The band radius of the batched struct-of-lanes route for this scan,
/// or `None` when the scan must stay scalar.
///
/// The route engages only when `kernel` (the scans pass the process
/// default) is `Auto` or `Batched` (explicit `--kernel
/// generic/segmented/rle/wavefront` pins the scalar scan), the spec
/// reduces to one banded DP (full DTW counts, via a matrix-covering
/// band, when the lengths are equal — for unequal lengths the scalar
/// full kernel transposes the matrix, which the batch kernel does not
/// reproduce), and every candidate has one length so the group shares a
/// window. Distances are bitwise equal to the scalar scan either way,
/// so the route is observable only in wall-clock time and the `batch.*`
/// counters (plus, for full DTW, the per-pair `rle.probes` the scalar
/// banded route records and the batch kernel skips).
pub(crate) fn batched_band(
    kernel: Kernel,
    spec: DistanceSpec,
    query: &[f64],
    series: &[Vec<f64>],
    idxs: &[usize],
) -> Option<usize> {
    if !matches!(kernel, Kernel::Auto | Kernel::Batched) {
        return None;
    }
    let m = series.get(*idxs.first()?)?.len();
    if idxs.iter().any(|&i| series[i].len() != m) {
        return None;
    }
    let n = query.len();
    match spec {
        // An out-of-range percentage falls back to the scalar scan, which
        // reproduces the conversion error the caller expects.
        DistanceSpec::CdtwPercent(w) => percent_to_band(n.max(m), w).ok(),
        DistanceSpec::CdtwBand(band) => Some(band),
        DistanceSpec::FullDtw if n == m => Some(n),
        _ => None,
    }
}

/// Distances of `query` to `series[i]` for every `i` in `idxs`, in
/// `idxs` order — the shared serial scan body of 1-NN / k-NN. Takes the
/// batched struct-of-lanes route when [`batched_band`] admits it (one
/// reused [`BatchBuffer`], consecutive groups of [`LANES`] candidates in
/// index order), the scalar buffered loop otherwise; both produce
/// bitwise-identical distances.
pub(crate) fn scan_distances_metered<M: Meter>(
    series: &[Vec<f64>],
    query: &[f64],
    spec: DistanceSpec,
    idxs: &[usize],
    meter: &mut M,
) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(idxs.len());
    if let Some(band) = batched_band(default_kernel(), spec, query, series, idxs) {
        let mut bbuf = BatchBuffer::new();
        let mut group_out = [0.0f64; LANES];
        let mut ys: [&[f64]; LANES] = [query; LANES];
        for group in idxs.chunks(LANES) {
            for (l, &i) in group.iter().enumerate() {
                ys[l] = &series[i];
            }
            cdtw_batch_distances_metered(
                query,
                &ys[..group.len()],
                band,
                SquaredCost,
                &mut group_out[..group.len()],
                &mut bbuf,
                meter,
            )?;
            out.extend_from_slice(&group_out[..group.len()]);
        }
    } else {
        let mut buf = DtwBuffer::new();
        for &i in idxs {
            out.push(spec.eval_metered_buf(query, &series[i], meter, &mut buf)?);
        }
    }
    Ok(out)
}

/// [`scan_distances_metered`] on the deterministic parallel executor:
/// the *group* is the unit of parallelism on the batched route (same
/// consecutive index-order groups as the serial scan, one fresh
/// [`BatchBuffer`] per group), the candidate on the scalar route.
/// Shards merge in group/candidate order either way, so results and
/// counters are bitwise identical to the serial scan at any
/// `n_threads`.
pub(crate) fn scan_distances_par<M: MeterShard>(
    series: &[Vec<f64>],
    query: &[f64],
    spec: DistanceSpec,
    idxs: &[usize],
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<Vec<f64>> {
    if let Some(band) = batched_band(default_kernel(), spec, query, series, idxs) {
        let groups: Vec<&[usize]> = idxs.chunks(LANES).collect();
        let nested = par_map(cfg, &groups, meter, |_, group, m| {
            let mut bbuf = BatchBuffer::new();
            let mut ys: [&[f64]; LANES] = [query; LANES];
            for (l, &i) in group.iter().enumerate() {
                ys[l] = &series[i];
            }
            let mut out = [0.0f64; LANES];
            cdtw_batch_distances_metered(
                query,
                &ys[..group.len()],
                band,
                SquaredCost,
                &mut out[..group.len()],
                &mut bbuf,
                m,
            )?;
            Ok(out[..group.len()].to_vec())
        })?;
        Ok(nested.into_iter().flatten().collect())
    } else {
        par_map(cfg, idxs, meter, |_, &i, m| {
            spec.eval_metered(query, &series[i], m)
        })
    }
}

/// Which distance a classifier should use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistanceSpec {
    /// Squared Euclidean (`cDTW_0`).
    Euclidean,
    /// `cDTW_w` with `w` in percent of series length.
    CdtwPercent(f64),
    /// `cDTW` with an explicit band in cells.
    CdtwBand(usize),
    /// Unconstrained DTW (`cDTW_100`).
    FullDtw,
    /// `FastDTW_r`, tuned implementation (shares the exact kernels).
    FastDtw(usize),
    /// `FastDTW_r`, reference implementation — the canonical cell-list +
    /// hash-map structure the ecosystem actually runs (what the paper's
    /// Appendix B correspondent measured).
    FastDtwRef(usize),
}

impl DistanceSpec {
    /// Evaluates the distance on a pair.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> Result<f64> {
        self.eval_metered(x, y, &mut NoMeter)
    }

    /// Like [`eval`](Self::eval), recording DP work into `meter`.
    ///
    /// Squared Euclidean runs no DP, so it records nothing. Full DTW is
    /// routed through the banded kernel with a matrix-covering band when a
    /// recording meter is attached, so its cells land in the same counters
    /// as every other spec; with [`NoMeter`] it keeps the tight two-row
    /// kernel.
    pub fn eval_metered<M: Meter>(&self, x: &[f64], y: &[f64], meter: &mut M) -> Result<f64> {
        let mut buf = DtwBuffer::new();
        self.eval_metered_buf(x, y, meter, &mut buf)
    }

    /// Like [`eval_metered`](Self::eval_metered), reusing caller-provided
    /// DP scratch rows for the banded/full specs — the allocation-free
    /// form the serial 1-NN and k-NN scan loops use (one buffer per scan
    /// instead of one per comparison). FastDTW manages its own per-level
    /// buffers and Euclidean runs no DP; both ignore `buf`.
    pub fn eval_metered_buf<M: Meter>(
        &self,
        x: &[f64],
        y: &[f64],
        meter: &mut M,
        buf: &mut DtwBuffer,
    ) -> Result<f64> {
        match *self {
            DistanceSpec::Euclidean => tsdtw_core::sq_euclidean(x, y),
            DistanceSpec::CdtwPercent(w) => {
                let band = percent_to_band(x.len().max(y.len()), w)?;
                cdtw_distance_metered_with_buf(x, y, band, SquaredCost, buf, meter)
            }
            DistanceSpec::CdtwBand(band) => {
                cdtw_distance_metered_with_buf(x, y, band, SquaredCost, buf, meter)
            }
            DistanceSpec::FullDtw => {
                if meter.enabled() {
                    cdtw_distance_metered_with_buf(
                        x,
                        y,
                        x.len().max(y.len()),
                        SquaredCost,
                        buf,
                        meter,
                    )
                } else {
                    dtw_distance(x, y, SquaredCost)
                }
            }
            DistanceSpec::FastDtw(r) => {
                fastdtw_metered(x, y, r, SquaredCost, meter).map(|(d, _, _)| d)
            }
            DistanceSpec::FastDtwRef(r) => {
                fastdtw_ref_metered(x, y, r, SquaredCost, meter).map(|(d, _)| d)
            }
        }
    }
}

/// Result of a nearest-neighbor query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnResult {
    /// Index of the nearest training exemplar.
    pub index: usize,
    /// Its distance.
    pub distance: f64,
    /// Its label.
    pub label: usize,
}

/// Brute-force 1-NN of `query` among `train`, skipping index `skip`
/// (for leave-one-out; pass `usize::MAX` to skip nothing).
pub fn nn_brute_force(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    skip: usize,
) -> Result<NnResult> {
    nn_brute_force_metered(train, query, spec, skip, &mut NoMeter)
}

/// [`nn_brute_force`] with a [`Meter`] accumulating the DP work of every
/// comparison the query performs.
///
/// The scan body is `scan_distances_metered`, so under the default
/// `Auto` kernel a banded spec over equal-length candidates runs on the
/// struct-of-lanes batch kernel — bitwise-identical distances, batched
/// throughput.
pub fn nn_brute_force_metered<M: Meter>(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    skip: usize,
    meter: &mut M,
) -> Result<NnResult> {
    let _span = tsdtw_obs::span("knn");
    let idxs = candidate_indices(train, skip);
    if idxs.is_empty() {
        return Err(Error::EmptyInput { which: "train" });
    }
    let distances = scan_distances_metered(train.series, query, spec, &idxs, meter)?;
    let (index, distance) = argmin_first(&idxs, &distances);
    Ok(NnResult {
        index,
        distance,
        label: train.labels[index],
    })
}

/// Index-order argmin with strict `<` (first winner kept on ties) —
/// shared by the serial and parallel 1-NN paths so both resolve ties
/// identically. `idxs` must be nonempty.
fn argmin_first(idxs: &[usize], distances: &[f64]) -> (usize, f64) {
    let mut best: Option<(usize, f64)> = None;
    for (&i, &d) in idxs.iter().zip(distances) {
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best.expect("nonempty candidate set")
}

/// [`nn_brute_force`] on the deterministic parallel executor: every
/// candidate is evaluated (no pruning, so the work is bound-independent)
/// and the minimum is taken in index order with strict `<`. The scan
/// body is `scan_distances_par`, which takes the same batched route
/// (and the same lane grouping) as the serial scan, so results and
/// merged counters are bitwise identical to the serial path at any
/// `n_threads`.
pub fn nn_brute_force_par<M: MeterShard>(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    skip: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<NnResult> {
    let _span = tsdtw_obs::span("knn");
    let idxs = candidate_indices(train, skip);
    if idxs.is_empty() {
        return Err(Error::EmptyInput { which: "train" });
    }
    let distances = scan_distances_par(train.series, query, spec, &idxs, cfg, meter)?;
    let (index, distance) = argmin_first(&idxs, &distances);
    Ok(NnResult {
        index,
        distance,
        label: train.labels[index],
    })
}

/// Cascaded exact 1-NN under `cDTW_band` — identical output to
/// [`nn_brute_force`] with [`DistanceSpec::CdtwBand`], but with the
/// UCR-suite pruning stack. Requires equal-length series.
pub fn nn_cascade(
    train: &LabeledView<'_>,
    query: &[f64],
    band: usize,
    skip: usize,
) -> Result<NnResult> {
    nn_cascade_metered(train, query, band, skip, &mut NoMeter)
}

/// [`nn_cascade`] with a [`Meter`] accumulating the lower-bound
/// invocations, per-stage prune tallies and (abandoned) DP work of the
/// whole query.
pub fn nn_cascade_metered<M: Meter>(
    train: &LabeledView<'_>,
    query: &[f64],
    band: usize,
    skip: usize,
    meter: &mut M,
) -> Result<NnResult> {
    let _span = tsdtw_obs::span("knn");
    let mut cascade = Cascade::new(query, band)?;
    let mut best = NnResult {
        index: usize::MAX,
        distance: f64::INFINITY,
        label: 0,
    };
    for (i, s) in train.series.iter().enumerate() {
        if i == skip {
            continue;
        }
        let out = cascade.evaluate_metered(s, best.distance, meter)?;
        if let Some(d) = out.exact_distance() {
            if d < best.distance {
                best = NnResult {
                    index: i,
                    distance: d,
                    label: train.labels[i],
                };
            }
        }
    }
    if best.index == usize::MAX {
        return Err(Error::EmptyInput { which: "train" });
    }
    Ok(best)
}

/// [`nn_cascade`] on the deterministic parallel executor: candidates are
/// evaluated in chunk-synchronous rounds against the best-so-far frozen
/// at each chunk boundary (each worker clones the prepared cascade), and
/// the bound advances in index order with strict `<`. The result is
/// bitwise identical to the serial cascade at any `n_threads`; the
/// merged counters are a pure function of `cfg.chunk` (with `chunk = 1`
/// they equal the continuous-best-so-far serial counters exactly).
pub fn nn_cascade_par<M: MeterShard>(
    train: &LabeledView<'_>,
    query: &[f64],
    band: usize,
    skip: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<NnResult> {
    let _span = tsdtw_obs::span("knn");
    let idxs = candidate_indices(train, skip);
    if idxs.is_empty() {
        return Err(Error::EmptyInput { which: "train" });
    }
    // The O(n log n) query preparation (envelope + magnitude sort order)
    // runs once, here; each worker context is a clone sharing it behind
    // an `Arc`, so per-round worker setup never touches the heap
    // (`alloc_discipline` pins this).
    let prepared = Cascade::new(query, band)?;
    let (best, _) = par_fold_argmin(
        cfg,
        &idxs,
        meter,
        f64::INFINITY,
        || Ok(prepared.clone()),
        |cascade, _, &i, bsf, m| cascade.evaluate_metered(&train.series[i], bsf, m),
        |out| out.exact_distance(),
    )?;
    let (k, distance) = best.ok_or(Error::EmptyInput { which: "train" })?;
    let index = idxs[k];
    Ok(NnResult {
        index,
        distance,
        label: train.labels[index],
    })
}

/// Brute-force k-NN: the `k` nearest training exemplars, nearest first.
pub fn knn_brute_force(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
    skip: usize,
) -> Result<Vec<NnResult>> {
    knn_brute_force_metered(train, query, spec, k, skip, &mut NoMeter)
}

/// [`knn_brute_force`] with a [`Meter`] accumulating the DP work of every
/// comparison.
pub fn knn_brute_force_metered<M: Meter>(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
    skip: usize,
    meter: &mut M,
) -> Result<Vec<NnResult>> {
    let _span = tsdtw_obs::span("knn");
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "k must be at least 1".into(),
        });
    }
    let idxs = candidate_indices(train, skip);
    if idxs.is_empty() {
        return Err(Error::EmptyInput { which: "train" });
    }
    let distances = scan_distances_metered(train.series, query, spec, &idxs, meter)?;
    let mut all: Vec<NnResult> = idxs
        .iter()
        .zip(&distances)
        .map(|(&i, &d)| NnResult {
            index: i,
            distance: d,
            label: train.labels[i],
        })
        .collect();
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
    });
    all.truncate(k);
    Ok(all)
}

/// [`knn_brute_force`] on the deterministic parallel executor. All
/// candidate distances are computed in parallel, then sorted with the
/// same stable comparison as the serial path — bitwise-identical
/// neighbors and counters at any `n_threads`.
pub fn knn_brute_force_par<M: MeterShard>(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
    skip: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<Vec<NnResult>> {
    let _span = tsdtw_obs::span("knn");
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "k must be at least 1".into(),
        });
    }
    let idxs = candidate_indices(train, skip);
    if idxs.is_empty() {
        return Err(Error::EmptyInput { which: "train" });
    }
    let distances = scan_distances_par(train.series, query, spec, &idxs, cfg, meter)?;
    let mut all: Vec<NnResult> = idxs
        .iter()
        .zip(&distances)
        .map(|(&i, &d)| NnResult {
            index: i,
            distance: d,
            label: train.labels[i],
        })
        .collect();
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
    });
    all.truncate(k);
    Ok(all)
}

/// Majority vote over the k nearest neighbors; ties break toward the
/// nearer neighbor's label (the standard convention).
pub fn classify_knn(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
) -> Result<usize> {
    classify_knn_metered(train, query, spec, k, &mut NoMeter)
}

/// [`classify_knn`] with a [`Meter`] accumulating the DP work of the
/// query's comparisons against the training set.
pub fn classify_knn_metered<M: Meter>(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
    meter: &mut M,
) -> Result<usize> {
    let neighbors = knn_brute_force_metered(train, query, spec, k, usize::MAX, meter)?;
    // Nearest neighbor whose label achieves the max count wins ties.
    Ok(majority_vote(&neighbors))
}

/// [`classify_knn`] on the deterministic parallel executor (the
/// distances parallelize; the vote is unchanged).
pub fn classify_knn_par<M: MeterShard>(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<usize> {
    let neighbors = knn_brute_force_par(train, query, spec, k, usize::MAX, cfg, meter)?;
    Ok(majority_vote(&neighbors))
}

/// Majority vote with ties broken toward the nearer neighbor's label —
/// shared by the serial and parallel classify paths.
fn majority_vote(neighbors: &[NnResult]) -> usize {
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for n in neighbors {
        *counts.entry(n.label).or_insert(0) += 1;
    }
    let best_count = *counts.values().max().expect("nonempty");
    neighbors
        .iter()
        .find(|n| counts[&n.label] == best_count)
        .expect("nonempty")
        .label
}

/// Classifies every test series by brute-force 1-NN against the training
/// set; returns the error rate in `[0, 1]`.
pub fn evaluate_split(
    train: &LabeledView<'_>,
    test: &LabeledView<'_>,
    spec: DistanceSpec,
) -> Result<f64> {
    evaluate_split_metered(train, test, spec, &mut NoMeter)
}

/// [`evaluate_split`] with a [`Meter`] accumulating the DP work of every
/// test-versus-train comparison.
pub fn evaluate_split_metered<M: Meter>(
    train: &LabeledView<'_>,
    test: &LabeledView<'_>,
    spec: DistanceSpec,
    meter: &mut M,
) -> Result<f64> {
    if test.series.is_empty() {
        return Err(Error::EmptyInput { which: "test" });
    }
    let mut errors = 0usize;
    for (q, &truth) in test.series.iter().zip(test.labels) {
        let nn = nn_brute_force_metered(train, q, spec, usize::MAX, meter)?;
        if nn.label != truth {
            errors += 1;
        }
    }
    Ok(errors as f64 / test.series.len() as f64)
}

/// [`evaluate_split`] on the deterministic parallel executor: test
/// queries are independent, so each runs its (serial) 1-NN scan on a
/// worker with a private meter shard; shards merge in test order.
/// Error rate and counters are bitwise identical to the serial path at
/// any `n_threads`.
pub fn evaluate_split_par<M: MeterShard>(
    train: &LabeledView<'_>,
    test: &LabeledView<'_>,
    spec: DistanceSpec,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<f64> {
    if test.series.is_empty() {
        return Err(Error::EmptyInput { which: "test" });
    }
    let queries: Vec<usize> = (0..test.series.len()).collect();
    let misses = par_map(cfg, &queries, meter, |_, &q, m| {
        let nn = nn_brute_force_metered(train, &test.series[q], spec, usize::MAX, m)?;
        Ok(u64::from(nn.label != test.labels[q]))
    })?;
    Ok(misses.iter().sum::<u64>() as f64 / test.series.len() as f64)
}

/// Leave-one-out cross-validated 1-NN error rate under `spec`.
///
/// This is the procedure the UCR archive used to publish its optimal
/// warping windows (and hence the procedure behind the paper's Fig. 2a).
pub fn loocv_error(view: &LabeledView<'_>, spec: DistanceSpec) -> Result<f64> {
    if view.series.len() < 2 {
        return Err(Error::InvalidParameter {
            name: "view",
            reason: "LOOCV needs at least two series".into(),
        });
    }
    let mut errors = 0usize;
    for i in 0..view.series.len() {
        let nn = nn_brute_force(view, &view.series[i], spec, i)?;
        if nn.label != view.labels[i] {
            errors += 1;
        }
    }
    Ok(errors as f64 / view.series.len() as f64)
}

/// [`loocv_error`] on the deterministic parallel executor: each
/// held-out query runs its (serial) 1-NN scan on a worker. Identical
/// error rate at any `n_threads`.
pub fn loocv_error_par(view: &LabeledView<'_>, spec: DistanceSpec, cfg: &ParConfig) -> Result<f64> {
    if view.series.len() < 2 {
        return Err(Error::InvalidParameter {
            name: "view",
            reason: "LOOCV needs at least two series".into(),
        });
    }
    let queries: Vec<usize> = (0..view.series.len()).collect();
    let misses = par_map(cfg, &queries, &mut NoMeter, |_, &i, _| {
        let nn = nn_brute_force(view, &view.series[i], spec, i)?;
        Ok(u64::from(nn.label != view.labels[i]))
    })?;
    Ok(misses.iter().sum::<u64>() as f64 / view.series.len() as f64)
}

/// LOOCV error under exact `cDTW_band`, via the cascade (fast path).
pub fn loocv_error_cdtw_fast(view: &LabeledView<'_>, band: usize) -> Result<f64> {
    if view.series.len() < 2 {
        return Err(Error::InvalidParameter {
            name: "view",
            reason: "LOOCV needs at least two series".into(),
        });
    }
    let mut errors = 0usize;
    for i in 0..view.series.len() {
        let nn = nn_cascade(view, &view.series[i], band, i)?;
        if nn.label != view.labels[i] {
            errors += 1;
        }
    }
    Ok(errors as f64 / view.series.len() as f64)
}

/// [`loocv_error_cdtw_fast`] on the deterministic parallel executor:
/// each held-out query runs its own (serial, continuously-pruned)
/// cascade on a worker, so per-query work is exactly the serial work and
/// the error rate is bitwise identical at any `n_threads`.
pub fn loocv_error_cdtw_fast_par(
    view: &LabeledView<'_>,
    band: usize,
    cfg: &ParConfig,
) -> Result<f64> {
    if view.series.len() < 2 {
        return Err(Error::InvalidParameter {
            name: "view",
            reason: "LOOCV needs at least two series".into(),
        });
    }
    let queries: Vec<usize> = (0..view.series.len()).collect();
    let misses = par_map(cfg, &queries, &mut NoMeter, |_, &i, _| {
        let nn = nn_cascade(view, &view.series[i], band, i)?;
        Ok(u64::from(nn.label != view.labels[i]))
    })?;
    Ok(misses.iter().sum::<u64>() as f64 / view.series.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_views::LabeledView;

    /// Two well-separated synthetic classes: slow sine vs fast sine.
    fn two_class() -> (Vec<Vec<f64>>, Vec<usize>) {
        let n = 64;
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for k in 0..10 {
            let phase = k as f64 * 0.17;
            series.push((0..n).map(|i| (i as f64 * 0.2 + phase).sin()).collect());
            labels.push(0);
            series.push((0..n).map(|i| (i as f64 * 0.55 + phase).sin()).collect());
            labels.push(1);
        }
        (series, labels)
    }

    #[test]
    fn brute_force_finds_true_nearest() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let nn = nn_brute_force(&view, &series[0], DistanceSpec::CdtwBand(4), 0).unwrap();
        // Nearest to a class-0 exemplar must be class 0.
        assert_eq!(nn.label, 0);
        assert!(nn.index != 0);
    }

    #[test]
    fn cascade_matches_brute_force_exactly() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for band in [0usize, 3, 10] {
            for (i, s) in series.iter().enumerate() {
                let bf = nn_brute_force(&view, s, DistanceSpec::CdtwBand(band), i).unwrap();
                let fast = nn_cascade(&view, s, band, i).unwrap();
                assert_eq!(bf.index, fast.index, "band {band} query {i}");
                assert!((bf.distance - fast.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn loocv_zero_error_on_separable_data() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let err = loocv_error(&view, DistanceSpec::CdtwBand(4)).unwrap();
        assert_eq!(err, 0.0);
        let err_fast = loocv_error_cdtw_fast(&view, 4).unwrap();
        assert_eq!(err_fast, 0.0);
    }

    #[test]
    fn loocv_error_agrees_between_paths() {
        // Noisy, overlapping classes so the error is nonzero.
        let n = 32;
        let mut series: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        for k in 0..16 {
            let jig = (k * 2654435761u64 as usize) as f64;
            series.push(
                (0..n)
                    .map(|i| ((i as f64 + jig) * 0.9).sin() * ((k % 7) as f64 * 0.3))
                    .collect(),
            );
            labels.push(k % 2);
        }
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let slow = loocv_error(&view, DistanceSpec::CdtwBand(3)).unwrap();
        let fast = loocv_error_cdtw_fast(&view, 3).unwrap();
        assert_eq!(slow, fast);
    }

    #[test]
    fn evaluate_split_perfect_on_separable() {
        let (series, labels) = two_class();
        let train = LabeledView {
            series: &series[..10],
            labels: &labels[..10],
        };
        let test = LabeledView {
            series: &series[10..],
            labels: &labels[10..],
        };
        let err = evaluate_split(&train, &test, DistanceSpec::CdtwBand(4)).unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn all_distance_specs_are_usable() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for spec in [
            DistanceSpec::Euclidean,
            DistanceSpec::CdtwPercent(5.0),
            DistanceSpec::CdtwBand(2),
            DistanceSpec::FullDtw,
            DistanceSpec::FastDtw(3),
            DistanceSpec::FastDtwRef(3),
        ] {
            let nn = nn_brute_force(&view, &series[1], spec, 1).unwrap();
            assert!(nn.distance.is_finite());
        }
    }

    #[test]
    fn knn_returns_sorted_neighbors() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let nns = knn_brute_force(&view, &series[0], DistanceSpec::CdtwBand(4), 5, 0).unwrap();
        assert_eq!(nns.len(), 5);
        for w in nns.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // Class-0 query: nearest neighbors dominated by class 0.
        let zero_votes = nns.iter().filter(|n| n.label == 0).count();
        assert!(zero_votes >= 3, "{zero_votes}/5 class-0 neighbors");
    }

    #[test]
    fn knn_k1_matches_nn() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for (q, s) in series.iter().enumerate().take(4) {
            let nn = nn_brute_force(&view, s, DistanceSpec::CdtwBand(3), q).unwrap();
            let k1 = knn_brute_force(&view, s, DistanceSpec::CdtwBand(3), 1, q).unwrap();
            assert_eq!(k1[0], nn);
        }
    }

    #[test]
    fn classify_knn_majority_vote() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for k in [1usize, 3, 5] {
            let label = classify_knn(&view, &series[2], DistanceSpec::CdtwBand(4), k).unwrap();
            assert_eq!(label, labels[2], "k={k}");
        }
    }

    #[test]
    fn knn_rejects_k_zero() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        assert!(knn_brute_force(&view, &series[0], DistanceSpec::Euclidean, 0, 0).is_err());
    }

    #[test]
    fn metered_paths_match_plain_and_count_work() {
        use tsdtw_obs::WorkMeter;
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for spec in [
            DistanceSpec::Euclidean,
            DistanceSpec::CdtwPercent(5.0),
            DistanceSpec::CdtwBand(2),
            DistanceSpec::FullDtw,
            DistanceSpec::FastDtw(3),
            DistanceSpec::FastDtwRef(3),
        ] {
            let plain = spec.eval(&series[0], &series[1]).unwrap();
            let mut meter = WorkMeter::new();
            let metered = spec
                .eval_metered(&series[0], &series[1], &mut meter)
                .unwrap();
            assert!((plain - metered).abs() < 1e-9, "{spec:?}");
            if spec != DistanceSpec::Euclidean {
                assert!(meter.cells > 0, "{spec:?} should touch DP cells");
            }
            let bf = nn_brute_force(&view, &series[0], spec, 0).unwrap();
            let mut m2 = WorkMeter::new();
            let bf_m = nn_brute_force_metered(&view, &series[0], spec, 0, &mut m2).unwrap();
            assert_eq!(bf.index, bf_m.index, "{spec:?}");
        }
        // Cascaded path: the meter sees one cascade disposition per
        // non-skipped exemplar, and the answer is unchanged.
        let mut meter = WorkMeter::new();
        let plain = nn_cascade(&view, &series[0], 4, 0).unwrap();
        let metered = nn_cascade_metered(&view, &series[0], 4, 0, &mut meter).unwrap();
        assert_eq!(plain, metered);
        assert_eq!(meter.candidates(), (series.len() - 1) as u64);
    }

    #[test]
    fn empty_train_rejected() {
        let series: Vec<Vec<f64>> = vec![vec![0.0; 4]];
        let labels = vec![0];
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        // Skipping the only element leaves nothing.
        assert!(nn_brute_force(&view, &series[0], DistanceSpec::Euclidean, 0).is_err());
        let cfg = ParConfig::new(2).unwrap();
        assert!(nn_brute_force_par(
            &view,
            &series[0],
            DistanceSpec::Euclidean,
            0,
            &cfg,
            &mut NoMeter
        )
        .is_err());
        assert!(nn_cascade_par(&view, &series[0], 2, 0, &cfg, &mut NoMeter).is_err());
    }

    #[test]
    fn par_cascade_chunk_one_equals_serial_metered_exactly() {
        use tsdtw_obs::WorkMeter;
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let mut serial_meter = WorkMeter::new();
        let serial = nn_cascade_metered(&view, &series[3], 4, 3, &mut serial_meter).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let cfg = ParConfig::with_chunk(threads, 1).unwrap();
            let mut meter = WorkMeter::new();
            let par = nn_cascade_par(&view, &series[3], 4, 3, &cfg, &mut meter).unwrap();
            assert_eq!(par, serial, "{threads} threads");
            assert_eq!(meter, serial_meter, "{threads} threads");
        }
    }

    #[test]
    fn par_cascade_counters_are_thread_count_invariant_at_fixed_chunk() {
        use tsdtw_obs::WorkMeter;
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let run = |threads: usize| {
            let cfg = ParConfig::with_chunk(threads, 4).unwrap();
            let mut meter = WorkMeter::new();
            let nn = nn_cascade_par(&view, &series[0], 4, 0, &cfg, &mut meter).unwrap();
            (nn, meter)
        };
        let (nn1, m1) = run(1);
        let serial = nn_cascade(&view, &series[0], 4, 0).unwrap();
        assert_eq!(nn1.index, serial.index);
        assert_eq!(nn1.distance.to_bits(), serial.distance.to_bits());
        for threads in [2usize, 3, 7] {
            let (nn, m) = run(threads);
            assert_eq!(nn, nn1, "{threads} threads");
            assert_eq!(m, m1, "{threads} threads");
        }
    }

    #[test]
    fn par_brute_knn_and_classify_are_bitwise_serial() {
        use tsdtw_obs::WorkMeter;
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let spec = DistanceSpec::CdtwBand(4);
        let mut serial_meter = WorkMeter::new();
        let serial_nn =
            nn_brute_force_metered(&view, &series[5], spec, 5, &mut serial_meter).unwrap();
        let serial_knn = knn_brute_force(&view, &series[5], spec, 3, 5).unwrap();
        let serial_label = classify_knn(&view, &series[5], spec, 3).unwrap();
        for threads in [1usize, 3, 7] {
            // Independent items: counters equal serial at ANY chunk.
            let cfg = ParConfig::with_chunk(threads, 4).unwrap();
            let mut meter = WorkMeter::new();
            let nn = nn_brute_force_par(&view, &series[5], spec, 5, &cfg, &mut meter).unwrap();
            assert_eq!(nn, serial_nn, "{threads} threads");
            assert_eq!(meter, serial_meter, "{threads} threads");
            let knn =
                knn_brute_force_par(&view, &series[5], spec, 3, 5, &cfg, &mut NoMeter).unwrap();
            assert_eq!(knn, serial_knn, "{threads} threads");
            let label = classify_knn_par(&view, &series[5], spec, 3, &cfg, &mut NoMeter).unwrap();
            assert_eq!(label, serial_label, "{threads} threads");
        }
    }

    #[test]
    fn batched_route_gates_on_kernel_spec_and_lengths() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let idxs = candidate_indices(&view, 0);
        let q = &series[0];
        // Engages for banded specs under Auto/Batched.
        for kernel in [Kernel::Auto, Kernel::Batched] {
            assert_eq!(
                batched_band(kernel, DistanceSpec::CdtwBand(4), q, &series, &idxs),
                Some(4)
            );
            let pct = batched_band(kernel, DistanceSpec::CdtwPercent(5.0), q, &series, &idxs);
            assert_eq!(pct, Some(percent_to_band(q.len(), 5.0).unwrap()));
            // Equal lengths: full DTW via a matrix-covering band.
            assert_eq!(
                batched_band(kernel, DistanceSpec::FullDtw, q, &series, &idxs),
                Some(q.len())
            );
        }
        // Explicit scalar kernels pin the scalar scan.
        for kernel in [
            Kernel::Generic,
            Kernel::Segmented,
            Kernel::Rle,
            Kernel::Wavefront,
        ] {
            assert_eq!(
                batched_band(kernel, DistanceSpec::CdtwBand(4), q, &series, &idxs),
                None,
                "{kernel:?}"
            );
        }
        // Non-banded specs stay scalar.
        for spec in [
            DistanceSpec::Euclidean,
            DistanceSpec::FastDtw(3),
            DistanceSpec::FastDtwRef(3),
        ] {
            assert_eq!(batched_band(Kernel::Auto, spec, q, &series, &idxs), None);
        }
        // Out-of-range percent falls back (the scalar scan reports the error).
        assert_eq!(
            batched_band(
                Kernel::Auto,
                DistanceSpec::CdtwPercent(250.0),
                q,
                &series,
                &idxs
            ),
            None
        );
        // Mixed candidate lengths stay scalar.
        let mut ragged = series.clone();
        ragged[3].push(0.5);
        assert_eq!(
            batched_band(Kernel::Auto, DistanceSpec::CdtwBand(4), q, &ragged, &idxs),
            None
        );
        // Full DTW with a query length differing from the candidates stays
        // scalar (the scalar kernel transposes; the batch kernel doesn't).
        let short_q = &series[0][..32];
        assert_eq!(
            batched_band(Kernel::Auto, DistanceSpec::FullDtw, short_q, &series, &idxs),
            None
        );
        assert_eq!(
            batched_band(
                Kernel::Auto,
                DistanceSpec::CdtwBand(4),
                short_q,
                &series,
                &idxs
            ),
            Some(4)
        );
    }

    #[test]
    fn batched_scan_is_bitwise_equal_to_the_scalar_scan() {
        use tsdtw_obs::WorkMeter;
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let idxs = candidate_indices(&view, 2);
        let q = &series[2];
        for spec in [
            DistanceSpec::CdtwBand(4),
            DistanceSpec::CdtwPercent(10.0),
            DistanceSpec::FullDtw,
        ] {
            // Scalar reference: the per-pair buffered loop, exactly what the
            // scan runs when the batched route is gated off.
            let mut scalar_meter = WorkMeter::new();
            let mut buf = DtwBuffer::new();
            let scalar: Vec<f64> = idxs
                .iter()
                .map(|&i| {
                    spec.eval_metered_buf(q, &series[i], &mut scalar_meter, &mut buf)
                        .unwrap()
                })
                .collect();
            let mut batched_meter = WorkMeter::new();
            let batched =
                scan_distances_metered(&series, q, spec, &idxs, &mut batched_meter).unwrap();
            assert_eq!(batched.len(), scalar.len(), "{spec:?}");
            for (b, s) in batched.iter().zip(&scalar) {
                assert_eq!(b.to_bits(), s.to_bits(), "{spec:?}");
            }
            // The route really engaged (19 candidates -> 3 groups of <= 8),
            // and the only counter divergence from the scalar loop is the
            // batch.* pair.
            assert_eq!(batched_meter.batch_groups, 3, "{spec:?}");
            assert_eq!(batched_meter.batch_lanes, idxs.len() as u64, "{spec:?}");
            if spec == DistanceSpec::FullDtw {
                // The scalar metered full-DTW path probes RLE once per pair
                // at its full-window gate; the batch kernel skips the probe.
                assert_eq!(scalar_meter.rle_probes, idxs.len() as u64);
                assert_eq!(batched_meter.rle_probes, 0);
            }
            let normalize = |m: &WorkMeter| {
                let mut m = m.clone();
                m.batch_groups = 0;
                m.batch_lanes = 0;
                m.rle_probes = 0;
                m
            };
            assert_eq!(
                normalize(&batched_meter),
                normalize(&scalar_meter),
                "{spec:?}"
            );
            assert_eq!(batched_meter.cells, scalar_meter.cells, "{spec:?}");
        }
    }

    #[test]
    fn batched_par_scan_counters_are_thread_count_invariant() {
        use tsdtw_obs::WorkMeter;
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let idxs = candidate_indices(&view, 1);
        let q = &series[1];
        let spec = DistanceSpec::CdtwBand(5);
        let mut serial_meter = WorkMeter::new();
        let serial = scan_distances_metered(&series, q, spec, &idxs, &mut serial_meter).unwrap();
        assert!(serial_meter.batch_groups > 0, "batched route must engage");
        for threads in [1usize, 2, 4, 7] {
            let cfg = ParConfig::with_chunk(threads, 2).unwrap();
            let mut meter = WorkMeter::new();
            let par = scan_distances_par(&series, q, spec, &idxs, &cfg, &mut meter).unwrap();
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.to_bits(), s.to_bits(), "{threads} threads");
            }
            assert_eq!(meter, serial_meter, "{threads} threads");
        }
    }

    #[test]
    fn par_split_and_loocv_are_bitwise_serial() {
        let (series, labels) = two_class();
        let train = LabeledView {
            series: &series[..10],
            labels: &labels[..10],
        };
        let test = LabeledView {
            series: &series[10..],
            labels: &labels[10..],
        };
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let spec = DistanceSpec::CdtwBand(4);
        let serial_split = evaluate_split(&train, &test, spec).unwrap();
        let serial_loocv = loocv_error(&view, spec).unwrap();
        let serial_fast = loocv_error_cdtw_fast(&view, 4).unwrap();
        for threads in [1usize, 2, 7] {
            let cfg = ParConfig::with_chunk(threads, 2).unwrap();
            let split = evaluate_split_par(&train, &test, spec, &cfg, &mut NoMeter).unwrap();
            assert_eq!(split.to_bits(), serial_split.to_bits(), "{threads} threads");
            let loocv = loocv_error_par(&view, spec, &cfg).unwrap();
            assert_eq!(loocv.to_bits(), serial_loocv.to_bits(), "{threads} threads");
            let fast = loocv_error_cdtw_fast_par(&view, 4, &cfg).unwrap();
            assert_eq!(fast.to_bits(), serial_fast.to_bits(), "{threads} threads");
        }
    }
}
