//! 1-nearest-neighbor classification — the task behind the paper's Fig. 1,
//! Fig. 2 and Appendix B.
//!
//! Two execution paths are provided for the exact constrained measure:
//!
//! * **brute force** under any [`DistanceSpec`] — the apples-to-apples
//!   head-to-head the paper's figures use;
//! * the **cascaded** path (LB_Kim → LB_Keogh ×2 → early-abandoning DTW)
//!   that only exact `cDTW` admits — the "further two to five orders of
//!   magnitude" of §3.4. Both return identical predictions; tests pin that.

use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::banded::{cdtw_distance, percent_to_band};
use tsdtw_core::dtw::full::dtw_distance;
use tsdtw_core::error::{Error, Result};
use tsdtw_core::fastdtw::fastdtw_distance;
use tsdtw_core::lower_bounds::Cascade;

use crate::dataset_views::LabeledView;

/// Which distance a classifier should use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistanceSpec {
    /// Squared Euclidean (`cDTW_0`).
    Euclidean,
    /// `cDTW_w` with `w` in percent of series length.
    CdtwPercent(f64),
    /// `cDTW` with an explicit band in cells.
    CdtwBand(usize),
    /// Unconstrained DTW (`cDTW_100`).
    FullDtw,
    /// `FastDTW_r`, tuned implementation (shares the exact kernels).
    FastDtw(usize),
    /// `FastDTW_r`, reference implementation — the canonical cell-list +
    /// hash-map structure the ecosystem actually runs (what the paper's
    /// Appendix B correspondent measured).
    FastDtwRef(usize),
}

impl DistanceSpec {
    /// Evaluates the distance on a pair.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> Result<f64> {
        match *self {
            DistanceSpec::Euclidean => tsdtw_core::sq_euclidean(x, y),
            DistanceSpec::CdtwPercent(w) => {
                let band = percent_to_band(x.len().max(y.len()), w)?;
                cdtw_distance(x, y, band, SquaredCost)
            }
            DistanceSpec::CdtwBand(band) => cdtw_distance(x, y, band, SquaredCost),
            DistanceSpec::FullDtw => dtw_distance(x, y, SquaredCost),
            DistanceSpec::FastDtw(r) => fastdtw_distance(x, y, r, SquaredCost),
            DistanceSpec::FastDtwRef(r) => {
                tsdtw_core::fastdtw::fastdtw_ref_distance(x, y, r, SquaredCost)
            }
        }
    }
}

/// Result of a nearest-neighbor query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnResult {
    /// Index of the nearest training exemplar.
    pub index: usize,
    /// Its distance.
    pub distance: f64,
    /// Its label.
    pub label: usize,
}

/// Brute-force 1-NN of `query` among `train`, skipping index `skip`
/// (for leave-one-out; pass `usize::MAX` to skip nothing).
pub fn nn_brute_force(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    skip: usize,
) -> Result<NnResult> {
    let mut best = NnResult {
        index: usize::MAX,
        distance: f64::INFINITY,
        label: 0,
    };
    for (i, s) in train.series.iter().enumerate() {
        if i == skip {
            continue;
        }
        let d = spec.eval(query, s)?;
        if d < best.distance {
            best = NnResult {
                index: i,
                distance: d,
                label: train.labels[i],
            };
        }
    }
    if best.index == usize::MAX {
        return Err(Error::EmptyInput { which: "train" });
    }
    Ok(best)
}

/// Cascaded exact 1-NN under `cDTW_band` — identical output to
/// [`nn_brute_force`] with [`DistanceSpec::CdtwBand`], but with the
/// UCR-suite pruning stack. Requires equal-length series.
pub fn nn_cascade(
    train: &LabeledView<'_>,
    query: &[f64],
    band: usize,
    skip: usize,
) -> Result<NnResult> {
    let mut cascade = Cascade::new(query, band)?;
    let mut best = NnResult {
        index: usize::MAX,
        distance: f64::INFINITY,
        label: 0,
    };
    for (i, s) in train.series.iter().enumerate() {
        if i == skip {
            continue;
        }
        let out = cascade.evaluate(s, best.distance)?;
        if let Some(d) = out.exact_distance() {
            if d < best.distance {
                best = NnResult {
                    index: i,
                    distance: d,
                    label: train.labels[i],
                };
            }
        }
    }
    if best.index == usize::MAX {
        return Err(Error::EmptyInput { which: "train" });
    }
    Ok(best)
}

/// Brute-force k-NN: the `k` nearest training exemplars, nearest first.
pub fn knn_brute_force(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
    skip: usize,
) -> Result<Vec<NnResult>> {
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "k must be at least 1".into(),
        });
    }
    let mut all: Vec<NnResult> = Vec::with_capacity(train.series.len());
    for (i, s) in train.series.iter().enumerate() {
        if i == skip {
            continue;
        }
        let d = spec.eval(query, s)?;
        all.push(NnResult {
            index: i,
            distance: d,
            label: train.labels[i],
        });
    }
    if all.is_empty() {
        return Err(Error::EmptyInput { which: "train" });
    }
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
    });
    all.truncate(k);
    Ok(all)
}

/// Majority vote over the k nearest neighbors; ties break toward the
/// nearer neighbor's label (the standard convention).
pub fn classify_knn(
    train: &LabeledView<'_>,
    query: &[f64],
    spec: DistanceSpec,
    k: usize,
) -> Result<usize> {
    let neighbors = knn_brute_force(train, query, spec, k, usize::MAX)?;
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for n in &neighbors {
        *counts.entry(n.label).or_insert(0) += 1;
    }
    let best_count = *counts.values().max().expect("nonempty");
    // Nearest neighbor whose label achieves the max count wins ties.
    Ok(neighbors
        .iter()
        .find(|n| counts[&n.label] == best_count)
        .expect("nonempty")
        .label)
}

/// Classifies every test series by brute-force 1-NN against the training
/// set; returns the error rate in `[0, 1]`.
pub fn evaluate_split(
    train: &LabeledView<'_>,
    test: &LabeledView<'_>,
    spec: DistanceSpec,
) -> Result<f64> {
    if test.series.is_empty() {
        return Err(Error::EmptyInput { which: "test" });
    }
    let mut errors = 0usize;
    for (q, &truth) in test.series.iter().zip(test.labels) {
        let nn = nn_brute_force(train, q, spec, usize::MAX)?;
        if nn.label != truth {
            errors += 1;
        }
    }
    Ok(errors as f64 / test.series.len() as f64)
}

/// Leave-one-out cross-validated 1-NN error rate under `spec`.
///
/// This is the procedure the UCR archive used to publish its optimal
/// warping windows (and hence the procedure behind the paper's Fig. 2a).
pub fn loocv_error(view: &LabeledView<'_>, spec: DistanceSpec) -> Result<f64> {
    if view.series.len() < 2 {
        return Err(Error::InvalidParameter {
            name: "view",
            reason: "LOOCV needs at least two series".into(),
        });
    }
    let mut errors = 0usize;
    for i in 0..view.series.len() {
        let nn = nn_brute_force(view, &view.series[i], spec, i)?;
        if nn.label != view.labels[i] {
            errors += 1;
        }
    }
    Ok(errors as f64 / view.series.len() as f64)
}

/// LOOCV error under exact `cDTW_band`, via the cascade (fast path).
pub fn loocv_error_cdtw_fast(view: &LabeledView<'_>, band: usize) -> Result<f64> {
    if view.series.len() < 2 {
        return Err(Error::InvalidParameter {
            name: "view",
            reason: "LOOCV needs at least two series".into(),
        });
    }
    let mut errors = 0usize;
    for i in 0..view.series.len() {
        let nn = nn_cascade(view, &view.series[i], band, i)?;
        if nn.label != view.labels[i] {
            errors += 1;
        }
    }
    Ok(errors as f64 / view.series.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset_views::LabeledView;

    /// Two well-separated synthetic classes: slow sine vs fast sine.
    fn two_class() -> (Vec<Vec<f64>>, Vec<usize>) {
        let n = 64;
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for k in 0..10 {
            let phase = k as f64 * 0.17;
            series.push((0..n).map(|i| (i as f64 * 0.2 + phase).sin()).collect());
            labels.push(0);
            series.push((0..n).map(|i| (i as f64 * 0.55 + phase).sin()).collect());
            labels.push(1);
        }
        (series, labels)
    }

    #[test]
    fn brute_force_finds_true_nearest() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let nn = nn_brute_force(&view, &series[0], DistanceSpec::CdtwBand(4), 0).unwrap();
        // Nearest to a class-0 exemplar must be class 0.
        assert_eq!(nn.label, 0);
        assert!(nn.index != 0);
    }

    #[test]
    fn cascade_matches_brute_force_exactly() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for band in [0usize, 3, 10] {
            for (i, s) in series.iter().enumerate() {
                let bf = nn_brute_force(&view, s, DistanceSpec::CdtwBand(band), i).unwrap();
                let fast = nn_cascade(&view, s, band, i).unwrap();
                assert_eq!(bf.index, fast.index, "band {band} query {i}");
                assert!((bf.distance - fast.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn loocv_zero_error_on_separable_data() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let err = loocv_error(&view, DistanceSpec::CdtwBand(4)).unwrap();
        assert_eq!(err, 0.0);
        let err_fast = loocv_error_cdtw_fast(&view, 4).unwrap();
        assert_eq!(err_fast, 0.0);
    }

    #[test]
    fn loocv_error_agrees_between_paths() {
        // Noisy, overlapping classes so the error is nonzero.
        let n = 32;
        let mut series: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        for k in 0..16 {
            let jig = (k * 2654435761u64 as usize) as f64;
            series.push(
                (0..n)
                    .map(|i| ((i as f64 + jig) * 0.9).sin() * ((k % 7) as f64 * 0.3))
                    .collect(),
            );
            labels.push(k % 2);
        }
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let slow = loocv_error(&view, DistanceSpec::CdtwBand(3)).unwrap();
        let fast = loocv_error_cdtw_fast(&view, 3).unwrap();
        assert_eq!(slow, fast);
    }

    #[test]
    fn evaluate_split_perfect_on_separable() {
        let (series, labels) = two_class();
        let train = LabeledView {
            series: &series[..10],
            labels: &labels[..10],
        };
        let test = LabeledView {
            series: &series[10..],
            labels: &labels[10..],
        };
        let err = evaluate_split(&train, &test, DistanceSpec::CdtwBand(4)).unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn all_distance_specs_are_usable() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for spec in [
            DistanceSpec::Euclidean,
            DistanceSpec::CdtwPercent(5.0),
            DistanceSpec::CdtwBand(2),
            DistanceSpec::FullDtw,
            DistanceSpec::FastDtw(3),
            DistanceSpec::FastDtwRef(3),
        ] {
            let nn = nn_brute_force(&view, &series[1], spec, 1).unwrap();
            assert!(nn.distance.is_finite());
        }
    }

    #[test]
    fn knn_returns_sorted_neighbors() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        let nns = knn_brute_force(&view, &series[0], DistanceSpec::CdtwBand(4), 5, 0).unwrap();
        assert_eq!(nns.len(), 5);
        for w in nns.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // Class-0 query: nearest neighbors dominated by class 0.
        let zero_votes = nns.iter().filter(|n| n.label == 0).count();
        assert!(zero_votes >= 3, "{zero_votes}/5 class-0 neighbors");
    }

    #[test]
    fn knn_k1_matches_nn() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for (q, s) in series.iter().enumerate().take(4) {
            let nn = nn_brute_force(&view, s, DistanceSpec::CdtwBand(3), q).unwrap();
            let k1 = knn_brute_force(&view, s, DistanceSpec::CdtwBand(3), 1, q).unwrap();
            assert_eq!(k1[0], nn);
        }
    }

    #[test]
    fn classify_knn_majority_vote() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        for k in [1usize, 3, 5] {
            let label = classify_knn(&view, &series[2], DistanceSpec::CdtwBand(4), k).unwrap();
            assert_eq!(label, labels[2], "k={k}");
        }
    }

    #[test]
    fn knn_rejects_k_zero() {
        let (series, labels) = two_class();
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        assert!(knn_brute_force(&view, &series[0], DistanceSpec::Euclidean, 0, 0).is_err());
    }

    #[test]
    fn empty_train_rejected() {
        let series: Vec<Vec<f64>> = vec![vec![0.0; 4]];
        let labels = vec![0];
        let view = LabeledView {
            series: &series,
            labels: &labels,
        };
        // Skipping the only element leaves nothing.
        assert!(nn_brute_force(&view, &series[0], DistanceSpec::Euclidean, 0).is_err());
    }
}
