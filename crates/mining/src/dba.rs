//! DTW Barycenter Averaging (DBA, Petitjean et al. 2011).
//!
//! The canonical way to average time series under DTW: start from a
//! candidate average, align every series to it with DTW, replace each
//! coordinate of the average with the mean of all sample values aligned to
//! it, and repeat. The within-set DTW inertia is non-increasing across
//! iterations. Included as an extension (the mining literature the paper
//! addresses uses DBA heavily, always on top of *exact* DTW).

use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::full::{dtw_distance, dtw_with_path};
use tsdtw_core::error::{Error, Result};

/// Result of a DBA run.
#[derive(Debug, Clone, PartialEq)]
pub struct DbaResult {
    /// The barycenter.
    pub average: Vec<f64>,
    /// Sum of DTW distances from every series to the barycenter, one entry
    /// per iteration (including the initial state), non-increasing.
    pub inertia_trace: Vec<f64>,
}

/// Sum of DTW distances from every series to `center`.
pub fn inertia(series: &[Vec<f64>], center: &[f64]) -> Result<f64> {
    let mut total = 0.0;
    for s in series {
        total += dtw_distance(center, s, SquaredCost)?;
    }
    Ok(total)
}

/// Runs DBA for up to `iterations` refinement steps, starting from the
/// medoid-ish choice of the first series.
pub fn dba(series: &[Vec<f64>], iterations: usize) -> Result<DbaResult> {
    if series.is_empty() {
        return Err(Error::EmptyInput { which: "series" });
    }
    if series.iter().any(|s| s.is_empty()) {
        return Err(Error::EmptyInput { which: "series[i]" });
    }
    let mut average = series[0].clone();
    let mut trace = vec![inertia(series, &average)?];

    for _ in 0..iterations {
        let _span = tsdtw_obs::span("dba_iteration");
        let m = average.len();
        let mut sums = vec![0.0; m];
        let mut counts = vec![0usize; m];
        for s in series {
            let (_, path) = dtw_with_path(&average, s, SquaredCost)?;
            for &(i, j) in path.cells() {
                sums[i] += s[j];
                counts[i] += 1;
            }
        }
        for i in 0..m {
            if counts[i] > 0 {
                average[i] = sums[i] / counts[i] as f64;
            }
        }
        trace.push(inertia(series, &average)?);
    }

    Ok(DbaResult {
        average,
        inertia_trace: trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_family() -> Vec<Vec<f64>> {
        (0..5)
            .map(|k| {
                (0..60)
                    .map(|i| (((i + k * 2) as f64) * 0.25).sin() * 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn inertia_is_non_increasing() {
        let fam = shifted_family();
        let r = dba(&fam, 8).unwrap();
        for w in r.inertia_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "inertia increased: {:?}",
                r.inertia_trace
            );
        }
    }

    #[test]
    fn averaging_improves_on_the_initial_member() {
        let fam = shifted_family();
        let r = dba(&fam, 8).unwrap();
        assert!(
            r.inertia_trace.last().unwrap() < &(r.inertia_trace[0] * 0.9),
            "DBA should visibly reduce inertia: {:?}",
            r.inertia_trace
        );
    }

    #[test]
    fn average_of_identical_series_is_that_series() {
        let s = vec![vec![0.0, 1.0, 2.0, 1.0, 0.0]; 4];
        let r = dba(&s, 3).unwrap();
        for (a, b) in r.average.iter().zip(&s[0]) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(r.inertia_trace.iter().all(|&v| v < 1e-12));
    }

    #[test]
    fn zero_iterations_returns_seed() {
        let fam = shifted_family();
        let r = dba(&fam, 0).unwrap();
        assert_eq!(r.average, fam[0]);
        assert_eq!(r.inertia_trace.len(), 1);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(dba(&[], 3).is_err());
        assert!(dba(&[vec![]], 3).is_err());
    }
}
