//! DTW Barycenter Averaging (DBA, Petitjean et al. 2011).
//!
//! The canonical way to average time series under DTW: start from a
//! candidate average, align every series to it with DTW, replace each
//! coordinate of the average with the mean of all sample values aligned to
//! it, and repeat. The within-set DTW inertia is non-increasing across
//! iterations. Included as an extension (the mining literature the paper
//! addresses uses DBA heavily, always on top of *exact* DTW).

use crate::par::{par_map, ParConfig};
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::full::{dtw_distance, dtw_with_path};
use tsdtw_core::error::{Error, Result};
use tsdtw_obs::NoMeter;

/// Result of a DBA run.
#[derive(Debug, Clone, PartialEq)]
pub struct DbaResult {
    /// The barycenter.
    pub average: Vec<f64>,
    /// Sum of DTW distances from every series to the barycenter, one entry
    /// per iteration (including the initial state), non-increasing.
    pub inertia_trace: Vec<f64>,
}

/// Sum of DTW distances from every series to `center`.
pub fn inertia(series: &[Vec<f64>], center: &[f64]) -> Result<f64> {
    let mut total = 0.0;
    for s in series {
        total += dtw_distance(center, s, SquaredCost)?;
    }
    Ok(total)
}

/// Runs DBA for up to `iterations` refinement steps, starting from the
/// medoid-ish choice of the first series.
pub fn dba(series: &[Vec<f64>], iterations: usize) -> Result<DbaResult> {
    if series.is_empty() {
        return Err(Error::EmptyInput { which: "series" });
    }
    if series.iter().any(|s| s.is_empty()) {
        return Err(Error::EmptyInput { which: "series[i]" });
    }
    let mut average = series[0].clone();
    let mut trace = vec![inertia(series, &average)?];

    for _ in 0..iterations {
        let _span = tsdtw_obs::span("dba_iteration");
        let m = average.len();
        let mut sums = vec![0.0; m];
        let mut counts = vec![0usize; m];
        for s in series {
            let (_, path) = dtw_with_path(&average, s, SquaredCost)?;
            for &(i, j) in path.cells() {
                sums[i] += s[j];
                counts[i] += 1;
            }
        }
        for i in 0..m {
            if counts[i] > 0 {
                average[i] = sums[i] / counts[i] as f64;
            }
        }
        trace.push(inertia(series, &average)?);
    }

    Ok(DbaResult {
        average,
        inertia_trace: trace,
    })
}

/// [`inertia`] on the deterministic parallel executor: per-series
/// distances are computed on workers and summed in series order, so the
/// total is bitwise identical to the serial sum at any thread count.
pub fn inertia_par(series: &[Vec<f64>], center: &[f64], cfg: &ParConfig) -> Result<f64> {
    let distances = par_map(cfg, series, &mut NoMeter, |_, s, _| {
        dtw_distance(center, s, SquaredCost)
    })?;
    Ok(distances.iter().sum())
}

/// [`dba`] on the deterministic parallel executor.
///
/// Each iteration aligns every series to the current average on a worker
/// (the expensive part — a full DP with path recovery per series), but the
/// barycenter update itself replays the returned warping paths **serially,
/// in series order**. Merging per-series partial `sums[i]` instead would
/// reassociate the floating-point additions (`(a + b) + c ≠ a + (b + c)`)
/// and let the averages drift across thread counts; replaying the paths
/// keeps every accumulation in the exact serial order, so the result is
/// bitwise identical to [`dba`] at any `(n_threads, chunk)`.
pub fn dba_par(series: &[Vec<f64>], iterations: usize, cfg: &ParConfig) -> Result<DbaResult> {
    if series.is_empty() {
        return Err(Error::EmptyInput { which: "series" });
    }
    if series.iter().any(|s| s.is_empty()) {
        return Err(Error::EmptyInput { which: "series[i]" });
    }
    let mut average = series[0].clone();
    let mut trace = vec![inertia_par(series, &average, cfg)?];

    for _ in 0..iterations {
        let _span = tsdtw_obs::span("dba_iteration");
        let m = average.len();
        let mut sums = vec![0.0; m];
        let mut counts = vec![0usize; m];
        let paths = par_map(cfg, series, &mut NoMeter, |_, s, _| {
            dtw_with_path(&average, s, SquaredCost).map(|(_, path)| path)
        })?;
        for (s, path) in series.iter().zip(&paths) {
            for &(i, j) in path.cells() {
                sums[i] += s[j];
                counts[i] += 1;
            }
        }
        for i in 0..m {
            if counts[i] > 0 {
                average[i] = sums[i] / counts[i] as f64;
            }
        }
        trace.push(inertia_par(series, &average, cfg)?);
    }

    Ok(DbaResult {
        average,
        inertia_trace: trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_family() -> Vec<Vec<f64>> {
        (0..5)
            .map(|k| {
                (0..60)
                    .map(|i| (((i + k * 2) as f64) * 0.25).sin() * 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn inertia_is_non_increasing() {
        let fam = shifted_family();
        let r = dba(&fam, 8).unwrap();
        for w in r.inertia_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "inertia increased: {:?}",
                r.inertia_trace
            );
        }
    }

    #[test]
    fn averaging_improves_on_the_initial_member() {
        let fam = shifted_family();
        let r = dba(&fam, 8).unwrap();
        assert!(
            r.inertia_trace.last().unwrap() < &(r.inertia_trace[0] * 0.9),
            "DBA should visibly reduce inertia: {:?}",
            r.inertia_trace
        );
    }

    #[test]
    fn average_of_identical_series_is_that_series() {
        let s = vec![vec![0.0, 1.0, 2.0, 1.0, 0.0]; 4];
        let r = dba(&s, 3).unwrap();
        for (a, b) in r.average.iter().zip(&s[0]) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(r.inertia_trace.iter().all(|&v| v < 1e-12));
    }

    #[test]
    fn zero_iterations_returns_seed() {
        let fam = shifted_family();
        let r = dba(&fam, 0).unwrap();
        assert_eq!(r.average, fam[0]);
        assert_eq!(r.inertia_trace.len(), 1);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(dba(&[], 3).is_err());
        assert!(dba(&[vec![]], 3).is_err());
        let cfg = ParConfig::new(2).unwrap();
        assert!(dba_par(&[], 3, &cfg).is_err());
        assert!(dba_par(&[vec![]], 3, &cfg).is_err());
    }

    #[test]
    fn par_dba_is_bitwise_serial_at_any_thread_count() {
        let fam = shifted_family();
        let serial = dba(&fam, 6).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let cfg = ParConfig::with_chunk(threads, 2).unwrap();
            let par = dba_par(&fam, 6, &cfg).unwrap();
            // Full bitwise equality: the path-replay accumulation keeps
            // every floating-point addition in serial order.
            assert_eq!(par, serial, "{threads} threads");
            for (a, b) in par.inertia_trace.iter().zip(&serial.inertia_trace) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn par_inertia_is_bitwise_serial() {
        let fam = shifted_family();
        let center = &fam[2];
        let serial = inertia(&fam, center).unwrap();
        for threads in [2usize, 5] {
            let cfg = ParConfig::with_chunk(threads, 1).unwrap();
            let par = inertia_par(&fam, center, &cfg).unwrap();
            assert_eq!(par.to_bits(), serial.to_bits(), "{threads} threads");
        }
    }
}
