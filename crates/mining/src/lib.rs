//! # tsdtw-mining — the tasks the paper measures, built on exact DTW
//!
//! Repeated-measurement workloads are where the paper's argument lands
//! hardest: for one-off comparisons FastDTW is merely slower than `cDTW`;
//! for 1-NN classification, similarity search and clustering, the exact
//! pipeline additionally gets lower bounds and early abandoning — "a
//! further two to five orders of magnitude" (§3.4) — which the
//! approximation structurally cannot use.
//!
//! * [`knn`] — 1-NN classification (brute-force and cascaded), LOOCV;
//! * [`wselect`] — brute-force optimal-warping-window search (Fig. 2a);
//! * [`search`] — UCR-suite-style subsequence search (the trillion-point
//!   footnote);
//! * [`pairwise`] — parallel all-pairs distance matrices (Fig. 1, Fig. 4);
//! * [`cluster`] — hierarchical dendrograms (Fig. 7) and k-medoids;
//! * [`dba`] — DTW barycenter averaging (extension);
//! * [`anomaly`] — discord discovery (extension);
//! * [`motif`] — motif (closest-pair) discovery (extension).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod anomaly;
pub mod cluster;
pub mod dataset_views;
pub mod dba;
pub mod knn;
pub mod motif;
pub mod pairwise;
pub mod par;
pub mod search;
pub mod wselect;

pub use dataset_views::LabeledView;
pub use knn::{
    classify_knn, classify_knn_par, evaluate_split, evaluate_split_par, knn_brute_force,
    knn_brute_force_par, loocv_error, loocv_error_cdtw_fast, loocv_error_cdtw_fast_par,
    loocv_error_par, DistanceSpec, NnResult,
};
pub use pairwise::{
    pair_count, pairwise_matrix, pairwise_matrix_par, pairwise_matrix_spec,
    pairwise_matrix_spec_par, DistanceMatrix,
};
pub use par::{par_fold_argmin, par_map, ParConfig, DEFAULT_CHUNK};
pub use search::{
    distance_profile, distance_profile_par, subsequence_search, subsequence_search_par,
    top_k_matches, top_k_matches_par, Match, SearchResult,
};
pub use wselect::{integer_grid, optimal_window, optimal_window_par, WindowSearch};
