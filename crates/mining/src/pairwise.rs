//! Parallel all-pairs distance computation.
//!
//! The paper's Fig. 1 and Fig. 4 measure the cumulative time for *all
//! pairwise comparisons* in a dataset (400,960 and 499,500 pairs
//! respectively). This module provides that workload, built on the
//! deterministic executor in [`par`](crate::par). Parallelism is applied
//! identically whichever distance closure is passed, so
//! exact/approximate *ratios* — the thing the paper argues about — are
//! preserved, and the per-pair meter shards merge in pair order, so the
//! work counters are identical at any thread count.

use crate::knn::{scan_distances_metered, DistanceSpec};
use crate::par::{par_map, ParConfig};
use tsdtw_core::error::{Error, Result};
use tsdtw_obs::{MeterShard, NoMeter};

/// A symmetric distance matrix stored densely.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    fn zeros(n: usize) -> Self {
        DistanceMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Builds a matrix directly from `(i, j, d)` triples over `n` items.
    pub fn from_triples(n: usize, triples: &[(usize, usize, f64)]) -> Self {
        let mut m = Self::zeros(n);
        for &(i, j, d) in triples {
            m.set_sym(i, j, d);
        }
        m
    }
}

/// Number of unordered pairs over `n` items: `n·(n−1)/2` — the comparison
/// counts the paper quotes (e.g. "896 × 895 ÷ 2 = 400,960").
pub fn pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Computes all pairwise distances with `n_threads` workers.
///
/// The distance closure must be pure; it receives `(series[i], series[j])`
/// for every `i < j`. Errors from any pair abort the whole computation.
/// `n_threads = 0` is clamped to 1 (kept for backward compatibility;
/// [`pairwise_matrix_par`] rejects it instead).
pub fn pairwise_matrix<F>(series: &[Vec<f64>], n_threads: usize, dist: F) -> Result<DistanceMatrix>
where
    F: Fn(&[f64], &[f64]) -> Result<f64> + Sync,
{
    let cfg = ParConfig {
        n_threads: n_threads.max(1),
        chunk: crate::par::DEFAULT_CHUNK,
    };
    pairwise_matrix_par(series, &cfg, &mut NoMeter, |a, b, _: &mut NoMeter| {
        dist(a, b)
    })
}

/// [`pairwise_matrix`] on an explicit [`ParConfig`], with a metered
/// distance closure: each pair's work lands in a private shard and the
/// shards merge into `meter` in pair order (row-major over `i < j`), so
/// the merged counters are identical at any thread count.
pub fn pairwise_matrix_par<M, F>(
    series: &[Vec<f64>],
    cfg: &ParConfig,
    meter: &mut M,
    dist: F,
) -> Result<DistanceMatrix>
where
    M: MeterShard,
    F: Fn(&[f64], &[f64], &mut M) -> Result<f64> + Sync,
{
    let n = series.len();
    if n == 0 {
        return Err(Error::EmptyInput { which: "series" });
    }
    // Enumerate pairs once, row-major; the executor chunks them so cost
    // stays balanced even though later rows have fewer pairs.
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let distances = par_map(cfg, &pairs, meter, |_, &(i, j), m| {
        dist(&series[i], &series[j], m)
    })?;
    let mut out = DistanceMatrix::zeros(n);
    for (&(i, j), d) in pairs.iter().zip(distances) {
        out.set_sym(i, j, d);
    }
    Ok(out)
}

/// All pairwise distances under a [`DistanceSpec`] — the spec-aware
/// sibling of [`pairwise_matrix`].
///
/// Where the closure API evaluates one opaque pair at a time, this form
/// hands each matrix *row suffix* (`series[i]` against `series[i+1..]`)
/// to the shared k-NN scan body, so under the default `Auto` kernel a
/// banded spec over equal-length series runs on the struct-of-lanes
/// batch kernel. Distances are bitwise identical to the closure form;
/// only wall-clock time and the `batch.*` counters change.
pub fn pairwise_matrix_spec(
    series: &[Vec<f64>],
    spec: DistanceSpec,
    n_threads: usize,
) -> Result<DistanceMatrix> {
    let cfg = ParConfig {
        n_threads: n_threads.max(1),
        chunk: crate::par::DEFAULT_CHUNK,
    };
    pairwise_matrix_spec_par(series, spec, &cfg, &mut NoMeter)
}

/// [`pairwise_matrix_spec`] on an explicit [`ParConfig`] with a meter.
///
/// The *row* is the unit of parallelism: each worker runs the serial
/// scan of its row suffix (same lane grouping at any thread count) into
/// a private shard, and shards merge in row order. Matrix and merged
/// counters are bitwise identical at any `n_threads`.
pub fn pairwise_matrix_spec_par<M: MeterShard>(
    series: &[Vec<f64>],
    spec: DistanceSpec,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<DistanceMatrix> {
    let n = series.len();
    if n == 0 {
        return Err(Error::EmptyInput { which: "series" });
    }
    let rows: Vec<usize> = (0..n).collect();
    let row_dists = par_map(cfg, &rows, meter, |_, &i, m| {
        let idxs: Vec<usize> = ((i + 1)..n).collect();
        scan_distances_metered(series, &series[i], spec, &idxs, m)
    })?;
    let mut out = DistanceMatrix::zeros(n);
    for (i, dists) in row_dists.iter().enumerate() {
        for (off, &d) in dists.iter().enumerate() {
            out.set_sym(i, i + 1 + off, d);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::distance::sq_euclidean;

    fn toy_series(k: usize, n: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|s| (0..n).map(|i| ((s * 7 + i) as f64 * 0.37).sin()).collect())
            .collect()
    }

    #[test]
    fn pair_count_matches_paper_examples() {
        assert_eq!(pair_count(896), 400_960);
        assert_eq!(pair_count(1000), 499_500);
        assert_eq!(pair_count(1), 0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let s = toy_series(8, 32);
        let m = pairwise_matrix(&s, 3, sq_euclidean).unwrap();
        for i in 0..8 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..8 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let s = toy_series(10, 20);
        let serial = pairwise_matrix(&s, 1, sq_euclidean).unwrap();
        let parallel = pairwise_matrix(&s, 4, sq_euclidean).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn works_with_dtw_distances() {
        let s = toy_series(5, 24);
        let m = pairwise_matrix(&s, 2, |a, b| tsdtw_core::cdtw(a, b, 10.0)).unwrap();
        let direct = tsdtw_core::cdtw(&s[1], &s[3], 10.0).unwrap();
        assert_eq!(m.get(1, 3), direct);
    }

    #[test]
    fn propagates_distance_errors() {
        let s = vec![vec![0.0, 1.0], vec![1.0, 2.0]];
        let r = pairwise_matrix(&s, 2, |_, _| {
            Err(tsdtw_core::Error::EmptyInput { which: "x" })
        });
        assert!(r.is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let r = pairwise_matrix(&[], 2, sq_euclidean);
        assert!(r.is_err());
    }

    #[test]
    fn singleton_gives_trivial_matrix() {
        let s = toy_series(1, 10);
        let m = pairwise_matrix(&s, 2, sq_euclidean).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn metered_par_counters_are_thread_count_invariant() {
        use tsdtw_obs::WorkMeter;
        let s = toy_series(9, 40);
        let run = |threads: usize| {
            let cfg = ParConfig::with_chunk(threads, 4).unwrap();
            let mut meter = WorkMeter::new();
            let m = pairwise_matrix_par(&s, &cfg, &mut meter, |a, b, mm| {
                tsdtw_core::dtw::banded::cdtw_distance_metered(
                    a,
                    b,
                    3,
                    tsdtw_core::cost::SquaredCost,
                    mm,
                )
            })
            .unwrap();
            (m, meter)
        };
        let (m1, meter1) = run(1);
        assert!(meter1.cells > 0);
        for threads in [2usize, 3, 7] {
            let (m, meter) = run(threads);
            assert_eq!(m, m1, "{threads} threads");
            assert_eq!(meter, meter1, "{threads} threads");
        }
    }

    #[test]
    fn spec_matrix_is_bitwise_equal_to_the_closure_matrix() {
        // The closure form evaluates scalar pair-at-a-time; the spec form
        // takes the batched scan route under the default Auto kernel. The
        // matrices must agree bitwise.
        let s = toy_series(11, 48);
        let closure = pairwise_matrix(&s, 1, |a, b| {
            tsdtw_core::dtw::banded::cdtw_distance(a, b, 5, tsdtw_core::cost::SquaredCost)
        })
        .unwrap();
        let spec = pairwise_matrix_spec(&s, DistanceSpec::CdtwBand(5), 3).unwrap();
        assert_eq!(spec.len(), closure.len());
        for i in 0..s.len() {
            for j in 0..s.len() {
                assert_eq!(
                    spec.get(i, j).to_bits(),
                    closure.get(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn spec_matrix_batches_and_is_thread_count_invariant() {
        use tsdtw_obs::WorkMeter;
        let s = toy_series(13, 40);
        let run = |threads: usize| {
            let cfg = ParConfig::with_chunk(threads, 2).unwrap();
            let mut meter = WorkMeter::new();
            let m =
                pairwise_matrix_spec_par(&s, DistanceSpec::CdtwBand(4), &cfg, &mut meter).unwrap();
            (m, meter)
        };
        let (m1, meter1) = run(1);
        // Every row suffix scans batched: 13 rows with suffix lengths
        // 12..=0 produce ceil(len/8) groups each and one lane per pair.
        let expect_groups: u64 = (0..13u64).map(|i| (12 - i).div_ceil(8)).sum();
        assert_eq!(meter1.batch_groups, expect_groups);
        assert_eq!(meter1.batch_lanes, pair_count(13) as u64);
        for threads in [2usize, 4, 7] {
            let (m, meter) = run(threads);
            assert_eq!(m, m1, "{threads} threads");
            assert_eq!(meter, meter1, "{threads} threads");
        }
    }

    #[test]
    fn from_triples_builds_symmetric() {
        let m = DistanceMatrix::from_triples(3, &[(0, 1, 2.0), (0, 2, 3.0), (1, 2, 4.0)]);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(2, 1), 4.0);
    }
}
