//! Brute-force search for the optimal warping window — the procedure
//! behind the paper's Fig. 2a.
//!
//! The UCR archive's published "optimal w" values (the paper's proxy for
//! each domain's natural warping `W`) were computed by evaluating
//! leave-one-out 1-NN accuracy at every window in a grid and keeping the
//! best, ties broken toward the *smaller* window. [`optimal_window`] is
//! that procedure.

use tsdtw_core::dtw::banded::percent_to_band;
use tsdtw_core::error::{Error, Result};

use crate::dataset_views::LabeledView;
use crate::knn::{loocv_error_cdtw_fast, loocv_error_cdtw_fast_par};
use crate::par::ParConfig;

/// Outcome of an optimal-window search.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSearch {
    /// The winning window, in percent of series length.
    pub best_w_percent: f64,
    /// LOOCV error at the winner.
    pub best_error: f64,
    /// `(w_percent, error)` for every grid point, in grid order.
    pub profile: Vec<(f64, f64)>,
}

/// Evaluates LOOCV 1-NN error at every window of `w_grid` (percent) and
/// returns the best (ties → smaller w, the archive convention).
pub fn optimal_window(view: &LabeledView<'_>, w_grid: &[f64]) -> Result<WindowSearch> {
    if w_grid.is_empty() {
        return Err(Error::EmptyInput { which: "w_grid" });
    }
    let n = view.series[0].len();
    let mut profile = Vec::with_capacity(w_grid.len());
    let mut best_w = f64::NAN;
    let mut best_err = f64::INFINITY;
    for &w in w_grid {
        let band = percent_to_band(n, w)?;
        let err = loocv_error_cdtw_fast(view, band)?;
        profile.push((w, err));
        // Strict improvement only: ties keep the earlier (smaller) window.
        if err < best_err {
            best_err = err;
            best_w = w;
        }
    }
    Ok(WindowSearch {
        best_w_percent: best_w,
        best_error: best_err,
        profile,
    })
}

/// [`optimal_window`] on the deterministic parallel executor.
///
/// The grid is walked serially (each point's LOOCV is the expensive part)
/// and each grid point's leave-one-out queries fan out across workers via
/// [`loocv_error_cdtw_fast_par`]. Every per-query cascade is serial and
/// self-contained, so each grid point's error — and therefore the winner
/// and the full profile — is bitwise identical to [`optimal_window`] at
/// any `(n_threads, chunk)`.
pub fn optimal_window_par(
    view: &LabeledView<'_>,
    w_grid: &[f64],
    cfg: &ParConfig,
) -> Result<WindowSearch> {
    if w_grid.is_empty() {
        return Err(Error::EmptyInput { which: "w_grid" });
    }
    let n = view.series[0].len();
    let mut profile = Vec::with_capacity(w_grid.len());
    let mut best_w = f64::NAN;
    let mut best_err = f64::INFINITY;
    for &w in w_grid {
        let band = percent_to_band(n, w)?;
        let err = loocv_error_cdtw_fast_par(view, band, cfg)?;
        profile.push((w, err));
        // Strict improvement only: ties keep the earlier (smaller) window.
        if err < best_err {
            best_err = err;
            best_w = w;
        }
    }
    Ok(WindowSearch {
        best_w_percent: best_w,
        best_error: best_err,
        profile,
    })
}

/// The standard archive grid: integer percentages `0..=max_w`.
pub fn integer_grid(max_w: usize) -> Vec<f64> {
    (0..=max_w).map(|w| w as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classes that need a little warping: same shape, jittered phase.
    /// Euclidean confuses them; a small window separates them; a huge
    /// window lets the fast class mimic the slow one.
    fn warped_classes(shift: f64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let n = 80;
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for k in 0..8 {
            // Deterministic per-exemplar phase jitter within ±shift samples.
            let jit = ((k * 37 % 11) as f64 / 11.0 - 0.5) * 2.0 * shift;
            series.push(
                (0..n)
                    .map(|i| {
                        ((i as f64 + jit) * 0.25).sin() + 0.25 * ((i as f64 + jit) * 0.8).sin()
                    })
                    .collect(),
            );
            labels.push(0);
            series.push(
                (0..n)
                    .map(|i| {
                        ((i as f64 + jit) * 0.25).sin() - 0.25 * ((i as f64 + jit) * 0.8).sin()
                    })
                    .collect(),
            );
            labels.push(1);
        }
        (series, labels)
    }

    #[test]
    fn finds_a_window_and_full_profile() {
        let (series, labels) = warped_classes(6.0);
        let view = LabeledView::new(&series, &labels).unwrap();
        let grid = integer_grid(20);
        let res = optimal_window(&view, &grid).unwrap();
        assert_eq!(res.profile.len(), 21);
        assert!(res.best_error <= res.profile[0].1, "best must beat w=0");
        assert!((0.0..=20.0).contains(&res.best_w_percent));
    }

    #[test]
    fn ties_break_toward_smaller_window() {
        // Perfectly separable data: every window gives zero error, so the
        // search must return the first grid point.
        let n = 40;
        let series: Vec<Vec<f64>> = (0..8)
            .map(|k| {
                (0..n)
                    .map(|i| if k % 2 == 0 { i as f64 } else { -(i as f64) })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..8).map(|k| k % 2).collect();
        let view = LabeledView::new(&series, &labels).unwrap();
        let res = optimal_window(&view, &integer_grid(10)).unwrap();
        assert_eq!(res.best_w_percent, 0.0);
        assert_eq!(res.best_error, 0.0);
    }

    #[test]
    fn grid_helper_is_inclusive() {
        let g = integer_grid(5);
        assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn rejects_empty_grid() {
        let (series, labels) = warped_classes(2.0);
        let view = LabeledView::new(&series, &labels).unwrap();
        assert!(optimal_window(&view, &[]).is_err());
        let cfg = ParConfig::new(2).unwrap();
        assert!(optimal_window_par(&view, &[], &cfg).is_err());
    }

    #[test]
    fn par_window_search_is_bitwise_serial() {
        let (series, labels) = warped_classes(6.0);
        let view = LabeledView::new(&series, &labels).unwrap();
        let grid = integer_grid(12);
        let serial = optimal_window(&view, &grid).unwrap();
        for threads in [1usize, 3, 7] {
            let cfg = ParConfig::with_chunk(threads, 4).unwrap();
            let par = optimal_window_par(&view, &grid, &cfg).unwrap();
            assert_eq!(par, serial, "{threads} threads");
        }
    }
}
