//! Borrowed views over labeled series collections.
//!
//! The mining crate deliberately does not depend on the dataset
//! generators; algorithms accept a [`LabeledView`] borrowing any storage
//! (`tsdtw_datasets::LabeledDataset` included — its fields have exactly
//! this shape).

use tsdtw_core::error::{Error, Result};

/// A borrowed labeled collection: parallel slices of series and labels.
#[derive(Debug, Clone, Copy)]
pub struct LabeledView<'a> {
    /// The series.
    pub series: &'a [Vec<f64>],
    /// One label per series.
    pub labels: &'a [usize],
}

impl<'a> LabeledView<'a> {
    /// Builds a view, validating that series and labels are parallel and
    /// non-empty.
    pub fn new(series: &'a [Vec<f64>], labels: &'a [usize]) -> Result<Self> {
        if series.is_empty() {
            return Err(Error::EmptyInput { which: "series" });
        }
        if series.len() != labels.len() {
            return Err(Error::InvalidParameter {
                name: "labels",
                reason: format!("{} series but {} labels", series.len(), labels.len()),
            });
        }
        Ok(LabeledView { series, labels })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the view is empty (never for a validated one).
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_view() {
        let s = vec![vec![0.0], vec![1.0]];
        let l = vec![0, 1];
        let v = LabeledView::new(&s, &l).unwrap();
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn rejects_mismatch_and_empty() {
        let s = vec![vec![0.0]];
        let l = vec![0, 1];
        assert!(LabeledView::new(&s, &l).is_err());
        let empty: Vec<Vec<f64>> = vec![];
        assert!(LabeledView::new(&empty, &[]).is_err());
    }
}
