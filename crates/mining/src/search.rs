//! Similarity search under exact `cDTW`: whole-series nearest neighbor and
//! UCR-suite-style subsequence search.
//!
//! The subsequence searcher is the machinery behind the paper's §3.4
//! citation of Rakthanmanon et al.: *"for similarity search of a cDTW_5
//! query of length 128 … searched a time series of length one trillion in
//! 1.4 days, however … FastDTW_10 would take 5.8 years."* It slides a
//! query over a long haystack, z-normalizing each candidate window
//! *just-in-time* from rolling sums, and disposes of almost every position
//! with the lower-bound cascade before the DP ever runs. None of this
//! machinery is available to FastDTW.

use crate::par::{par_fold_argmin, par_map, ParConfig};
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::early_abandon::{cdtw_distance_ea_metered_buf_kernel, EaOutcome};
use tsdtw_core::dtw::windowed::DtwBuffer;
use tsdtw_core::envelope::Envelope;
use tsdtw_core::error::{Error, Result};
use tsdtw_core::lower_bounds::keogh::{
    lb_keogh_reordered, lb_keogh_with_contrib, sort_indices_by_magnitude, suffix_sums_into,
};
use tsdtw_core::lower_bounds::kim::lb_kim_hierarchy;
use tsdtw_core::norm::znorm;
use tsdtw_obs::{tightness_ppb, FunnelStage, LbKind, Meter, MeterShard, NoMeter, StageTag};

/// Outcome of a subsequence search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Start offset of the best-matching window in the haystack.
    pub position: usize,
    /// Its exact `cDTW_band` distance (squared-cost domain) after
    /// z-normalization of both query and window.
    pub distance: f64,
    /// How candidates were disposed of, for reporting pruning power.
    pub stats: SearchStats,
}

/// Per-stage candidate disposition counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Total candidate windows examined.
    pub candidates: u64,
    /// Pruned by LB_Kim.
    pub pruned_kim: u64,
    /// Pruned by (reordered, early-abandoning) LB_Keogh.
    pub pruned_keogh: u64,
    /// DTW started but abandoned early.
    pub dtw_abandoned: u64,
    /// DTW ran to completion.
    pub dtw_exact: u64,
}

impl SearchStats {
    /// Fraction of candidates that never reached the DP at all.
    pub fn prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        (self.pruned_kim + self.pruned_keogh) as f64 / self.candidates as f64
    }
}

/// Finds the best match of `query` across all sliding windows of
/// `haystack`, comparing z-normalized windows under exact `cDTW_band`.
///
/// ```
/// use tsdtw_mining::search::subsequence_search;
///
/// // Plant a scaled copy of the query inside noise; z-normalization
/// // makes the match exact anyway.
/// let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
/// let mut haystack = vec![0.25; 200];
/// for (k, &q) in query.iter().enumerate() {
///     haystack[120 + k] = 3.0 * q + 10.0;
/// }
/// let hit = subsequence_search(&haystack, &query, 2).unwrap();
/// assert_eq!(hit.position, 120);
/// assert!(hit.distance < 1e-9);
/// ```
pub fn subsequence_search(haystack: &[f64], query: &[f64], band: usize) -> Result<SearchResult> {
    subsequence_search_metered(haystack, query, band, &mut NoMeter)
}

/// [`subsequence_search`] with a [`Meter`] accumulating lower-bound
/// invocations, per-stage prune tallies and the (early-abandoning) DP work
/// across all candidate positions. The [`SearchStats`] counters and the
/// meter's prune tallies agree by construction; tests pin it.
pub fn subsequence_search_metered<M: Meter>(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    meter: &mut M,
) -> Result<SearchResult> {
    let _span = tsdtw_obs::span("subsequence_search");
    let m = query.len();
    if m == 0 {
        return Err(Error::EmptyInput { which: "query" });
    }
    if haystack.len() < m {
        return Err(Error::InvalidParameter {
            name: "haystack",
            reason: format!("haystack ({}) shorter than query ({m})", haystack.len()),
        });
    }
    let q = znorm(query)?;
    let env = Envelope::new(&q, band)?;
    meter.envelope_built(q.len() as u64);
    let order = sort_indices_by_magnitude(&q);

    let mut bsf = f64::INFINITY;
    let mut best_pos = 0usize;
    let mut stats = SearchStats::default();
    let mut window = vec![0.0; m];
    let mut contrib: Vec<f64> = Vec::new();
    let mut cb: Vec<f64> = Vec::new();
    let mut dtw_buf = DtwBuffer::new();
    let kernel = tsdtw_core::default_kernel();
    // Funnel cost proxy for the DTW stage: rows filled × band width.
    let band_width = (2 * band + 1).min(m) as u64;

    // Rolling sums for O(1) mean/std per position (just-in-time z-norm).
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in &haystack[..m] {
        sum += v;
        sum_sq += v * v;
    }

    for pos in 0..=haystack.len() - m {
        if pos > 0 {
            let out = haystack[pos - 1];
            let inc = haystack[pos + m - 1];
            sum += inc - out;
            sum_sq += inc * inc - out * out;
        }
        stats.candidates += 1;
        let mean = sum / m as f64;
        let var = (sum_sq / m as f64 - mean * mean).max(0.0);
        let std = var.sqrt();
        let inv = if std > f64::EPSILON { 1.0 / std } else { 0.0 };

        // Materialize the normalized candidate (one pass; the UCR suite
        // fuses this with LB_Keogh — we keep it separate for clarity, the
        // asymptotics are identical).
        for (k, w) in window.iter_mut().enumerate() {
            *w = (haystack[pos + k] - mean) * inv;
        }

        meter.lb(LbKind::Kim);
        meter.stage_entered(FunnelStage::Kim);
        meter.stage_cost(FunnelStage::Kim, 1);
        let kim = lb_kim_hierarchy(&q, &window, bsf)?;
        if kim >= bsf {
            stats.pruned_kim += 1;
            meter.prune(StageTag::Kim);
            continue;
        }
        meter.lb(LbKind::Keogh);
        meter.stage_entered(FunnelStage::KeoghQC);
        meter.stage_cost(FunnelStage::KeoghQC, m as u64);
        let keogh = lb_keogh_reordered(&window, &env, &order, bsf)?;
        if keogh >= bsf {
            stats.pruned_keogh += 1;
            meter.prune(StageTag::KeoghQC);
            continue;
        }
        meter.lb(LbKind::Keogh);
        meter.stage_entered(FunnelStage::Dtw);
        let _ = lb_keogh_with_contrib(&window, &env, &mut contrib)?;
        suffix_sums_into(&contrib, &mut cb);
        match cdtw_distance_ea_metered_buf_kernel(
            &q,
            &window,
            band,
            bsf,
            Some(&cb),
            SquaredCost,
            &mut dtw_buf,
            meter,
            kernel,
        )? {
            EaOutcome::Exact(d) => {
                stats.dtw_exact += 1;
                meter.stage_cost(FunnelStage::Dtw, m as u64 * band_width);
                if meter.enabled() {
                    for (stage, lb) in [(FunnelStage::Kim, kim), (FunnelStage::KeoghQC, keogh)] {
                        if let Some(ppb) = tightness_ppb(lb, d) {
                            meter.stage_tightness(stage, ppb);
                        }
                    }
                }
                meter.prune(StageTag::DtwExact);
                if d < bsf {
                    bsf = d;
                    best_pos = pos;
                }
            }
            EaOutcome::Abandoned { rows_filled } => {
                stats.dtw_abandoned += 1;
                meter.stage_cost(FunnelStage::Dtw, rows_filled as u64 * band_width);
                meter.prune(StageTag::DtwAbandoned);
            }
        }
    }

    Ok(SearchResult {
        position: best_pos,
        distance: bsf,
        stats,
    })
}

/// Per-position `(mean, 1/std)` of every length-`m` window of `haystack`,
/// computed with the exact rolling-sum recurrence the serial searchers
/// use, so the windows the parallel paths materialize from these arrays
/// are bitwise identical to the serially-normalized ones.
fn rolling_norm_params(haystack: &[f64], m: usize) -> (Vec<f64>, Vec<f64>) {
    let n_pos = haystack.len() - m + 1;
    let mut means = Vec::with_capacity(n_pos);
    let mut invs = Vec::with_capacity(n_pos);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in &haystack[..m] {
        sum += v;
        sum_sq += v * v;
    }
    for pos in 0..n_pos {
        if pos > 0 {
            let out = haystack[pos - 1];
            let inc = haystack[pos + m - 1];
            sum += inc - out;
            sum_sq += inc * inc - out * out;
        }
        let mean = sum / m as f64;
        let var = (sum_sq / m as f64 - mean * mean).max(0.0);
        let std = var.sqrt();
        means.push(mean);
        invs.push(if std > f64::EPSILON { 1.0 / std } else { 0.0 });
    }
    (means, invs)
}

/// How the parallel searcher disposed of one candidate position.
enum Disposition {
    Kim,
    Keogh,
    Abandoned,
    Exact(f64),
}

/// [`subsequence_search`] on the deterministic parallel executor.
///
/// Candidate positions are folded chunk-synchronously: every position in
/// a chunk is bounded and early-abandoned against the best-so-far frozen
/// at the chunk's start, and the bound advances at the merge in position
/// order. Because completed `cDTW` values are independent of the bound
/// (early abandoning only ever discards provably-worse candidates), the
/// winning position and distance are bitwise identical to the serial
/// search at any `(n_threads, chunk)`; the [`SearchStats`] and meter
/// counters are a pure function of `chunk` — with `chunk = 1` they equal
/// the serial ones exactly, and for any fixed `chunk` they are identical
/// at every thread count.
pub fn subsequence_search_par<M: MeterShard>(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<SearchResult> {
    let _span = tsdtw_obs::span("subsequence_search");
    let m = query.len();
    if m == 0 {
        return Err(Error::EmptyInput { which: "query" });
    }
    if haystack.len() < m {
        return Err(Error::InvalidParameter {
            name: "haystack",
            reason: format!("haystack ({}) shorter than query ({m})", haystack.len()),
        });
    }
    let q = znorm(query)?;
    let env = Envelope::new(&q, band)?;
    meter.envelope_built(q.len() as u64);
    let order = sort_indices_by_magnitude(&q);
    let (means, invs) = rolling_norm_params(haystack, m);
    let positions: Vec<usize> = (0..means.len()).collect();

    let kernel = tsdtw_core::default_kernel();
    let band_width = (2 * band + 1).min(m) as u64;
    let (best, outcomes) = par_fold_argmin(
        cfg,
        &positions,
        meter,
        f64::INFINITY,
        || {
            Ok((
                vec![0.0; m],
                Vec::<f64>::new(),
                Vec::<f64>::new(),
                DtwBuffer::new(),
            ))
        },
        |ctx, _, &pos, bsf, mm| {
            let (window, contrib, cb, dtw_buf) = ctx;
            for (k, w) in window.iter_mut().enumerate() {
                *w = (haystack[pos + k] - means[pos]) * invs[pos];
            }
            mm.lb(LbKind::Kim);
            mm.stage_entered(FunnelStage::Kim);
            mm.stage_cost(FunnelStage::Kim, 1);
            let kim = lb_kim_hierarchy(&q, window, bsf)?;
            if kim >= bsf {
                mm.prune(StageTag::Kim);
                return Ok(Disposition::Kim);
            }
            mm.lb(LbKind::Keogh);
            mm.stage_entered(FunnelStage::KeoghQC);
            mm.stage_cost(FunnelStage::KeoghQC, m as u64);
            let keogh = lb_keogh_reordered(window, &env, &order, bsf)?;
            if keogh >= bsf {
                mm.prune(StageTag::KeoghQC);
                return Ok(Disposition::Keogh);
            }
            mm.lb(LbKind::Keogh);
            mm.stage_entered(FunnelStage::Dtw);
            let _ = lb_keogh_with_contrib(window, &env, contrib)?;
            suffix_sums_into(contrib, cb);
            match cdtw_distance_ea_metered_buf_kernel(
                &q,
                window,
                band,
                bsf,
                Some(cb),
                SquaredCost,
                dtw_buf,
                mm,
                kernel,
            )? {
                EaOutcome::Exact(d) => {
                    mm.stage_cost(FunnelStage::Dtw, m as u64 * band_width);
                    if mm.enabled() {
                        for (stage, lb) in [(FunnelStage::Kim, kim), (FunnelStage::KeoghQC, keogh)]
                        {
                            if let Some(ppb) = tightness_ppb(lb, d) {
                                mm.stage_tightness(stage, ppb);
                            }
                        }
                    }
                    mm.prune(StageTag::DtwExact);
                    Ok(Disposition::Exact(d))
                }
                EaOutcome::Abandoned { rows_filled } => {
                    mm.stage_cost(FunnelStage::Dtw, rows_filled as u64 * band_width);
                    mm.prune(StageTag::DtwAbandoned);
                    Ok(Disposition::Abandoned)
                }
            }
        },
        |e| match e {
            Disposition::Exact(d) => Some(*d),
            _ => None,
        },
    )?;

    let mut stats = SearchStats {
        candidates: outcomes.len() as u64,
        ..SearchStats::default()
    };
    for e in &outcomes {
        match e {
            Disposition::Kim => stats.pruned_kim += 1,
            Disposition::Keogh => stats.pruned_keogh += 1,
            Disposition::Abandoned => stats.dtw_abandoned += 1,
            Disposition::Exact(_) => stats.dtw_exact += 1,
        }
    }
    let (position, distance) = best.map_or((0, f64::INFINITY), |(pos, d)| (pos, d));
    Ok(SearchResult {
        position,
        distance,
        stats,
    })
}

/// Brute-force reference: z-normalize every window, run plain `cDTW_band`.
/// Exported for tests and the pruning-power ablation bench.
pub fn subsequence_search_brute(
    haystack: &[f64],
    query: &[f64],
    band: usize,
) -> Result<SearchResult> {
    let m = query.len();
    if m == 0 {
        return Err(Error::EmptyInput { which: "query" });
    }
    if haystack.len() < m {
        return Err(Error::InvalidParameter {
            name: "haystack",
            reason: format!("haystack ({}) shorter than query ({m})", haystack.len()),
        });
    }
    let q = znorm(query)?;
    let mut bsf = f64::INFINITY;
    let mut best_pos = 0usize;
    let mut stats = SearchStats::default();
    for pos in 0..=haystack.len() - m {
        stats.candidates += 1;
        let window = znorm(&haystack[pos..pos + m])?;
        let d = tsdtw_core::dtw::banded::cdtw_distance(&q, &window, band, SquaredCost)?;
        stats.dtw_exact += 1;
        if d < bsf {
            bsf = d;
            best_pos = pos;
        }
    }
    Ok(SearchResult {
        position: best_pos,
        distance: bsf,
        stats,
    })
}

/// The full z-normalized `cDTW_band` distance profile: `profile[p]` is the
/// distance of the query to the window starting at `p`.
///
/// Unlike [`subsequence_search`] this computes *every* value (no
/// pruning — all of them are the output), which is what top-k matching,
/// motif exploration and plotting need.
pub fn distance_profile(haystack: &[f64], query: &[f64], band: usize) -> Result<Vec<f64>> {
    distance_profile_metered(haystack, query, band, &mut NoMeter)
}

/// [`distance_profile`] with a [`Meter`] accumulating the DP work of every
/// window evaluation (no pruning here, so `cells == window_cells`).
pub fn distance_profile_metered<M: Meter>(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    meter: &mut M,
) -> Result<Vec<f64>> {
    let _span = tsdtw_obs::span("subsequence_search");
    let m = query.len();
    if m == 0 {
        return Err(Error::EmptyInput { which: "query" });
    }
    if haystack.len() < m {
        return Err(Error::InvalidParameter {
            name: "haystack",
            reason: format!("haystack ({}) shorter than query ({m})", haystack.len()),
        });
    }
    let q = znorm(query)?;
    let mut out = Vec::with_capacity(haystack.len() - m + 1);
    let mut window = vec![0.0; m];
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in &haystack[..m] {
        sum += v;
        sum_sq += v * v;
    }
    for pos in 0..=haystack.len() - m {
        if pos > 0 {
            let outv = haystack[pos - 1];
            let inv_ = haystack[pos + m - 1];
            sum += inv_ - outv;
            sum_sq += inv_ * inv_ - outv * outv;
        }
        let mean = sum / m as f64;
        let var = (sum_sq / m as f64 - mean * mean).max(0.0);
        let std = var.sqrt();
        let inv = if std > f64::EPSILON { 1.0 / std } else { 0.0 };
        for (k, w) in window.iter_mut().enumerate() {
            *w = (haystack[pos + k] - mean) * inv;
        }
        out.push(tsdtw_core::dtw::banded::cdtw_distance_metered(
            &q,
            &window,
            band,
            SquaredCost,
            meter,
        )?);
    }
    Ok(out)
}

/// [`distance_profile`] on the deterministic parallel executor: every
/// window evaluation is an independent item, so the profile *and* the
/// merged meter counters are bitwise identical to the serial ones at any
/// `(n_threads, chunk)`.
pub fn distance_profile_par<M: MeterShard>(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<Vec<f64>> {
    let _span = tsdtw_obs::span("subsequence_search");
    let m = query.len();
    if m == 0 {
        return Err(Error::EmptyInput { which: "query" });
    }
    if haystack.len() < m {
        return Err(Error::InvalidParameter {
            name: "haystack",
            reason: format!("haystack ({}) shorter than query ({m})", haystack.len()),
        });
    }
    let q = znorm(query)?;
    let (means, invs) = rolling_norm_params(haystack, m);
    let positions: Vec<usize> = (0..means.len()).collect();
    par_map(cfg, &positions, meter, |_, &pos, mm| {
        let mut window = vec![0.0; m];
        for (k, w) in window.iter_mut().enumerate() {
            *w = (haystack[pos + k] - means[pos]) * invs[pos];
        }
        tsdtw_core::dtw::banded::cdtw_distance_metered(&q, &window, band, SquaredCost, mm)
    })
}

/// One match from a top-k query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Start offset of the window.
    pub position: usize,
    /// Its z-normalized `cDTW_band` distance to the query.
    pub distance: f64,
}

/// The `k` best non-overlapping matches of `query` in `haystack`, selected
/// greedily from the exact distance profile with an exclusion zone of
/// `exclusion` positions around each accepted match (pass `query.len()`
/// for fully non-overlapping matches). Returns fewer than `k` matches if
/// the haystack cannot hold more.
pub fn top_k_matches(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    k: usize,
    exclusion: usize,
) -> Result<Vec<Match>> {
    top_k_matches_metered(haystack, query, band, k, exclusion, &mut NoMeter)
}

/// [`top_k_matches`] with a [`Meter`] accumulating the full profile's DP
/// work.
pub fn top_k_matches_metered<M: Meter>(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    k: usize,
    exclusion: usize,
    meter: &mut M,
) -> Result<Vec<Match>> {
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "k must be at least 1".into(),
        });
    }
    let profile = distance_profile_metered(haystack, query, band, meter)?;
    Ok(greedy_top_k(&profile, k, exclusion))
}

/// [`top_k_matches`] on the deterministic parallel executor: the profile
/// is computed via [`distance_profile_par`], then the greedy selection
/// (a cheap, inherently serial scan) runs exactly as in the serial path.
pub fn top_k_matches_par<M: MeterShard>(
    haystack: &[f64],
    query: &[f64],
    band: usize,
    k: usize,
    exclusion: usize,
    cfg: &ParConfig,
    meter: &mut M,
) -> Result<Vec<Match>> {
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "k must be at least 1".into(),
        });
    }
    let profile = distance_profile_par(haystack, query, band, cfg, meter)?;
    Ok(greedy_top_k(&profile, k, exclusion))
}

/// Greedy non-overlapping selection from a distance profile, shared by
/// the serial and parallel top-k entry points. Stable sort and strict
/// index order make the selection deterministic under exact ties.
fn greedy_top_k(profile: &[f64], k: usize, exclusion: usize) -> Vec<Match> {
    let mut order: Vec<usize> = (0..profile.len()).collect();
    order.sort_by(|&a, &b| {
        profile[a]
            .partial_cmp(&profile[b])
            .expect("finite distances")
    });
    let mut taken: Vec<Match> = Vec::with_capacity(k);
    for p in order {
        if taken.len() == k {
            break;
        }
        if taken
            .iter()
            .all(|m| m.position.abs_diff(p) >= exclusion.max(1))
        {
            taken.push(Match {
                position: p,
                distance: profile[p],
            });
        }
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A haystack with a planted (scaled + offset) copy of the query.
    fn planted(seed: u64, n: usize, m: usize, at: usize) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let query: Vec<f64> = (0..m)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + 0.2 * rnd())
            .collect();
        let mut hay: Vec<f64> = (0..n).map(|_| rnd() * 3.0).collect();
        for (k, &qv) in query.iter().enumerate() {
            // Scale and offset: z-normalization must undo this.
            hay[at + k] = qv * 5.0 + 40.0;
        }
        (hay, query)
    }

    #[test]
    fn finds_planted_match() {
        let (hay, query) = planted(1, 600, 48, 333);
        let r = subsequence_search(&hay, &query, 4).unwrap();
        assert!(
            r.position.abs_diff(333) <= 2,
            "expected match near 333, got {}",
            r.position
        );
        assert!(r.distance < 5.0, "distance {}", r.distance);
    }

    #[test]
    fn matches_brute_force_exactly() {
        for seed in 0..5 {
            let (hay, query) = planted(seed, 300, 32, 120);
            let fast = subsequence_search(&hay, &query, 3).unwrap();
            let brute = subsequence_search_brute(&hay, &query, 3).unwrap();
            assert_eq!(fast.position, brute.position, "seed {seed}");
            assert!((fast.distance - brute.distance).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn cascade_prunes_most_positions() {
        let (hay, query) = planted(7, 3000, 64, 1500);
        let r = subsequence_search(&hay, &query, 5).unwrap();
        // Most candidates must never reach a *completed* DP: pruned by a
        // bound or abandoned mid-DP.
        let completed_frac = r.stats.dtw_exact as f64 / r.stats.candidates as f64;
        assert!(
            completed_frac < 0.1,
            "expected <10% of candidates to need a full DP, got {:.1}% ({:?})",
            completed_frac * 100.0,
            r.stats
        );
        assert!(
            r.stats.prune_rate() > 0.3,
            "expected the bounds alone to prune >30%, got {:.1}%",
            r.stats.prune_rate() * 100.0
        );
        assert_eq!(r.stats.candidates, (hay.len() - query.len() + 1) as u64);
    }

    #[test]
    fn invariant_to_window_scale_and_offset() {
        // The planted copy is at scale 5, offset 40 — finding it at all
        // proves JIT normalization works; also check a scaled haystack.
        let (hay, query) = planted(3, 500, 40, 77);
        let scaled: Vec<f64> = hay.iter().map(|v| v * 0.25 - 3.0).collect();
        let a = subsequence_search(&hay, &query, 4).unwrap();
        let b = subsequence_search(&scaled, &query, 4).unwrap();
        assert_eq!(a.position, b.position);
        assert!((a.distance - b.distance).abs() < 1e-6);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(subsequence_search(&[1.0, 2.0], &[], 1).is_err());
        assert!(subsequence_search(&[1.0], &[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn distance_profile_minimum_matches_search() {
        let (hay, query) = planted(11, 400, 32, 200);
        let profile = distance_profile(&hay, &query, 4).unwrap();
        assert_eq!(profile.len(), hay.len() - query.len() + 1);
        let (argmin, min) = profile
            .iter()
            .enumerate()
            .fold(
                (0, f64::INFINITY),
                |acc, (i, &v)| if v < acc.1 { (i, v) } else { acc },
            );
        let search = subsequence_search(&hay, &query, 4).unwrap();
        assert_eq!(argmin, search.position);
        assert!((min - search.distance).abs() < 1e-9);
    }

    #[test]
    fn top_k_finds_both_planted_copies() {
        // Plant two copies of the query far apart.
        let mut state = 77u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let m = 40;
        let query: Vec<f64> = (0..m).map(|i| (i as f64 * 0.31).sin() * 3.0).collect();
        let mut hay: Vec<f64> = (0..600).map(|_| rnd() * 4.0).collect();
        for (k, &q) in query.iter().enumerate() {
            hay[100 + k] = q;
            hay[400 + k] = q * 2.0 + 1.0; // scaled copy: z-norm recovers it
        }
        let matches = top_k_matches(&hay, &query, 4, 2, m).unwrap();
        assert_eq!(matches.len(), 2);
        let mut positions: Vec<usize> = matches.iter().map(|m| m.position).collect();
        positions.sort_unstable();
        assert!(positions[0].abs_diff(100) <= 2, "{positions:?}");
        assert!(positions[1].abs_diff(400) <= 2, "{positions:?}");
        // Exclusion honored.
        assert!(positions[1] - positions[0] >= m);
    }

    #[test]
    fn top_k_respects_exclusion_zone() {
        let hay: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).sin()).collect();
        let query: Vec<f64> = hay[50..90].to_vec();
        let matches = top_k_matches(&hay, &query, 3, 5, 40).unwrap();
        for a in 0..matches.len() {
            for b in (a + 1)..matches.len() {
                assert!(matches[a].position.abs_diff(matches[b].position) >= 40);
            }
        }
    }

    #[test]
    fn top_k_rejects_zero_k() {
        let hay = vec![0.0; 50];
        let query = vec![0.0; 10];
        assert!(top_k_matches(&hay, &query, 2, 0, 10).is_err());
    }

    #[test]
    fn metered_search_matches_plain_and_mirrors_stats() {
        use tsdtw_obs::WorkMeter;
        let (hay, query) = planted(5, 800, 48, 432);
        let plain = subsequence_search(&hay, &query, 4).unwrap();
        let mut meter = WorkMeter::new();
        let metered = subsequence_search_metered(&hay, &query, 4, &mut meter).unwrap();
        assert_eq!(plain, metered);
        // The meter's prune tallies are the SearchStats, field for field
        // (the cascade's q→c Keogh stage is where the search's single
        // Keogh bound reports).
        assert_eq!(meter.pruned_kim, plain.stats.pruned_kim);
        assert_eq!(meter.pruned_keogh_qc, plain.stats.pruned_keogh);
        assert_eq!(meter.dtw_abandoned, plain.stats.dtw_abandoned);
        assert_eq!(meter.dtw_exact, plain.stats.dtw_exact);
        assert_eq!(meter.candidates(), plain.stats.candidates);
        // The query envelope is built exactly once, and only survivors of
        // both bounds reach the DP.
        assert_eq!(meter.envelopes_built, 1);
        assert_eq!(meter.envelope_points, query.len() as u64);
        assert_eq!(meter.ea_invocations, meter.dtw_abandoned + meter.dtw_exact);
        assert!(meter.cells > 0);
        assert!(meter.cells <= meter.window_cells);
    }

    #[test]
    fn par_search_chunk_one_equals_serial_metered_exactly() {
        use tsdtw_obs::WorkMeter;
        let (hay, query) = planted(9, 700, 40, 250);
        let mut serial_meter = WorkMeter::new();
        let serial = subsequence_search_metered(&hay, &query, 4, &mut serial_meter).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let cfg = ParConfig::with_chunk(threads, 1).unwrap();
            let mut meter = WorkMeter::new();
            let r = subsequence_search_par(&hay, &query, 4, &cfg, &mut meter).unwrap();
            assert_eq!(r, serial, "{threads} threads");
            assert_eq!(meter, serial_meter, "{threads} threads");
        }
    }

    #[test]
    fn par_search_finds_serial_match_with_thread_invariant_counters() {
        use tsdtw_obs::WorkMeter;
        let (hay, query) = planted(13, 900, 48, 512);
        let serial = subsequence_search(&hay, &query, 4).unwrap();
        let run = |threads: usize| {
            let cfg = ParConfig::with_chunk(threads, 16).unwrap();
            let mut meter = WorkMeter::new();
            let r = subsequence_search_par(&hay, &query, 4, &cfg, &mut meter).unwrap();
            (r, meter)
        };
        let (r1, m1) = run(1);
        // The winner is bitwise the serial one (completed cDTW values do
        // not depend on the pruning bound), even though the frozen-bound
        // stats differ from the continuous serial ones at chunk 16.
        assert_eq!(r1.position, serial.position);
        assert_eq!(r1.distance.to_bits(), serial.distance.to_bits());
        for threads in [2usize, 3, 7] {
            let (r, m) = run(threads);
            assert_eq!(r, r1, "{threads} threads");
            assert_eq!(m, m1, "{threads} threads");
        }
    }

    #[test]
    fn par_profile_and_top_k_are_bitwise_serial() {
        use tsdtw_obs::WorkMeter;
        let (hay, query) = planted(21, 500, 32, 321);
        let mut serial_meter = WorkMeter::new();
        let serial = distance_profile_metered(&hay, &query, 3, &mut serial_meter).unwrap();
        for threads in [2usize, 5] {
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let mut meter = WorkMeter::new();
            let profile = distance_profile_par(&hay, &query, 3, &cfg, &mut meter).unwrap();
            assert_eq!(profile, serial, "{threads} threads");
            assert_eq!(meter, serial_meter, "{threads} threads");
            let a = top_k_matches(&hay, &query, 3, 3, query.len()).unwrap();
            let b = top_k_matches_par(&hay, &query, 3, 3, query.len(), &cfg, &mut NoMeter).unwrap();
            assert_eq!(a, b, "{threads} threads");
        }
    }

    #[test]
    fn par_search_rejects_bad_config_and_degenerate_inputs() {
        let (hay, query) = planted(2, 120, 16, 40);
        let bad = ParConfig {
            n_threads: 0,
            chunk: 4,
        };
        assert!(subsequence_search_par(&hay, &query, 2, &bad, &mut NoMeter).is_err());
        let ok = ParConfig::new(2).unwrap();
        assert!(subsequence_search_par(&hay, &[], 2, &ok, &mut NoMeter).is_err());
        assert!(distance_profile_par(&[1.0], &[1.0, 2.0], 1, &ok, &mut NoMeter).is_err());
        assert!(top_k_matches_par(&hay, &query, 2, 0, 8, &ok, &mut NoMeter).is_err());
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let query: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut hay = vec![0.5; 200];
        hay[100..132].copy_from_slice(&query);
        let r = subsequence_search(&hay, &query, 3).unwrap();
        assert_eq!(r.position, 100);
        assert!(r.distance < 1e-18);
    }
}
