//! Clustering under DTW-family distances.
//!
//! * [`hierarchical`] — agglomerative clustering and dendrograms (used by
//!   the Fig. 7 reproduction);
//! * [`kmedoids`] — PAM-style partitional clustering (extension).

pub mod hierarchical;
pub mod kmedoids;

pub use hierarchical::{agglomerative, Dendrogram, Linkage, Merge};
pub use kmedoids::{k_medoids, KMedoids};
