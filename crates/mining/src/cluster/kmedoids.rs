//! k-medoids (PAM-style) clustering under any precomputed distance matrix.
//!
//! DTW has no meaningful mean in raw-series space (that is what DBA is
//! for), so partitional clustering under DTW classically uses medoids.
//! Included as an extension; the paper's clustering demonstration (Fig. 7)
//! uses the hierarchical module.

use tsdtw_core::error::{Error, Result};

use crate::pairwise::DistanceMatrix;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoids {
    /// Indices of the chosen medoids.
    pub medoids: Vec<usize>,
    /// Cluster assignment (position into `medoids`) for every item.
    pub assignment: Vec<usize>,
    /// Sum of distances of items to their medoid.
    pub inertia: f64,
    /// Number of improvement sweeps performed.
    pub iterations: usize,
}

/// Runs PAM-style alternating optimization: assign each point to its
/// nearest medoid, then for each cluster pick the member minimizing the
/// within-cluster distance sum; repeat to convergence (or `max_iter`).
///
/// Deterministic: initial medoids are the first `k` items scattered by a
/// fixed stride, so results are reproducible without an RNG.
pub fn k_medoids(dist: &DistanceMatrix, k: usize, max_iter: usize) -> Result<KMedoids> {
    let _span = tsdtw_obs::span("cluster");
    let n = dist.len();
    if n == 0 {
        return Err(Error::EmptyInput { which: "dist" });
    }
    if k == 0 || k > n {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: format!("k must be in 1..={n}, got {k}"),
        });
    }
    // Strided deterministic init.
    let mut medoids: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    medoids.dedup();
    while medoids.len() < k {
        let next = (0..n).find(|i| !medoids.contains(i)).expect("k <= n");
        medoids.push(next);
    }

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut inertia = 0.0;
        let a = (0..n)
            .map(|i| {
                let (best_m, best_d) = medoids
                    .iter()
                    .enumerate()
                    .map(|(mi, &m)| (mi, dist.get(i, m)))
                    .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite distances"))
                    .expect("k >= 1");
                inertia += best_d;
                best_m
            })
            .collect();
        (a, inertia)
    };

    let (mut assignment, mut inertia) = assign(&medoids);
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            // Best medoid within the cluster.
            let (best, _) = members
                .iter()
                .map(|&cand| {
                    let s: f64 = members.iter().map(|&m| dist.get(cand, m)).sum();
                    (cand, s)
                })
                .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite distances"))
                .expect("nonempty cluster");
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        let (a, i2) = assign(&medoids);
        assignment = a;
        if !changed {
            inertia = i2;
            break;
        }
        inertia = i2;
    }

    Ok(KMedoids {
        medoids,
        assignment,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups {0,1,2} and {3,4,5}, far apart.
    fn two_blobs() -> DistanceMatrix {
        let mut triples = Vec::new();
        for i in 0..6usize {
            for j in (i + 1)..6usize {
                let near = (i < 3) == (j < 3);
                let d = if near {
                    1.0 + (i + j) as f64 * 0.01
                } else {
                    50.0
                };
                triples.push((i, j, d));
            }
        }
        DistanceMatrix::from_triples(6, &triples)
    }

    #[test]
    fn separates_two_blobs() {
        let r = k_medoids(&two_blobs(), 2, 20).unwrap();
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert!(r.inertia < 10.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let r = k_medoids(&two_blobs(), 6, 10).unwrap();
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn k_one_picks_global_medoid() {
        let r = k_medoids(&two_blobs(), 1, 10).unwrap();
        assert_eq!(r.medoids.len(), 1);
        assert!(r.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic() {
        let a = k_medoids(&two_blobs(), 2, 20).unwrap();
        let b = k_medoids(&two_blobs(), 2, 20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_k() {
        assert!(k_medoids(&two_blobs(), 0, 5).is_err());
        assert!(k_medoids(&two_blobs(), 7, 5).is_err());
    }
}
