//! Agglomerative hierarchical clustering with dendrograms — the machinery
//! behind the paper's Fig. 7, where the same three series cluster
//! correctly under Full DTW and pathologically under FastDTW_20.

use tsdtw_core::error::{Error, Result};

use crate::pairwise::DistanceMatrix;

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA).
    Average,
}

/// One merge step: clusters `a` and `b` (node ids) joined at `height`.
///
/// Leaves are nodes `0..n`; the merge created by step `k` is node `n + k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node id.
    pub a: usize,
    /// Second merged node id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// The full merge tree over `n` leaves (`n − 1` merges).
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n_leaves: usize,
    /// Merges in chronological (increasing-height for single/complete/
    /// average linkage on a metric) order.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cluster assignments after cutting the tree into `k` clusters.
    /// Labels are arbitrary but consistent (0-based, dense).
    pub fn cut(&self, k: usize) -> Result<Vec<usize>> {
        let n = self.n_leaves;
        if k == 0 || k > n {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: format!("k must be in 1..={n}, got {k}"),
            });
        }
        // Union-find over the first n - k merges.
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().take(n - k).enumerate() {
            let node = n + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let l = *label_of_root.entry(root).or_insert(next);
            labels.push(l);
        }
        Ok(labels)
    }

    /// The two leaves that merged first (the tree's tightest pair).
    pub fn first_pair(&self) -> Option<(usize, usize)> {
        self.merges.first().and_then(|m| {
            if m.a < self.n_leaves && m.b < self.n_leaves {
                Some((m.a.min(m.b), m.a.max(m.b)))
            } else {
                None
            }
        })
    }

    /// Renders a small dendrogram as indented ASCII, with leaves labeled by
    /// `names` (padded with indices if too short). Intended for the
    /// three-series Fig. 7 reproduction, not large trees.
    pub fn render_ascii(&self, names: &[&str]) -> String {
        fn node_str(d: &Dendrogram, names: &[&str], node: usize, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            if node < d.n_leaves {
                let name = names
                    .get(node)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("leaf{node}"));
                out.push_str(&format!("{pad}{name}\n"));
            } else {
                let m = d.merges[node - d.n_leaves];
                out.push_str(&format!("{pad}+- h={:.4}\n", m.height));
                node_str(d, names, m.a, indent + 1, out);
                node_str(d, names, m.b, indent + 1, out);
            }
        }
        let mut out = String::new();
        if self.merges.is_empty() {
            for leaf in 0..self.n_leaves {
                node_str(self, names, leaf, 0, &mut out);
            }
        } else {
            node_str(
                self,
                names,
                self.n_leaves + self.merges.len() - 1,
                0,
                &mut out,
            );
        }
        out
    }
}

/// Agglomerative clustering from a precomputed distance matrix.
///
/// Classic O(n³) implementation (n is small in every use here); the
/// Lance–Williams updates keep single/complete/average linkage exact.
pub fn agglomerative(dist: &DistanceMatrix, linkage: Linkage) -> Result<Dendrogram> {
    let _span = tsdtw_obs::span("cluster");
    let n = dist.len();
    if n == 0 {
        return Err(Error::EmptyInput { which: "dist" });
    }
    // Working inter-cluster distance matrix, indexed by *active* node id.
    let total = 2 * n - 1;
    let mut d = vec![f64::INFINITY; total * total];
    let at = |i: usize, j: usize| i * total + j;
    for i in 0..n {
        for j in 0..n {
            d[at(i, j)] = dist.get(i, j);
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut sizes = vec![1usize; total];
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for (ai, &a) in active.iter().enumerate() {
            for &b in &active[ai + 1..] {
                let v = d[at(a, b)];
                if v < best.2 {
                    best = (a, b, v);
                }
            }
        }
        let (a, b, h) = best;
        let node = n + step;
        sizes[node] = sizes[a] + sizes[b];
        merges.push(Merge {
            a,
            b,
            height: h,
            size: sizes[node],
        });

        // Lance–Williams update of distances from the new cluster to every
        // other active cluster.
        for &c in &active {
            if c == a || c == b {
                continue;
            }
            let dac = d[at(a, c)];
            let dbc = d[at(b, c)];
            let v = match linkage {
                Linkage::Single => dac.min(dbc),
                Linkage::Complete => dac.max(dbc),
                Linkage::Average => {
                    let (sa, sb) = (sizes[a] as f64, sizes[b] as f64);
                    (sa * dac + sb * dbc) / (sa + sb)
                }
            };
            d[at(node, c)] = v;
            d[at(c, node)] = v;
        }
        active.retain(|&x| x != a && x != b);
        active.push(node);
    }

    Ok(Dendrogram {
        n_leaves: n,
        merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three points on a line: 0, 1, 10 — the obvious tree pairs {0,1}.
    fn line_matrix() -> DistanceMatrix {
        DistanceMatrix::from_triples(3, &[(0, 1, 1.0), (0, 2, 10.0), (1, 2, 9.0)])
    }

    #[test]
    fn three_point_tree_pairs_the_close_ones() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let tree = agglomerative(&line_matrix(), linkage).unwrap();
            assert_eq!(tree.first_pair(), Some((0, 1)), "{linkage:?}");
            assert_eq!(tree.merges.len(), 2);
            assert_eq!(tree.merges[0].height, 1.0);
        }
    }

    #[test]
    fn linkages_differ_on_second_merge() {
        let single = agglomerative(&line_matrix(), Linkage::Single).unwrap();
        let complete = agglomerative(&line_matrix(), Linkage::Complete).unwrap();
        let average = agglomerative(&line_matrix(), Linkage::Average).unwrap();
        assert_eq!(single.merges[1].height, 9.0);
        assert_eq!(complete.merges[1].height, 10.0);
        assert_eq!(average.merges[1].height, 9.5);
    }

    #[test]
    fn cut_recovers_clusters() {
        // Two tight pairs far apart.
        let m = DistanceMatrix::from_triples(
            4,
            &[
                (0, 1, 0.1),
                (2, 3, 0.2),
                (0, 2, 8.0),
                (0, 3, 8.0),
                (1, 2, 8.0),
                (1, 3, 8.0),
            ],
        );
        let tree = agglomerative(&m, Linkage::Average).unwrap();
        let labels = tree.cut(2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        // k = n: every leaf alone.
        let singletons = tree.cut(4).unwrap();
        let mut uniq = singletons.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn cut_rejects_bad_k() {
        let tree = agglomerative(&line_matrix(), Linkage::Single).unwrap();
        assert!(tree.cut(0).is_err());
        assert!(tree.cut(4).is_err());
    }

    #[test]
    fn singleton_input() {
        let m = DistanceMatrix::from_triples(1, &[]);
        let tree = agglomerative(&m, Linkage::Single).unwrap();
        assert!(tree.merges.is_empty());
        assert_eq!(tree.cut(1).unwrap(), vec![0]);
    }

    #[test]
    fn ascii_render_contains_leaf_names() {
        let tree = agglomerative(&line_matrix(), Linkage::Average).unwrap();
        let art = tree.render_ascii(&["A", "B", "C"]);
        assert!(art.contains('A') && art.contains('B') && art.contains('C'));
        assert!(art.contains("h="));
    }

    #[test]
    fn merge_heights_monotone_for_metric_average_linkage() {
        let m = DistanceMatrix::from_triples(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 4.0),
                (0, 3, 6.0),
                (0, 4, 7.0),
                (1, 2, 3.5),
                (1, 3, 5.5),
                (1, 4, 6.5),
                (2, 3, 2.0),
                (2, 4, 5.0),
                (3, 4, 4.5),
            ],
        );
        let tree = agglomerative(&m, Linkage::Average).unwrap();
        for w in tree.merges.windows(2) {
            assert!(w[1].height >= w[0].height - 1e-12);
        }
    }
}
