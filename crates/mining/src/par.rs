//! The deterministic chunked parallel executor.
//!
//! Every parallel entry point in this crate (`*_par`) runs on one of the
//! two primitives here, and both share one contract: **the result — and
//! every merged [`WorkMeter`](tsdtw_obs::WorkMeter) counter — is bitwise
//! identical at any `n_threads` for a fixed [`ParConfig::chunk`]**. That
//! is what lets the PR 2 perf gate keep hard-failing on work-counter
//! drift no matter how many threads a run used.
//!
//! * [`par_map`] — independent items (all-pairs distances, per-query
//!   classification, DBA alignments). Each item is evaluated with a
//!   private meter shard ([`MeterShard::fresh`]) and the shards are
//!   absorbed into the caller's meter **in item-index order**, so the
//!   merged meter equals the serial one exactly — including the
//!   order-sensitive FastDTW per-level list.
//! * [`par_fold_argmin`] — best-so-far-pruned scans (the 1-NN cascade,
//!   subsequence search, motif/discord rows). Items are processed in
//!   *chunk-synchronous* rounds: within a chunk every item is evaluated
//!   against the best-so-far **frozen at the chunk boundary**, and the
//!   bound only advances when the chunk's results merge, scanned in
//!   index order with strict `<` (equal values keep the lower index).
//!   Pruning decisions therefore depend only on (item index, chunk-start
//!   bound) — never on thread interleaving — which makes the work
//!   counters a pure function of the chunk size. With `chunk = 1` the
//!   frozen bound refreshes after every item, reproducing the
//!   continuous-best-so-far serial path byte for byte.
//!
//! With `n_threads == 1` neither primitive spawns: the loop runs inline
//! on the caller's thread, writing straight into the caller's meter.
//! Worker panics are caught at join and surfaced as
//! [`Error::WorkerPanicked`] instead of a hang; item errors are reported
//! deterministically — the first error in item order wins, and shards of
//! later items are discarded so the caller's meter ends in the same
//! state at any thread count.
//!
//! Heap counters (`tsdtw-obs --features alloc-telemetry`) follow the
//! same contract: every item is measured by its own
//! [`AllocScope`] on whichever thread ran it, the deltas are credited
//! to the caller in item-index order, and an
//! [`AllocRegion`] erases the executor's own
//! machinery (chunk lists, result vectors, spawn closures) from the
//! account — so the caller's heap counters after a run are bitwise
//! identical at any thread count for deterministic per-item workloads.
//! (Meters that themselves allocate, like `WorkMeter`'s FastDTW level
//! list, and panic paths that leave the region unfinished are the
//! documented exceptions; see DESIGN.md §12.) With telemetry off the
//! probes are unit structs and all of this compiles away.

use std::sync::atomic::{AtomicUsize, Ordering};
use tsdtw_core::error::{Error, Result};
use tsdtw_obs::{
    absorb_raw_spans, drain_raw_spans, AllocDelta, AllocRegion, AllocScope, MeterShard,
};

/// Default chunk size: large enough to amortize per-chunk spawn and
/// merge costs, small enough that the frozen best-so-far of
/// [`par_fold_argmin`] stays close to the continuous one.
pub const DEFAULT_CHUNK: usize = 64;

/// How a parallel entry point should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads. `1` means run inline on the caller's thread
    /// (no spawn at all). Must be at least 1.
    pub n_threads: usize,
    /// Items per scheduling chunk; also the granularity at which the
    /// frozen best-so-far of [`par_fold_argmin`] advances. Must be at
    /// least 1. Results depend on `chunk` only through the frozen-bound
    /// semantics — never on `n_threads`.
    pub chunk: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self::serial()
    }
}

impl ParConfig {
    /// Single-threaded execution with the default chunk size.
    pub fn serial() -> Self {
        ParConfig {
            n_threads: 1,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// `n_threads` workers with the default chunk size.
    pub fn new(n_threads: usize) -> Result<Self> {
        Self::with_chunk(n_threads, DEFAULT_CHUNK)
    }

    /// Fully explicit configuration.
    pub fn with_chunk(n_threads: usize, chunk: usize) -> Result<Self> {
        let cfg = ParConfig { n_threads, chunk };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks both fields are at least 1.
    pub fn validate(&self) -> Result<()> {
        if self.n_threads == 0 {
            return Err(Error::InvalidParameter {
                name: "n_threads",
                reason: "at least one worker thread is required".into(),
            });
        }
        if self.chunk == 0 {
            return Err(Error::InvalidParameter {
                name: "chunk",
                reason: "chunk size must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// The winner of a [`par_fold_argmin`] run: the `(item_index, value)`
/// pair achieving the minimum, or `None` when nothing scored below the
/// fold's `init` bound.
pub type Argmin = Option<(usize, f64)>;

/// Renders a worker panic payload as [`Error::WorkerPanicked`].
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> Error {
    let reason = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    Error::WorkerPanicked { reason }
}

/// Maps `f` over `items` with `cfg.n_threads` workers, absorbing each
/// item's private meter shard into `meter` in item-index order.
///
/// `f` receives `(item_index, &item, &mut shard)` and must not depend on
/// any state mutated by other items — the executor may evaluate items in
/// any order across threads. Results come back in item order. The first
/// error in item order is returned, with the shards of all later items
/// discarded (so the meter ends identically at any thread count); a
/// worker panic surfaces as [`Error::WorkerPanicked`].
pub fn par_map<T, R, M, F>(cfg: &ParConfig, items: &[T], meter: &mut M, f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    M: MeterShard,
    F: Fn(usize, &T, &mut M) -> Result<R> + Sync,
{
    cfg.validate()?;
    if items.is_empty() {
        return Ok(Vec::new());
    }
    if cfg.n_threads == 1 {
        // Inline: no spawn, no sharding — byte-identical to a plain
        // loop. Items are still bracketed by per-item alloc probes and
        // credited through a region, so the heap account matches the
        // parallel path exactly (items only, machinery erased).
        let mut region = AllocRegion::begin();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let probe = AllocScope::begin();
            let r = f(i, item, meter);
            region.credit(&probe.end());
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    region.finish();
                    return Err(e);
                }
            }
        }
        region.finish();
        return Ok(out);
    }

    let mut region = AllocRegion::begin();
    let n_chunks = items.len().div_ceil(cfg.chunk);
    let workers = cfg.n_threads.min(n_chunks);
    let next = AtomicUsize::new(0);
    let handoff = tsdtw_obs::recorder_handoff();

    type EvalSlot<R, M> = Vec<(Result<R>, M, AllocDelta)>;
    type ChunkOut<R, M> = (usize, EvalSlot<R, M>);
    type WorkerYield<R, M> = (
        Vec<ChunkOut<R, M>>,
        tsdtw_obs::RawSpans,
        Option<tsdtw_obs::Trace>,
    );
    let joined: Vec<std::thread::Result<WorkerYield<R, M>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    if let Some(h) = handoff {
                        tsdtw_obs::recorder_start_shard(h);
                    }
                    let mut mine: Vec<ChunkOut<R, M>> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * cfg.chunk;
                        let end = (start + cfg.chunk).min(items.len());
                        let mut chunk_out = Vec::with_capacity(end - start);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            let mut shard = M::fresh();
                            let probe = AllocScope::begin();
                            let r = f(i, item, &mut shard);
                            let heap = probe.end();
                            chunk_out.push((r, shard, heap));
                        }
                        mine.push((c, chunk_out));
                    }
                    (mine, drain_raw_spans(), tsdtw_obs::recorder_stop())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut chunks: Vec<Option<EvalSlot<R, M>>> = (0..n_chunks).map(|_| None).collect();
    let mut first_panic = None;
    for j in joined {
        match j {
            Ok((mine, raw, shard_trace)) => {
                for (c, out) in mine {
                    chunks[c] = Some(out);
                }
                absorb_raw_spans(raw);
                if let Some(t) = shard_trace {
                    tsdtw_obs::recorder_absorb(t);
                }
            }
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(panic_error(payload));
                }
            }
        }
    }
    if let Some(e) = first_panic {
        return Err(e);
    }

    let mut out = Vec::with_capacity(items.len());
    let mut first_err: Option<Error> = None;
    'merge: for chunk in chunks {
        for (r, shard, heap) in chunk.expect("every chunk was claimed by a worker") {
            meter.absorb(shard);
            region.credit(&heap);
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    // Deltas up to and including the failing item are
                    // credited — the same prefix the inline path keeps.
                    // Breaking (rather than returning) lets the
                    // remaining chunks drop *inside* the region, so
                    // their worker-allocated storage is erased with the
                    // rest of the machinery.
                    first_err = Some(e);
                    break 'merge;
                }
            }
        }
    }
    region.finish();
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Chunk-synchronous best-so-far fold: evaluates `items` in chunks of
/// `cfg.chunk`, each item against the bound **frozen at its chunk's
/// start**, and advances the bound by scanning the chunk's results in
/// index order (strict `<`; equal values keep the lower index).
///
/// * `make_ctx` builds one worker-local scratch context per worker per
///   chunk (e.g. a cloned pruning cascade); contexts never cross threads.
/// * `eval` receives `(ctx, item_index, &item, frozen_bound, &mut shard)`
///   and its metered work must depend only on the item and the bound.
/// * `score` projects an outcome to the value competing for the minimum
///   (`None` does not compete).
///
/// Returns the winning `(item_index, value)` — `None` when nothing
/// scored below `init` — and every outcome in item order. With
/// `chunk = 1` the bound refreshes after every item, i.e. exactly the
/// continuous best-so-far loop of the serial implementations.
pub fn par_fold_argmin<T, C, E, M, FC, F, S>(
    cfg: &ParConfig,
    items: &[T],
    meter: &mut M,
    init: f64,
    make_ctx: FC,
    eval: F,
    score: S,
) -> Result<(Argmin, Vec<E>)>
where
    T: Sync,
    E: Send,
    M: MeterShard,
    FC: Fn() -> Result<C> + Sync,
    F: Fn(&mut C, usize, &T, f64, &mut M) -> Result<E> + Sync,
    S: Fn(&E) -> Option<f64>,
{
    cfg.validate()?;
    let mut best: Argmin = None;
    let mut bound = init;
    let mut outcomes = Vec::with_capacity(items.len());
    if items.is_empty() {
        return Ok((None, outcomes));
    }

    if cfg.n_threads == 1 {
        // Inline, but with the same chunk-frozen bound semantics as the
        // parallel path so counters do not depend on the thread count.
        // Context construction sits outside the item probes in both
        // paths, so it is machinery the region erases.
        let mut region = AllocRegion::begin();
        let mut ctx = match make_ctx() {
            Ok(c) => c,
            Err(e) => {
                region.finish();
                return Err(e);
            }
        };
        let mut frozen = bound;
        for (i, item) in items.iter().enumerate() {
            if i % cfg.chunk == 0 {
                frozen = bound;
            }
            let probe = AllocScope::begin();
            let r = eval(&mut ctx, i, item, frozen, meter);
            region.credit(&probe.end());
            let e = match r {
                Ok(e) => e,
                Err(err) => {
                    region.finish();
                    return Err(err);
                }
            };
            if let Some(v) = score(&e) {
                if v < bound {
                    bound = v;
                    best = Some((i, v));
                }
            }
            outcomes.push(e);
        }
        region.finish();
        return Ok((best, outcomes));
    }

    let mut region = AllocRegion::begin();
    let mut fold_err: Option<Error> = None;
    let mut start = 0usize;
    'rounds: while start < items.len() {
        let end = (start + cfg.chunk).min(items.len());
        let slice = &items[start..end];
        let frozen = bound;
        let workers = cfg.n_threads.min(slice.len());
        let handoff = tsdtw_obs::recorder_handoff();

        type WorkerOut<E, M> = Result<Vec<(usize, Result<E>, M, AllocDelta)>>;
        type FoldYield<E, M> = (
            WorkerOut<E, M>,
            tsdtw_obs::RawSpans,
            Option<tsdtw_obs::Trace>,
        );
        let joined: Vec<std::thread::Result<FoldYield<E, M>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let make_ctx = &make_ctx;
                    let eval = &eval;
                    scope.spawn(move || {
                        if let Some(h) = handoff {
                            tsdtw_obs::recorder_start_shard(h);
                        }
                        let run = || -> WorkerOut<E, M> {
                            let mut ctx = make_ctx()?;
                            let mut out = Vec::new();
                            let mut k = w;
                            while k < slice.len() {
                                let mut shard = M::fresh();
                                let probe = AllocScope::begin();
                                let r = eval(&mut ctx, start + k, &slice[k], frozen, &mut shard);
                                let heap = probe.end();
                                out.push((k, r, shard, heap));
                                k += workers;
                            }
                            Ok(out)
                        };
                        (run(), drain_raw_spans(), tsdtw_obs::recorder_stop())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut slots: Vec<Option<(Result<E>, M, AllocDelta)>> =
            (0..slice.len()).map(|_| None).collect();
        let mut first_panic = None;
        let mut ctx_error = None;
        for j in joined {
            match j {
                Ok((worker_out, raw, shard_trace)) => {
                    match worker_out {
                        Ok(entries) => {
                            for (k, r, shard, heap) in entries {
                                slots[k] = Some((r, shard, heap));
                            }
                        }
                        Err(e) => {
                            if ctx_error.is_none() {
                                ctx_error = Some(e);
                            }
                        }
                    }
                    absorb_raw_spans(raw);
                    if let Some(t) = shard_trace {
                        tsdtw_obs::recorder_absorb(t);
                    }
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(panic_error(payload));
                    }
                }
            }
        }
        if let Some(e) = first_panic {
            return Err(e);
        }
        if let Some(e) = ctx_error {
            // Breaking lets the evaluated slots drop inside the region,
            // erased as machinery (nothing from this round is credited).
            fold_err = Some(e);
            break 'rounds;
        }

        for (k, slot) in slots.into_iter().enumerate() {
            let (r, shard, heap) = slot.expect("every slice item was evaluated");
            meter.absorb(shard);
            region.credit(&heap);
            let e = match r {
                Ok(e) => e,
                Err(err) => {
                    fold_err = Some(err);
                    break 'rounds;
                }
            };
            if let Some(v) = score(&e) {
                if v < bound {
                    bound = v;
                    best = Some((start + k, v));
                }
            }
            outcomes.push(e);
        }
        start = end;
    }
    region.finish();
    if let Some(e) = fold_err {
        return Err(e);
    }
    Ok((best, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_obs::{Meter, NoMeter, WorkMeter};

    fn items(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 % 101) as f64) * 0.5).collect()
    }

    #[test]
    fn config_rejects_zero_threads_and_zero_chunk() {
        assert!(ParConfig::new(0).is_err());
        assert!(ParConfig::with_chunk(2, 0).is_err());
        assert!(ParConfig::with_chunk(1, 1).is_ok());
        let bad = ParConfig {
            n_threads: 0,
            chunk: 4,
        };
        assert!(par_map(&bad, &[1.0], &mut NoMeter, |_, v, _| Ok(*v)).is_err());
    }

    #[test]
    fn single_thread_runs_inline_without_spawning() {
        let caller = std::thread::current().id();
        let cfg = ParConfig::serial();
        let out = par_map(&cfg, &items(10), &mut NoMeter, |i, v, _| {
            assert_eq!(std::thread::current().id(), caller, "item {i} spawned");
            Ok(v * 2.0)
        })
        .unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn map_results_and_meters_match_serial_at_any_thread_count() {
        let data = items(57);
        let cfg1 = ParConfig::with_chunk(1, 8).unwrap();
        let mut m1 = WorkMeter::new();
        let expect = par_map(&cfg1, &data, &mut m1, |i, v, m| {
            m.cells((i as u64 % 5) + 1);
            Ok(v + i as f64)
        })
        .unwrap();
        for threads in [2usize, 3, 7, 16] {
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let mut m = WorkMeter::new();
            let out = par_map(&cfg, &data, &mut m, |i, v, mm| {
                mm.cells((i as u64 % 5) + 1);
                Ok(v + i as f64)
            })
            .unwrap();
            assert_eq!(out, expect, "{threads} threads");
            assert_eq!(m, m1, "{threads} threads");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let cfg = ParConfig::with_chunk(32, 2).unwrap();
        let out = par_map(&cfg, &items(3), &mut NoMeter, |_, v, _| Ok(*v)).unwrap();
        assert_eq!(out, items(3));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let cfg = ParConfig::new(4).unwrap();
        let data: Vec<f64> = Vec::new();
        assert!(par_map(&cfg, &data, &mut NoMeter, |_, v, _| Ok(*v))
            .unwrap()
            .is_empty());
        let (best, outcomes) = par_fold_argmin(
            &cfg,
            &data,
            &mut NoMeter,
            f64::INFINITY,
            || Ok(()),
            |_, _, v, _, _| Ok(*v),
            |v| Some(*v),
        )
        .unwrap();
        assert!(best.is_none());
        assert!(outcomes.is_empty());
    }

    #[test]
    fn first_error_in_item_order_wins_and_meter_is_deterministic() {
        let data = items(40);
        let run = |threads: usize| {
            let cfg = ParConfig::with_chunk(threads, 4).unwrap();
            let mut m = WorkMeter::new();
            let r = par_map(&cfg, &data, &mut m, |i, v, mm| {
                mm.cells(1);
                if i == 17 || i == 33 {
                    Err(Error::InvalidParameter {
                        name: "item",
                        reason: format!("boom at {i}"),
                    })
                } else {
                    Ok(*v)
                }
            });
            (r.unwrap_err(), m)
        };
        let (e1, m1) = run(1);
        assert!(e1.to_string().contains("boom at 17"), "{e1}");
        for threads in [2usize, 5] {
            let (e, m) = run(threads);
            assert_eq!(e, e1, "{threads} threads");
            // Shards past the failing item are discarded: 17 successes
            // plus the failing item's own shard.
            assert_eq!(m, m1, "{threads} threads");
            assert_eq!(m.cells, 18);
        }
    }

    #[test]
    fn worker_panic_becomes_an_error_not_a_hang() {
        let data = items(20);
        for threads in [1usize, 4] {
            let cfg = ParConfig::with_chunk(threads, 2).unwrap();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                par_map(&cfg, &data, &mut NoMeter, |i, v, _| {
                    if i == 9 {
                        panic!("poisoned worker");
                    }
                    Ok(*v)
                })
            }));
            if threads == 1 {
                // Inline execution propagates the panic like a plain loop.
                assert!(r.is_err());
            } else {
                let err = r.expect("no panic crosses par_map").unwrap_err();
                match err {
                    Error::WorkerPanicked { reason } => {
                        assert!(reason.contains("poisoned worker"), "{reason}")
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn worker_panic_leaves_no_stale_profile_frames() {
        // Companion to the panic-containment test above, for the
        // sampling profiler: a worker that dies mid-span must not leave
        // its frame in any live-stack slot (the span guard pops during
        // unwind and the dying thread's slot deregisters on teardown) —
        // otherwise the sampler would keep attributing wall-clock to a
        // dead span forever.
        let data = items(20);
        let cfg = ParConfig::with_chunk(4, 2).unwrap();
        let profiler = tsdtw_obs::Profiler::start(tsdtw_obs::DEFAULT_SAMPLE_HZ);
        let err = par_map(&cfg, &data, &mut NoMeter, |i, v, _| {
            let _g = tsdtw_obs::span("par_panic_item");
            if i == 9 {
                panic!("poisoned worker mid-span");
            }
            Ok(*v)
        })
        .unwrap_err();
        drop(profiler.stop());
        let _ = tsdtw_obs::take_spans();
        assert!(matches!(err, Error::WorkerPanicked { .. }), "{err:?}");
        // The workers are joined before par_map returns, so by now no
        // live stack anywhere may still carry the item span. (Other
        // concurrently-running tests own their slots; only our label is
        // asserted on.)
        for stack in tsdtw_obs::profile::live_snapshot() {
            assert!(
                !stack.contains(&"par_panic_item"),
                "stale frame after worker panic: {stack:?}"
            );
        }
    }

    #[test]
    fn fold_matches_continuous_serial_with_chunk_one() {
        // Reference: the classic continuous best-so-far loop.
        let data = items(63);
        let mut bsf = f64::INFINITY;
        let mut best = None;
        let mut evals = 0u64;
        for (i, &v) in data.iter().enumerate() {
            evals += 1; // a continuous-bsf loop "touches" every item
            if v < bsf {
                bsf = v;
                best = Some((i, v));
            }
        }
        for threads in [1usize, 3] {
            let cfg = ParConfig::with_chunk(threads, 1).unwrap();
            let mut m = WorkMeter::new();
            let (got, outcomes) = par_fold_argmin(
                &cfg,
                &data,
                &mut m,
                f64::INFINITY,
                || Ok(()),
                |_, _, v, _, mm| {
                    mm.cells(1);
                    Ok(*v)
                },
                |v| Some(*v),
            )
            .unwrap();
            assert_eq!(got, best, "{threads} threads");
            assert_eq!(outcomes, data);
            assert_eq!(m.cells, evals);
        }
    }

    #[test]
    fn fold_is_thread_count_invariant_for_fixed_chunk() {
        // Make the metered work depend on the frozen bound, the way a
        // pruning cascade does: cheap when the bound already beats the
        // item, expensive otherwise.
        let data = items(97);
        let run = |threads: usize| {
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let mut m = WorkMeter::new();
            let r = par_fold_argmin(
                &cfg,
                &data,
                &mut m,
                f64::INFINITY,
                || Ok(()),
                |_, _, v, bound, mm: &mut WorkMeter| {
                    if *v >= bound {
                        mm.cells(1); // "pruned"
                        Ok(f64::INFINITY)
                    } else {
                        mm.cells(10); // "full evaluation"
                        Ok(*v)
                    }
                },
                |v| if v.is_finite() { Some(*v) } else { None },
            )
            .unwrap();
            (r.0, m)
        };
        let (best1, m1) = run(1);
        for threads in [2usize, 3, 7] {
            let (best, m) = run(threads);
            assert_eq!(best, best1, "{threads} threads");
            assert_eq!(m, m1, "{threads} threads");
        }
    }

    #[test]
    fn fold_argmin_ties_pick_the_lower_index() {
        // Two exact ties inside the same chunk and across chunks.
        let data = vec![5.0, 3.0, 3.0, 4.0, 3.0];
        for threads in [1usize, 2, 4] {
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let (best, _) = par_fold_argmin(
                &cfg,
                &data,
                &mut NoMeter,
                f64::INFINITY,
                || Ok(()),
                |_, _, v, _, _| Ok(*v),
                |v| Some(*v),
            )
            .unwrap();
            assert_eq!(best, Some((1, 3.0)), "{threads} threads");
        }
    }

    #[test]
    fn fold_context_errors_propagate() {
        let data = items(8);
        let cfg = ParConfig::new(3).unwrap();
        let r: Result<(Argmin, Vec<f64>)> = par_fold_argmin(
            &cfg,
            &data,
            &mut NoMeter,
            f64::INFINITY,
            || -> Result<()> {
                Err(Error::InvalidParameter {
                    name: "ctx",
                    reason: "no context today".into(),
                })
            },
            |_, _, v, _, _| Ok(*v),
            |v| Some(*v),
        );
        assert!(r.unwrap_err().to_string().contains("no context today"));
    }

    /// Heap-counter invariance: with the counting allocator armed, the
    /// caller's credited heap account after a run must be bitwise
    /// identical at any thread count (the `AllocRegion` contract).
    #[cfg(feature = "alloc-telemetry")]
    mod alloc_invariance {
        use super::*;
        use tsdtw_obs::AllocScope;

        /// Deterministic per-item workload: allocate a size that depends
        /// only on the item index, touch it, free it.
        fn item_work(i: usize) -> f64 {
            let n = 64 + (i * 113) % 1500;
            let v: Vec<u8> = vec![(i % 251) as u8; n];
            v.iter().map(|&b| b as f64).sum()
        }

        fn measured_par_map(threads: usize) -> (Vec<f64>, tsdtw_obs::AllocDelta, WorkMeter) {
            let data = items(57);
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let mut m = WorkMeter::new();
            let observer = AllocScope::begin();
            let out = par_map(&cfg, &data, &mut m, |i, v, mm| {
                mm.cells(1);
                Ok(v + item_work(i))
            })
            .unwrap();
            (out, observer.end(), m)
        }

        #[test]
        fn par_map_heap_account_is_thread_count_invariant() {
            let (out1, d1, m1) = measured_par_map(1);
            assert!(d1.allocs >= 57, "every item allocated at least once");
            for threads in [2usize, 4] {
                let (out, d, m) = measured_par_map(threads);
                assert_eq!(out, out1, "{threads} threads");
                assert_eq!(m, m1, "{threads} threads");
                assert_eq!(d, d1, "heap delta must not depend on {threads} threads");
            }
        }

        #[test]
        fn par_fold_heap_account_is_thread_count_invariant() {
            let data = items(41);
            let run = |threads: usize| {
                let cfg = ParConfig::with_chunk(threads, 8).unwrap();
                let observer = AllocScope::begin();
                let r = par_fold_argmin(
                    &cfg,
                    &data,
                    &mut NoMeter,
                    f64::INFINITY,
                    || Ok(()),
                    |_, i, v, _, _| Ok(*v + item_work(i)),
                    |v| Some(*v),
                )
                .unwrap();
                (r.0, observer.end())
            };
            let (best1, d1) = run(1);
            assert!(d1.allocs >= 41);
            for threads in [2usize, 4] {
                let (best, d) = run(threads);
                assert_eq!(best, best1, "{threads} threads");
                assert_eq!(d, d1, "heap delta must not depend on {threads} threads");
            }
        }

        #[test]
        fn executor_machinery_is_erased_for_allocation_free_items() {
            // Items that never touch the allocator: the credited account
            // must be exactly zero even though the executor itself
            // allocates chunk lists, result vectors, and spawn closures.
            let data = items(30);
            for threads in [1usize, 4] {
                let cfg = ParConfig::with_chunk(threads, 4).unwrap();
                let observer = AllocScope::begin();
                let out = par_map(&cfg, &data, &mut NoMeter, |_, v, _| Ok(v * 2.0)).unwrap();
                let d = observer.end();
                drop(out);
                assert_eq!(d.allocs, 0, "{threads} threads: {d:?}");
                assert_eq!(d.bytes_allocated, 0, "{threads} threads");
                assert_eq!(d.peak_bytes, 0, "{threads} threads");
            }
        }

        #[test]
        fn item_error_keeps_the_credited_prefix_at_any_thread_count() {
            let data = items(40);
            let run = |threads: usize| {
                let cfg = ParConfig::with_chunk(threads, 4).unwrap();
                let observer = AllocScope::begin();
                let r = par_map(&cfg, &data, &mut NoMeter, |i, v, _| {
                    let x = item_work(i);
                    if i == 17 {
                        Err(Error::InvalidParameter {
                            name: "item",
                            reason: "boom".into(),
                        })
                    } else {
                        Ok(v + x)
                    }
                });
                assert!(r.is_err());
                observer.end()
            };
            let d1 = run(1);
            assert_eq!(d1.allocs, 18 + 1, "items 0..=17 plus the error string");
            for threads in [2usize, 4] {
                assert_eq!(run(threads), d1, "{threads} threads");
            }
        }
    }

    #[test]
    fn worker_spans_reach_an_armed_flight_recorder() {
        let data = items(12);
        let cfg = ParConfig::with_chunk(3, 2).unwrap();
        tsdtw_obs::recorder_start(256);
        let out = par_map(&cfg, &data, &mut NoMeter, |_, v, _| {
            let _g = tsdtw_obs::span("par_test_item");
            Ok(*v * 2.0)
        })
        .unwrap();
        let trace = tsdtw_obs::recorder_stop().expect("recorder was armed");
        assert_eq!(out.len(), 12);
        if tsdtw_obs::spans_enabled() {
            // Every worker item produced a begin/end pair, absorbed onto
            // per-worker tracks; ids stay pairable after the merge.
            assert_eq!(trace.events.len(), 24, "{:?}", trace.events);
            assert!(trace.events.iter().all(|e| e.track >= 1));
            let rows = trace.summary();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].count, 12);
        } else {
            assert!(trace.events.is_empty());
        }
    }
}
