//! Discord discovery: the most anomalous subsequence of a series.
//!
//! A *discord* is the subsequence whose distance to its nearest
//! non-overlapping neighbor is largest. Brute force is O(n²) distance
//! calls; the early-abandoning inner loop (only available to exact
//! measures — the running theme of the paper) keeps it tractable.
//! Included as an extension used by the power-demand example.

use crate::par::{par_fold_argmin, ParConfig};
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::early_abandon::{cdtw_distance_ea, EaOutcome};
use tsdtw_core::error::{Error, Result};
use tsdtw_core::norm::znorm;
use tsdtw_obs::NoMeter;

/// Result of a discord search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Start offset of the discord subsequence.
    pub position: usize,
    /// Distance to its nearest non-overlapping neighbor.
    pub nn_distance: f64,
}

/// Finds the top discord of window length `m` under z-normalized
/// `cDTW_band`, with full (non-self-matching) exclusion of overlapping
/// windows.
pub fn top_discord(series: &[f64], m: usize, band: usize) -> Result<Discord> {
    let _span = tsdtw_obs::span("anomaly");
    if m == 0 {
        return Err(Error::EmptyInput { which: "m" });
    }
    if series.len() < 2 * m {
        return Err(Error::InvalidParameter {
            name: "series",
            reason: format!(
                "need at least two non-overlapping windows: len {} < 2×{m}",
                series.len()
            ),
        });
    }
    let n_windows = series.len() - m + 1;
    let windows: Vec<Vec<f64>> = (0..n_windows)
        .map(|p| znorm(&series[p..p + m]))
        .collect::<Result<_>>()?;

    let mut best = Discord {
        position: 0,
        nn_distance: -1.0,
    };
    for p in 0..n_windows {
        // Nearest non-overlapping neighbor of window p, with early abandon
        // once it drops below the best discord score so far (a candidate
        // whose NN is already closer than `best.nn_distance` cannot win).
        let mut nn = f64::INFINITY;
        for q in 0..n_windows {
            if q.abs_diff(p) < m {
                continue; // overlapping: trivial match exclusion
            }
            match cdtw_distance_ea(&windows[p], &windows[q], band, nn, None, SquaredCost)? {
                EaOutcome::Exact(d) => nn = nn.min(d),
                EaOutcome::Abandoned { .. } => {}
            }
            if nn <= best.nn_distance {
                break; // cannot be the discord anymore
            }
        }
        if nn > best.nn_distance && nn.is_finite() {
            best = Discord {
                position: p,
                nn_distance: nn,
            };
        }
    }
    Ok(best)
}

/// [`top_discord`] on the deterministic parallel executor.
///
/// Discord discovery is an arg*max* (the candidate with the *largest*
/// nearest-neighbor distance wins), so it rides the executor's argmin by
/// negating the score. Candidate positions in a chunk compute their NN
/// distance against the discord score frozen at the chunk boundary (the
/// inner loop's "cannot win anymore" cutoff), and a completed candidate's
/// NN distance never depends on that cutoff — a weaker frozen score only
/// makes losing candidates finish their scans instead of breaking early.
/// The winner and its distance are therefore identical to [`top_discord`]
/// at any `(n_threads, chunk)`; strict comparisons in position order keep
/// the earlier position on exact ties, exactly like the serial scan.
pub fn top_discord_par(series: &[f64], m: usize, band: usize, cfg: &ParConfig) -> Result<Discord> {
    let _span = tsdtw_obs::span("anomaly");
    if m == 0 {
        return Err(Error::EmptyInput { which: "m" });
    }
    if series.len() < 2 * m {
        return Err(Error::InvalidParameter {
            name: "series",
            reason: format!(
                "need at least two non-overlapping windows: len {} < 2×{m}",
                series.len()
            ),
        });
    }
    let n_windows = series.len() - m + 1;
    let windows: Vec<Vec<f64>> = (0..n_windows)
        .map(|p| znorm(&series[p..p + m]))
        .collect::<Result<_>>()?;
    let positions: Vec<usize> = (0..n_windows).collect();

    // init = 1.0 is the negation of the serial `-1.0` floor, so a
    // candidate only scores once its NN distance strictly exceeds it.
    let (winner, outcomes) = par_fold_argmin(
        cfg,
        &positions,
        &mut NoMeter,
        1.0,
        || Ok(()),
        |_, _, &p, frozen, _| {
            let cutoff = -frozen;
            let mut nn = f64::INFINITY;
            for q in 0..n_windows {
                if q.abs_diff(p) < m {
                    continue; // overlapping: trivial match exclusion
                }
                match cdtw_distance_ea(&windows[p], &windows[q], band, nn, None, SquaredCost)? {
                    EaOutcome::Exact(d) => nn = nn.min(d),
                    EaOutcome::Abandoned { .. } => {}
                }
                if nn <= cutoff {
                    break; // cannot be the discord anymore
                }
            }
            Ok(nn)
        },
        |&nn: &f64| if nn.is_finite() { Some(-nn) } else { None },
    )?;

    match winner {
        Some((p, _)) => Ok(Discord {
            position: p,
            nn_distance: outcomes[p],
        }),
        None => Ok(Discord {
            position: 0,
            nn_distance: -1.0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A periodic signal with one corrupted cycle.
    fn signal_with_anomaly(n_cycles: usize, cycle: usize, bad: usize) -> Vec<f64> {
        let mut s = Vec::with_capacity(n_cycles * cycle);
        for c in 0..n_cycles {
            for i in 0..cycle {
                let x = i as f64 / cycle as f64 * std::f64::consts::TAU;
                let v = if c == bad {
                    // Anomalous cycle: different shape entirely.
                    (3.0 * x).sin() * 0.3 + 1.5
                } else {
                    x.sin()
                };
                s.push(v);
            }
        }
        s
    }

    #[test]
    fn finds_the_corrupted_cycle() {
        let cycle = 32;
        let s = signal_with_anomaly(8, cycle, 5);
        let d = top_discord(&s, cycle, 3).unwrap();
        let found_cycle = (d.position + cycle / 2) / cycle;
        assert_eq!(
            found_cycle, 5,
            "discord at {} (cycle {found_cycle})",
            d.position
        );
        assert!(d.nn_distance > 0.0);
    }

    #[test]
    fn uniform_signal_has_low_discord_score() {
        let cycle = 24;
        let healthy = signal_with_anomaly(6, cycle, usize::MAX); // no bad cycle
        let anomalous = signal_with_anomaly(6, cycle, 2);
        let dh = top_discord(&healthy, cycle, 2).unwrap();
        let da = top_discord(&anomalous, cycle, 2).unwrap();
        assert!(
            da.nn_distance > dh.nn_distance * 3.0,
            "anomaly should stand out: {} vs {}",
            da.nn_distance,
            dh.nn_distance
        );
    }

    #[test]
    fn rejects_too_short_series() {
        assert!(top_discord(&[0.0; 10], 8, 1).is_err());
        assert!(top_discord(&[0.0; 10], 0, 1).is_err());
        let cfg = ParConfig::new(2).unwrap();
        assert!(top_discord_par(&[0.0; 10], 8, 1, &cfg).is_err());
        assert!(top_discord_par(&[0.0; 10], 0, 1, &cfg).is_err());
    }

    #[test]
    fn par_discord_is_bitwise_serial_at_any_thread_count() {
        let cycle = 28;
        let s = signal_with_anomaly(7, cycle, 4);
        let serial = top_discord(&s, cycle, 3).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let par = top_discord_par(&s, cycle, 3, &cfg).unwrap();
            assert_eq!(par.position, serial.position, "{threads} threads");
            assert_eq!(
                par.nn_distance.to_bits(),
                serial.nn_distance.to_bits(),
                "{threads} threads"
            );
        }
    }
}
