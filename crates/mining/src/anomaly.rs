//! Discord discovery: the most anomalous subsequence of a series.
//!
//! A *discord* is the subsequence whose distance to its nearest
//! non-overlapping neighbor is largest. Brute force is O(n²) distance
//! calls; the early-abandoning inner loop (only available to exact
//! measures — the running theme of the paper) keeps it tractable.
//! Included as an extension used by the power-demand example.

use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::early_abandon::{cdtw_distance_ea, EaOutcome};
use tsdtw_core::error::{Error, Result};
use tsdtw_core::norm::znorm;

/// Result of a discord search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Start offset of the discord subsequence.
    pub position: usize,
    /// Distance to its nearest non-overlapping neighbor.
    pub nn_distance: f64,
}

/// Finds the top discord of window length `m` under z-normalized
/// `cDTW_band`, with full (non-self-matching) exclusion of overlapping
/// windows.
pub fn top_discord(series: &[f64], m: usize, band: usize) -> Result<Discord> {
    let _span = tsdtw_obs::span("anomaly");
    if m == 0 {
        return Err(Error::EmptyInput { which: "m" });
    }
    if series.len() < 2 * m {
        return Err(Error::InvalidParameter {
            name: "series",
            reason: format!(
                "need at least two non-overlapping windows: len {} < 2×{m}",
                series.len()
            ),
        });
    }
    let n_windows = series.len() - m + 1;
    let windows: Vec<Vec<f64>> = (0..n_windows)
        .map(|p| znorm(&series[p..p + m]))
        .collect::<Result<_>>()?;

    let mut best = Discord {
        position: 0,
        nn_distance: -1.0,
    };
    for p in 0..n_windows {
        // Nearest non-overlapping neighbor of window p, with early abandon
        // once it drops below the best discord score so far (a candidate
        // whose NN is already closer than `best.nn_distance` cannot win).
        let mut nn = f64::INFINITY;
        for q in 0..n_windows {
            if q.abs_diff(p) < m {
                continue; // overlapping: trivial match exclusion
            }
            match cdtw_distance_ea(&windows[p], &windows[q], band, nn, None, SquaredCost)? {
                EaOutcome::Exact(d) => nn = nn.min(d),
                EaOutcome::Abandoned { .. } => {}
            }
            if nn <= best.nn_distance {
                break; // cannot be the discord anymore
            }
        }
        if nn > best.nn_distance && nn.is_finite() {
            best = Discord {
                position: p,
                nn_distance: nn,
            };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A periodic signal with one corrupted cycle.
    fn signal_with_anomaly(n_cycles: usize, cycle: usize, bad: usize) -> Vec<f64> {
        let mut s = Vec::with_capacity(n_cycles * cycle);
        for c in 0..n_cycles {
            for i in 0..cycle {
                let x = i as f64 / cycle as f64 * std::f64::consts::TAU;
                let v = if c == bad {
                    // Anomalous cycle: different shape entirely.
                    (3.0 * x).sin() * 0.3 + 1.5
                } else {
                    x.sin()
                };
                s.push(v);
            }
        }
        s
    }

    #[test]
    fn finds_the_corrupted_cycle() {
        let cycle = 32;
        let s = signal_with_anomaly(8, cycle, 5);
        let d = top_discord(&s, cycle, 3).unwrap();
        let found_cycle = (d.position + cycle / 2) / cycle;
        assert_eq!(
            found_cycle, 5,
            "discord at {} (cycle {found_cycle})",
            d.position
        );
        assert!(d.nn_distance > 0.0);
    }

    #[test]
    fn uniform_signal_has_low_discord_score() {
        let cycle = 24;
        let healthy = signal_with_anomaly(6, cycle, usize::MAX); // no bad cycle
        let anomalous = signal_with_anomaly(6, cycle, 2);
        let dh = top_discord(&healthy, cycle, 2).unwrap();
        let da = top_discord(&anomalous, cycle, 2).unwrap();
        assert!(
            da.nn_distance > dh.nn_distance * 3.0,
            "anomaly should stand out: {} vs {}",
            da.nn_distance,
            dh.nn_distance
        );
    }

    #[test]
    fn rejects_too_short_series() {
        assert!(top_discord(&[0.0; 10], 8, 1).is_err());
        assert!(top_discord(&[0.0; 10], 0, 1).is_err());
    }
}
