//! Motif discovery: the most similar pair of non-overlapping subsequences
//! within one series.
//!
//! The dual of discord discovery ([`anomaly`](crate::anomaly)): instead of
//! the subsequence farthest from everything, find the two windows closest
//! to each other. Brute force is O(n²) distance calls; the inner loop
//! early-abandons against the best-so-far pair — once more, an
//! acceleration only the exact measure admits.

use crate::par::{par_fold_argmin, ParConfig};
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::early_abandon::{cdtw_distance_ea, EaOutcome};
use tsdtw_core::error::{Error, Result};
use tsdtw_core::norm::znorm;
use tsdtw_obs::NoMeter;

/// The best-matching non-overlapping window pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motif {
    /// Start of the first window.
    pub first: usize,
    /// Start of the second window (`second − first ≥ m`).
    pub second: usize,
    /// Their z-normalized `cDTW_band` distance.
    pub distance: f64,
}

/// Finds the top motif of window length `m` under z-normalized
/// `cDTW_band`, requiring the two windows not to overlap.
pub fn top_motif(series: &[f64], m: usize, band: usize) -> Result<Motif> {
    let _span = tsdtw_obs::span("motif");
    if m == 0 {
        return Err(Error::EmptyInput { which: "m" });
    }
    if series.len() < 2 * m {
        return Err(Error::InvalidParameter {
            name: "series",
            reason: format!(
                "need at least two non-overlapping windows: len {} < 2×{m}",
                series.len()
            ),
        });
    }
    let n_windows = series.len() - m + 1;
    let windows: Vec<Vec<f64>> = (0..n_windows)
        .map(|p| znorm(&series[p..p + m]))
        .collect::<Result<_>>()?;

    let mut best = Motif {
        first: 0,
        second: m,
        distance: f64::INFINITY,
    };
    for i in 0..n_windows {
        for j in (i + m)..n_windows {
            match cdtw_distance_ea(
                &windows[i],
                &windows[j],
                band,
                best.distance,
                None,
                SquaredCost,
            )? {
                EaOutcome::Exact(d) => {
                    if d < best.distance {
                        best = Motif {
                            first: i,
                            second: j,
                            distance: d,
                        };
                    }
                }
                EaOutcome::Abandoned { .. } => {}
            }
        }
    }
    Ok(best)
}

/// [`top_motif`] on the deterministic parallel executor.
///
/// The O(n²) pair scan is parallelized by *rows* (each row `i` owns every
/// pair `(i, j)` with `j ≥ i + m`): rows in a chunk run against the best
/// distance frozen at the chunk boundary, each keeping a row-local
/// best-so-far for its own early abandoning, and the global bound
/// advances at the merge in row order with strict `<`. Completed `cDTW`
/// values never depend on the abandoning bound, so the winning pair and
/// its distance are identical to [`top_motif`] at any
/// `(n_threads, chunk)` — a weaker frozen bound only makes some losing
/// pairs complete instead of abandon.
pub fn top_motif_par(series: &[f64], m: usize, band: usize, cfg: &ParConfig) -> Result<Motif> {
    let _span = tsdtw_obs::span("motif");
    if m == 0 {
        return Err(Error::EmptyInput { which: "m" });
    }
    if series.len() < 2 * m {
        return Err(Error::InvalidParameter {
            name: "series",
            reason: format!(
                "need at least two non-overlapping windows: len {} < 2×{m}",
                series.len()
            ),
        });
    }
    let n_windows = series.len() - m + 1;
    let windows: Vec<Vec<f64>> = (0..n_windows)
        .map(|p| znorm(&series[p..p + m]))
        .collect::<Result<_>>()?;
    let rows: Vec<usize> = (0..n_windows).collect();

    let (winner, outcomes) = par_fold_argmin(
        cfg,
        &rows,
        &mut NoMeter,
        f64::INFINITY,
        || Ok(()),
        |_, _, &i, frozen, _| {
            let mut row_best: Option<Motif> = None;
            let mut bsf = frozen;
            for j in (i + m)..n_windows {
                match cdtw_distance_ea(&windows[i], &windows[j], band, bsf, None, SquaredCost)? {
                    EaOutcome::Exact(d) => {
                        if d < bsf {
                            bsf = d;
                            row_best = Some(Motif {
                                first: i,
                                second: j,
                                distance: d,
                            });
                        }
                    }
                    EaOutcome::Abandoned { .. } => {}
                }
            }
            Ok(row_best)
        },
        |e: &Option<Motif>| e.as_ref().map(|mo| mo.distance),
    )?;

    match winner {
        Some((row, _)) => Ok(outcomes[row].expect("scoring row carries its motif")),
        None => Ok(Motif {
            first: 0,
            second: m,
            distance: f64::INFINITY,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noise with two planted copies of the same pattern.
    fn with_planted_pair(n: usize, m: usize, at1: usize, at2: usize) -> Vec<f64> {
        let mut state = 1234u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut s: Vec<f64> = (0..n).map(|_| rnd() * 3.0).collect();
        let pattern: Vec<f64> = (0..m).map(|i| (i as f64 * 0.5).sin() * 2.0).collect();
        for (k, &p) in pattern.iter().enumerate() {
            s[at1 + k] = p;
            s[at2 + k] = p * 1.5 - 0.3; // affine copy: z-norm recovers it
        }
        s
    }

    #[test]
    fn finds_the_planted_pair() {
        let m = 24;
        let s = with_planted_pair(400, m, 60, 290);
        let motif = top_motif(&s, m, 2).unwrap();
        assert!(motif.first.abs_diff(60) <= 2, "{motif:?}");
        assert!(motif.second.abs_diff(290) <= 2, "{motif:?}");
        assert!(motif.distance < 0.5, "{motif:?}");
    }

    #[test]
    fn windows_never_overlap() {
        let s = with_planted_pair(200, 16, 30, 120);
        let motif = top_motif(&s, 16, 2).unwrap();
        assert!(motif.second - motif.first >= 16);
    }

    #[test]
    fn periodic_signal_has_tiny_motif_distance() {
        let s: Vec<f64> = (0..300).map(|i| (i as f64 * 0.21).sin()).collect();
        let motif = top_motif(&s, 30, 3).unwrap();
        assert!(motif.distance < 1e-2, "{motif:?}");
    }

    #[test]
    fn rejects_too_short_series() {
        assert!(top_motif(&[0.0; 10], 8, 1).is_err());
        assert!(top_motif(&[0.0; 10], 0, 1).is_err());
        let cfg = ParConfig::new(2).unwrap();
        assert!(top_motif_par(&[0.0; 10], 8, 1, &cfg).is_err());
        assert!(top_motif_par(&[0.0; 10], 0, 1, &cfg).is_err());
    }

    #[test]
    fn par_motif_is_bitwise_serial_at_any_thread_count() {
        let m = 20;
        let s = with_planted_pair(260, m, 40, 180);
        let serial = top_motif(&s, m, 2).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let cfg = ParConfig::with_chunk(threads, 8).unwrap();
            let par = top_motif_par(&s, m, 2, &cfg).unwrap();
            assert_eq!(par.first, serial.first, "{threads} threads");
            assert_eq!(par.second, serial.second, "{threads} threads");
            assert_eq!(
                par.distance.to_bits(),
                serial.distance.to_bits(),
                "{threads} threads"
            );
        }
    }
}
