//! Property-based tests over the dataset generators: determinism, shape
//! guarantees, and the structural promises each generator documents.

use proptest::prelude::*;
use tsdtw_datasets::cbf::{dataset as cbf_dataset, instance as cbf_instance, CbfClass};
use tsdtw_datasets::ecg::{beats, rhythm_strip};
use tsdtw_datasets::fall::pair as fall_pair;
use tsdtw_datasets::gesture::{uwave_like, GestureConfig};
use tsdtw_datasets::music::performance_pair;
use tsdtw_datasets::power::dishwasher_morning;
use tsdtw_datasets::random_walk::random_walk;
use tsdtw_datasets::rng::SeededRng;
use tsdtw_datasets::two_patterns::{dataset as tp_dataset, TwoPatternsClass};
use tsdtw_datasets::warp::{monotone_time_map, warped_instance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_walk_deterministic_and_finite(n in 1usize..500, seed in 0u64..1000) {
        let a = random_walk(n, seed).unwrap();
        let b = random_walk(n, seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn time_map_is_monotone_for_any_shift(n in 2usize..300, shift in 0.0f64..50.0, seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let map = monotone_time_map(n, shift, &mut rng).unwrap();
        prop_assert_eq!(map.len(), n);
        for w in map.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for (u, &t) in map.iter().enumerate() {
            prop_assert!((t - u as f64).abs() <= shift + 1e-6);
        }
    }

    #[test]
    fn warped_instance_preserves_length(n in 3usize..200, seed in 0u64..50) {
        let template: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut rng = SeededRng::new(seed);
        let inst = warped_instance(&template, n as f64 * 0.1, 0.1, 0.05, &mut rng).unwrap();
        prop_assert_eq!(inst.len(), n);
        prop_assert!(inst.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gesture_dataset_shape_holds(classes in 1usize..6, per_class in 1usize..5, seed in 0u64..20) {
        let config = GestureConfig {
            length: 60,
            n_classes: classes,
            per_class,
            max_shift: 4.0,
            noise_std: 0.05,
            amp_jitter: 0.05,
        };
        let d = uwave_like(&config, seed).unwrap();
        prop_assert_eq!(d.len(), classes * per_class);
        prop_assert_eq!(d.series_len(), 60);
        prop_assert!(d.n_classes() <= classes);
        for (i, &l) in d.labels.iter().enumerate() {
            prop_assert_eq!(l, i % classes);
        }
    }

    #[test]
    fn music_pair_respects_drift_budget(n in 50usize..800, drift in 0.0f64..20.0, seed in 0u64..30) {
        let p = performance_pair(n, drift, seed).unwrap();
        prop_assert_eq!(p.studio.len(), n);
        prop_assert_eq!(p.live.len(), n);
        prop_assert!(p.studio.iter().chain(&p.live).all(|v| v.is_finite()));
    }

    #[test]
    fn fall_pair_lengths_match_duration(l in 1.0f64..8.0, seed in 0u64..20) {
        let p = fall_pair(l, seed).unwrap();
        prop_assert_eq!(p.len, (l * 100.0).round() as usize);
        prop_assert_eq!(p.early.len(), p.len);
        prop_assert_eq!(p.late.len(), p.len);
    }

    #[test]
    fn power_morning_peaks_in_bounds(n in 150usize..600, onset in 0usize..100, seed in 0u64..20) {
        let m = dishwasher_morning(n, onset, seed).unwrap();
        prop_assert_eq!(m.series.len(), n);
        for &c in &m.peak_centers {
            prop_assert!(c < n);
        }
        // Peaks are ordered by program stage.
        prop_assert!(m.peak_centers[0] <= m.peak_centers[1]);
        prop_assert!(m.peak_centers[1] <= m.peak_centers[2]);
    }

    #[test]
    fn cbf_instances_have_requested_length(n in 16usize..300, seed in 0u64..20) {
        let mut rng = SeededRng::new(seed);
        for class in [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel] {
            let inst = cbf_instance(n, class, &mut rng).unwrap();
            prop_assert_eq!(inst.len(), n);
        }
    }

    #[test]
    fn cbf_dataset_balanced(per_class in 1usize..6, seed in 0u64..20) {
        let d = cbf_dataset(64, per_class, seed).unwrap();
        for c in 0..3usize {
            prop_assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), per_class);
        }
    }

    #[test]
    fn two_patterns_balanced(per_class in 1usize..5, seed in 0u64..20) {
        let d = tp_dataset(64, per_class, seed).unwrap();
        prop_assert_eq!(d.len(), 4 * per_class);
        for c in [
            TwoPatternsClass::UpUp,
            TwoPatternsClass::UpDown,
            TwoPatternsClass::DownUp,
            TwoPatternsClass::DownDown,
        ] {
            prop_assert_eq!(
                d.labels.iter().filter(|&&l| l == c as usize).count(),
                per_class
            );
        }
    }

    #[test]
    fn ecg_beats_deterministic(count in 1usize..6, len in 40usize..200, seed in 0u64..20) {
        let a = beats(count, len, seed).unwrap();
        let b = beats(count, len, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rhythm_strip_length_within_jitter(n_beats in 1usize..10, seed in 0u64..20) {
        let s = rhythm_strip(n_beats, 120, 0.1, seed).unwrap();
        prop_assert!(s.len() >= n_beats * 108);
        prop_assert!(s.len() <= n_beats * 132);
    }
}
