//! Reader/writer for the UCR archive text format.
//!
//! The archive distributes each dataset as `<Name>_TRAIN.tsv` /
//! `<Name>_TEST.tsv`: one series per line, the first field the integer
//! class label, the remaining fields the values, separated by tabs (older
//! versions used commas; both are accepted). If a user has real archive
//! files, every experiment in the harness can run on them instead of the
//! synthetic substitutes.

use crate::types::LabeledDataset;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use tsdtw_core::error::{Error, Result};

/// Parses UCR text content from any reader.
pub fn read_ucr<R: Read>(name: &str, reader: R) -> Result<LabeledDataset> {
    let buf = BufReader::new(reader);
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidParameter {
            name: "reader",
            reason: format!("I/O error at line {}: {e}", lineno + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let sep = if trimmed.contains('\t') { '\t' } else { ',' };
        let mut fields = trimmed.split(sep).filter(|f| !f.is_empty());
        let label_field = fields.next().ok_or_else(|| Error::InvalidParameter {
            name: "line",
            reason: format!("line {} has no fields", lineno + 1),
        })?;
        // Labels may be written as "1" or "1.0"; parse via f64.
        let label = label_field
            .trim()
            .parse::<f64>()
            .map_err(|_| Error::InvalidParameter {
                name: "label",
                reason: format!("line {}: unparsable label {label_field:?}", lineno + 1),
            })? as i64;
        let values: std::result::Result<Vec<f64>, _> =
            fields.map(|f| f.trim().parse::<f64>()).collect();
        let values = values.map_err(|e| Error::InvalidParameter {
            name: "values",
            reason: format!("line {}: {e}", lineno + 1),
        })?;
        if values.is_empty() {
            return Err(Error::InvalidParameter {
                name: "values",
                reason: format!("line {} has a label but no values", lineno + 1),
            });
        }
        series.push(values);
        // The archive uses labels like -1/1 or 1..k; shift to 0-based usize.
        labels.push(label);
    }
    // Remap arbitrary integer labels onto 0..k.
    let mut distinct: Vec<i64> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let mapped: Vec<usize> = labels
        .iter()
        .map(|l| distinct.binary_search(l).expect("label present"))
        .collect();
    LabeledDataset::new(name, series, mapped)
}

/// Loads a UCR file from disk.
pub fn load_ucr_file(path: &Path) -> Result<LabeledDataset> {
    let file = std::fs::File::open(path).map_err(|e| Error::InvalidParameter {
        name: "path",
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ucr".into());
    read_ucr(&name, file)
}

/// Writes a dataset in UCR tab-separated format.
pub fn write_ucr<W: Write>(data: &LabeledDataset, mut writer: W) -> Result<()> {
    for (s, &l) in data.series.iter().zip(&data.labels) {
        let mut line = String::with_capacity(s.len() * 12 + 8);
        line.push_str(&l.to_string());
        for v in s {
            line.push('\t');
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .map_err(|e| Error::InvalidParameter {
                name: "writer",
                reason: format!("I/O error: {e}"),
            })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_data() {
        let d = LabeledDataset::new(
            "rt",
            vec![vec![0.5, -1.25, 3.0], vec![2.0, 2.0, 2.0]],
            vec![0, 1],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_ucr(&d, &mut buf).unwrap();
        let back = read_ucr("rt", buf.as_slice()).unwrap();
        assert_eq!(back.series, d.series);
        assert_eq!(back.labels, d.labels);
    }

    #[test]
    fn reads_tab_separated() {
        let text = "1\t0.0\t1.0\t2.0\n2\t3.0\t4.0\t5.0\n";
        let d = read_ucr("t", text.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.series[1], vec![3.0, 4.0, 5.0]);
        assert_eq!(d.labels, vec![0, 1]);
    }

    #[test]
    fn reads_comma_separated_with_float_labels() {
        let text = "1.0,0.5,0.75\n3.0,1.5,1.75\n";
        let d = read_ucr("c", text.as_bytes()).unwrap();
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(d.series[0], vec![0.5, 0.75]);
    }

    #[test]
    fn remaps_negative_labels() {
        let text = "-1\t0.0\t1.0\n1\t1.0\t0.0\n-1\t0.5\t0.5\n";
        let d = read_ucr("n", text.as_bytes()).unwrap();
        assert_eq!(d.labels, vec![0, 1, 0]);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "\n1\t0.0\t1.0\n\n2\t1.0\t0.0\n\n";
        let d = read_ucr("b", text.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_ucr("g", "1\tfoo\tbar\n".as_bytes()).is_err());
        assert!(read_ucr("g", "label-only\n".as_bytes()).is_err());
        assert!(read_ucr("g", "1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "1\t0.0\t1.0\n2\t1.0\n";
        assert!(read_ucr("r", text.as_bytes()).is_err());
    }
}
