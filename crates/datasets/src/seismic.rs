//! Seismogram-like traces — the paper's *other* Case B domain ("Music
//! performance, classical dance performance, **seismic data**").
//!
//! The alignment task: the same event sequence recorded at two stations
//! (or two repeats of an induced source), offset by small propagation
//! differences — long series, narrow natural warping. The generator
//! produces a quiet noise floor with sparse damped-oscillation events,
//! and a partner trace whose event timings shift by a bounded number of
//! samples.

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// A pair of seismogram-like traces with bounded relative event shifts.
#[derive(Debug, Clone)]
pub struct SeismicPair {
    /// The first station's trace.
    pub a: Vec<f64>,
    /// The second station's trace (events shifted by ≤ `max_shift`).
    pub b: Vec<f64>,
    /// Event onset samples in trace `a`.
    pub onsets: Vec<usize>,
    /// The shift bound used, in samples.
    pub max_shift: usize,
}

/// A damped oscillation (simplified P-wave arrival + coda).
fn event(amplitude: f64, len: usize, rng: &mut SeededRng) -> Vec<f64> {
    let freq = rng.uniform_in(0.25, 0.6);
    let decay = rng.uniform_in(0.015, 0.04);
    (0..len)
        .map(|i| {
            let t = i as f64;
            amplitude * (freq * t).sin() * (-decay * t).exp()
        })
        .collect()
}

/// Generates a pair of traces of length `n` with `n_events` events whose
/// relative timing differs by at most `max_shift` samples.
pub fn pair(n: usize, n_events: usize, max_shift: usize, seed: u64) -> Result<SeismicPair> {
    if n < 200 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: format!("seismic traces need at least 200 samples, got {n}"),
        });
    }
    if n_events == 0 {
        return Err(Error::EmptyInput { which: "n_events" });
    }
    let event_len = (n / (2 * n_events)).clamp(40, 400);
    if n_events * event_len + 2 * max_shift >= n {
        return Err(Error::InvalidParameter {
            name: "n_events",
            reason: format!(
                "{n_events} events of ~{event_len} samples plus shift {max_shift} do not fit in {n}"
            ),
        });
    }
    let mut rng = SeededRng::new(seed);
    let noise = |rng: &mut SeededRng| rng.normal(0.0, 0.02);

    let mut a: Vec<f64> = (0..n).map(|_| noise(&mut rng)).collect();
    let mut b: Vec<f64> = (0..n).map(|_| noise(&mut rng)).collect();
    let slot = n / n_events;
    let mut onsets = Vec::with_capacity(n_events);
    for k in 0..n_events {
        let base = k * slot + max_shift + rng.index(0, (slot - event_len - 2 * max_shift).max(1));
        let amp = rng.uniform_in(0.5, 2.0);
        let wave = event(amp, event_len, &mut rng);
        let shift = rng.index(0, 2 * max_shift.max(1) + 1) as isize - max_shift as isize;
        for (i, &w) in wave.iter().enumerate() {
            a[base + i] += w;
            let jb = (base + i) as isize + shift;
            if jb >= 0 && (jb as usize) < n {
                b[jb as usize] += w;
            }
        }
        onsets.push(base);
    }
    Ok(SeismicPair {
        a,
        b,
        onsets,
        max_shift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::distance::{cdtw, sq_euclidean};

    #[test]
    fn pair_shape_and_determinism() {
        let p = pair(2000, 4, 20, 7).unwrap();
        assert_eq!(p.a.len(), 2000);
        assert_eq!(p.b.len(), 2000);
        assert_eq!(p.onsets.len(), 4);
        let q = pair(2000, 4, 20, 7).unwrap();
        assert_eq!(p.a, q.a);
        assert_eq!(p.b, q.b);
    }

    #[test]
    fn events_stand_above_the_noise_floor() {
        let p = pair(1500, 3, 10, 3).unwrap();
        let max = p.a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 0.3, "peak {max}");
        for &o in &p.onsets {
            assert!(o < p.a.len());
        }
    }

    #[test]
    fn narrow_band_absorbs_the_station_offset() {
        let shift = 25;
        let p = pair(3000, 5, shift, 11).unwrap();
        let banded = cdtw(&p.a, &p.b, (shift + 5) as f64 / 3000.0 * 100.0).unwrap();
        let lockstep = sq_euclidean(&p.a, &p.b).unwrap();
        assert!(
            banded < lockstep * 0.5,
            "a band covering the shift should align the events: {banded} vs {lockstep}"
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(pair(100, 2, 5, 1).is_err());
        assert!(pair(2000, 0, 5, 1).is_err());
        assert!(pair(500, 50, 100, 1).is_err());
    }
}
