//! Residential power-demand mornings with an embedded dishwasher program —
//! the paper's Fig. 3 and the motivation for Case C (§3.3).
//!
//! The paper's example: electrical demand from midnight to 1:00 AM sampled
//! every 8 seconds (N = 450). Most mornings are dissimilar, but some
//! contain the same three-peak dishwasher program whose timing shifts by up
//! to 153 samples between days — giving W = 34 %, rounded up to 40 %. This
//! generator reproduces that geometry: a noisy baseline load plus a
//! three-peak appliance signature whose onset (and inter-peak spacing)
//! shifts day to day within a configurable budget.

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// Length of the paper's power-demand series: one hour at 1/8 Hz.
pub const MORNING_LEN: usize = 450;

/// The paper's observed maximum peak-timing difference, in samples.
pub const PAPER_MAX_SHIFT: usize = 153;

/// One synthetic midnight-to-1AM power trace.
#[derive(Debug, Clone)]
pub struct PowerMorning {
    /// The demand series (kW-scale arbitrary units).
    pub series: Vec<f64>,
    /// Sample indices of the three dishwasher peak centers.
    pub peak_centers: [usize; 3],
}

/// Generates one morning of length `n` whose dishwasher program is offset
/// by `onset` samples from the earliest possible start. The three peaks
/// have fixed shapes and (slightly jittered) spacings, standing well above
/// the baseline.
pub fn dishwasher_morning(n: usize, onset: usize, seed: u64) -> Result<PowerMorning> {
    if n < 120 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: format!("morning must have at least 120 samples, got {n}"),
        });
    }
    let mut rng = SeededRng::new(seed);
    // Baseline: fridge cycles + noise, low amplitude.
    let mut series: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            0.15 + 0.05 * (std::f64::consts::TAU * 6.0 * x).sin().max(0.0) + rng.normal(0.0, 0.01)
        })
        .collect();

    // Dishwasher program: heat (wide), wash (medium), dry (narrow) peaks.
    let widths = [18usize, 12, 8];
    let heights = [1.0f64, 0.8, 0.9];
    let spacing = [0usize, 60, 120];
    let max_center = n - widths[2] - 1;
    let mut centers = [0usize; 3];
    for k in 0..3 {
        let jitter = rng.index(0, 7) as i64 - 3;
        let c = (onset as i64 + spacing[k] as i64 + jitter).max(widths[k] as i64) as usize;
        centers[k] = c.min(max_center);
    }
    for k in 0..3 {
        let c = centers[k] as f64;
        let w = widths[k] as f64;
        for (i, v) in series.iter_mut().enumerate() {
            let z = (i as f64 - c) / w;
            *v += heights[k] * (-0.5 * z * z).exp();
        }
    }
    Ok(PowerMorning {
        series,
        peak_centers: centers,
    })
}

/// The Fig. 3 pair: two mornings with the same program, one starting early
/// and one starting `shift` samples later (paper: 153).
pub fn fig3_pair(seed: u64) -> Result<(PowerMorning, PowerMorning)> {
    let early = dishwasher_morning(MORNING_LEN, 30, seed)?;
    let late = dishwasher_morning(MORNING_LEN, 30 + PAPER_MAX_SHIFT, seed + 1)?;
    Ok((early, late))
}

/// A year-like collection of mornings with uniformly random onsets within
/// the shift budget — the population the Fig. 4 / Case C comparison runs
/// over.
pub fn mornings(count: usize, n: usize, max_shift: usize, seed: u64) -> Result<Vec<Vec<f64>>> {
    if count == 0 {
        return Err(Error::EmptyInput { which: "count" });
    }
    let mut rng = SeededRng::new(seed);
    (0..count)
        .map(|_| {
            let onset = 30 + rng.index(0, max_shift.max(1));
            dishwasher_morning(n, onset, rng.child_seed()).map(|m| m.series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::distance::{cdtw, sq_euclidean};

    #[test]
    fn morning_has_requested_length_and_three_peaks() {
        let m = dishwasher_morning(MORNING_LEN, 40, 1).unwrap();
        assert_eq!(m.series.len(), MORNING_LEN);
        // Peaks stand above the baseline.
        for &c in &m.peak_centers {
            assert!(m.series[c] > 0.6, "peak at {c} too small: {}", m.series[c]);
        }
    }

    #[test]
    fn fig3_pair_shift_matches_paper_geometry() {
        let (early, late) = fig3_pair(2).unwrap();
        let d0 = late.peak_centers[0] as i64 - early.peak_centers[0] as i64;
        // Shift within jitter of the paper's 153 samples (W = 34 % of 450).
        assert!((d0 - PAPER_MAX_SHIFT as i64).abs() <= 6, "shift {d0}");
        let w = d0 as f64 / MORNING_LEN as f64 * 100.0;
        assert!((30.0..40.0).contains(&w), "W = {w}% should be ~34%");
    }

    #[test]
    fn wide_window_aligns_shifted_program_much_better_than_euclidean() {
        let (early, late) = fig3_pair(3).unwrap();
        let wide = cdtw(&early.series, &late.series, 40.0).unwrap();
        let lockstep = sq_euclidean(&early.series, &late.series).unwrap();
        assert!(
            wide < lockstep * 0.35,
            "40% warping should mostly align the program: {wide} vs {lockstep}"
        );
    }

    #[test]
    fn mornings_are_deterministic_and_distinct() {
        let a = mornings(4, 300, 100, 5).unwrap();
        let b = mornings(4, 300, 100, 5).unwrap();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn rejects_tiny_morning() {
        assert!(dishwasher_morning(50, 10, 1).is_err());
        assert!(mornings(0, 300, 10, 1).is_err());
    }
}
