//! Seeded randomness helpers shared by all generators.
//!
//! Every generator in this crate takes an explicit `u64` seed and is fully
//! deterministic given it — the benchmark harness depends on that to make
//! every figure regenerable bit-for-bit. The uniform source is a
//! self-contained xoshiro256++ generator (seeded through SplitMix64, the
//! procedure its authors recommend), so the crate carries no external
//! randomness dependency and builds hermetically; Gaussian variates come
//! from a Box–Muller transform over it (see DESIGN.md §6).

/// A deterministic random source for dataset generation.
#[derive(Debug, Clone)]
pub struct SeededRng {
    /// xoshiro256++ state.
    s: [u64; 4],
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl SeededRng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; never
        // yields the all-zero state xoshiro cannot escape.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SeededRng {
            s: [next(), next(), next(), next()],
            spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)` (half-open). `lo < hi` required.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0): draw u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// A fresh child seed, for splitting one seed into independent streams.
    pub fn child_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.gaussian(), b.gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..20).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SeededRng::new(7);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn index_respects_bounds() {
        let mut rng = SeededRng::new(4);
        for _ in 0..1000 {
            let i = rng.index(3, 10);
            assert!((3..10).contains(&i));
        }
    }

    #[test]
    fn gaussian_values_are_finite() {
        let mut rng = SeededRng::new(5);
        assert!((0..10_000).all(|_| rng.gaussian().is_finite()));
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SeededRng::new(6);
        assert!((0..10_000).all(|_| (0.0..1.0).contains(&rng.uniform())));
    }
}
