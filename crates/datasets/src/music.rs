//! Chroma-like music performance pairs — the paper's Case B (§3.2).
//!
//! The paper aligns a studio recording of a four-minute song with a live
//! performance: chroma features at 100 Hz give N = 24,000, and the live
//! version drifts at most ±2 s (w = 0.83 %). We synthesize the same
//! structure: a smooth, slowly modulated pseudo-chroma channel as the
//! "studio" series, and a copy resampled through a bounded-drift monotone
//! tempo map as the "live" series. The algorithms' running time depends
//! only on (N, w, r), so this preserves everything the experiment measures,
//! and the bounded drift makes the paper's w the semantically correct band.

use crate::rng::SeededRng;
use crate::warp::{monotone_time_map, sample_at};
use tsdtw_core::error::{Error, Result};

/// A studio/live pair of pseudo-chroma series.
#[derive(Debug, Clone)]
pub struct PerformancePair {
    /// The reference ("studio") series.
    pub studio: Vec<f64>,
    /// The tempo-drifted ("live") series.
    pub live: Vec<f64>,
    /// The drift bound used, in samples.
    pub max_drift: f64,
}

/// Generates a smooth pseudo-chroma base signal: a sum of slow sinusoids
/// whose amplitudes are themselves slowly modulated, resembling the energy
/// of one chroma bin over a song.
fn chroma_base(n: usize, rng: &mut SeededRng) -> Vec<f64> {
    let comps: Vec<(f64, f64, f64, f64)> = (0..6)
        .map(|k| {
            (
                rng.uniform_in(0.3, 1.0) / (k + 1) as f64, // amplitude
                rng.uniform_in(2.0, 40.0),                 // cycles over the song
                rng.uniform_in(0.0, std::f64::consts::TAU),
                rng.uniform_in(0.5, 3.0), // modulation cycles
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            comps
                .iter()
                .map(|&(a, f, p, m)| {
                    let env = 0.6 + 0.4 * (std::f64::consts::TAU * m * x).sin();
                    a * env * (std::f64::consts::TAU * f * x + p).sin()
                })
                .sum::<f64>()
        })
        .collect()
}

/// Generates a studio/live pair of length `n` whose live version drifts by
/// at most `max_drift` samples (the paper: n = 24,000, drift = 200 samples
/// = 2 s at 100 Hz), plus light performance noise.
pub fn performance_pair(n: usize, max_drift: f64, seed: u64) -> Result<PerformancePair> {
    if n < 2 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: "a performance needs at least 2 samples".into(),
        });
    }
    if !max_drift.is_finite() || max_drift < 0.0 {
        return Err(Error::InvalidParameter {
            name: "max_drift",
            reason: format!("must be finite and non-negative, got {max_drift}"),
        });
    }
    let mut rng = SeededRng::new(seed);
    let studio = chroma_base(n, &mut rng);
    let map = monotone_time_map(n, max_drift, &mut rng)?;
    let live: Vec<f64> = map
        .iter()
        .map(|&t| sample_at(&studio, t) + rng.normal(0.0, 0.01))
        .collect();
    Ok(PerformancePair {
        studio,
        live,
        max_drift,
    })
}

/// The paper's exact Case B configuration: four minutes at 100 Hz
/// (N = 24,000) with ±2 s drift (w = 0.83 %).
pub fn let_it_be_like(seed: u64) -> Result<PerformancePair> {
    performance_pair(24_000, 200.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::dtw::banded::{cdtw_distance, percent_to_band};
    use tsdtw_core::SquaredCost;

    #[test]
    fn pair_has_requested_shape() {
        let p = performance_pair(1000, 20.0, 1).unwrap();
        assert_eq!(p.studio.len(), 1000);
        assert_eq!(p.live.len(), 1000);
        assert_eq!(p.max_drift, 20.0);
    }

    #[test]
    fn deterministic() {
        let a = performance_pair(500, 10.0, 9).unwrap();
        let b = performance_pair(500, 10.0, 9).unwrap();
        assert_eq!(a.studio, b.studio);
        assert_eq!(a.live, b.live);
    }

    #[test]
    fn drift_bounded_band_aligns_much_better_than_lockstep() {
        let n = 2000;
        let drift = 40.0;
        let p = performance_pair(n, drift, 4).unwrap();
        let banded = cdtw_distance(&p.studio, &p.live, drift as usize + 2, SquaredCost).unwrap();
        let lockstep = cdtw_distance(&p.studio, &p.live, 0, SquaredCost).unwrap();
        assert!(
            banded < lockstep * 0.5,
            "the band should absorb the tempo drift: {banded} vs {lockstep}"
        );
    }

    #[test]
    fn paper_configuration_dimensions() {
        // w = 0.83 % of 24,000 → a band of ~200 cells, the ±2 s the paper
        // grants the live performance.
        let band = percent_to_band(24_000, 0.83).unwrap();
        assert_eq!(band, 200);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(performance_pair(1, 5.0, 1).is_err());
        assert!(performance_pair(100, -1.0, 1).is_err());
    }
}
