//! The adversarial pair of the paper's Table 2 / Fig. 7 / Fig. 8 /
//! Appendix A: two series that Full DTW finds almost identical but
//! FastDTW misjudges by orders of magnitude.
//!
//! Appendix A explains the mechanism: PAA coarsening "depresses the
//! important features and (relatively) magnifies a tiny feature that warps
//! in the opposite direction to the original time series. It is this
//! 'wrong way' warping that is passed up to a finer resolution for
//! refinement. Once the low resolution approximation of FastDTW has
//! committed to warping in the wrong direction, it cannot recover."
//!
//! Our construction realizes that recipe directly:
//!
//! * Each series carries a **large high-frequency feature** — an
//!   alternating ±h spike train whose pairs average to exactly zero under
//!   FastDTW's 2:1 coarsening, so it is *invisible* at every level except
//!   the full resolution. Series A has it early, series B late: aligning
//!   them needs a strong "rightward" (above-diagonal) warp.
//! * Each series also carries a **tiny smooth bump** that *survives*
//!   coarsening. A has it late, B early — the opposite phase. At every
//!   coarse level the bumps are the only features, so the low-resolution
//!   path commits to the "leftward" (below-diagonal) warp.
//!
//! With any radius much smaller than the series length, FastDTW's
//! projected window around the leftward path excludes the rightward path
//! entirely, and it must pay the full energy of both spike trains.

use tsdtw_core::error::{Error, Result};

/// Length of the adversarial series.
pub const LEN: usize = 1024;

/// Amplitude of the spike train (the "important feature").
pub const SPIKE_AMP: f64 = 1.0;

/// Amplitude of the smooth decoy bump (the "tiny feature").
pub const BUMP_AMP: f64 = 0.02;

/// The adversarial trio: `a` and `b` are near-twins under Full DTW; `c` is
/// genuinely far from both, giving the Table 2 matrix its third row.
#[derive(Debug, Clone)]
pub struct AdversarialTrio {
    /// Spike train early, decoy bump late.
    pub a: Vec<f64>,
    /// Spike train late, decoy bump early.
    pub b: Vec<f64>,
    /// A distinct mid-energy series, far from both under any measure.
    pub c: Vec<f64>,
}

/// Adds an alternating ±`amp` spike train over `[start, start + len)`.
/// `start` and `len` must be even so 2:1 pairwise averaging cancels it
/// exactly.
fn add_spike_train(s: &mut [f64], start: usize, len: usize, amp: f64) {
    debug_assert!(start.is_multiple_of(2) && len.is_multiple_of(2));
    for k in 0..len {
        s[start + k] += if k % 2 == 0 { amp } else { -amp };
    }
}

/// Adds a smooth Gaussian bump centered at `center` with width `sigma`.
fn add_bump(s: &mut [f64], center: f64, sigma: f64, amp: f64) {
    for (i, v) in s.iter_mut().enumerate() {
        let z = (i as f64 - center) / sigma;
        if z.abs() < 6.0 {
            *v += amp * (-0.5 * z * z).exp();
        }
    }
}

/// Builds the adversarial trio. Deterministic — the construction is exact,
/// not sampled (noise would leak the spike trains into the coarse levels).
pub fn trio() -> AdversarialTrio {
    let n = LEN;

    // Series A: spikes early (rows 96..224), decoy bump late (~800).
    let mut a = vec![0.0; n];
    add_spike_train(&mut a, 96, 128, SPIKE_AMP);
    add_bump(&mut a, 800.0, 40.0, BUMP_AMP);

    // Series B: spikes late (768..896), decoy bump early (~224).
    let mut b = vec![0.0; n];
    add_spike_train(&mut b, 768, 128, SPIKE_AMP);
    add_bump(&mut b, 224.0, 40.0, BUMP_AMP);

    // Series C: a smooth mid-amplitude oscillation, unrelated to both.
    let c: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            0.35 * (std::f64::consts::TAU * 3.0 * x).sin()
        })
        .collect();

    AdversarialTrio { a, b, c }
}

/// The paper's approximation-error metric for this pair, in percent:
/// `100 · (FastDTW_r(a,b) − DTW(a,b)) / DTW(a,b)`.
pub fn headline_error_percent(radius: usize) -> Result<f64> {
    let t = trio();
    let exact = tsdtw_core::dtw(&t.a, &t.b)?;
    let approx = tsdtw_core::fastdtw(&t.a, &t.b, radius)?;
    if exact <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "exact",
            reason: "degenerate adversarial pair: exact distance is zero".into(),
        });
    }
    Ok(100.0 * (approx - exact) / exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::paa::halve;
    use tsdtw_core::{dtw, fastdtw};

    #[test]
    fn spike_trains_vanish_under_one_halving() {
        let t = trio();
        let ha = halve(&t.a);
        let hb = halve(&t.b);
        // After halving, only the bump remains: max magnitude ≈ BUMP_AMP.
        let max_a = ha.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let max_b = hb.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            max_a <= BUMP_AMP * 1.01,
            "spikes leaked into coarse A: {max_a}"
        );
        assert!(
            max_b <= BUMP_AMP * 1.01,
            "spikes leaked into coarse B: {max_b}"
        );
        assert!(max_a > BUMP_AMP * 0.5, "bump vanished from coarse A");
    }

    #[test]
    fn full_dtw_finds_near_twins() {
        let t = trio();
        let d = dtw(&t.a, &t.b).unwrap();
        // Only the two misaligned decoy bumps contribute.
        assert!(d < 0.2, "Full DTW should be tiny, got {d}");
    }

    #[test]
    fn fastdtw_20_misjudges_by_orders_of_magnitude() {
        let t = trio();
        let exact = dtw(&t.a, &t.b).unwrap();
        let approx = fastdtw(&t.a, &t.b, 20).unwrap();
        assert!(
            approx > 100.0 * exact,
            "FastDTW_20 should be catastrophically wrong: exact {exact}, approx {approx}"
        );
        // It pays roughly both spike trains' energy.
        assert!(approx > 100.0, "approx {approx}");
    }

    #[test]
    fn coarse_warp_goes_the_wrong_way() {
        use tsdtw_core::dtw::full::dtw_with_path;
        use tsdtw_core::SquaredCost;
        let t = trio();
        // Coarsen three times (8:1, as in the paper's Fig. 8).
        let mut ca = t.a.clone();
        let mut cb = t.b.clone();
        for _ in 0..3 {
            ca = halve(&ca);
            cb = halve(&cb);
        }
        let (_, coarse) = dtw_with_path(&ca, &cb, SquaredCost).unwrap();
        let (_, fine) = dtw_with_path(&t.a, &t.b, SquaredCost).unwrap();
        // Signed deviation: positive = below diagonal (i ahead of j).
        let signed_mean = |p: &tsdtw_core::WarpingPath| {
            p.cells()
                .iter()
                .map(|&(i, j)| i as f64 - j as f64)
                .sum::<f64>()
                / p.len() as f64
        };
        let coarse_dir = signed_mean(&coarse);
        let fine_dir = signed_mean(&fine);
        assert!(
            coarse_dir * fine_dir < 0.0,
            "coarse and fine warps should go opposite ways: coarse {coarse_dir}, fine {fine_dir}"
        );
    }

    #[test]
    fn c_sits_between_the_twins_and_the_blowup() {
        let t = trio();
        let ab = dtw(&t.a, &t.b).unwrap();
        let ac = dtw(&t.a, &t.c).unwrap();
        let bc = dtw(&t.b, &t.c).unwrap();
        assert!(ab < ac && ab < bc, "A,B must be mutual nearest neighbors");
        let fast_ab = fastdtw(&t.a, &t.b, 20).unwrap();
        assert!(
            ac < fast_ab && bc < fast_ab,
            "under FastDTW the twins should look farther apart than either is from C \
             (this is what flips the dendrogram): ac={ac} bc={bc} fast_ab={fast_ab}"
        );
    }

    #[test]
    fn headline_error_is_enormous() {
        let e = headline_error_percent(20).unwrap();
        assert!(e > 10_000.0, "error should be >10,000 %, got {e}%");
    }

    #[test]
    fn larger_radius_eventually_recovers() {
        // With radius ≥ the deviation needed, FastDTW finds the right warp.
        let t = trio();
        let exact = dtw(&t.a, &t.b).unwrap();
        let big = fastdtw(&t.a, &t.b, LEN).unwrap();
        assert!((big - exact).abs() < 1e-9);
    }
}
