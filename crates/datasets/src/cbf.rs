//! The classic Cylinder–Bell–Funnel synthetic classification problem
//! (Saito 1994), the standard three-class benchmark for time-series
//! classifiers.
//!
//! Each instance is noise plus one of three shapes over a random interval
//! `[a, b]`: a plateau (cylinder), a rising ramp (bell), or a falling ramp
//! (funnel). Because the interval's position and width vary, a little
//! warping helps classification — the regime of the paper's Case A — which
//! makes CBF a good substrate for the optimal-window (Fig. 2) machinery.

use crate::rng::SeededRng;
use crate::types::LabeledDataset;
use tsdtw_core::error::{Error, Result};

/// The three CBF classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbfClass {
    /// Plateau over `[a, b]`.
    Cylinder = 0,
    /// Ramp rising over `[a, b]`.
    Bell = 1,
    /// Ramp falling over `[a, b]`.
    Funnel = 2,
}

/// One CBF instance of length `n`.
pub fn instance(n: usize, class: CbfClass, rng: &mut SeededRng) -> Result<Vec<f64>> {
    if n < 16 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: format!("CBF needs at least 16 samples, got {n}"),
        });
    }
    // Event interval: onset in the first half, width covering 25-70 %.
    let a = rng.index(n / 8, n / 2);
    let width = rng.index(n / 4, (7 * n) / 10);
    let b = (a + width).min(n - 1);
    let amp = 6.0 + rng.gaussian();
    Ok((0..n)
        .map(|t| {
            let noise = rng.gaussian() * 0.5;
            if t < a || t > b {
                noise
            } else {
                let frac = (t - a) as f64 / (b - a).max(1) as f64;
                let shape = match class {
                    CbfClass::Cylinder => 1.0,
                    CbfClass::Bell => frac,
                    CbfClass::Funnel => 1.0 - frac,
                };
                amp * shape + noise
            }
        })
        .collect())
}

/// A balanced CBF dataset: `per_class` instances of each class, length `n`,
/// interleaved by class.
pub fn dataset(n: usize, per_class: usize, seed: u64) -> Result<LabeledDataset> {
    if per_class == 0 {
        return Err(Error::EmptyInput { which: "per_class" });
    }
    let mut rng = SeededRng::new(seed);
    let classes = [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel];
    let mut series = Vec::with_capacity(3 * per_class);
    let mut labels = Vec::with_capacity(3 * per_class);
    for i in 0..3 * per_class {
        let class = classes[i % 3];
        series.push(instance(n, class, &mut rng)?);
        labels.push(class as usize);
    }
    LabeledDataset::new("cbf", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape() {
        let d = dataset(128, 10, 1).unwrap();
        assert_eq!(d.len(), 30);
        assert_eq!(d.series_len(), 128);
        assert_eq!(d.n_classes(), 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(dataset(64, 4, 5).unwrap(), dataset(64, 4, 5).unwrap());
    }

    #[test]
    fn cylinder_has_plateau_bell_rises_funnel_falls() {
        let mut rng = SeededRng::new(2);
        let n = 256;
        // Average many instances to suppress noise.
        let avg = |class: CbfClass, rng: &mut SeededRng| -> Vec<f64> {
            let mut acc = vec![0.0; n];
            for _ in 0..40 {
                let inst = instance(n, class, rng).unwrap();
                for (a, v) in acc.iter_mut().zip(&inst) {
                    *a += v / 40.0;
                }
            }
            acc
        };
        let bell = avg(CbfClass::Bell, &mut rng);
        let funnel = avg(CbfClass::Funnel, &mut rng);
        // Bell's mass is late; funnel's mass is early.
        let first_half = |s: &[f64]| s[..n / 2].iter().sum::<f64>();
        let second_half = |s: &[f64]| s[n / 2..].iter().sum::<f64>();
        assert!(second_half(&bell) > first_half(&bell));
        assert!(first_half(&funnel) > second_half(&funnel));
    }

    #[test]
    fn event_amplitude_dominates_noise() {
        let mut rng = SeededRng::new(3);
        let inst = instance(200, CbfClass::Cylinder, &mut rng).unwrap();
        let max = inst.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 3.0);
    }

    #[test]
    fn rejects_tiny_instances() {
        let mut rng = SeededRng::new(4);
        assert!(instance(8, CbfClass::Bell, &mut rng).is_err());
        assert!(dataset(64, 0, 1).is_err());
    }
}
