//! The labeled-dataset container shared by the classification-style
//! generators and the UCR-format loader.

use tsdtw_core::error::{Error, Result};

/// A labeled collection of equal-length univariate time series — the shape
/// of a UCR-archive dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// Human-readable dataset name (e.g. `"uwave-like"`).
    pub name: String,
    /// The series; all must share one length.
    pub series: Vec<Vec<f64>>,
    /// One class label per series.
    pub labels: Vec<usize>,
}

impl LabeledDataset {
    /// Builds a dataset, validating shape coherence: at least one series,
    /// equal lengths, one label per series.
    pub fn new(name: impl Into<String>, series: Vec<Vec<f64>>, labels: Vec<usize>) -> Result<Self> {
        if series.is_empty() {
            return Err(Error::EmptyInput { which: "series" });
        }
        if series.len() != labels.len() {
            return Err(Error::InvalidParameter {
                name: "labels",
                reason: format!("{} series but {} labels", series.len(), labels.len()),
            });
        }
        let len = series[0].len();
        if len == 0 {
            return Err(Error::EmptyInput { which: "series[0]" });
        }
        if let Some(bad) = series.iter().position(|s| s.len() != len) {
            return Err(Error::InvalidParameter {
                name: "series",
                reason: format!(
                    "series {bad} has length {}, expected {len}",
                    series[bad].len()
                ),
            });
        }
        Ok(LabeledDataset {
            name: name.into(),
            series,
            labels,
        })
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Common length of every series.
    pub fn series_len(&self) -> usize {
        self.series[0].len()
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        let mut seen: Vec<usize> = self.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Splits into (train, test) by taking every `k`-th *exemplar of each
    /// class* into test — a deterministic, class-stratified split: every
    /// class keeps `⌈(k−1)/k⌉` of its exemplars in train and is guaranteed
    /// representation on both sides whenever it has ≥ `k` exemplars.
    pub fn split_stratified(&self, k: usize) -> Result<(LabeledDataset, LabeledDataset)> {
        if k < 2 {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: "split interval must be at least 2".into(),
            });
        }
        let mut per_class_seen: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut train_s = Vec::new();
        let mut train_l = Vec::new();
        let mut test_s = Vec::new();
        let mut test_l = Vec::new();
        for (s, &l) in self.series.iter().zip(&self.labels) {
            let seen = per_class_seen.entry(l).or_insert(0);
            if (*seen).is_multiple_of(k) {
                test_s.push(s.clone());
                test_l.push(l);
            } else {
                train_s.push(s.clone());
                train_l.push(l);
            }
            *seen += 1;
        }
        Ok((
            LabeledDataset::new(format!("{}-train", self.name), train_s, train_l)?,
            LabeledDataset::new(format!("{}-test", self.name), test_s, test_l)?,
        ))
    }

    /// Splits into (train, test) by taking every `k`-th series into test.
    ///
    /// Beware with interleaved generators (`label = i % n_classes`): if `k`
    /// shares a factor with the class count, whole classes land on one
    /// side. Prefer [`LabeledDataset::split_stratified`] for
    /// classification experiments.
    pub fn split_every(&self, k: usize) -> Result<(LabeledDataset, LabeledDataset)> {
        if k < 2 {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: "split interval must be at least 2".into(),
            });
        }
        let mut train_s = Vec::new();
        let mut train_l = Vec::new();
        let mut test_s = Vec::new();
        let mut test_l = Vec::new();
        for (i, (s, &l)) in self.series.iter().zip(&self.labels).enumerate() {
            if i % k == 0 {
                test_s.push(s.clone());
                test_l.push(l);
            } else {
                train_s.push(s.clone());
                train_l.push(l);
            }
        }
        Ok((
            LabeledDataset::new(format!("{}-train", self.name), train_s, train_l)?,
            LabeledDataset::new(format!("{}-test", self.name), test_s, test_l)?,
        ))
    }

    /// Applies z-normalization to every series in place (UCR convention).
    pub fn znorm_all(&mut self) -> Result<()> {
        for s in &mut self.series {
            tsdtw_core::norm::znorm_in_place(s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledDataset {
        LabeledDataset::new(
            "t",
            vec![
                vec![0.0, 1.0],
                vec![1.0, 2.0],
                vec![2.0, 3.0],
                vec![3.0, 4.0],
            ],
            vec![0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.series_len(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn rejects_ragged_series() {
        let r = LabeledDataset::new("r", vec![vec![0.0], vec![0.0, 1.0]], vec![0, 1]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_label_count_mismatch() {
        let r = LabeledDataset::new("r", vec![vec![0.0]], vec![0, 1]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(LabeledDataset::new("r", vec![], vec![]).is_err());
        assert!(LabeledDataset::new("r", vec![vec![]], vec![0]).is_err());
    }

    #[test]
    fn split_every_partitions() {
        let d = tiny();
        let (train, test) = d.split_every(2).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn split_stratified_keeps_every_class_on_both_sides() {
        // 8 interleaved classes and k = 4: the plain positional split
        // would put classes 0 and 4 entirely into test; the stratified
        // split must not.
        let n_classes = 8;
        let per_class = 8;
        let series: Vec<Vec<f64>> = (0..n_classes * per_class)
            .map(|i| vec![i as f64, 0.0])
            .collect();
        let labels: Vec<usize> = (0..n_classes * per_class).map(|i| i % n_classes).collect();
        let d = LabeledDataset::new("s", series, labels).unwrap();
        let (train, test) = d.split_stratified(4).unwrap();
        assert_eq!(train.n_classes(), n_classes);
        assert_eq!(test.n_classes(), n_classes);
        assert_eq!(train.len() + test.len(), d.len());
        // Every class contributes ceil(8/4) = 2 test exemplars.
        for c in 0..n_classes {
            assert_eq!(test.labels.iter().filter(|&&l| l == c).count(), 2);
        }
    }

    #[test]
    fn split_stratified_rejects_k_below_two() {
        assert!(tiny().split_stratified(1).is_err());
    }

    #[test]
    fn split_rejects_k_below_two() {
        assert!(tiny().split_every(1).is_err());
    }

    #[test]
    fn znorm_all_normalizes_each_series() {
        let mut d = tiny();
        d.znorm_all().unwrap();
        for s in &d.series {
            let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }
}
