//! Controlled time-warping: resample a template through a smooth monotone
//! time map whose maximum displacement is bounded.
//!
//! This is the lever every labeled generator uses to dial in the paper's
//! `W` — the *natural* warping amount of a domain, expressed as a
//! percentage of the series length. A instance generated with
//! `max_shift = s` never needs a warping path deviating more than about
//! `s` cells from the diagonal to align with its template, so datasets
//! built this way have a known ground-truth `W ≈ s / N`.

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// Samples `template` at position `t` (fractional) with linear
/// interpolation, clamping at the ends.
pub fn sample_at(template: &[f64], t: f64) -> f64 {
    let n = template.len();
    debug_assert!(n > 0);
    if t <= 0.0 {
        return template[0];
    }
    let max = (n - 1) as f64;
    if t >= max {
        return template[n - 1];
    }
    let i = t.floor() as usize;
    let frac = t - i as f64;
    template[i] * (1.0 - frac) + template[i + 1] * frac
}

/// Generates a smooth monotone time map `t(u)` over `n` samples with
/// `|t(u) − u| ≤ max_shift`, as a vector of fractional source positions.
///
/// The map is `u + Σ a_k sin(π f_k u/n + φ_k)` with the perturbation scaled
/// to respect the bound, forced to zero displacement at both endpoints so
/// boundary alignment is preserved, and post-processed to be strictly
/// monotone.
pub fn monotone_time_map(n: usize, max_shift: f64, rng: &mut SeededRng) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::EmptyInput { which: "n" });
    }
    if max_shift < 0.0 || !max_shift.is_finite() {
        return Err(Error::InvalidParameter {
            name: "max_shift",
            reason: format!("must be finite and non-negative, got {max_shift}"),
        });
    }
    let mut map = Vec::with_capacity(n);
    // Low-frequency sinusoidal displacement field.
    let k = 3;
    let comps: Vec<(f64, f64, f64)> = (0..k)
        .map(|i| {
            let freq = (i + 1) as f64;
            let amp = rng.uniform_in(0.2, 1.0) / freq;
            let phase = rng.uniform_in(0.0, std::f64::consts::TAU);
            (amp, freq, phase)
        })
        .collect();
    let amp_total: f64 = comps.iter().map(|(a, _, _)| a).sum();
    let scale = if amp_total > 0.0 {
        max_shift / amp_total
    } else {
        0.0
    };

    let denom = (n.max(2) - 1) as f64;
    for u in 0..n {
        let x = u as f64 / denom; // in [0, 1]
        let mut disp = 0.0;
        for &(a, f, p) in &comps {
            disp += a * (std::f64::consts::PI * f * x + p).sin();
        }
        // sin(pi * x) envelope pins the endpoints.
        let envelope = (std::f64::consts::PI * x).sin();
        map.push(u as f64 + scale * disp * envelope);
    }
    // Clamp into the template's index range first, then enforce strict
    // monotonicity (large shifts can locally fold, and clamping can
    // flatten runs at the boundaries). The epsilon steps may overshoot the
    // last index by a few nanounits; `sample_at` clamps on read.
    let max = (n - 1) as f64;
    for v in &mut map {
        *v = v.clamp(0.0, max);
    }
    for i in 1..n {
        if map[i] <= map[i - 1] {
            map[i] = map[i - 1] + 1e-9;
        }
    }
    Ok(map)
}

/// Produces a warped copy of `template`: resampled through a random
/// monotone time map with displacement ≤ `max_shift` samples, then
/// amplitude-scaled by `1 ± amp_jitter` and perturbed with Gaussian noise
/// of standard deviation `noise_std`.
pub fn warped_instance(
    template: &[f64],
    max_shift: f64,
    amp_jitter: f64,
    noise_std: f64,
    rng: &mut SeededRng,
) -> Result<Vec<f64>> {
    if template.is_empty() {
        return Err(Error::EmptyInput { which: "template" });
    }
    let n = template.len();
    let map = monotone_time_map(n, max_shift, rng)?;
    let amp = 1.0 + rng.uniform_in(-amp_jitter, amp_jitter.max(f64::MIN_POSITIVE));
    Ok(map
        .iter()
        .map(|&t| amp * sample_at(template, t) + rng.normal(0.0, noise_std))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_at_interpolates_linearly() {
        let t = [0.0, 10.0, 20.0];
        assert_eq!(sample_at(&t, 0.5), 5.0);
        assert_eq!(sample_at(&t, 1.25), 12.5);
        assert_eq!(sample_at(&t, -3.0), 0.0);
        assert_eq!(sample_at(&t, 99.0), 20.0);
    }

    #[test]
    fn time_map_is_monotone_and_bounded() {
        let mut rng = SeededRng::new(11);
        for &shift in &[0.0, 3.0, 40.0] {
            let map = monotone_time_map(200, shift, &mut rng).unwrap();
            for i in 1..map.len() {
                assert!(map[i] > map[i - 1], "fold at {i} for shift {shift}");
            }
            for (u, &t) in map.iter().enumerate() {
                assert!(
                    (t - u as f64).abs() <= shift + 1e-6,
                    "displacement {} at {u} exceeds {shift}",
                    t - u as f64
                );
            }
        }
    }

    #[test]
    fn time_map_pins_endpoints() {
        let mut rng = SeededRng::new(5);
        let map = monotone_time_map(100, 20.0, &mut rng).unwrap();
        assert!((map[0] - 0.0).abs() < 1e-6);
        assert!((map[99] - 99.0).abs() < 1e-6);
    }

    #[test]
    fn zero_shift_zero_noise_is_amplitude_scaled_identity() {
        let template: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut rng = SeededRng::new(3);
        let inst = warped_instance(&template, 0.0, 0.0, 0.0, &mut rng).unwrap();
        // amp_jitter 0 means amp factor within [1, 1 + tiny].
        for (a, b) in template.iter().zip(&inst) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn warped_instance_is_alignable_within_the_shift_budget() {
        use tsdtw_core::dtw::banded::cdtw_distance;
        use tsdtw_core::SquaredCost;
        let template: Vec<f64> = (0..300).map(|i| (i as f64 * 0.07).sin() * 2.0).collect();
        let mut rng = SeededRng::new(8);
        let shift = 20.0;
        let inst = warped_instance(&template, shift, 0.0, 0.0, &mut rng).unwrap();
        // Aligning within the shift budget should be near-free; aligning
        // with a lockstep (band 0) comparison should cost much more.
        let within = cdtw_distance(&template, &inst, shift as usize + 2, SquaredCost).unwrap();
        let lockstep = cdtw_distance(&template, &inst, 0, SquaredCost).unwrap();
        assert!(
            within < lockstep * 0.25,
            "warping should recover most of the distortion: {within} vs {lockstep}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = SeededRng::new(1);
        assert!(monotone_time_map(0, 1.0, &mut rng).is_err());
        assert!(monotone_time_map(10, -1.0, &mut rng).is_err());
        assert!(warped_instance(&[], 1.0, 0.0, 0.0, &mut rng).is_err());
    }
}
