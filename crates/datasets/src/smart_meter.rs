//! Smart-meter-style appliance state traces: piecewise-constant series
//! with a *controllable* compression ratio, the substrate of the `rle`
//! repro experiment.
//!
//! Utility smart meters and appliance submeters report quantized power
//! states that hold for minutes at a time — long runs of identical
//! readings punctuated by switching events. That shape is exactly what
//! the run-length-encoded DTW backend ([`tsdtw_core::rle`]) exploits:
//! its work scales with run boundaries, not samples. These generators
//! make the ratio `runs / points` a first-class parameter so the `rle`
//! experiment can sweep it and locate the crossover against banded
//! `cDTW`.
//!
//! Two guarantees matter for the differential gates:
//!
//! * **Exact run counts** — a trace requested with `k` runs has exactly
//!   `k` bitwise-distinct runs (adjacent runs always differ), so the
//!   achieved compression ratio is `k / n`, not an approximation.
//! * **Dyadic levels** — every sample is a multiple of `0.25`, so DTW
//!   accumulation is exact in `f64` and the RLE kernel's distances are
//!   bitwise equal to the dense kernels' (the guarantee class
//!   `tests/rle_equivalence.rs` locks).

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// Spacing of the quantized power levels. A negative power of two, so
/// every level (and every squared/absolute difference of levels) is
/// exactly representable and DTW sums of them are exact in `f64`.
pub const LEVEL_STEP: f64 = 0.25;

/// One piecewise-constant state trace with exactly `runs` runs.
///
/// The `n` samples are partitioned into `runs` maximal segments of
/// identical value; each segment's level is drawn from `levels`
/// distinct dyadic values (`0, 0.25, …`), never repeating the previous
/// segment's level. Requires `1 <= runs <= n` and `levels >= 2`.
pub fn state_trace_with_runs(n: usize, runs: usize, levels: usize, seed: u64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::EmptyInput { which: "n" });
    }
    if runs == 0 || runs > n {
        return Err(Error::InvalidParameter {
            name: "runs",
            reason: format!("need 1 <= runs <= n = {n}, got {runs}"),
        });
    }
    if levels < 2 {
        return Err(Error::InvalidParameter {
            name: "levels",
            reason: format!("need at least 2 distinct levels, got {levels}"),
        });
    }
    let mut rng = SeededRng::new(seed);

    // Random composition of n into `runs` positive parts: start every
    // run at length 1 and scatter the remaining samples uniformly.
    let mut lens = vec![1usize; runs];
    for _ in 0..n - runs {
        let i = rng.index(0, runs);
        lens[i] += 1;
    }

    // Levels: uniform over the palette, excluding the previous run's
    // level so adjacent runs are always bitwise distinct.
    let mut out = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    for &len in &lens {
        let level = if prev == usize::MAX {
            rng.index(0, levels)
        } else {
            let mut l = rng.index(0, levels - 1);
            if l >= prev {
                l += 1;
            }
            l
        };
        prev = level;
        let value = level as f64 * LEVEL_STEP;
        out.extend(std::iter::repeat_n(value, len));
    }
    Ok(out)
}

/// [`state_trace_with_runs`] parameterized by a target compression
/// ratio `runs / n` in `(0, 1]`; the run count is `⌈ratio · n⌉` clamped
/// to `[1, n]`, so the achieved ratio never *exceeds* a dispatch
/// threshold the caller is aiming at from below.
pub fn state_trace(n: usize, ratio: f64, levels: usize, seed: u64) -> Result<Vec<f64>> {
    if !(ratio > 0.0 && ratio <= 1.0) {
        return Err(Error::InvalidParameter {
            name: "ratio",
            reason: format!("compression ratio must be in (0, 1], got {ratio}"),
        });
    }
    let runs = ((ratio * n as f64).ceil() as usize).clamp(1, n.max(1));
    state_trace_with_runs(n, runs, levels, seed)
}

/// A collection of independent traces sharing one shape — the
/// population the `rle` experiment's all-pairs sweep runs over.
pub fn state_traces(
    count: usize,
    n: usize,
    ratio: f64,
    levels: usize,
    seed: u64,
) -> Result<Vec<Vec<f64>>> {
    if count == 0 {
        return Err(Error::EmptyInput { which: "count" });
    }
    let mut rng = SeededRng::new(seed);
    (0..count)
        .map(|_| state_trace(n, ratio, levels, rng.child_seed()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::rle::{auto_picks_rle, count_runs};

    #[test]
    fn run_count_is_exact_and_deterministic() {
        for (n, runs) in [(1usize, 1usize), (10, 1), (100, 7), (500, 50), (64, 64)] {
            let a = state_trace_with_runs(n, runs, 8, 42).unwrap();
            let b = state_trace_with_runs(n, runs, 8, 42).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.len(), n);
            assert_eq!(count_runs(&a), runs, "n={n} runs={runs}");
        }
    }

    #[test]
    fn levels_are_dyadic_multiples_of_the_step() {
        let t = state_trace_with_runs(200, 20, 6, 7).unwrap();
        for &v in &t {
            let scaled = v / LEVEL_STEP;
            assert_eq!(scaled, scaled.trunc(), "non-dyadic sample {v}");
            assert!((0.0..=5.0).contains(&scaled));
        }
    }

    #[test]
    fn ratio_form_hits_the_requested_compression() {
        let t = state_trace(400, 0.05, 8, 3).unwrap();
        assert_eq!(count_runs(&t), 20); // ceil(0.05 * 400)
        let u = state_trace(400, 0.05, 8, 4).unwrap();
        // A 5% pair sits well under the 10% auto-dispatch threshold.
        assert!(auto_picks_rle(&t, &u));
        // Tiny n still yields a valid (single-run) trace.
        assert_eq!(count_runs(&state_trace(3, 0.01, 4, 5).unwrap()), 1);
    }

    #[test]
    fn collections_are_deterministic_and_distinct() {
        let a = state_traces(4, 256, 0.1, 8, 11).unwrap();
        let b = state_traces(4, 256, 0.1, 8, 11).unwrap();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(state_trace_with_runs(0, 1, 4, 1).is_err());
        assert!(state_trace_with_runs(10, 0, 4, 1).is_err());
        assert!(state_trace_with_runs(10, 11, 4, 1).is_err());
        assert!(state_trace_with_runs(10, 2, 1, 1).is_err());
        assert!(state_trace(100, 0.0, 4, 1).is_err());
        assert!(state_trace(100, 1.5, 4, 1).is_err());
        assert!(state_trace(100, f64::NAN, 4, 1).is_err());
        assert!(state_traces(0, 100, 0.1, 4, 1).is_err());
    }

    #[test]
    fn rle_distance_matches_dense_bitwise_on_traces() {
        use tsdtw_core::cost::SquaredCost;
        use tsdtw_core::dtw::full::dtw_distance_kernel;
        use tsdtw_core::rle::dtw_distance_rle;
        use tsdtw_core::Kernel;
        let x = state_trace(300, 0.04, 8, 21).unwrap();
        let y = state_trace(300, 0.04, 8, 22).unwrap();
        let dense = dtw_distance_kernel(&x, &y, SquaredCost, Kernel::Segmented).unwrap();
        let rle = dtw_distance_rle(&x, &y, SquaredCost, &mut tsdtw_core::obs::NoMeter).unwrap();
        assert_eq!(dense.to_bits(), rle.to_bits());
    }
}
