//! Synthetic electrocardiogram traces.
//!
//! The paper's Case D discussion leans on cardiology: ECGs are recorded at
//! up to 25 kHz but ~250 Hz suffices, a heartbeat is 120–200 samples, and
//! "it is never meaningful to compare ninety-eight heartbeats to
//! one-hundred and three heartbeats" — beat-level comparison (Case A) is
//! the right granularity. This generator produces beats and rhythm strips
//! so examples and tests can exercise exactly that argument: individual
//! beats compare well under small-band cDTW, while whole-minute strips
//! with different beat counts produce meaningless alignments.

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// Sampling rate of the generated traces (Hz) — the clinically sufficient
/// rate cited by the paper.
pub const HZ: usize = 250;

/// One stylized PQRST beat of `len` samples with mild morphology jitter.
///
/// The waveform is a sum of localized bumps: P wave, QRS complex (sharp
/// down-up-down), and T wave, at the standard relative offsets.
pub fn beat(len: usize, rng: &mut SeededRng) -> Result<Vec<f64>> {
    if len < 40 {
        return Err(Error::InvalidParameter {
            name: "len",
            reason: format!("a beat needs at least 40 samples, got {len}"),
        });
    }
    // (center fraction, width fraction, amplitude) of each wave component.
    let jit = |rng: &mut SeededRng, v: f64, rel: f64| v * (1.0 + rng.uniform_in(-rel, rel));
    let comps = [
        (0.18, 0.035, jit(rng, 0.18, 0.15)),  // P
        (0.395, 0.016, jit(rng, -0.28, 0.1)), // Q
        (0.42, 0.018, jit(rng, 1.55, 0.08)),  // R
        (0.45, 0.016, jit(rng, -0.35, 0.1)),  // S
        (0.70, 0.060, jit(rng, 0.38, 0.15)),  // T
    ];
    Ok((0..len)
        .map(|i| {
            let x = i as f64 / len as f64;
            let mut v = rng.normal(0.0, 0.012);
            for &(c, w, a) in &comps {
                let z = (x - c) / w;
                if z.abs() < 6.0 {
                    v += a * (-0.5 * z * z).exp();
                }
            }
            v
        })
        .collect())
}

/// A batch of beats of equal length (Case A's unit of comparison).
pub fn beats(count: usize, len: usize, seed: u64) -> Result<Vec<Vec<f64>>> {
    if count == 0 {
        return Err(Error::EmptyInput { which: "count" });
    }
    let mut rng = SeededRng::new(seed);
    (0..count).map(|_| beat(len, &mut rng)).collect()
}

/// A rhythm strip: `n_beats` beats concatenated with per-beat length
/// variation of ±`rr_jitter` (fractional R-R variability), at 250 Hz.
///
/// Two strips with different beat counts are exactly the paper's
/// "ninety-eight vs one-hundred-and-three heartbeats" situation.
pub fn rhythm_strip(
    n_beats: usize,
    beat_len: usize,
    rr_jitter: f64,
    seed: u64,
) -> Result<Vec<f64>> {
    if n_beats == 0 {
        return Err(Error::EmptyInput { which: "n_beats" });
    }
    if !(0.0..0.5).contains(&rr_jitter) {
        return Err(Error::InvalidParameter {
            name: "rr_jitter",
            reason: format!("R-R jitter must be in [0, 0.5), got {rr_jitter}"),
        });
    }
    let mut rng = SeededRng::new(seed);
    let mut out = Vec::with_capacity(n_beats * beat_len);
    for _ in 0..n_beats {
        let this_len = ((beat_len as f64) * (1.0 + rng.uniform_in(-rr_jitter, rr_jitter.max(1e-9))))
            .round()
            .max(40.0) as usize;
        out.extend(beat(this_len, &mut rng)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::distance::{cdtw, sq_euclidean};

    #[test]
    fn beat_has_dominant_r_peak() {
        let mut rng = SeededRng::new(1);
        let b = beat(160, &mut rng).unwrap();
        let (argmax, max) =
            b.iter().enumerate().fold(
                (0, f64::NEG_INFINITY),
                |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc },
            );
        assert!(max > 1.0, "R peak amplitude {max}");
        let frac = argmax as f64 / b.len() as f64;
        assert!((0.35..0.5).contains(&frac), "R peak at fraction {frac}");
    }

    #[test]
    fn beats_are_similar_under_small_band_cdtw() {
        let bs = beats(6, 160, 2).unwrap();
        for i in 1..bs.len() {
            let warped = cdtw(&bs[0], &bs[i], 5.0).unwrap();
            let lockstep = sq_euclidean(&bs[0], &bs[i]).unwrap();
            assert!(warped <= lockstep + 1e-12);
            assert!(warped < 1.0, "beats should align closely: {warped}");
        }
    }

    #[test]
    fn rhythm_strip_concatenates_with_jitter() {
        let s = rhythm_strip(10, 160, 0.1, 3).unwrap();
        // Total length within jitter bounds.
        assert!(
            s.len() >= 10 * 144 && s.len() <= 10 * 176,
            "len {}",
            s.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(beats(3, 120, 7).unwrap(), beats(3, 120, 7).unwrap());
        assert_eq!(
            rhythm_strip(4, 120, 0.05, 9).unwrap(),
            rhythm_strip(4, 120, 0.05, 9).unwrap()
        );
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut rng = SeededRng::new(1);
        assert!(beat(10, &mut rng).is_err());
        assert!(beats(0, 120, 1).is_err());
        assert!(rhythm_strip(0, 120, 0.1, 1).is_err());
        assert!(rhythm_strip(5, 120, 0.9, 1).is_err());
    }
}
