//! UWave-like gesture data — the substrate for the paper's Fig. 1 and
//! Appendix B experiments.
//!
//! The real `UWaveGestureLibraryAll` dataset concatenates the x/y/z
//! accelerometer channels of eight gesture vocabulary items into series of
//! length 945 (8 classes, 896 training exemplars). We have no archive
//! files, so this generator builds structurally equivalent data: each class
//! has a fixed three-segment template of band-limited oscillations
//! (mimicking the concatenated-axes structure), and each exemplar is the
//! class template under a bounded random time warp, amplitude jitter and
//! noise (see `warp`). Timing of DTW/FastDTW does not depend on the values
//! at all; the class structure matters only for the accuracy half of the
//! story, which bounded-warp templates preserve: a small warping window
//! aligns within-class variation, while unconstrained warping lets classes
//! bleed into each other (Ratanamahatana's observation).

use crate::rng::SeededRng;
use crate::types::LabeledDataset;
use crate::warp::warped_instance;
use tsdtw_core::error::{Error, Result};

/// Parameters of the gesture generator.
#[derive(Debug, Clone, Copy)]
pub struct GestureConfig {
    /// Series length (the real dataset uses 945).
    pub length: usize,
    /// Number of gesture classes (the real dataset has 8).
    pub n_classes: usize,
    /// Exemplars per class.
    pub per_class: usize,
    /// Maximum time-warp displacement, in samples. The real dataset's
    /// optimal window is w = 4 % ⇒ about 38 samples at N = 945.
    pub max_shift: f64,
    /// Additive Gaussian noise standard deviation.
    pub noise_std: f64,
    /// Relative amplitude jitter.
    pub amp_jitter: f64,
}

impl Default for GestureConfig {
    fn default() -> Self {
        GestureConfig {
            length: 945,
            n_classes: 8,
            per_class: 112, // 8 × 112 = 896, the paper's training size
            max_shift: 38.0,
            noise_std: 0.08,
            amp_jitter: 0.1,
        }
    }
}

/// A class template: three concatenated band-limited oscillation segments,
/// echoing the x/y/z-axis concatenation of the real dataset.
fn class_template(length: usize, class: usize, rng: &mut SeededRng) -> Vec<f64> {
    let seg = length / 3;
    let mut out = Vec::with_capacity(length);
    for axis in 0..3 {
        let this_len = if axis == 2 { length - 2 * seg } else { seg };
        // Class- and axis-specific frequency mix.
        let f1 = 1.5 + class as f64 * 0.7 + axis as f64 * 0.31;
        let f2 = 3.1 + class as f64 * 0.9 + axis as f64 * 0.57;
        let a1 = rng.uniform_in(0.7, 1.3);
        let a2 = rng.uniform_in(0.2, 0.6);
        let p1 = rng.uniform_in(0.0, std::f64::consts::TAU);
        let p2 = rng.uniform_in(0.0, std::f64::consts::TAU);
        for i in 0..this_len {
            let x = i as f64 / this_len as f64 * std::f64::consts::TAU;
            out.push(a1 * (f1 * x + p1).sin() + a2 * (f2 * x + p2).sin());
        }
    }
    out
}

/// Generates a UWave-like labeled dataset. Exemplars are interleaved by
/// class (`label = i % n_classes`) so deterministic splits stay balanced.
pub fn uwave_like(config: &GestureConfig, seed: u64) -> Result<LabeledDataset> {
    if config.length < 9 {
        return Err(Error::InvalidParameter {
            name: "length",
            reason: "gesture series need at least 9 samples (3 per axis)".into(),
        });
    }
    if config.n_classes == 0 || config.per_class == 0 {
        return Err(Error::InvalidParameter {
            name: "n_classes/per_class",
            reason: "must be positive".into(),
        });
    }
    let mut rng = SeededRng::new(seed);
    let templates: Vec<Vec<f64>> = (0..config.n_classes)
        .map(|c| class_template(config.length, c, &mut rng))
        .collect();

    let total = config.n_classes * config.per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let class = i % config.n_classes;
        series.push(warped_instance(
            &templates[class],
            config.max_shift,
            config.amp_jitter,
            config.noise_std,
            &mut rng,
        )?);
        labels.push(class);
    }
    LabeledDataset::new("uwave-like", series, labels)
}

/// The scaled-down labeled gesture set used by the Appendix B
/// reproduction: short exemplars (N ≈ 60–200, like video-keypoint gesture
/// traces) with moderate natural warping.
pub fn labeled_short_gestures(
    length: usize,
    n_classes: usize,
    per_class: usize,
    seed: u64,
) -> Result<LabeledDataset> {
    let config = GestureConfig {
        length,
        n_classes,
        per_class,
        max_shift: length as f64 * 0.08,
        noise_std: 0.15,
        amp_jitter: 0.15,
    };
    let mut d = uwave_like(&config, seed)?;
    d.name = "short-gestures".into();
    Ok(d)
}

/// Timing-sensitive gesture classes: every class has the same peak
/// *shapes* but a class-specific peak *timing pattern*, jittered only
/// slightly (small natural `W`) within a class.
///
/// This is the regime where Ratanamahatana's observation bites — "a little
/// warping is a good thing, but too much warping (can be) a bad thing":
/// unconstrained warping (and hence FastDTW, which approximates *full*
/// DTW) can slide any peak onto any peak and erases the class signal,
/// while a small exact band preserves it. The Appendix B reproduction uses
/// this generator to recover the paper's accuracy gap.
pub fn timing_sensitive_gestures(
    length: usize,
    n_classes: usize,
    per_class: usize,
    seed: u64,
) -> Result<LabeledDataset> {
    if length < 40 {
        return Err(Error::InvalidParameter {
            name: "length",
            reason: "timing-sensitive gestures need at least 40 samples".into(),
        });
    }
    if n_classes == 0 || per_class == 0 {
        return Err(Error::InvalidParameter {
            name: "n_classes/per_class",
            reason: "must be positive".into(),
        });
    }
    let mut rng = SeededRng::new(seed);
    // Each class: 3 peak centers drawn once, kept ≥ 10 samples apart.
    let n_peaks = 3;
    let margin = length / 10;
    let peak_sets: Vec<Vec<f64>> = (0..n_classes)
        .map(|_| {
            let mut centers: Vec<f64>;
            loop {
                centers = (0..n_peaks)
                    .map(|_| rng.uniform_in(margin as f64, (length - margin) as f64))
                    .collect();
                centers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                if centers.windows(2).all(|w| w[1] - w[0] >= 10.0) {
                    break;
                }
            }
            centers
        })
        .collect();

    let jitter = (length as f64 * 0.02).max(1.0); // natural W ≈ 2 %
    let width = 2.5;
    let total = n_classes * per_class;
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let class = i % n_classes;
        let centers: Vec<f64> = peak_sets[class]
            .iter()
            .map(|&c| c + rng.uniform_in(-jitter, jitter))
            .collect();
        let s: Vec<f64> = (0..length)
            .map(|t| {
                let mut v = rng.normal(0.0, 0.05);
                for &c in &centers {
                    let z = (t as f64 - c) / width;
                    if z.abs() < 6.0 {
                        v += (-0.5 * z * z).exp();
                    }
                }
                v
            })
            .collect();
        series.push(s);
        labels.push(class);
    }
    LabeledDataset::new("timing-gestures", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::dtw::banded::cdtw_distance;
    use tsdtw_core::SquaredCost;

    fn small() -> LabeledDataset {
        let config = GestureConfig {
            length: 120,
            n_classes: 4,
            per_class: 6,
            max_shift: 8.0,
            noise_std: 0.05,
            amp_jitter: 0.05,
        };
        uwave_like(&config, 42).unwrap()
    }

    #[test]
    fn shape_matches_config() {
        let d = small();
        assert_eq!(d.len(), 24);
        assert_eq!(d.series_len(), 120);
        assert_eq!(d.n_classes(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = GestureConfig::default();
        let config = GestureConfig {
            length: 60,
            per_class: 2,
            ..config
        };
        let a = uwave_like(&config, 7).unwrap();
        let b = uwave_like(&config, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn within_class_closer_than_between_class_under_banded_dtw() {
        let d = small();
        let band = 10;
        // Average within-class vs between-class distance over a few pairs.
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                let dist = cdtw_distance(&d.series[i], &d.series[j], band, SquaredCost).unwrap();
                if d.labels[i] == d.labels[j] {
                    within.push(dist);
                } else {
                    between.push(dist);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&within) < avg(&between) * 0.5,
            "classes should be separable: within {} vs between {}",
            avg(&within),
            avg(&between)
        );
    }

    #[test]
    fn default_config_matches_paper_shape() {
        let c = GestureConfig::default();
        assert_eq!(c.length, 945);
        assert_eq!(c.n_classes * c.per_class, 896);
    }

    #[test]
    fn rejects_degenerate_configs() {
        let bad = GestureConfig {
            length: 2,
            ..GestureConfig::default()
        };
        assert!(uwave_like(&bad, 1).is_err());
        let bad = GestureConfig {
            n_classes: 0,
            ..GestureConfig::default()
        };
        assert!(uwave_like(&bad, 1).is_err());
    }

    #[test]
    fn timing_classes_confuse_full_dtw_but_not_banded() {
        use tsdtw_core::dtw::full::dtw_distance;
        let d = timing_sensitive_gestures(100, 3, 4, 5).unwrap();
        // Average within/between distances under both regimes.
        let stats = |f: &dyn Fn(&[f64], &[f64]) -> f64| {
            let mut within = Vec::new();
            let mut between = Vec::new();
            for i in 0..d.len() {
                for j in (i + 1)..d.len() {
                    let v = f(&d.series[i], &d.series[j]);
                    if d.labels[i] == d.labels[j] {
                        within.push(v);
                    } else {
                        between.push(v);
                    }
                }
            }
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            avg(&between) / avg(&within)
        };
        let banded_sep = stats(&|x, y| cdtw_distance(x, y, 4, SquaredCost).unwrap());
        let full_sep = stats(&|x, y| dtw_distance(x, y, SquaredCost).unwrap());
        assert!(
            banded_sep > 2.0 * full_sep,
            "a small band must separate timing classes far better than full DTW: \
             banded ratio {banded_sep:.2}, full ratio {full_sep:.2}"
        );
    }

    #[test]
    fn timing_classes_reject_degenerate_configs() {
        assert!(timing_sensitive_gestures(20, 2, 2, 1).is_err());
        assert!(timing_sensitive_gestures(100, 0, 2, 1).is_err());
    }

    #[test]
    fn short_gesture_helper_produces_requested_shape() {
        let d = labeled_short_gestures(60, 5, 4, 3).unwrap();
        assert_eq!(d.len(), 20);
        assert_eq!(d.series_len(), 60);
        assert_eq!(d.n_classes(), 5);
    }
}
