//! # tsdtw-datasets — deterministic synthetic substrates for the Wu & Keogh
//! reproduction
//!
//! Every dataset used by the paper's evaluation, rebuilt as a seeded
//! generator (see DESIGN.md §4 for the substitution argument dataset by
//! dataset):
//!
//! * [`random_walk`] — the Fig. 4 timing substrate;
//! * [`gesture`] — UWave-like labeled gestures (Fig. 1, Appendix B);
//! * [`music`] — studio/live performance pairs (Case B, §3.2);
//! * [`power`] — dishwasher power-demand mornings (Fig. 3, Case C);
//! * [`fall`] — the early/late fall pairs of Fig. 5/6;
//! * [`adversarial`] — the PAA-inversion pair of Table 2 / Appendix A;
//! * [`cbf`] — Cylinder–Bell–Funnel, a classic labeled generator;
//! * [`two_patterns`] — Two-Patterns-style labeled generator;
//! * [`ecg`] — synthetic PQRST beats and rhythm strips (Case D's
//!   cardiology discussion);
//! * [`smart_meter`] — piecewise-constant appliance state traces with a
//!   controllable runs/points compression ratio (the `rle` experiment);
//! * [`suite`] — a 128-dataset UCR-archive-like suite (Fig. 2);
//! * [`ucr_format`] — I/O for real UCR archive files, if you have them.
//!
//! All generators take explicit `u64` seeds and are bit-for-bit
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod adversarial;
pub mod cbf;
pub mod ecg;
pub mod fall;
pub mod gesture;
pub mod music;
pub mod power;
pub mod random_walk;
pub mod rng;
pub mod seismic;
pub mod smart_meter;
pub mod suite;
pub mod two_patterns;
pub mod types;
pub mod ucr_format;
pub mod warp;

pub use rng::SeededRng;
pub use types::LabeledDataset;
