//! A 128-dataset "UCR-archive-like" suite with a controlled distribution of
//! lengths and natural warping — the substrate for reproducing the paper's
//! Fig. 2 histograms.
//!
//! Fig. 2 plots, over the 128 datasets of the UCR archive, (a) the optimal
//! 1-NN warping window `w` found by brute-force search and (b) the dataset
//! lengths. Its point is distributional: lengths are mostly below 1,000 and
//! the optimal `w` is rarely above 10 %. We mimic the archive's *inputs*
//! (lengths drawn to match the archive's published length distribution;
//! per-dataset natural warping `W` mostly small), then let the harness
//! *recompute* optimal `w` with the same brute-force LOOCV procedure the
//! archive used — the histogram emerges from the method, not from
//! hand-coded answers.

use crate::gesture::{uwave_like, GestureConfig};
use crate::rng::SeededRng;
use crate::types::LabeledDataset;
use tsdtw_core::error::Result;

/// Ground-truth metadata for one generated suite member.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The labeled dataset.
    pub data: LabeledDataset,
    /// The generator's natural warping budget, as a percentage of length —
    /// the paper's `W` (ground truth, unknown to the optimizer).
    pub natural_w_percent: f64,
}

/// Configuration of the suite generator.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Number of datasets (the archive has 128).
    pub n_datasets: usize,
    /// Exemplars per dataset (kept small so brute-force LOOCV is feasible).
    pub exemplars: usize,
    /// Scale factor on lengths (1.0 = archive-like lengths 60..=2844;
    /// smaller for quick runs).
    pub length_scale: f64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            n_datasets: 128,
            exemplars: 30,
            length_scale: 1.0,
        }
    }
}

/// Draws a length mimicking the UCR archive's distribution: most datasets
/// in the 60–600 range, a tail up to ~2,844, very few beyond 1,000.
fn draw_length(rng: &mut SeededRng, scale: f64) -> usize {
    // Log-uniform core with a heavier mass at small lengths.
    let u = rng.uniform();
    let len = if u < 0.55 {
        rng.uniform_in(60.0, 400.0)
    } else if u < 0.85 {
        rng.uniform_in(400.0, 1000.0)
    } else {
        rng.uniform_in(1000.0, 2844.0)
    };
    ((len * scale).round() as usize).max(24)
}

/// Draws a natural warping percentage mimicking the archive's optimal-w
/// distribution: mode at 0–4 %, rarely above 10 %.
fn draw_natural_w(rng: &mut SeededRng) -> f64 {
    let u = rng.uniform();
    if u < 0.35 {
        rng.uniform_in(0.0, 2.0)
    } else if u < 0.75 {
        rng.uniform_in(2.0, 6.0)
    } else if u < 0.95 {
        rng.uniform_in(6.0, 12.0)
    } else {
        rng.uniform_in(12.0, 25.0)
    }
}

/// Generates the full suite. Deterministic in `seed`.
pub fn generate_suite(config: &SuiteConfig, seed: u64) -> Result<Vec<SuiteEntry>> {
    let mut rng = SeededRng::new(seed);
    let mut out = Vec::with_capacity(config.n_datasets);
    for idx in 0..config.n_datasets {
        let length = draw_length(&mut rng, config.length_scale);
        let w = draw_natural_w(&mut rng);
        let n_classes = rng.index(2, 7);
        let per_class = (config.exemplars / n_classes).max(2);
        let gcfg = GestureConfig {
            length,
            n_classes,
            per_class,
            max_shift: w / 100.0 * length as f64,
            noise_std: rng.uniform_in(0.05, 0.25),
            amp_jitter: rng.uniform_in(0.02, 0.15),
        };
        let mut data = uwave_like(&gcfg, rng.child_seed())?;
        data.name = format!("suite-{idx:03}");
        out.push(SuiteEntry {
            data,
            natural_w_percent: w,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SuiteConfig {
        SuiteConfig {
            n_datasets: 12,
            exemplars: 8,
            length_scale: 0.15,
        }
    }

    #[test]
    fn suite_has_requested_count_and_valid_members() {
        let suite = generate_suite(&tiny_config(), 1).unwrap();
        assert_eq!(suite.len(), 12);
        for e in &suite {
            assert!(e.data.len() >= 4);
            assert!(e.data.series_len() >= 24);
            assert!((0.0..=25.0).contains(&e.natural_w_percent));
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_suite(&tiny_config(), 7).unwrap();
        let b = generate_suite(&tiny_config(), 7).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data, y.data);
            assert_eq!(x.natural_w_percent, y.natural_w_percent);
        }
    }

    #[test]
    fn length_distribution_is_archive_like() {
        let config = SuiteConfig {
            n_datasets: 128,
            exemplars: 4,
            length_scale: 1.0,
        };
        // Only lengths matter here; use a cheap generation by sampling the
        // distribution directly.
        let mut rng = SeededRng::new(3);
        let lengths: Vec<usize> = (0..config.n_datasets)
            .map(|_| draw_length(&mut rng, config.length_scale))
            .collect();
        let below_1000 = lengths.iter().filter(|&&l| l < 1000).count();
        assert!(
            below_1000 as f64 / lengths.len() as f64 > 0.7,
            "majority of lengths should be below 1,000 (paper's Fig. 2b): {below_1000}/128"
        );
        assert!(lengths.iter().all(|&l| l <= 2844));
    }

    #[test]
    fn natural_w_distribution_is_archive_like() {
        let mut rng = SeededRng::new(5);
        let ws: Vec<f64> = (0..256).map(|_| draw_natural_w(&mut rng)).collect();
        let below_10 = ws.iter().filter(|&&w| w <= 10.0).count();
        assert!(
            below_10 as f64 / ws.len() as f64 > 0.75,
            "optimal w is rarely above 10 % (paper's Fig. 2a): {below_10}/256"
        );
    }
}
