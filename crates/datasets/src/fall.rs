//! The early/late fall generator of the paper's Fig. 5 and Fig. 6.
//!
//! The thought experiment: actors wearing motion-capture suits are told to
//! "fall over anytime within `L` seconds of hearing the beep"; the data is
//! recorded at 100 Hz and never cropped, so `W ≈ 100 %`. The paper's
//! generator "creates pairs of time series of length L seconds at 100 Hz.
//! One time series has an immediate fall, then the actor is near
//! motionless for the rest of the time. For the other time series, the
//! actor is near motionless until just before L seconds are up, then he
//! falls." We implement exactly that.

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// Sampling rate of the motion capture rig, per the paper.
pub const HZ: usize = 100;

/// A pair of fall recordings: one fall at the start, one at the end.
#[derive(Debug, Clone)]
pub struct FallPair {
    /// The actor falls immediately.
    pub early: Vec<f64>,
    /// The actor falls just before the recording ends.
    pub late: Vec<f64>,
    /// Series length in samples (`L` seconds × 100 Hz).
    pub len: usize,
}

/// The stereotyped fall waveform: a sharp acceleration transient followed
/// by an impact spike and settling, about 0.6 s long at 100 Hz.
fn fall_waveform(rng: &mut SeededRng) -> Vec<f64> {
    let n = 60;
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            // Build-up, impact, ring-down.
            let impact = 3.0 * (-((t - 0.45) / 0.06).powi(2)).exp();
            let tumble = 1.2 * (std::f64::consts::TAU * 2.5 * t).sin() * (1.0 - t);
            impact + tumble + rng.normal(0.0, 0.02)
        })
        .collect()
}

/// Generates a fall pair for an `l_seconds`-long window at 100 Hz.
///
/// Both series share the same fall waveform shape (fresh noise each); the
/// rest of each series is near-motionless sensor noise. Aligning the two
/// falls requires warping across almost the whole window — `W ≈ 100 %`.
pub fn pair(l_seconds: f64, seed: u64) -> Result<FallPair> {
    if !l_seconds.is_finite() || l_seconds <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "l_seconds",
            reason: format!("duration must be positive, got {l_seconds}"),
        });
    }
    let n = (l_seconds * HZ as f64).round() as usize;
    let mut rng = SeededRng::new(seed);
    let wave_a = fall_waveform(&mut rng);
    let wave_b = fall_waveform(&mut rng);
    if n < wave_a.len() + 2 {
        return Err(Error::InvalidParameter {
            name: "l_seconds",
            reason: format!(
                "window of {n} samples cannot hold a {}-sample fall",
                wave_a.len()
            ),
        });
    }

    let still = |rng: &mut SeededRng| rng.normal(0.0, 0.015);

    let mut early = Vec::with_capacity(n);
    early.extend_from_slice(&wave_a);
    while early.len() < n {
        early.push(still(&mut rng));
    }

    let mut late = Vec::with_capacity(n);
    while late.len() < n - wave_b.len() {
        late.push(still(&mut rng));
    }
    late.extend_from_slice(&wave_b);

    Ok(FallPair {
        early,
        late,
        len: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_core::distance::{dtw, sq_euclidean};

    #[test]
    fn pair_has_expected_length() {
        let p = pair(2.0, 1).unwrap();
        assert_eq!(p.len, 200);
        assert_eq!(p.early.len(), 200);
        assert_eq!(p.late.len(), 200);
    }

    #[test]
    fn falls_are_at_opposite_ends() {
        let p = pair(4.0, 2).unwrap();
        let energy = |s: &[f64]| s.iter().map(|v| v * v).sum::<f64>();
        let q = p.len / 4;
        assert!(energy(&p.early[..q]) > 10.0 * energy(&p.early[p.len - q..]));
        assert!(energy(&p.late[p.len - q..]) > 10.0 * energy(&p.late[..q]));
    }

    #[test]
    fn unconstrained_dtw_aligns_the_falls() {
        let p = pair(3.0, 3).unwrap();
        let warped = dtw(&p.early, &p.late).unwrap();
        let lockstep = sq_euclidean(&p.early, &p.late).unwrap();
        // Full DTW can slide one fall onto the other; lock-step cannot.
        assert!(
            warped < lockstep * 0.25,
            "full warp should align falls: {warped} vs {lockstep}"
        );
    }

    #[test]
    fn deterministic() {
        let a = pair(1.0, 9).unwrap();
        let b = pair(1.0, 9).unwrap();
        assert_eq!(a.early, b.early);
        assert_eq!(a.late, b.late);
    }

    #[test]
    fn rejects_windows_too_short_for_a_fall() {
        assert!(pair(0.3, 1).is_err());
        assert!(pair(-1.0, 1).is_err());
        assert!(pair(f64::NAN, 1).is_err());
    }
}
