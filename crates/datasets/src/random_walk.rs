//! Gaussian random walks — the data of the paper's Fig. 4 experiment.
//!
//! The paper notes that "the timing for both algorithms does not depend on
//! the data itself", and uses random walks for the N = 450 all-pairs
//! timing comparison. These generators provide exactly that substrate.

use crate::rng::SeededRng;
use tsdtw_core::error::{Error, Result};

/// One standard Gaussian random walk of length `n` (unit steps).
pub fn random_walk(n: usize, seed: u64) -> Result<Vec<f64>> {
    random_walk_with(n, 1.0, seed)
}

/// A Gaussian random walk with the given step standard deviation.
pub fn random_walk_with(n: usize, step_std: f64, seed: u64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::EmptyInput { which: "n" });
    }
    if !step_std.is_finite() || step_std < 0.0 {
        return Err(Error::InvalidParameter {
            name: "step_std",
            reason: format!("must be finite and non-negative, got {step_std}"),
        });
    }
    let mut rng = SeededRng::new(seed);
    let mut v = 0.0;
    Ok((0..n)
        .map(|_| {
            v += rng.normal(0.0, step_std);
            v
        })
        .collect())
}

/// A batch of independent random walks, seeded derministically from `seed`.
pub fn random_walks(count: usize, n: usize, seed: u64) -> Result<Vec<Vec<f64>>> {
    if count == 0 {
        return Err(Error::EmptyInput { which: "count" });
    }
    let mut rng = SeededRng::new(seed);
    (0..count)
        .map(|_| random_walk(n, rng.child_seed()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_determinism() {
        let a = random_walk(100, 7).unwrap();
        let b = random_walk(100, 7).unwrap();
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_walk(50, 1).unwrap(), random_walk(50, 2).unwrap());
    }

    #[test]
    fn batch_members_are_independent() {
        let batch = random_walks(5, 64, 3).unwrap();
        assert_eq!(batch.len(), 5);
        assert_ne!(batch[0], batch[1]);
        // Deterministic as a batch.
        let again = random_walks(5, 64, 3).unwrap();
        assert_eq!(batch, again);
    }

    #[test]
    fn steps_have_plausible_scale() {
        let w = random_walk_with(10_000, 2.0, 9).unwrap();
        let steps: Vec<f64> = w.windows(2).map(|p| p[1] - p[0]).collect();
        let var = steps.iter().map(|s| s * s).sum::<f64>() / steps.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(random_walk(0, 1).is_err());
        assert!(random_walk_with(10, -1.0, 1).is_err());
        assert!(random_walks(0, 10, 1).is_err());
    }
}
