//! A Two-Patterns-style labeled generator (Geurts 2001).
//!
//! Four classes defined by the *order and polarity* of two transient
//! events (up-up, up-down, down-up, down-down) at random positions in a
//! noisy background. Classification requires invariance to event timing —
//! precisely the "a little warping is a good thing" regime — making this
//! the second classic classification substrate next to CBF.

use crate::rng::SeededRng;
use crate::types::LabeledDataset;
use tsdtw_core::error::{Error, Result};

/// The four classes: polarity of the first and second event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPatternsClass {
    /// up then up
    UpUp = 0,
    /// up then down
    UpDown = 1,
    /// down then up
    DownUp = 2,
    /// down then down
    DownDown = 3,
}

impl TwoPatternsClass {
    fn polarities(self) -> (f64, f64) {
        match self {
            TwoPatternsClass::UpUp => (1.0, 1.0),
            TwoPatternsClass::UpDown => (1.0, -1.0),
            TwoPatternsClass::DownUp => (-1.0, 1.0),
            TwoPatternsClass::DownDown => (-1.0, -1.0),
        }
    }
}

/// A step-like transient: ramps from 0 to `polarity` over `width` samples
/// and back, centered at `center`.
fn add_event(s: &mut [f64], center: usize, width: usize, polarity: f64) {
    let half = width / 2;
    let start = center.saturating_sub(half);
    for k in 0..width {
        let idx = start + k;
        if idx < s.len() {
            // Triangular pulse.
            let t = k as f64 / width as f64;
            let amp = if t < 0.5 { 2.0 * t } else { 2.0 * (1.0 - t) };
            s[idx] += 5.0 * polarity * amp;
        }
    }
}

/// One instance of length `n` of the given class.
pub fn instance(n: usize, class: TwoPatternsClass, rng: &mut SeededRng) -> Result<Vec<f64>> {
    if n < 64 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: format!("Two-Patterns needs at least 64 samples, got {n}"),
        });
    }
    let mut s: Vec<f64> = (0..n).map(|_| rng.gaussian() * 0.4).collect();
    let width = n / 8;
    // First event in the first half, second in the second half; positions
    // jitter freely — the class signal is order + polarity, not timing.
    let c1 = rng.index(width, n / 2 - width / 2);
    let c2 = rng.index(n / 2 + width / 2, n - width);
    let (p1, p2) = class.polarities();
    add_event(&mut s, c1, width, p1);
    add_event(&mut s, c2, width, p2);
    Ok(s)
}

/// A balanced four-class dataset, interleaved by class.
pub fn dataset(n: usize, per_class: usize, seed: u64) -> Result<LabeledDataset> {
    if per_class == 0 {
        return Err(Error::EmptyInput { which: "per_class" });
    }
    let classes = [
        TwoPatternsClass::UpUp,
        TwoPatternsClass::UpDown,
        TwoPatternsClass::DownUp,
        TwoPatternsClass::DownDown,
    ];
    let mut rng = SeededRng::new(seed);
    let mut series = Vec::with_capacity(4 * per_class);
    let mut labels = Vec::with_capacity(4 * per_class);
    for i in 0..4 * per_class {
        let class = classes[i % 4];
        series.push(instance(n, class, &mut rng)?);
        labels.push(class as usize);
    }
    LabeledDataset::new("two-patterns", series, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LabeledDataset;

    #[test]
    fn dataset_shape() {
        let d = dataset(128, 5, 1).unwrap();
        assert_eq!(d.len(), 20);
        assert_eq!(d.n_classes(), 4);
        assert_eq!(d.series_len(), 128);
    }

    #[test]
    fn deterministic() {
        assert_eq!(dataset(96, 3, 5).unwrap(), dataset(96, 3, 5).unwrap());
    }

    #[test]
    fn polarity_structure_is_present() {
        let mut rng = SeededRng::new(2);
        let up_up = instance(256, TwoPatternsClass::UpUp, &mut rng).unwrap();
        let down_down = instance(256, TwoPatternsClass::DownDown, &mut rng).unwrap();
        let max = |s: &[f64]| s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = |s: &[f64]| s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max(&up_up) > 3.0);
        assert!(min(&down_down) < -3.0);
    }

    #[test]
    fn warping_separates_classes_better_than_lockstep() {
        // 1-NN style check: within-class DTW distances (which can align
        // the jittered events) vs lock-step distances.
        use tsdtw_core::distance::{cdtw, sq_euclidean};
        let d: LabeledDataset = dataset(128, 4, 7).unwrap();
        let mut dtw_within = Vec::new();
        let mut euc_within = Vec::new();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                if d.labels[i] == d.labels[j] {
                    dtw_within.push(cdtw(&d.series[i], &d.series[j], 30.0).unwrap());
                    euc_within.push(sq_euclidean(&d.series[i], &d.series[j]).unwrap());
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&dtw_within) < avg(&euc_within) * 0.6,
            "warping should absorb event-position jitter: {} vs {}",
            avg(&dtw_within),
            avg(&euc_within)
        );
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut rng = SeededRng::new(1);
        assert!(instance(32, TwoPatternsClass::UpUp, &mut rng).is_err());
        assert!(dataset(128, 0, 1).is_err());
    }
}
