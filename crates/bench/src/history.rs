//! The perf-trajectory ledger: append-only history of snapshot records.
//!
//! Every `repro` run appends the snapshot it just wrote to
//! `<out>/history/<experiment>.jsonl` — one compact schema-v3 snapshot
//! per line, newest last. The ledger is the longitudinal complement to
//! the pairwise `BENCH_*.json` baselines: `report diff` answers "did
//! this change regress against the pinned baseline", the ledger answers
//! "what has this experiment's cost looked like across the last N
//! revisions", which is what the noise-aware trend gate
//! (`tsdtw report trend`, [`crate::trend`]) consumes.
//!
//! JSONL because append is the only write: a crashed run leaves at
//! worst one truncated final line (detected and reported at load), and
//! two concurrent appenders interleave whole records on any POSIX
//! filesystem thanks to `O_APPEND`. Nothing ever rewrites history —
//! the file is the audit trail.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tsdtw_obs::Json;

/// Name of the ledger directory under a results root.
pub const HISTORY_DIR: &str = "history";

/// The ledger file for one experiment under `results_dir`.
pub fn ledger_path(results_dir: &Path, experiment: &str) -> PathBuf {
    results_dir
        .join(HISTORY_DIR)
        .join(format!("{experiment}.jsonl"))
}

/// Appends one snapshot record to the experiment's ledger, creating the
/// history directory and file on first use. Returns the ledger path.
pub fn append(results_dir: &Path, experiment: &str, snapshot: &Json) -> io::Result<PathBuf> {
    let path = ledger_path(results_dir, experiment);
    std::fs::create_dir_all(path.parent().expect("ledger path has a parent"))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    let mut line = snapshot.to_string_compact();
    line.push('\n');
    f.write_all(line.as_bytes())?;
    Ok(path)
}

/// Loads an experiment's full history, oldest first.
///
/// A malformed line is an error naming the line number — the ledger is
/// append-only, so a bad line means truncation (crashed writer) or
/// hand-editing, both worth surfacing rather than silently skipping.
/// A missing ledger file loads as an empty history.
pub fn load(results_dir: &Path, experiment: &str) -> io::Result<Vec<Json>> {
    let path = ledger_path(results_dir, experiment);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: malformed ledger line: {e}", path.display(), i + 1),
            )
        })?;
        records.push(rec);
    }
    Ok(records)
}

/// Experiments with a ledger under `results_dir`, sorted by name.
/// Empty (not an error) when no history directory exists yet.
pub fn experiments(results_dir: &Path) -> io::Result<Vec<String>> {
    let dir = results_dir.join(HISTORY_DIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension()? == "jsonl" {
                Some(path.file_stem()?.to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdtw_obs::json_obj;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdtw-history-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let dir = tmp("roundtrip");
        for i in 0..3 {
            let rec = json_obj! { "schema" => 3, "experiment" => "cells", "seq" => i };
            append(&dir, "cells", &rec).unwrap();
        }
        let recs = load(&dir, "cells").unwrap();
        assert_eq!(recs.len(), 3);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r["seq"].as_i64(), Some(i as i64), "append order preserved");
        }
        assert_eq!(experiments(&dir).unwrap(), vec!["cells".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_ledger_is_empty_not_an_error() {
        let dir = tmp("missing");
        assert!(load(&dir, "nope").unwrap().is_empty());
        assert!(experiments(&dir).unwrap().is_empty());
    }

    #[test]
    fn malformed_line_is_reported_with_its_number() {
        let dir = tmp("malformed");
        append(&dir, "cells", &json_obj! { "ok" => 1 }).unwrap();
        // Simulate a crashed writer: a truncated trailing line.
        let path = ledger_path(&dir, "cells");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"truncated\": ");
        std::fs::write(&path, text).unwrap();
        let err = load(&dir, "cells").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":2:"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledgers_are_per_experiment_and_sorted() {
        let dir = tmp("multi");
        append(&dir, "kernels", &json_obj! { "x" => 1 }).unwrap();
        append(&dir, "cells", &json_obj! { "x" => 2 }).unwrap();
        assert_eq!(
            experiments(&dir).unwrap(),
            vec!["cells".to_string(), "kernels".to_string()]
        );
        assert_eq!(load(&dir, "cells").unwrap().len(), 1);
        assert_eq!(load(&dir, "kernels").unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
