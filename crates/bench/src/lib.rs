//! # tsdtw-bench — the reproduction harness
//!
//! One module per figure/table of Wu & Keogh (ICDE 2021); each exposes
//! `run(&Scale) -> Report`. The `repro` binary drives them and writes both
//! human-readable output and JSON records (under `results/`) so
//! EXPERIMENTS.md is regenerable.
//!
//! Timing discipline: both algorithms always run in the same process, same
//! thread count, same data, interleaved — the paper's "same language, same
//! hardware, performing the same task". Absolute numbers will differ from
//! the paper's 2020 hardware; the claims under test are *shape* claims
//! (who is faster, by what factor, where crossovers fall).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod history;
pub mod report;
pub mod snapshot;
pub mod timing;
pub mod trend;

pub use report::{Report, Scale};
