//! Small wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Simple summary of repeated timings.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Number of repetitions measured.
    pub reps: usize,
    /// Mean seconds per repetition.
    pub mean_s: f64,
    /// Fastest repetition, seconds.
    pub min_s: f64,
    /// Median seconds per repetition (robust to one-off stalls).
    pub median_s: f64,
    /// 95th-percentile seconds per repetition (nearest-rank).
    pub p95_s: f64,
}

tsdtw_obs::impl_to_json!(Timing {
    reps,
    mean_s,
    min_s,
    median_s,
    p95_s
});

impl Timing {
    /// Mean time scaled to milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_s * 1e3
    }
}

/// Times `f` once.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Times `reps` calls of `f`, reporting mean, min, median, and p95. The
/// closure's result should be fed through [`std::hint::black_box`] by the
/// caller to prevent the optimizer from deleting the work.
pub fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> Timing {
    assert!(reps > 0, "need at least one repetition");
    let mut samples: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        samples.push(time_once(&mut f).as_secs_f64());
    }
    summarize(&samples)
}

/// Builds a [`Timing`] from raw per-repetition samples in seconds.
pub fn summarize(samples: &[f64]) -> Timing {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len();
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_s = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) * 0.5
    };
    // Nearest-rank p95: the smallest sample with at least 95 % of the
    // samples at or below it.
    let rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
    Timing {
        reps: n,
        mean_s: sorted.iter().sum::<f64>() / n as f64,
        min_s: sorted[0],
        median_s,
        p95_s: sorted[rank - 1],
    }
}

/// Formats a duration in adaptive units for report lines.
pub fn human(seconds: f64) -> String {
    if seconds >= 86_400.0 * 365.0 {
        format!("{:.1} years", seconds / (86_400.0 * 365.0))
    } else if seconds >= 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else if seconds >= 3600.0 {
        format!("{:.2} h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.2} min", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{:.2} s", seconds)
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_reps_reports_sane_stats() {
        let t = time_reps(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(t.reps, 5);
        assert!(t.min_s <= t.mean_s);
        assert!(t.min_s <= t.median_s);
        assert!(t.median_s <= t.p95_s);
        assert!(t.mean_s >= 0.0);
    }

    #[test]
    fn summarize_odd_and_even_medians() {
        let t = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(t.median_s, 2.0);
        assert_eq!(t.min_s, 1.0);
        assert_eq!(t.mean_s, 2.0);
        let t = summarize(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.median_s, 2.5);
    }

    #[test]
    fn summarize_p95_nearest_rank() {
        // 20 samples: rank ceil(0.95*20)=19 → the 19th smallest.
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert_eq!(summarize(&samples).p95_s, 19.0);
        // A single sample is its own p95.
        assert_eq!(summarize(&[7.0]).p95_s, 7.0);
        // 100 samples → the 95th.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(summarize(&samples).p95_s, 95.0);
    }

    #[test]
    fn timing_serializes_all_fields() {
        use tsdtw_obs::ToJson;
        let j = summarize(&[1.0, 2.0]).to_json();
        for key in ["reps", "mean_s", "min_s", "median_s", "p95_s"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn human_units() {
        assert!(human(2.0e-6).contains("µs"));
        assert!(human(2.0e-3).contains("ms"));
        assert!(human(2.0).contains('s'));
        assert!(human(120.0).contains("min"));
        assert!(human(7200.0).contains('h'));
        assert!(human(2.0 * 86_400.0).contains("days"));
        assert!(human(3.0e8).contains("years"));
    }
}
