//! Small wall-clock measurement helpers.
//!
//! Repeated timings feed a log-linear
//! [`LatencyHist`] and report the full
//! p50/p90/p99/max profile from the bucketed samples (≤ 3.2 % relative
//! bucket error; the max is exact) instead of the median+p95-only
//! summary of earlier revisions. The `median_s`/`p95_s` fields are kept
//! for report continuity and are computed exactly from the retained
//! samples; both follow the nearest-rank convention pinned by
//! [`tsdtw_obs::nearest_rank`] (see its docs for the `n = 1, 2` edge
//! cases).

use std::time::{Duration, Instant};
use tsdtw_obs::{nearest_rank, LatencyHist};

/// Simple summary of repeated timings.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Number of repetitions measured.
    pub reps: usize,
    /// Mean seconds per repetition.
    pub mean_s: f64,
    /// Fastest repetition, seconds.
    pub min_s: f64,
    /// Median seconds per repetition (exact; averages the middle pair
    /// for even `reps` — the one place the averaging convention
    /// survives, for continuity with earlier reports).
    pub median_s: f64,
    /// 95th-percentile seconds per repetition (exact nearest-rank).
    pub p95_s: f64,
    /// Median from the bucketed histogram (nearest-rank).
    pub p50_s: f64,
    /// 90th percentile from the bucketed histogram (nearest-rank).
    pub p90_s: f64,
    /// 99th percentile from the bucketed histogram (nearest-rank).
    pub p99_s: f64,
    /// Slowest repetition, seconds (exact).
    pub max_s: f64,
}

tsdtw_obs::impl_to_json!(Timing {
    reps,
    mean_s,
    min_s,
    median_s,
    p95_s,
    p50_s,
    p90_s,
    p99_s,
    max_s
});

impl Timing {
    /// Mean time scaled to milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_s * 1e3
    }
}

/// Times `f` once.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Times `reps` calls of `f`, reporting the full latency profile. The
/// closure's result should be fed through [`std::hint::black_box`] by the
/// caller to prevent the optimizer from deleting the work.
pub fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> Timing {
    assert!(reps > 0, "need at least one repetition");
    let mut samples: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        samples.push(time_once(&mut f).as_secs_f64());
    }
    summarize(&samples)
}

/// Builds the histogram behind [`summarize`]; callers that want the
/// raw bucket distribution (e.g. the perf-trajectory snapshots) use
/// this directly.
pub fn histogram(samples: &[f64]) -> LatencyHist {
    let mut h = LatencyHist::new();
    for &s in samples {
        h.record_s(s);
    }
    h
}

/// Builds a [`Timing`] from raw per-repetition samples in seconds.
pub fn summarize(samples: &[f64]) -> Timing {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len();
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_s = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) * 0.5
    };
    let hist = histogram(&sorted);
    Timing {
        reps: n,
        mean_s: sorted.iter().sum::<f64>() / n as f64,
        min_s: sorted[0],
        median_s,
        p95_s: sorted[nearest_rank(n, 0.95) - 1],
        p50_s: hist.percentile_s(0.50),
        p90_s: hist.percentile_s(0.90),
        p99_s: hist.percentile_s(0.99),
        max_s: sorted[n - 1],
    }
}

/// Formats a duration in adaptive units for report lines.
pub fn human(seconds: f64) -> String {
    if seconds >= 86_400.0 * 365.0 {
        format!("{:.1} years", seconds / (86_400.0 * 365.0))
    } else if seconds >= 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else if seconds >= 3600.0 {
        format!("{:.2} h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.2} min", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{:.2} s", seconds)
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_reps_reports_sane_stats() {
        let t = time_reps(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(t.reps, 5);
        assert!(t.min_s <= t.mean_s);
        assert!(t.min_s <= t.median_s);
        assert!(t.median_s <= t.p95_s);
        assert!(t.p95_s <= t.max_s);
        assert!(t.p50_s <= t.p99_s);
        assert!(t.mean_s >= 0.0);
    }

    #[test]
    fn summarize_odd_and_even_medians() {
        let t = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(t.median_s, 2.0);
        assert_eq!(t.min_s, 1.0);
        assert_eq!(t.mean_s, 2.0);
        assert_eq!(t.max_s, 3.0);
        let t = summarize(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.median_s, 2.5);
        assert_eq!(t.max_s, 4.0);
    }

    #[test]
    fn summarize_p95_nearest_rank() {
        // 20 samples: rank ceil(0.95*20)=19 → the 19th smallest.
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert_eq!(summarize(&samples).p95_s, 19.0);
        // A single sample is its own p95.
        assert_eq!(summarize(&[7.0]).p95_s, 7.0);
        // 100 samples → the 95th.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(summarize(&samples).p95_s, 95.0);
    }

    #[test]
    fn tiny_sample_counts_pin_the_nearest_rank_convention() {
        // n = 1: every percentile is the sample itself; max == min.
        let t = summarize(&[7.0]);
        assert_eq!(t.p95_s, 7.0);
        assert_eq!(t.max_s, 7.0);
        assert_eq!(t.p50_s, 7.0, "top bucket resolves to the exact max");
        assert_eq!(t.p99_s, 7.0);
        // n = 2: nearest-rank puts p ≤ 0.5 on the smaller sample and
        // p > 0.5 on the larger; the exact median still averages.
        let t = summarize(&[1.0, 3.0]);
        assert_eq!(t.median_s, 2.0, "median keeps the averaging convention");
        assert_eq!(t.p95_s, 3.0, "p95 of two samples is the larger one");
        assert_eq!(t.p99_s, 3.0);
        assert_eq!(t.max_s, 3.0);
        assert!(
            (t.p50_s - 1.0).abs() / 1.0 < 0.04,
            "p50 of two samples is the smaller one (bucketed): {}",
            t.p50_s
        );
    }

    #[test]
    fn bucketed_percentiles_track_exact_ones_within_bucket_error() {
        let samples: Vec<f64> = (1..=200).map(|i| i as f64 * 1e-4).collect();
        let t = summarize(&samples);
        for (approx, exact) in [(t.p50_s, 100e-4), (t.p90_s, 180e-4), (t.p99_s, 198e-4)] {
            assert!((approx - exact).abs() / exact < 0.04, "{approx} vs {exact}");
        }
        assert_eq!(t.max_s, 200e-4);
    }

    #[test]
    fn histogram_exposes_the_bucketed_distribution() {
        let h = histogram(&[1e-3, 1e-3, 2e-3]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_s(), 2e-3);
        assert!(!h.nonzero_buckets().is_empty());
    }

    #[test]
    fn timing_serializes_all_fields() {
        use tsdtw_obs::ToJson;
        let j = summarize(&[1.0, 2.0]).to_json();
        for key in [
            "reps", "mean_s", "min_s", "median_s", "p95_s", "p50_s", "p90_s", "p99_s", "max_s",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn human_units() {
        assert!(human(2.0e-6).contains("µs"));
        assert!(human(2.0e-3).contains("ms"));
        assert!(human(2.0).contains('s'));
        assert!(human(120.0).contains("min"));
        assert!(human(7200.0).contains('h'));
        assert!(human(2.0 * 86_400.0).contains("days"));
        assert!(human(3.0e8).contains("years"));
    }
}
