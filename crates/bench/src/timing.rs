//! Small wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Simple summary of repeated timings.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Timing {
    /// Number of repetitions measured.
    pub reps: usize,
    /// Mean seconds per repetition.
    pub mean_s: f64,
    /// Fastest repetition, seconds.
    pub min_s: f64,
}

impl Timing {
    /// Mean time scaled to milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_s * 1e3
    }
}

/// Times `f` once.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Times `reps` calls of `f`, reporting mean and min. The closure's result
/// should be fed through [`std::hint::black_box`] by the caller to prevent
/// the optimizer from deleting the work.
pub fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> Timing {
    assert!(reps > 0, "need at least one repetition");
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..reps {
        let d = time_once(&mut f);
        total += d;
        min = min.min(d);
    }
    Timing {
        reps,
        mean_s: total.as_secs_f64() / reps as f64,
        min_s: min.as_secs_f64(),
    }
}

/// Formats a duration in adaptive units for report lines.
pub fn human(seconds: f64) -> String {
    if seconds >= 86_400.0 * 365.0 {
        format!("{:.1} years", seconds / (86_400.0 * 365.0))
    } else if seconds >= 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else if seconds >= 3600.0 {
        format!("{:.2} h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.2} min", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{:.2} s", seconds)
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_reps_reports_sane_stats() {
        let t = time_reps(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(t.reps, 5);
        assert!(t.min_s <= t.mean_s);
        assert!(t.mean_s >= 0.0);
    }

    #[test]
    fn human_units() {
        assert!(human(2.0e-6).contains("µs"));
        assert!(human(2.0e-3).contains("ms"));
        assert!(human(2.0).contains('s'));
        assert!(human(120.0).contains("min"));
        assert!(human(7200.0).contains('h'));
        assert!(human(2.0 * 86_400.0).contains("days"));
        assert!(human(3.0e8).contains("years"));
    }
}
