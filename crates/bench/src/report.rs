//! Report plumbing shared by all experiments.

use serde::Serialize;
use std::path::Path;

/// How much work an experiment run should do.
///
/// Every timing experiment measures a scaled-down pair/rep count and, where
/// the paper quotes a total over a bigger population (e.g. 400,960
/// pairwise comparisons), *extrapolates linearly* — legitimate because the
/// per-comparison cost of every algorithm here is independent of which
/// pair is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment; the default for CI and iteration.
    Quick,
    /// Minutes-per-experiment; closer to the paper's populations.
    Full,
}

impl Scale {
    /// Picks between the quick and full value of a parameter.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The outcome of one experiment: printable lines plus a JSON record.
#[derive(Debug, Clone)]
pub struct Report {
    /// Stable experiment id (`fig1`, `table2`, …).
    pub id: &'static str,
    /// One-line title echoing the paper artifact.
    pub title: String,
    /// Human-readable result lines.
    pub lines: Vec<String>,
    /// Machine-readable record mirroring the lines.
    pub json: serde_json::Value,
}

impl Report {
    /// Creates a report with the JSON payload built from any serializable
    /// record.
    pub fn new<T: Serialize>(id: &'static str, title: impl Into<String>, record: &T) -> Self {
        Report {
            id,
            title: title.into(),
            lines: Vec::new(),
            json: serde_json::to_value(record).expect("records are plain data"),
        }
    }

    /// Appends a printable line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== [{}] {}\n", self.id, self.title));
        for l in &self.lines {
            out.push_str("   ");
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Writes the JSON record to `<dir>/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(
            path,
            serde_json::to_string_pretty(&self.json).expect("valid json"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 10), 1);
        assert_eq!(Scale::Full.pick(1, 10), 10);
    }

    #[test]
    fn report_renders_lines() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let mut r = Report::new("t", "title", &R { x: 3 });
        r.line("hello");
        let s = r.render();
        assert!(s.contains("[t] title"));
        assert!(s.contains("hello"));
        assert_eq!(r.json["x"], 3);
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("tsdtw-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        #[derive(Serialize)]
        struct R {
            ok: bool,
        }
        let r = Report::new("wtest", "t", &R { ok: true });
        r.write_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("wtest.json")).unwrap();
        assert!(content.contains("ok"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
