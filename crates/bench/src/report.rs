//! Report plumbing shared by all experiments.

use std::path::Path;
use tsdtw_obs::{Json, ToJson, WorkMeter};

/// How much work an experiment run should do.
///
/// Every timing experiment measures a scaled-down pair/rep count and, where
/// the paper quotes a total over a bigger population (e.g. 400,960
/// pairwise comparisons), *extrapolates linearly* — legitimate because the
/// per-comparison cost of every algorithm here is independent of which
/// pair is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment; the default for CI and iteration.
    Quick,
    /// Minutes-per-experiment; closer to the paper's populations.
    Full,
}

impl Scale {
    /// Picks between the quick and full value of a parameter.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The outcome of one experiment: printable lines plus a JSON record.
#[derive(Debug, Clone)]
pub struct Report {
    /// Stable experiment id (`fig1`, `table2`, …).
    pub id: &'static str,
    /// One-line title echoing the paper artifact.
    pub title: String,
    /// Human-readable result lines.
    pub lines: Vec<String>,
    /// Machine-readable record mirroring the lines.
    pub json: Json,
}

impl Report {
    /// Creates a report with the JSON payload built from any serializable
    /// record.
    pub fn new<T: ToJson>(id: &'static str, title: impl Into<String>, record: &T) -> Self {
        Report {
            id,
            title: title.into(),
            lines: Vec::new(),
            json: record.to_json(),
        }
    }

    /// Appends a printable line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Attaches the run's work accounting as the `work` section of the
    /// JSON record. A non-object record is wrapped as `{"record": …}`
    /// first so the section always lands at the top level.
    pub fn attach_work(&mut self, meter: &WorkMeter) {
        if !matches!(self.json, Json::Obj(_)) {
            let record = std::mem::replace(&mut self.json, Json::object());
            self.json.set("record", record);
        }
        self.json.set("work", meter.report());
    }

    /// Attaches the run's prune-funnel ledger as the `funnel` section of
    /// the JSON record (same wrapping rule as
    /// [`attach_work`](Self::attach_work)). The snapshot pipeline lifts
    /// this section into schema-v4 `BENCH_*.json` files, where its
    /// integer disposition leaves are hard-gated by `report diff` /
    /// `report trend`.
    pub fn attach_funnel(&mut self, meter: &WorkMeter) {
        if !matches!(self.json, Json::Obj(_)) {
            let record = std::mem::replace(&mut self.json, Json::object());
            self.json.set("record", record);
        }
        self.json.set("funnel", meter.funnel.report());
    }

    /// Attaches a run-length-kernel summary as the `rle` section of the
    /// JSON record (same wrapping rule as
    /// [`attach_work`](Self::attach_work)). The snapshot pipeline lifts
    /// this section into schema-v5 `BENCH_*.json` files, where its
    /// integer leaves (runs, blocks, boundary cells) are hard-gated by
    /// `report diff` / `report trend` while ratio floats stay advisory.
    pub fn attach_rle(&mut self, section: Json) {
        if !matches!(self.json, Json::Obj(_)) {
            let record = std::mem::replace(&mut self.json, Json::object());
            self.json.set("record", record);
        }
        self.json.set("rle", section);
    }

    /// Attaches a kernel-tier summary as the `tiers` section of the JSON
    /// record (same wrapping rule as [`attach_work`](Self::attach_work)).
    /// The snapshot pipeline lifts this section into schema-v6
    /// `BENCH_*.json` files, where the per-tier `mismatch` counters are
    /// hard-gated by `report diff` / `report trend` while the
    /// cells-per-second and speedup floats stay advisory.
    pub fn attach_tiers(&mut self, section: Json) {
        if !matches!(self.json, Json::Obj(_)) {
            let record = std::mem::replace(&mut self.json, Json::object());
            self.json.set("record", record);
        }
        self.json.set("tiers", section);
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== [{}] {}\n", self.id, self.title));
        for l in &self.lines {
            out.push_str("   ");
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Writes the JSON record to `<dir>/<id>.json` atomically: the bytes
    /// land in a temp file in the same directory which is then renamed
    /// over the target, so a crashed or interrupted run can never leave a
    /// half-written report behind.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let tmp = dir.join(format!(".{}.json.tmp", self.id));
        std::fs::write(&tmp, self.json.to_string_pretty())?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 10), 1);
        assert_eq!(Scale::Full.pick(1, 10), 10);
    }

    #[test]
    fn report_renders_lines() {
        #[derive(Debug)]
        struct R {
            x: u32,
        }
        tsdtw_obs::impl_to_json!(R { x });
        let mut r = Report::new("t", "title", &R { x: 3 });
        r.line("hello");
        let s = r.render();
        assert!(s.contains("[t] title"));
        assert!(s.contains("hello"));
        assert_eq!(r.json["x"], 3);
    }

    #[test]
    fn write_json_creates_file_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("tsdtw-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        #[derive(Debug)]
        struct R {
            ok: bool,
        }
        tsdtw_obs::impl_to_json!(R { ok });
        let r = Report::new("wtest", "t", &R { ok: true });
        r.write_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("wtest.json")).unwrap();
        assert!(content.contains("ok"));
        assert!(
            !dir.join(".wtest.json.tmp").exists(),
            "temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_work_adds_section() {
        let mut meter = WorkMeter::new();
        meter.cells = 10;
        meter.window_cells = 10;
        let mut r = Report::new("w", "t", &Json::object().with("n", 5));
        r.attach_work(&meter);
        assert_eq!(r.json["n"], 5);
        assert_eq!(r.json["work"]["cells"], 10);
    }

    #[test]
    fn attach_funnel_adds_section() {
        use tsdtw_obs::{FunnelStage, Meter};
        let mut meter = WorkMeter::new();
        meter.stage_entered(FunnelStage::Kim);
        let mut r = Report::new("f", "t", &Json::object().with("n", 5));
        r.attach_funnel(&meter);
        assert_eq!(r.json["n"], 5);
        assert_eq!(r.json["funnel"]["candidates"], 1);
        assert_eq!(r.json["funnel"]["stages"]["lb_kim"]["entered"], 1);
    }

    #[test]
    fn attach_work_wraps_non_object_records() {
        let meter = WorkMeter::new();
        let mut r = Report::new("w", "t", &7u32);
        r.attach_work(&meter);
        assert_eq!(r.json["record"], 7);
        assert!(r.json.get("work").is_some());
    }
}
