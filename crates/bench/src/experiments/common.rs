//! Timed all-pairs workloads shared by the Fig. 1 and Fig. 4 experiments.
//!
//! Every algorithm gets the same treatment: round-robin pair distribution
//! over the same number of scoped-thread workers, per-thread reusable state
//! where the algorithm admits it (`BandedDtw` caches its window and
//! scratch rows), and a `black_box`ed accumulator so the optimizer cannot
//! delete the work.
//!
//! Because the reference FastDTW is orders of magnitude slower per call,
//! callers measure it on a smaller pair population and extrapolate — the
//! per-pair cost of every algorithm here is independent of which pair is
//! measured, so the extrapolation is exact up to timer noise.

use std::hint::black_box;
use std::time::Instant;
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::banded::{cdtw_distance_metered, percent_to_band, BandedDtw};
use tsdtw_core::fastdtw::{fastdtw_distance, fastdtw_metered, fastdtw_ref_distance};
use tsdtw_core::obs::WorkMeter;
use tsdtw_mining::ParConfig;

/// Which distance implementation an all-pairs run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Exact `cDTW_w` (parameter: `w` in percent of N).
    Cdtw,
    /// Reference FastDTW — the canonical cell-list + hash-map
    /// implementation the community actually ran (parameter: radius).
    FastDtwRef,
    /// Tuned FastDTW — shares the exact kernels (parameter: radius).
    FastDtwTuned,
}

impl Algo {
    /// Display label used in reports, e.g. `cDTW_4%` / `FastDTW_10`.
    pub fn label(&self, param: f64) -> String {
        match self {
            Algo::Cdtw => format!("cDTW_{param}%"),
            Algo::FastDtwRef => format!("FastDTW_{} (reference)", param as usize),
            Algo::FastDtwTuned => format!("FastDTW_{} (tuned)", param as usize),
        }
    }
}

/// Enumerates all unordered pairs `(i, j)`, `i < j`.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect()
}

/// Wall-clock seconds for all pairwise distances of `series` under `algo`
/// with parameter `param` (`w` percent for cDTW, radius for FastDTW).
///
/// This is a pure *timing* loop — it produces a single wall-clock number
/// and no per-pair results or counters — so it keeps its own static
/// round-robin worker split (per-thread `BandedDtw` reuse matters here)
/// and takes only the worker count from `par`.
pub fn time_allpairs(series: &[Vec<f64>], algo: Algo, param: f64, par: &ParConfig) -> f64 {
    let n = series.len();
    let len = series[0].len();
    let pairs = pairs(n);
    let threads = par.n_threads.max(1);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let pairs = &pairs;
            scope.spawn(move || {
                let mut acc = 0.0;
                let mut k = t;
                match algo {
                    Algo::Cdtw => {
                        let band = percent_to_band(len, param).expect("valid w");
                        let mut eval = BandedDtw::new(len, len, band).expect("valid shape");
                        while k < pairs.len() {
                            let (i, j) = pairs[k];
                            acc += eval
                                .distance(&series[i], &series[j], SquaredCost)
                                .expect("valid inputs");
                            k += threads;
                        }
                    }
                    Algo::FastDtwRef => {
                        let radius = param as usize;
                        while k < pairs.len() {
                            let (i, j) = pairs[k];
                            acc +=
                                fastdtw_ref_distance(&series[i], &series[j], radius, SquaredCost)
                                    .expect("valid inputs");
                            k += threads;
                        }
                    }
                    Algo::FastDtwTuned => {
                        let radius = param as usize;
                        while k < pairs.len() {
                            let (i, j) = pairs[k];
                            acc += fastdtw_distance(&series[i], &series[j], radius, SquaredCost)
                                .expect("valid inputs");
                            k += threads;
                        }
                    }
                }
                black_box(acc);
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// One row of a sweep result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// `"cdtw"`, `"fastdtw_ref"` or `"fastdtw_tuned"`.
    pub algo: String,
    /// The parameter value: `w` in percent for cDTW, `r` in cells for
    /// FastDTW.
    pub param: f64,
    /// Pairs actually measured for this row.
    pub measured_pairs: usize,
    /// Measured seconds on those pairs.
    pub measured_s: f64,
    /// Linear extrapolation to the paper's full pair count.
    pub extrapolated_s: f64,
}

tsdtw_obs::impl_to_json!(SweepRow {
    algo,
    param,
    measured_pairs,
    measured_s,
    extrapolated_s,
});

fn algo_key(algo: Algo) -> &'static str {
    match algo {
        Algo::Cdtw => "cdtw",
        Algo::FastDtwRef => "fastdtw_ref",
        Algo::FastDtwTuned => "fastdtw_tuned",
    }
}

/// Measures one algorithm across a parameter grid, extrapolating every
/// total from this population's pair count to `target_pairs`.
pub fn sweep_algo(
    series: &[Vec<f64>],
    algo: Algo,
    params: &[f64],
    target_pairs: usize,
    par: &ParConfig,
) -> Vec<SweepRow> {
    let n = series.len();
    let measured_pairs = n * (n - 1) / 2;
    let scale = target_pairs as f64 / measured_pairs as f64;
    params
        .iter()
        .map(|&p| {
            let s = time_allpairs(series, algo, p, par);
            SweepRow {
                algo: algo_key(algo).into(),
                param: p,
                measured_pairs,
                measured_s: s,
                extrapolated_s: s * scale,
            }
        })
        .collect()
}

/// Meters one representative comparison at an experiment's configuration:
/// a `cDTW_w` evaluation (skipped when `w_percent` is `None`) and a tuned
/// FastDTW run at `radius` (skipped when `None`), over the given pair.
///
/// Experiments attach the result as their report's `work` section.
/// Metering is deliberately kept *out* of the timed hot loops — the work
/// per comparison is identical across a population of same-length pairs,
/// so one metered pass characterizes the whole run without perturbing the
/// timings it rides along with.
pub fn work_sample(
    x: &[f64],
    y: &[f64],
    w_percent: Option<f64>,
    radius: Option<usize>,
) -> WorkMeter {
    let mut meter = WorkMeter::new();
    if let Some(w) = w_percent {
        let band = percent_to_band(x.len().max(y.len()), w).expect("valid w");
        cdtw_distance_metered(x, y, band, SquaredCost, &mut meter).expect("valid inputs");
    }
    if let Some(r) = radius {
        fastdtw_metered(x, y, r, SquaredCost, &mut meter).expect("valid inputs");
    }
    meter
}

/// Finds the row for a given algorithm key and parameter.
pub fn find<'a>(rows: &'a [SweepRow], algo: &str, param: f64) -> Option<&'a SweepRow> {
    rows.iter()
        .find(|r| r.algo == algo && (r.param - param).abs() < 1e-9)
}

/// Renders the standard sweep table into report lines.
pub fn render_rows(rows: &[SweepRow], lines: &mut Vec<String>) {
    lines.push(format!(
        "{:<30}{:>12}{:>16}{:>12}",
        "setting", "measured", "extrapolated", "pairs"
    ));
    for r in rows {
        let label = match r.algo.as_str() {
            "cdtw" => Algo::Cdtw.label(r.param),
            "fastdtw_ref" => Algo::FastDtwRef.label(r.param),
            _ => Algo::FastDtwTuned.label(r.param),
        };
        lines.push(format!(
            "{:<30}{:>12}{:>16}{:>12}",
            label,
            crate::timing::human(r.measured_s),
            crate::timing::human(r.extrapolated_s),
            r.measured_pairs
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(count: usize, len: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|k| {
                (0..len)
                    .map(|i| ((k * 13 + i) as f64 * 0.21).sin())
                    .collect()
            })
            .collect()
    }

    fn par(n: usize) -> ParConfig {
        ParConfig::new(n).unwrap()
    }

    #[test]
    fn sweep_produces_a_row_per_setting_with_extrapolation() {
        let s = toy(8, 64);
        let rows = sweep_algo(&s, Algo::Cdtw, &[0.0, 10.0], 1000, &par(2));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.measured_pairs, 28);
            assert!((r.extrapolated_s - r.measured_s * 1000.0 / 28.0).abs() < 1e-9);
        }
    }

    #[test]
    fn find_locates_rows() {
        let s = toy(6, 32);
        let mut rows = sweep_algo(&s, Algo::Cdtw, &[5.0], 100, &par(1));
        rows.extend(sweep_algo(&s, Algo::FastDtwTuned, &[2.0], 100, &par(1)));
        assert!(find(&rows, "cdtw", 5.0).is_some());
        assert!(find(&rows, "fastdtw_tuned", 2.0).is_some());
        assert!(find(&rows, "fastdtw_ref", 2.0).is_none());
    }

    #[test]
    fn all_three_algorithms_run() {
        let s = toy(5, 48);
        for algo in [Algo::Cdtw, Algo::FastDtwRef, Algo::FastDtwTuned] {
            let t = time_allpairs(&s, algo, 4.0, &par(2));
            assert!(t >= 0.0, "{algo:?}");
        }
    }

    #[test]
    fn cdtw_beats_reference_fastdtw_at_matched_parameters() {
        // The paper's core claim, visible already on tiny populations: the
        // canonical FastDTW implementation loses to exact banded DTW.
        let s = toy(8, 128);
        let cdtw = time_allpairs(&s, Algo::Cdtw, 5.0, &par(1));
        let fast = time_allpairs(&s, Algo::FastDtwRef, 5.0, &par(1));
        assert!(
            cdtw < fast,
            "cDTW_5% should beat reference FastDTW_5 on N=128: {cdtw}s vs {fast}s"
        );
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(Algo::Cdtw.label(4.0), "cDTW_4%");
        assert_eq!(Algo::FastDtwRef.label(10.0), "FastDTW_10 (reference)");
        assert_eq!(Algo::FastDtwTuned.label(0.0), "FastDTW_0 (tuned)");
    }
}
