//! Fig. 5 + Fig. 6 — Case D: the fall-alignment thought experiment.
//! Early-fall vs late-fall pairs of length `L` seconds at 100 Hz require
//! `cDTW_100` (full DTW); sweep `L` and find where `FastDTW_40` finally
//! becomes faster than the exact computation.
//!
//! Paper's finding: the crossover is at L = 4 (N = 400). The crossover
//! point is a pure constant-factor race (`c₁·N²` vs `c₂·N`), so it depends
//! on the FastDTW implementation: our tuned FastDTW crosses at
//! small-hundreds N, closely matching the paper; the canonical reference
//! implementation's constants push its crossover far beyond any L in the
//! sweep. Both are reported.

use std::hint::black_box;
use tsdtw_core::cost::SquaredCost;
use tsdtw_core::dtw::full::dtw_distance;
use tsdtw_core::fastdtw::{fastdtw_distance, fastdtw_ref_distance};
use tsdtw_datasets::fall::{pair, HZ};

use tsdtw_mining::ParConfig;

use crate::report::{Report, Scale};
use crate::timing::time_reps;

struct Row {
    l_seconds: f64,
    n: usize,
    full_dtw_ms: f64,
    tuned_fastdtw_40_ms: f64,
    ref_fastdtw_40_ms: Option<f64>,
    fastdtw_aligns_falls: bool,
}

tsdtw_obs::impl_to_json!(Row {
    l_seconds,
    n,
    full_dtw_ms,
    tuned_fastdtw_40_ms,
    ref_fastdtw_40_ms,
    fastdtw_aligns_falls
});

struct Record {
    rows: Vec<Row>,
    tuned_crossover_l: Option<f64>,
    ref_crossover_l: Option<f64>,
}

tsdtw_obs::impl_to_json!(Record {
    rows,
    tuned_crossover_l,
    ref_crossover_l
});

/// Runs the experiment.
pub fn run(scale: &Scale, _par: &ParConfig) -> Report {
    let ls: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 2.0, 4.0, 8.0, 16.0],
        Scale::Full => vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0],
    };
    // The reference implementation costs seconds per call at large L;
    // sample it where it is affordable.
    let ref_ls: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 4.0],
        Scale::Full => vec![1.0, 2.0, 4.0, 8.0, 16.0],
    };
    let reps = scale.pick(3, 15);
    let ref_reps = scale.pick(1, 3);

    let mut rows = Vec::new();
    for &l in &ls {
        let p = pair(l, 0xF165 + (l * 10.0) as u64).expect("generator");
        let full = time_reps(reps, || {
            black_box(dtw_distance(&p.early, &p.late, SquaredCost).expect("valid"));
        });
        let tuned = time_reps(reps, || {
            black_box(fastdtw_distance(&p.early, &p.late, 40, SquaredCost).expect("valid"));
        });
        let reference = if ref_ls.contains(&l) {
            Some(
                time_reps(ref_reps, || {
                    black_box(
                        fastdtw_ref_distance(&p.early, &p.late, 40, SquaredCost).expect("valid"),
                    );
                })
                .mean_s
                    * 1e3,
            )
        } else {
            None
        };
        // The paper "does not test if FastDTW_40 actually aligns the two
        // falls, we simply assume it does" — we do test, as a bonus.
        let exact = dtw_distance(&p.early, &p.late, SquaredCost).expect("valid");
        let approx = fastdtw_distance(&p.early, &p.late, 40, SquaredCost).expect("valid");
        let aligns = approx <= exact.max(1e-9) * 3.0 + 1.0;
        rows.push(Row {
            l_seconds: l,
            n: p.len,
            full_dtw_ms: full.mean_s * 1e3,
            tuned_fastdtw_40_ms: tuned.mean_s * 1e3,
            ref_fastdtw_40_ms: reference,
            fastdtw_aligns_falls: aligns,
        });
    }

    let tuned_crossover_l = rows
        .iter()
        .find(|r| r.tuned_fastdtw_40_ms < r.full_dtw_ms)
        .map(|r| r.l_seconds);
    let ref_crossover_l = rows
        .iter()
        .find(|r| {
            r.ref_fastdtw_40_ms
                .map(|f| f < r.full_dtw_ms)
                .unwrap_or(false)
        })
        .map(|r| r.l_seconds);

    let record = Record {
        rows,
        tuned_crossover_l,
        ref_crossover_l,
    };

    let mut rep = Report::new(
        "fig6",
        format!("Fig. 6: early/late falls at {HZ} Hz — where does FastDTW_40 beat cDTW_100?"),
        &record,
    );
    rep.line(format!(
        "{:>6}{:>8}{:>16}{:>15}{:>14}{:>9}",
        "L (s)", "N", "cDTW_100 (ms)", "tuned_40 (ms)", "ref_40 (ms)", "aligns?"
    ));
    for r in record.rows.iter() {
        rep.line(format!(
            "{:>6}{:>8}{:>16.3}{:>15.3}{:>14}{:>9}",
            r.l_seconds,
            r.n,
            r.full_dtw_ms,
            r.tuned_fastdtw_40_ms,
            r.ref_fastdtw_40_ms
                .map_or("-".into(), |v| format!("{v:.1}")),
            r.fastdtw_aligns_falls
        ));
    }
    match record.tuned_crossover_l {
        Some(l) => rep.line(format!(
            "tuned FastDTW_40 first beats exact cDTW_100 at L = {l} (N = {})  \
             [paper: L = 4, N = 400]",
            (l * HZ as f64) as usize
        )),
        None => rep.line("tuned FastDTW_40 never won in the measured range".to_string()),
    }
    match record.ref_crossover_l {
        Some(l) => rep.line(format!("reference FastDTW_40 first wins at L = {l}")),
        None => rep.line(
            "reference FastDTW_40 never beat exact full DTW in the measured range \
             (its constants push the crossover far beyond the paper's L = 4)"
                .to_string(),
        ),
    }
    rep.line(
        "note: at the crossover FastDTW_40 merely approximates the cDTW_100 result it ties."
            .to_string(),
    );
    let wp = pair(1.0, 0xF165 + 10).expect("generator");
    rep.attach_work(&super::common::work_sample(
        &wp.early,
        &wp.late,
        Some(100.0),
        Some(40),
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_full_dtw_winning_at_small_l() {
        let rep = run(&Scale::Quick, &ParConfig::serial());
        let rows = rep.json["rows"].as_array().unwrap();
        let first = &rows[0];
        assert!(
            first["full_dtw_ms"].as_f64().unwrap() < first["tuned_fastdtw_40_ms"].as_f64().unwrap(),
            "at L=1 s (N=100) exact full DTW must beat even tuned FastDTW_40"
        );
        assert!(
            first["full_dtw_ms"].as_f64().unwrap() < first["ref_fastdtw_40_ms"].as_f64().unwrap(),
            "at L=1 s exact full DTW must beat reference FastDTW_40"
        );
        // FastDTW with r=40 does find the fall alignment on this data.
        assert!(first["fastdtw_aligns_falls"].as_bool().unwrap());
    }
}
