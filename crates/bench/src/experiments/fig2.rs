//! Fig. 2 — distributions over a 128-dataset UCR-like suite: (a) the
//! optimal 1-NN warping window found by brute-force LOOCV search, (b) the
//! dataset lengths.
//!
//! Expected shape (paper): lengths mostly below 1,000; optimal `w` rarely
//! above 10 %.

use tsdtw_datasets::suite::{generate_suite, SuiteConfig};
use tsdtw_mining::dataset_views::LabeledView;
use tsdtw_mining::wselect::{integer_grid, optimal_window};

use tsdtw_mining::ParConfig;

use crate::report::{Report, Scale};

struct Record {
    n_datasets: usize,
    optimal_w: Vec<f64>,
    lengths: Vec<usize>,
    w_histogram: Vec<(String, usize)>,
    length_histogram: Vec<(String, usize)>,
    frac_w_at_most_10: f64,
    frac_len_below_1000: f64,
}

tsdtw_obs::impl_to_json!(Record {
    n_datasets,
    optimal_w,
    lengths,
    w_histogram,
    length_histogram,
    frac_w_at_most_10,
    frac_len_below_1000
});

fn histogram<T: Copy, F: Fn(T) -> usize>(
    values: &[T],
    bins: &[&str],
    bin_of: F,
) -> Vec<(String, usize)> {
    let mut counts = vec![0usize; bins.len()];
    for &v in values {
        counts[bin_of(v).min(bins.len() - 1)] += 1;
    }
    bins.iter().map(|s| s.to_string()).zip(counts).collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale, _par: &ParConfig) -> Report {
    let config = SuiteConfig {
        n_datasets: scale.pick(24, 128),
        exemplars: scale.pick(12, 24),
        length_scale: scale.pick(0.25, 1.0),
    };
    let suite = generate_suite(&config, 0xF162).expect("generator");
    let grid = integer_grid(20);

    let mut optimal_w = Vec::with_capacity(suite.len());
    let mut lengths = Vec::with_capacity(suite.len());
    for entry in &suite {
        let view = LabeledView::new(&entry.data.series, &entry.data.labels).expect("valid dataset");
        let res = optimal_window(&view, &grid).expect("window search");
        optimal_w.push(res.best_w_percent);
        lengths.push(entry.data.series_len());
    }

    let w_bins = ["0-2%", "3-5%", "6-10%", "11-15%", "16-20%"];
    let w_hist = histogram(&optimal_w, &w_bins, |w| match w as usize {
        0..=2 => 0,
        3..=5 => 1,
        6..=10 => 2,
        11..=15 => 3,
        _ => 4,
    });
    // Length bins follow Fig. 2 (b)'s axis; under Quick's length_scale the
    // same bins are scaled down proportionally.
    let len_scale = config.length_scale;
    let b = |x: f64| (x * len_scale) as usize;
    let len_bins = ["<250", "250-500", "500-1000", "1000-2000", ">=2000"];
    let (b250, b500, b1000, b2000) = (b(250.0), b(500.0), b(1000.0), b(2000.0));
    let len_hist = histogram(&lengths, &len_bins, move |l| {
        if l < b250 {
            0
        } else if l < b500 {
            1
        } else if l < b1000 {
            2
        } else if l < b2000 {
            3
        } else {
            4
        }
    });

    let frac_w = optimal_w.iter().filter(|&&w| w <= 10.0).count() as f64 / optimal_w.len() as f64;
    let frac_len = lengths.iter().filter(|&&l| l < b1000).count() as f64 / lengths.len() as f64;

    let record = Record {
        n_datasets: suite.len(),
        optimal_w,
        lengths,
        w_histogram: w_hist,
        length_histogram: len_hist,
        frac_w_at_most_10: frac_w,
        frac_len_below_1000: frac_len,
    };

    let mut rep = Report::new(
        "fig2",
        format!(
            "Fig. 2: optimal-w and length distributions over {} UCR-like datasets \
             (brute-force LOOCV, w ∈ 0..20%)",
            record.n_datasets
        ),
        &record,
    );
    rep.line("(a) optimal warping window:");
    for (bin, count) in &record.w_histogram {
        rep.line(format!(
            "    {:<9} {:>4}  {}",
            bin,
            count,
            "#".repeat(*count)
        ));
    }
    rep.line("(b) dataset lengths (scaled bins under --quick):");
    for (bin, count) in &record.length_histogram {
        rep.line(format!(
            "    {:<9} {:>4}  {}",
            bin,
            count,
            "#".repeat(*count)
        ));
    }
    rep.line(format!(
        "optimal w <= 10%: {:.0}% of datasets  [paper: 'rarely above 10%']",
        record.frac_w_at_most_10 * 100.0
    ));
    rep.line(format!(
        "length < 1000 (scaled): {:.0}% of datasets  [paper: 'majority ... less than 1,000']",
        record.frac_len_below_1000 * 100.0
    ));
    rep.attach_work(&super::common::work_sample(
        &suite[0].data.series[0],
        &suite[0].data.series[1],
        Some(record.optimal_w[0]),
        None,
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_papers_distributions() {
        let rep = run(&Scale::Quick, &ParConfig::serial());
        let v = &rep.json;
        assert!(
            v["frac_w_at_most_10"].as_f64().unwrap() > 0.6,
            "most optimal windows should be small: {}",
            v["frac_w_at_most_10"]
        );
        assert!(
            v["frac_len_below_1000"].as_f64().unwrap() > 0.6,
            "most lengths should be short: {}",
            v["frac_len_below_1000"]
        );
        assert_eq!(v["n_datasets"].as_u64().unwrap(), 24);
    }

    #[test]
    fn histogram_helper_bins_and_saturates() {
        let h = histogram(&[0usize, 1, 5, 99], &["a", "b"], |v| v);
        assert_eq!(h[0].1, 1);
        assert_eq!(h[1].1, 3);
    }
}
